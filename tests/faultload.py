"""Shared seeded workload builder for the fault-injection suites.

Chaos, differential-equivalence and recovery-benchmark runs all need
the same shape of workload: several agents roaming a small coalition,
executing random access sequences under an RBAC policy whose count
constraint produces a real mix of grants and denials.  Everything here
is a pure function of the seed, so a faulty run and its fault-free
oracle see byte-identical programs.

Programs are straight-line access sequences (no channels, signals or
clones): per-agent decision outcomes then depend only on the agent's
own carried history, never on cross-agent timing — which is exactly
what makes the oracle comparison sound under fault-shifted schedules.
"""

from __future__ import annotations

import random

from repro.agent.naplet import Naplet
from repro.agent.scheduler import Simulation
from repro.agent.security import NapletSecurityManager
from repro.coalition.network import Coalition, constant_latency
from repro.coalition.resource import Resource
from repro.coalition.server import CoalitionServer
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.sral.parser import parse_program
from repro.srac.parser import parse_constraint

SERVERS = ("s1", "s2", "s3")
OPS = ("read", "write", "exec")
RESOURCES = ("r1", "rsw")
#: Per-session cap on ``rsw`` accesses of any op (the Example 3.5
#: pattern) — low enough that random workloads hit it, producing real
#: denials.
RSW_LIMIT = 3


def make_coalition(latency: float = 2.0) -> Coalition:
    servers = [
        CoalitionServer(name, resources=[Resource("r1"), Resource("rsw")])
        for name in SERVERS
    ]
    return Coalition(servers, latency=constant_latency(latency))


def make_policy(owners) -> Policy:
    """Every rsw operation shares one count budget (RSW_LIMIT accesses
    per session, any op — so the budget arithmetic in the chaos
    assertions is exact); r1 is unconstrained."""
    policy = Policy()
    policy.add_role("member")
    rsw_budget = parse_constraint(f"count(0, {RSW_LIMIT}, [res = rsw])")
    policy.add_permission(
        Permission("p-rsw", resource="rsw", spatial_constraint=rsw_budget)
    )
    policy.add_permission(Permission("p-any-r1", resource="r1"))
    for owner in owners:
        policy.add_user(owner)
        policy.assign_user(owner, "member")
    for perm in ("p-rsw", "p-any-r1"):
        policy.assign_permission("member", perm)
    return policy


def random_workload(seed: int, n_agents: int = 3, n_accesses: int = 8):
    """Deterministic list of ``(owner, program_text, start_server)``."""
    rng = random.Random(seed)
    workload = []
    for index in range(n_agents):
        steps = []
        for _ in range(n_accesses):
            # Bias towards the count-limited access so the RSW_LIMIT
            # actually bites and workloads mix grants with denials.
            if rng.random() < 0.45:
                op, resource = "exec", "rsw"
            else:
                op, resource = rng.choice(OPS), rng.choice(RESOURCES)
            steps.append(f"{op} {resource} @ {rng.choice(SERVERS)}")
        workload.append(
            (f"u{index}", " ; ".join(steps), rng.choice(SERVERS))
        )
    return workload


def run_workload(
    workload,
    proof_propagation="eager",
    faults=None,
    proof_batch_size: int = 4,
    latency: float = 2.0,
):
    """Run one workload on a fresh coalition + engine; returns
    ``(simulation, report, naplets)``.  ``on_denied='skip'`` so denials
    never change which accesses are *attempted*."""
    coalition = make_coalition(latency=latency)
    engine = AccessControlEngine(make_policy([w[0] for w in workload]))
    security = NapletSecurityManager(engine)
    sim = Simulation(
        coalition,
        security=security,
        on_denied="skip",
        proof_propagation=proof_propagation,
        proof_batch_size=proof_batch_size,
        faults=faults,
    )
    naplets = []
    for owner, text, start in workload:
        naplet = Naplet(
            owner, parse_program(text), roles=("member",), name=f"agent-{owner}"
        )
        naplets.append(naplet)
        sim.add_naplet(naplet, start)
    report = sim.run()
    return sim, report, naplets


def decision_log(naplets):
    """Per-agent decision outcomes: granted accesses (the carried
    chain) plus denial reasons, in program order."""
    return {
        n.naplet_id: {
            "granted": list(n.history()),
            "denials": [
                (d.access, d.reason) if d is not None else None
                for d in n.denials
            ],
        }
        for n in naplets
    }


# -- membership-churn workloads -------------------------------------------------
#
# The churn suites need a constraint whose verdict *depends on history
# admissibility*, so evicting a server observably flips later decisions.
# A pure ordered constraint cannot do that under extension semantics (a
# missing prerequisite can always still happen in some future), so the
# gate pairs the order with a count cap: once a ``gated`` access is on
# the table, re-satisfying the order would need a second one — which the
# cap forbids.  Net effect: ``exec gated @ GATE_SERVER`` is granted iff
# the carried history contains an *admissible* ``read r1 @ HUB_SERVER``.

#: The server whose proofs justify gated accesses; evicting it is the
#: canonical overgrant hazard.
HUB_SERVER = "s1"
#: The server where the gated resource lives.
GATE_SERVER = "s2"
GATED_SRC = (
    f"(read r1 @ {HUB_SERVER} >> exec gated @ {GATE_SERVER})"
    " & count(0, 1, [res = gated])"
)
CHURN_RESOURCES = ("r1", "rsw", "gated")


def make_churn_server(name: str) -> CoalitionServer:
    return CoalitionServer(
        name, resources=[Resource(r) for r in CHURN_RESOURCES]
    )


def make_churn_coalition(
    names=SERVERS, latency: float = 2.0
) -> Coalition:
    return Coalition(
        [make_churn_server(name) for name in names],
        latency=constant_latency(latency),
    )


def make_churn_policy(owners) -> Policy:
    """``gated`` is order+count gated on the hub read; ``rsw`` keeps
    the count budget of the base faultload; ``r1`` is unconstrained."""
    policy = Policy()
    policy.add_role("member")
    policy.add_permission(
        Permission(
            "p-gated",
            resource="gated",
            spatial_constraint=parse_constraint(GATED_SRC),
        )
    )
    policy.add_permission(
        Permission(
            "p-rsw",
            resource="rsw",
            spatial_constraint=parse_constraint(
                f"count(0, {RSW_LIMIT}, [res = rsw])"
            ),
        )
    )
    policy.add_permission(Permission("p-any-r1", resource="r1"))
    for owner in owners:
        policy.add_user(owner)
        policy.assign_user(owner, "member")
    for perm in ("p-gated", "p-rsw", "p-any-r1"):
        policy.assign_permission("member", perm)
    return policy


def churn_workload(seed: int, n_agents: int = 3, n_accesses: int = 8):
    """Deterministic ``(owner, program_text, start_server)`` triples
    biased so the gated order constraint actually decides: most agents
    first try the hub read, then the gated access, with random filler
    around them."""
    rng = random.Random(seed)
    workload = []
    for index in range(n_agents):
        steps = []
        for _ in range(n_accesses):
            roll = rng.random()
            if roll < 0.30:
                steps.append(f"read r1 @ {HUB_SERVER}")
            elif roll < 0.55:
                steps.append(f"exec gated @ {GATE_SERVER}")
            elif roll < 0.75:
                steps.append(f"exec rsw @ {rng.choice(SERVERS)}")
            else:
                steps.append(
                    f"{rng.choice(OPS)} {rng.choice(('r1', 'rsw'))} "
                    f"@ {rng.choice(SERVERS)}"
                )
        workload.append(
            (f"u{index}", " ; ".join(steps), rng.choice(SERVERS))
        )
    return workload


def run_churn_workload(
    workload,
    churn=None,
    proof_propagation="batched",
    proof_batch_size: int = 4,
    latency: float = 2.0,
    incremental: bool = False,
):
    """Run one workload on a fresh churn coalition with the membership
    schedule applied by the run loop.  The security manager is
    coalition-bound, so decisions filter inadmissible history and stamp
    epochs.  Returns ``(simulation, report, naplets)``."""
    from repro.faults.plan import FaultPlan

    coalition = make_churn_coalition(latency=latency)
    engine = AccessControlEngine(make_churn_policy([w[0] for w in workload]))
    security = NapletSecurityManager(
        engine, incremental=incremental, coalition=coalition
    )
    faults = FaultPlan(churn=churn) if churn is not None else None
    sim = Simulation(
        coalition,
        security=security,
        on_denied="skip",
        proof_propagation=proof_propagation,
        proof_batch_size=proof_batch_size,
        faults=faults,
    )
    naplets = []
    for owner, text, start in workload:
        naplet = Naplet(
            owner, parse_program(text), roles=("member",), name=f"agent-{owner}"
        )
        naplets.append(naplet)
        sim.add_naplet(naplet, start)
    report = sim.run()
    return sim, report, naplets


def assert_no_overgrant(naplets, coalition):
    """The cross-epoch no-overgrant oracle.

    Every *granted* access is replayed against a from-scratch engine
    whose history contains only the proofs that were admissible at the
    decision's epoch — i.e. proofs whose issuing server had not been
    evicted by then (the final evictions table tells us when each
    eviction happened; a server evicted at epoch ``e`` was still
    admissible for decisions taken at epochs ``< e``).  If the fresh
    engine denies any replayed grant, the live run consumed a proof it
    should not have — an overgrant.  Returns the number of replayed
    decisions.
    """
    evictions = coalition.evictions_table()
    replayed = 0
    for naplet in naplets:
        proofs = list(naplet.registry)
        if not proofs:
            continue
        engine = AccessControlEngine(make_churn_policy([naplet.owner]))
        session = engine.authenticate(naplet.owner, 0.0)
        engine.activate_role(session, "member", 0.0)
        for i, proof in enumerate(proofs):
            epoch = proof.epoch
            history = tuple(
                q.access
                for q in proofs[:i]
                if evictions.get(q.access.server) is None
                or evictions[q.access.server] > epoch
            )
            decision = engine.decide(
                session, proof.access, proof.local_time, history=history
            )
            assert decision.granted, (
                f"OVERGRANT: {naplet.naplet_id} was granted {proof.access} "
                f"at t={proof.local_time} (epoch {epoch}) but the "
                f"epoch-filtered oracle denies it: {decision.reason}"
            )
            replayed += 1
    return replayed
