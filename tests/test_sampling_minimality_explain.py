"""Tests for trace-model sampling, DFA minimality (Myhill–Nerode) and
the engine's explain API."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import tests.strategies as strat
from repro.automata.dfa import DFA
from repro.automata.ops import minimize
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.sral.parser import parse_program
from repro.srac.parser import parse_constraint
from repro.traces.model import TraceModel, program_traces
from repro.traces.trace import AccessKey

A = AccessKey("read", "r1", "s1")
B = AccessKey("write", "r2", "s1")


class TestSampling:
    def test_sample_of_empty_model(self):
        rng = np.random.default_rng(0)
        assert TraceModel.nothing().sample(rng) is None

    def test_sample_member_of_finite_model(self):
        model = TraceModel.of_traces([(A,), (A, B), (B, B)])
        rng = np.random.default_rng(1)
        for _ in range(50):
            trace = model.sample(rng)
            assert trace in model

    def test_sample_covers_all_traces_eventually(self):
        model = TraceModel.of_traces([(A,), (B,), (A, B)])
        rng = np.random.default_rng(2)
        seen = {model.sample(rng) for _ in range(200)}
        assert seen == {(A,), (B,), (A, B)}

    def test_sample_infinite_model(self):
        model = TraceModel.single(A).star()
        rng = np.random.default_rng(3)
        lengths = {len(model.sample(rng, max_length=10)) for _ in range(100)}
        assert 0 in lengths
        assert any(length >= 2 for length in lengths)

    def test_sample_deterministic_under_seed(self):
        model = program_traces(
            parse_program("while c do { read r1 @ s1 ; write r2 @ s1 }")
        )
        t1 = [model.sample(np.random.default_rng(9)) for _ in range(5)]
        t2 = [model.sample(np.random.default_rng(9)) for _ in range(5)]
        assert t1 == t2

    @given(strat.loop_free_programs(max_leaves=6))
    @settings(max_examples=60, deadline=None)
    def test_sampled_trace_always_in_model(self, program):
        model = program_traces(program)
        trace = model.sample(np.random.default_rng(4))
        assert trace is not None
        assert trace in model


class TestMinimality:
    """Hopcroft output has exactly one state per Myhill–Nerode class of
    reachable, useful residuals (checked by brute-force residual
    comparison on small DFAs)."""

    @staticmethod
    def residual_signature(dfa, state, alphabet, depth=6):
        """The set of accepted words of length ≤ depth from `state`."""
        out = set()
        for length in range(depth + 1):
            for word in itertools.product(alphabet, repeat=length):
                current = state
                for symbol in word:
                    current = dfa.delta[current].get(symbol)
                    if current is None:
                        break
                else:
                    if current in dfa.accepts:
                        out.add(word)
        return frozenset(out)

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)),
            min_size=1,
            max_size=4,
        ),
        st.sets(st.integers(0, 3)),
    )
    @settings(max_examples=80, deadline=None)
    def test_minimize_reaches_nerode_bound(self, rows, accepts):
        n = len(rows)
        delta = [
            {"a": min(a, n - 1), "b": min(b, n - 1)} for a, b in rows
        ]
        dfa = DFA(delta, 0, {s for s in accepts if s < n})
        minimal = minimize(dfa)
        # All states of the minimal DFA have pairwise distinct residuals.
        signatures = [
            self.residual_signature(minimal, s, ("a", "b"))
            for s in range(minimal.n_states)
        ]
        assert len(set(signatures)) == minimal.n_states


class TestExplain:
    def make(self):
        policy = Policy()
        policy.add_user("u")
        policy.add_role("r")
        policy.add_permission(
            Permission(
                "p_quota",
                op="exec",
                resource="rsw",
                spatial_constraint=parse_constraint("count(0, 2, [res = rsw])"),
            )
        )
        policy.add_permission(
            Permission("p_timed", op="exec", resource="rsw", validity_duration=5.0)
        )
        policy.assign_user("u", "r")
        policy.assign_permission("r", "p_quota")
        policy.assign_permission("r", "p_timed")
        engine = AccessControlEngine(policy)
        session = engine.authenticate("u", 0.0)
        engine.activate_role(session, "r", 0.0)
        return engine, session

    def test_explain_lists_all_candidates(self):
        engine, session = self.make()
        rows = engine.explain(session, ("exec", "rsw", "s1"), 1.0)
        assert {r["permission"] for r in rows} == {"p_quota", "p_timed"}
        assert all(r["role"] == "r" for r in rows)

    def test_explain_shows_split_verdicts(self):
        engine, session = self.make()
        history = (AccessKey("exec", "rsw", "s1"),) * 2
        rows = engine.explain(session, ("exec", "rsw", "s2"), 10.0, history=history)
        by_name = {r["permission"]: r for r in rows}
        # quota permission: spatially dead, temporally fine
        assert by_name["p_quota"]["spatial_ok"] is False
        assert by_name["p_quota"]["temporal_ok"] is True
        # timed permission: spatially fine, budget expired at t=10
        assert by_name["p_timed"]["spatial_ok"] is True
        assert by_name["p_timed"]["temporal_ok"] is False
        assert by_name["p_timed"]["state"] == "active-but-invalid"

    def test_explain_does_not_audit(self):
        engine, session = self.make()
        engine.explain(session, ("exec", "rsw", "s1"), 1.0)
        assert len(engine.audit) == 0

    def test_explain_matches_decide(self):
        engine, session = self.make()
        history = (AccessKey("exec", "rsw", "s1"),) * 2
        rows = engine.explain(session, ("exec", "rsw", "s2"), 1.0, history=history)
        decision = engine.decide(session, ("exec", "rsw", "s2"), 1.0, history=history)
        any_pass = any(r["spatial_ok"] and r["temporal_ok"] for r in rows)
        assert decision.granted == any_pass

    def test_explain_empty_for_unmatched_access(self):
        engine, session = self.make()
        assert engine.explain(session, ("read", "other", "s1"), 1.0) == []
