"""Tests for the rendering helpers and the policy text DSL."""

import math

import pytest

from repro.apps.integrity import figure1_graph, run_audit
from repro.automata.ops import determinize
from repro.errors import PolicyError
from repro.rbac.policy import Policy
from repro.sral.parser import parse_program
from repro.temporal.timeline import BooleanTimeline
from repro.traces.model import program_traces
from repro.viz import (
    audit_report_to_ascii,
    dependency_graph_to_ascii,
    dependency_graph_to_dot,
    dfa_to_dot,
    nfa_to_dot,
    timeline_to_ascii,
)


class TestFigureRegeneration:
    def test_figure1_dot_structure(self):
        dot = dependency_graph_to_dot(figure1_graph())
        assert dot.startswith("digraph dependency {")
        assert dot.rstrip().endswith("}")
        # Four dotted server clusters, as drawn.
        assert dot.count("subgraph cluster_") == 4
        assert "style=dotted" in dot
        # "A directed line from module A to D represents A depends on D".
        assert '"mA" -> "mD";' in dot

    def test_figure1_dot_has_all_modules_and_edges(self):
        graph = figure1_graph()
        dot = dependency_graph_to_dot(graph)
        for module in graph.modules():
            assert f'"{module.name}"' in dot
        n_edges = sum(len(m.depends_on) for m in graph.modules())
        assert dot.count(" -> ") == n_edges

    def test_figure1_ascii(self):
        text = dependency_graph_to_ascii(figure1_graph())
        assert "[s1]" in text and "[s4]" in text
        assert "(mA) --> mB, mC, mD" in text
        assert "(mD)     (no dependencies)" in text

    def test_audit_report_ascii(self):
        report = run_audit(figure1_graph(), tamper={"m7"})
        text = audit_report_to_ascii(report)
        assert "m7       UNVERIFIED  (hash mismatch or unaudited)" in text
        assert "mD       VERIFIED" in text


class TestAutomatonDot:
    def test_nfa_dot(self):
        nfa = program_traces(parse_program("read r1 @ s1 ; read r2 @ s1")).nfa
        dot = nfa_to_dot(nfa)
        assert dot.startswith("digraph nfa {")
        assert "__start ->" in dot
        assert "doublecircle" in dot
        assert "read r1 @ s1" in dot

    def test_nfa_dot_marks_epsilon(self):
        nfa = program_traces(parse_program("while c do read r1 @ s1")).nfa
        assert "style=dashed" in nfa_to_dot(nfa)

    def test_dfa_dot(self):
        dfa = determinize(
            program_traces(parse_program("read r1 @ s1 ; read r2 @ s1")).nfa
        )
        dot = dfa_to_dot(dfa)
        assert dot.startswith("digraph dfa {")
        assert dot.count("doublecircle") == len(dfa.accepts)


class TestTimelineAscii:
    def test_bar_rendering(self):
        tl = BooleanTimeline.from_intervals([(0, 5)])
        bar = timeline_to_ascii(tl, 0, 10, width=10)
        assert bar == "0 |█████·····| 10"

    def test_empty_interval(self):
        assert timeline_to_ascii(BooleanTimeline.constant(True), 5, 5) == ""


class TestPolicyText:
    SOURCE = """
    # the security officer's declarations
    user alice
    role auditor
    role clerk
    permission p_rsw exec rsw @ * constraint "count(0, 5, [res = rsw])" duration 30
    permission p_read read * @ *
    inherit auditor clerk          # auditor inherits clerk
    assign alice auditor
    grant auditor p_rsw
    grant clerk p_read
    dsd no_simultaneous auditor clerk
    """

    def test_loads_full_policy(self):
        policy = Policy.from_text(self.SOURCE)
        auditor = policy.role("auditor")
        names = {p.name for p in policy.permissions_of_role(auditor)}
        assert names == {"p_rsw", "p_read"}
        p = policy.permission("p_rsw")
        assert p.spatial_constraint is not None
        assert p.validity_duration == 30.0
        assert math.isinf(policy.permission("p_read").validity_duration)
        assert policy.roles_of_user(policy.user("alice")) == {auditor}
        assert len(policy.dsd_constraints) == 1

    def test_text_policy_drives_engine(self):
        from repro.rbac.engine import AccessControlEngine
        from repro.traces.trace import AccessKey

        engine = AccessControlEngine(Policy.from_text(self.SOURCE))
        session = engine.authenticate("alice", 0.0)
        engine.activate_role(session, "auditor", 0.0)
        history = (AccessKey("exec", "rsw", "s1"),) * 5
        assert not engine.decide(session, ("exec", "rsw", "s2"), 1.0, history).granted

    def test_ssd_with_cardinality(self):
        source = """
        user u
        role a
        role b
        role c
        ssd spread a b c cardinality 3
        assign u a
        assign u b
        """
        policy = Policy.from_text(source)
        # Two of three conflicting roles are fine at cardinality 3 …
        with pytest.raises(PolicyError):
            policy.assign_user("u", "c")  # … but the third violates.

    def test_duration_inf(self):
        policy = Policy.from_text(
            "user u\nrole r\npermission p read x @ s1 duration inf\n"
        )
        assert math.isinf(policy.permission("p").validity_duration)

    @pytest.mark.parametrize(
        "bad",
        [
            "frobnicate x",  # unknown keyword
            "user",  # missing argument
            "user a b",  # extra argument
            "permission p read x",  # bad shape
            "permission p read x @ s1 constraint",  # dangling option
            "permission p read x @ s1 wibble 3",  # unknown option
            "assign ghost r",  # unknown user
            'permission p read x @ s1 constraint "count(("',  # bad SRAC
            "ssd only_one_role r",  # too few roles
            'user "unterminated',  # shlex error
        ],
    )
    def test_rejects_malformed(self, bad):
        prelude = "user u\nrole r\n"
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            Policy.from_text(prelude + bad)

    def test_error_reports_line_number(self):
        with pytest.raises(PolicyError) as err:
            Policy.from_text("user a\nuser a\n")
        assert "line 2" in str(err.value)
