"""Tests for the incremental (session-monitor) decision mode: same
decisions as explicit-history mode, O(1) in history length."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import tests.strategies as strat
from repro.agent.naplet import Naplet, NapletStatus
from repro.agent.scheduler import Simulation
from repro.agent.security import NapletSecurityManager
from repro.coalition.network import Coalition
from repro.coalition.resource import Resource
from repro.coalition.server import CoalitionServer
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.sral.parser import parse_program
from repro.srac.parser import parse_constraint
from repro.traces.trace import AccessKey


def make_engine(constraint_src="count(0, 5, [res = rsw])"):
    policy = Policy()
    policy.add_user("u")
    policy.add_role("r")
    policy.add_permission(
        Permission(
            "p",
            op="exec",
            resource="rsw",
            spatial_constraint=parse_constraint(constraint_src),
        )
    )
    policy.assign_user("u", "r")
    policy.assign_permission("r", "p")
    engine = AccessControlEngine(policy)
    session = engine.authenticate("u", 0.0)
    engine.activate_role(session, "r", 0.0)
    return engine, session


class TestIncrementalDecisions:
    def test_observe_advances_cache(self):
        engine, session = make_engine()
        access = AccessKey("exec", "rsw", "s1")
        for i in range(5):
            assert engine.decide(session, access, float(i), history=None).granted
            engine.observe(session, access)
        # The 6th is denied purely from cached monitor state.
        assert not engine.decide(session, access, 6.0, history=None).granted
        assert session.observed == (access,) * 5

    def test_incremental_matches_explicit(self):
        engine_a, session_a = make_engine()
        engine_b, session_b = make_engine()
        accesses = [AccessKey("exec", "rsw", f"s{i % 3}") for i in range(8)]
        history: tuple[AccessKey, ...] = ()
        for i, access in enumerate(accesses):
            explicit = engine_a.decide(session_a, access, float(i), history=history)
            incremental = engine_b.decide(session_b, access, float(i), history=None)
            assert explicit.granted == incremental.granted
            if explicit.granted:
                history += (access,)
                engine_b.observe(session_b, access)

    def test_coordination_preserved_incrementally(self):
        """The flagship denial-at-the-other-server works incrementally."""
        engine, session = make_engine()
        for i in range(5):
            engine.observe(session, AccessKey("exec", "rsw", "s1"))
        decision = engine.decide(session, ("exec", "rsw", "s2"), 1.0, history=None)
        assert not decision.granted

    @given(
        st.lists(
            st.tuples(st.sampled_from(["exec"]), st.just("rsw"), st.sampled_from(["s1", "s2"])),
            max_size=10,
        ),
        strat.constraints(max_leaves=5, expressible_only=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_equivalence_property(self, stream, constraint):
        """For random constraints and access streams, incremental and
        explicit decisions agree at every step."""
        def engine_with(c):
            policy = Policy()
            policy.add_user("u")
            policy.add_role("r")
            policy.add_permission(Permission("p", spatial_constraint=c))
            policy.assign_user("u", "r")
            policy.assign_permission("r", "p")
            engine = AccessControlEngine(policy)
            session = engine.authenticate("u", 0.0)
            engine.activate_role(session, "r", 0.0)
            return engine, session

        engine_a, session_a = engine_with(constraint)
        engine_b, session_b = engine_with(constraint)
        history: tuple[AccessKey, ...] = ()
        for i, triple in enumerate(stream):
            access = AccessKey(*triple)
            explicit = engine_a.decide(session_a, access, float(i), history=history)
            incremental = engine_b.decide(session_b, access, float(i), history=None)
            assert explicit.granted == incremental.granted
            if explicit.granted:
                history += (access,)
                engine_b.observe(session_b, access)


class TestIncrementalSecurityManager:
    def make_sim(self, incremental):
        policy = Policy()
        policy.add_user("u")
        policy.add_role("r")
        policy.add_permission(
            Permission(
                "p",
                op="exec",
                resource="rsw",
                spatial_constraint=parse_constraint("count(0, 2, [res = rsw])"),
            )
        )
        policy.assign_user("u", "r")
        policy.assign_permission("r", "p")
        engine = AccessControlEngine(policy)
        coalition = Coalition(
            [
                CoalitionServer("s1", resources=[Resource("rsw")]),
                CoalitionServer("s2", resources=[Resource("rsw")]),
            ]
        )
        manager = NapletSecurityManager(engine, incremental=incremental)
        return Simulation(coalition, security=manager), engine

    @pytest.mark.parametrize("incremental", [False, True])
    def test_simulation_behaviour_identical(self, incremental):
        sim, engine = self.make_sim(incremental)
        naplet = Naplet(
            "u",
            parse_program("exec rsw @ s1 ; exec rsw @ s1 ; exec rsw @ s2"),
            roles=("r",),
        )
        sim.add_naplet(naplet, "s1")
        sim.run()
        assert naplet.status is NapletStatus.DENIED
        assert len(naplet.history()) == 2
        assert engine.audit.denials()[0].access.server == "s2"

    def test_incremental_is_faster_on_long_histories(self):
        """Sanity check of the optimisation's point: cost per decision
        does not grow with history in incremental mode."""
        import time

        engine, session = make_engine("count(0, 100000, [res = rsw])")
        access = AccessKey("exec", "rsw", "s1")
        # Build a long observed history.
        long_history = (access,) * 20_000
        for a in long_history:
            pass  # explicit mode will replay this; incremental will not
        session.observed = long_history
        engine._cached_monitors(session, engine.policy.permission("p").spatial_constraint)

        start = time.perf_counter()
        for _ in range(20):
            engine.decide(session, access, 1.0, history=None)
        incremental_time = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(20):
            engine.decide(session, access, 1.0, history=long_history)
        explicit_time = time.perf_counter() - start
        assert incremental_time < explicit_time / 5
