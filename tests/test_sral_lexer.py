"""Unit tests for the SRAL/SRAC lexer."""

import pytest

from repro.errors import SralSyntaxError
from repro.sral.lexer import Token, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)][:-1]  # drop EOF


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "EOF"

    def test_identifier(self):
        assert values("hello") == ["hello"]
        assert kinds("hello") == ["IDENT", "EOF"]

    def test_identifier_with_dots_and_underscores(self):
        assert values("song.wayne.edu my_res") == ["song.wayne.edu", "my_res"]

    def test_identifier_does_not_end_with_dot(self):
        # trailing dot is pushed back as punctuation-like; there is no '.'
        # punct, so this must fail loudly rather than mis-lex
        with pytest.raises(SralSyntaxError):
            tokenize("abc.")

    def test_keywords_are_distinguished(self):
        toks = tokenize("if then else while do signal wait skip true false and or not")
        assert all(t.kind == "KEYWORD" for t in toks[:-1])

    def test_integer(self):
        toks = tokenize("042 7")
        assert (toks[0].kind, toks[0].value) == ("INT", "042")
        assert (toks[1].kind, toks[1].value) == ("INT", "7")

    def test_string_literal(self):
        toks = tokenize('"yellow page"')
        assert toks[0].kind == "STRING"
        assert toks[0].value == "yellow page"

    def test_string_escapes(self):
        toks = tokenize(r'"a\"b\\c"')
        assert toks[0].value == 'a"b\\c'

    def test_unknown_escape_rejected(self):
        with pytest.raises(SralSyntaxError):
            tokenize(r'"a\nb"')

    def test_unterminated_string_rejected(self):
        with pytest.raises(SralSyntaxError):
            tokenize('"oops')

    def test_unterminated_string_at_newline_rejected(self):
        with pytest.raises(SralSyntaxError):
            tokenize('"oops\n"')


class TestPunctuation:
    def test_access_syntax(self):
        assert values("read r1 @ s1") == ["read", "r1", "@", "s1"]

    def test_multichar_operators_maximal_munch(self):
        assert values("|| := -> <-> >> <= >= == !=") == [
            "||",
            ":=",
            "->",
            "<->",
            ">>",
            "<=",
            ">=",
            "==",
            "!=",
        ]

    def test_single_less_than_vs_arrow(self):
        assert values("a < b") == ["a", "<", "b"]
        assert values("a <- b") == ["a", "<", "-", "b"]

    def test_channel_operators(self):
        assert values("ch ? x ; ch ! 3") == ["ch", "?", "x", ";", "ch", "!", "3"]

    def test_srac_operators(self):
        assert values("~ a & b | c") == ["~", "a", "&", "b", "|", "c"]

    def test_unexpected_character(self):
        with pytest.raises(SralSyntaxError) as err:
            tokenize("a $ b")
        assert "$" in str(err.value)


class TestComments:
    def test_line_comment_skipped(self):
        assert values("a // comment here\nb") == ["a", "b"]

    def test_comment_at_end_of_input(self):
        assert values("a // trailing") == ["a"]

    def test_division_is_not_comment(self):
        assert values("a / b") == ["a", "/", "b"]


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("ab\n  cd")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(SralSyntaxError) as err:
            tokenize("x\n  $")
        assert err.value.line == 2
        assert err.value.column == 3

    def test_token_helpers(self):
        t = Token("PUNCT", ";", 1, 1)
        assert t.is_punct(";")
        assert not t.is_punct(",")
        assert not t.is_keyword(";")
        k = Token("KEYWORD", "if", 1, 1)
        assert k.is_keyword("if")
        assert not k.is_punct("if")
