"""Unit tests for the SRAL parser."""

import pytest

from repro.errors import SralSyntaxError
from repro.sral.ast import (
    Access,
    Assign,
    BinOp,
    BoolLit,
    If,
    IntLit,
    Par,
    Receive,
    Send,
    Seq,
    Signal,
    Skip,
    StrLit,
    UnaryOp,
    Var,
    Wait,
    While,
)
from repro.sral.parser import parse_expr, parse_program


class TestPrimitives:
    def test_access(self):
        assert parse_program("read r1 @ s1") == Access("read", "r1", "s1")

    def test_receive(self):
        assert parse_program("ch ? x") == Receive("ch", "x")

    def test_send(self):
        assert parse_program("ch ! 5") == Send("ch", IntLit(5))

    def test_send_expression_payload(self):
        assert parse_program("ch ! x + 1") == Send(
            "ch", BinOp("+", Var("x"), IntLit(1))
        )

    def test_signal_and_wait(self):
        assert parse_program("signal(done)") == Signal("done")
        assert parse_program("wait(ready)") == Wait("ready")

    def test_skip(self):
        assert parse_program("skip") == Skip()

    def test_assign(self):
        assert parse_program("x := 3 * y") == Assign(
            "x", BinOp("*", IntLit(3), Var("y"))
        )


class TestComposition:
    def test_seq_left_associates(self):
        p = parse_program("read r1 @ s1 ; read r2 @ s1 ; read r3 @ s2")
        assert p == Seq(
            Seq(Access("read", "r1", "s1"), Access("read", "r2", "s1")),
            Access("read", "r3", "s2"),
        )

    def test_par_binds_looser_than_seq(self):
        p = parse_program("read r1 @ s1 ; read r2 @ s1 || read r3 @ s2")
        assert isinstance(p, Par)
        assert isinstance(p.left, Seq)
        assert p.right == Access("read", "r3", "s2")

    def test_parenthesized_par_inside_seq(self):
        p = parse_program("(read r1 @ s1 || read r2 @ s2) ; read r3 @ s3")
        assert isinstance(p, Seq)
        assert isinstance(p.first, Par)

    def test_braces_group(self):
        p = parse_program("{ read r1 @ s1 ; read r2 @ s2 }")
        assert isinstance(p, Seq)

    def test_if_then_else(self):
        p = parse_program("if x > 0 then write r2 @ s2 else write r3 @ s3")
        assert p == If(
            BinOp(">", Var("x"), IntLit(0)),
            Access("write", "r2", "s2"),
            Access("write", "r3", "s3"),
        )

    def test_dangling_else_binds_inner(self):
        p = parse_program(
            "if x > 0 then if y > 0 then read r1 @ s1 else read r2 @ s2 else read r3 @ s3"
        )
        assert isinstance(p, If)
        assert isinstance(p.then, If)
        assert p.orelse == Access("read", "r3", "s3")

    def test_while(self):
        p = parse_program("while n < 3 do { exec tool @ s1 ; n := n + 1 }")
        assert isinstance(p, While)
        assert p.cond == BinOp("<", Var("n"), IntLit(3))
        assert isinstance(p.body, Seq)

    def test_while_single_statement_body(self):
        p = parse_program("while true do read r1 @ s1 ; read r2 @ s2")
        # ';' continues the outer sequence: body is the single access
        assert isinstance(p, Seq)
        assert isinstance(p.first, While)
        assert p.first.body == Access("read", "r1", "s1")

    def test_paper_style_program(self):
        source = """
        // auditor roams s1..s2 verifying modules
        read manifest @ s1 ;
        if x > 0 then write r2 @ s2 else write r3 @ s2 ;
        while n < 2 do {
            exec hashtool @ s1 ;
            n := n + 1
        } ;
        signal(done)
        """
        p = parse_program(source)
        assert isinstance(p, Seq)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        assert parse_expr("1 + 2 * 3") == BinOp(
            "+", IntLit(1), BinOp("*", IntLit(2), IntLit(3))
        )

    def test_precedence_add_over_cmp(self):
        assert parse_expr("x + 1 < y") == BinOp(
            "<", BinOp("+", Var("x"), IntLit(1)), Var("y")
        )

    def test_precedence_cmp_over_and_over_or(self):
        e = parse_expr("a < b and c or d")
        assert e == BinOp(
            "or", BinOp("and", BinOp("<", Var("a"), Var("b")), Var("c")), Var("d")
        )

    def test_not_binds_tighter_than_and(self):
        assert parse_expr("not a and b") == BinOp(
            "and", UnaryOp("not", Var("a")), Var("b")
        )

    def test_unary_minus(self):
        assert parse_expr("-x * 2") == BinOp("*", UnaryOp("-", Var("x")), IntLit(2))

    def test_parentheses_override(self):
        assert parse_expr("(1 + 2) * 3") == BinOp(
            "*", BinOp("+", IntLit(1), IntLit(2)), IntLit(3)
        )

    def test_literals(self):
        assert parse_expr("true") == BoolLit(True)
        assert parse_expr("false") == BoolLit(False)
        assert parse_expr('"hi"') == StrLit("hi")

    def test_left_associativity_of_add(self):
        assert parse_expr("1 - 2 - 3") == BinOp(
            "-", BinOp("-", IntLit(1), IntLit(2)), IntLit(3)
        )

    def test_comparison_non_associative(self):
        with pytest.raises(SralSyntaxError):
            parse_expr("a < b < c")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "read r1",  # missing @ server
            "read r1 @",  # missing server
            "read @ s1",  # missing resource
            "if x then read r1 @ s1",  # missing else
            "while do read r1 @ s1",  # missing condition
            "read r1 @ s1 ;",  # trailing separator
            "( read r1 @ s1",  # unbalanced paren
            "{ read r1 @ s1",  # unbalanced brace
            "ch ?",  # missing variable
            "ch ? 3",  # non-identifier variable
            "signal()",  # empty signal
            "x :=",  # missing rhs
            "|| read r1 @ s1",  # leading operator
            "read r1 @ s1 extra tokens @ s2 trailing",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(SralSyntaxError):
            parse_program(bad)

    def test_error_has_location(self):
        with pytest.raises(SralSyntaxError) as err:
            parse_program("read r1 @\n@")
        assert err.value.line == 2

    def test_keyword_cannot_be_resource(self):
        with pytest.raises(SralSyntaxError):
            parse_program("read while @ s1")
