"""Tests for BooleanTimeline and TimelineRecorder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TemporalError
from repro.temporal.timeline import BooleanTimeline, TimelineRecorder


def timelines():
    @st.composite
    def build(draw):
        times = draw(
            st.lists(
                st.floats(-50, 50, allow_nan=False, allow_infinity=False),
                max_size=8,
                unique=True,
            )
        )
        initial = draw(st.booleans())
        return BooleanTimeline(np.asarray(sorted(times)), initial)

    return build()


def brute_force_integral(tl: BooleanTimeline, b: float, e: float, steps=20000):
    """Midpoint Riemann sum reference for the duration integral."""
    ts = np.linspace(b, e, steps, endpoint=False) + (e - b) / (2 * steps)
    return sum(tl.value_at(t) for t in ts) * (e - b) / steps


class TestConstruction:
    def test_constant(self):
        one = BooleanTimeline.constant(True)
        assert one.value_at(-100) and one.value_at(100)
        zero = BooleanTimeline.constant(False)
        assert not zero.value_at(0)

    def test_from_switch_times(self):
        tl = BooleanTimeline.from_switch_times([1.0, 3.0], initial=False)
        assert not tl.value_at(0.5)
        assert tl.value_at(1.0)  # right-open segments: flips at t
        assert tl.value_at(2.9)
        assert not tl.value_at(3.0)

    def test_from_intervals(self):
        tl = BooleanTimeline.from_intervals([(1, 2), (4, 6)])
        assert not tl.value_at(0)
        assert tl.value_at(1.5)
        assert not tl.value_at(3)
        assert tl.value_at(5)
        assert not tl.value_at(6)

    def test_from_intervals_merges_adjacent(self):
        tl = BooleanTimeline.from_intervals([(1, 2), (2, 3)])
        assert tl == BooleanTimeline.from_intervals([(1, 3)])

    def test_from_intervals_skips_empty(self):
        tl = BooleanTimeline.from_intervals([(1, 1), (2, 3)])
        assert tl == BooleanTimeline.from_intervals([(2, 3)])

    def test_validation(self):
        with pytest.raises(TemporalError):
            BooleanTimeline([2.0, 1.0], False)  # not increasing
        with pytest.raises(TemporalError):
            BooleanTimeline([1.0, 1.0], False)  # not strict
        with pytest.raises(TemporalError):
            BooleanTimeline([np.inf], False)
        with pytest.raises(TemporalError):
            BooleanTimeline.from_intervals([(3, 2)])
        with pytest.raises(TemporalError):
            BooleanTimeline.from_intervals([(1, 3), (2, 4)])  # overlap


class TestIntegration:
    def test_simple_interval(self):
        tl = BooleanTimeline.from_intervals([(1, 4)])
        assert tl.integrate(0, 5) == pytest.approx(3.0)
        assert tl.integrate(2, 3) == pytest.approx(1.0)
        assert tl.integrate(0, 1) == pytest.approx(0.0)
        assert tl.integrate(4, 10) == pytest.approx(0.0)

    def test_partial_overlap(self):
        tl = BooleanTimeline.from_intervals([(1, 4)])
        assert tl.integrate(2, 6) == pytest.approx(2.0)
        assert tl.integrate(0, 2) == pytest.approx(1.0)

    def test_degenerate_interval(self):
        tl = BooleanTimeline.from_intervals([(1, 4)])
        assert tl.integrate(2, 2) == 0.0

    def test_bad_interval(self):
        with pytest.raises(TemporalError):
            BooleanTimeline.constant(True).integrate(3, 1)

    @given(timelines(), st.floats(-60, 60), st.floats(0, 30))
    @settings(max_examples=60, deadline=None)
    def test_matches_riemann_reference(self, tl, b, width):
        e = b + width
        if width == 0:
            assert tl.integrate(b, e) == 0.0
            return
        assert tl.integrate(b, e) == pytest.approx(
            brute_force_integral(tl, b, e), abs=0.05 * max(1.0, width)
        )

    @given(timelines(), st.floats(-60, 60), st.floats(0, 15), st.floats(0, 15))
    @settings(max_examples=80, deadline=None)
    def test_additive_over_adjacent_intervals(self, tl, b, w1, w2):
        m, e = b + w1, b + w1 + w2
        assert tl.integrate(b, e) == pytest.approx(
            tl.integrate(b, m) + tl.integrate(m, e)
        )

    @given(timelines(), st.floats(-60, 60), st.floats(0, 30))
    @settings(max_examples=80, deadline=None)
    def test_complement_integral(self, tl, b, width):
        e = b + width
        assert tl.integrate(b, e) + (~tl).integrate(b, e) == pytest.approx(width)


class TestFirstTimeAccumulated:
    def test_within_first_segment(self):
        tl = BooleanTimeline.from_intervals([(1, 10)])
        assert tl.first_time_accumulated(0, 3) == pytest.approx(4.0)

    def test_across_gaps(self):
        tl = BooleanTimeline.from_intervals([(0, 2), (5, 8)])
        # 2s on, gap, then 1 more second at t=6.
        assert tl.first_time_accumulated(0, 3) == pytest.approx(6.0)

    def test_starting_mid_segment(self):
        tl = BooleanTimeline.from_intervals([(0, 10)])
        assert tl.first_time_accumulated(4, 2) == pytest.approx(6.0)

    def test_never_reaches(self):
        tl = BooleanTimeline.from_intervals([(0, 2)])
        assert tl.first_time_accumulated(0, 5) is None

    def test_always_on_reaches(self):
        tl = BooleanTimeline.constant(True)
        assert tl.first_time_accumulated(7, 3) == pytest.approx(10.0)

    def test_budget_must_be_positive(self):
        with pytest.raises(TemporalError):
            BooleanTimeline.constant(True).first_time_accumulated(0, 0)

    @given(timelines(), st.floats(-40, 40), st.floats(0.1, 20))
    @settings(max_examples=80, deadline=None)
    def test_consistent_with_integral(self, tl, b, budget):
        hit = tl.first_time_accumulated(b, budget)
        if hit is not None:
            assert tl.integrate(b, hit) == pytest.approx(budget, abs=1e-9)
            assert tl.integrate(b, max(b, hit - 0.01)) < budget


class TestAlgebra:
    def test_and_or_invert(self):
        t1 = BooleanTimeline.from_intervals([(0, 4)])
        t2 = BooleanTimeline.from_intervals([(2, 6)])
        both = t1 & t2
        either = t1 | t2
        assert both.intervals_on(-1, 10) == [(2.0, 4.0)]
        assert either.intervals_on(-1, 10) == [(0.0, 6.0)]
        assert (~t1).value_at(-1) and not (~t1).value_at(1)

    @given(timelines(), timelines(), st.floats(-60, 60))
    @settings(max_examples=100, deadline=None)
    def test_pointwise_semantics(self, t1, t2, t):
        assert (t1 & t2).value_at(t) == (t1.value_at(t) and t2.value_at(t))
        assert (t1 | t2).value_at(t) == (t1.value_at(t) or t2.value_at(t))
        assert (~t1).value_at(t) == (not t1.value_at(t))

    def test_intervals_on(self):
        tl = BooleanTimeline.from_intervals([(1, 2), (3, 5)])
        assert tl.intervals_on(0, 10) == [(1.0, 2.0), (3.0, 5.0)]
        assert tl.intervals_on(1.5, 4) == [(1.5, 2.0), (3.0, 4.0)]
        assert tl.intervals_on(2, 3) == []


class TestRecorder:
    def test_records_switches(self):
        rec = TimelineRecorder(initial=False)
        rec.set(1.0, True)
        rec.set(4.0, False)
        tl = rec.freeze()
        assert tl == BooleanTimeline.from_intervals([(1, 4)])

    def test_idempotent_sets_ignored(self):
        rec = TimelineRecorder(initial=False)
        rec.set(1.0, True)
        rec.set(2.0, True)
        rec.set(3.0, False)
        assert rec.freeze() == BooleanTimeline.from_intervals([(1, 3)])

    def test_same_instant_flip_cancels(self):
        rec = TimelineRecorder(initial=False)
        rec.set(1.0, True)
        rec.set(1.0, False)
        tl = rec.freeze()
        assert tl == BooleanTimeline.constant(False)

    def test_out_of_order_rejected(self):
        rec = TimelineRecorder()
        rec.set(5.0, True)
        with pytest.raises(TemporalError):
            rec.set(4.0, False)

    def test_current_tracks_state(self):
        rec = TimelineRecorder(initial=True)
        assert rec.current
        rec.set(0.0, False)
        assert not rec.current
