"""Tests for TraceModel boolean operations and the proof wire format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coalition.proofs import ExecutionProof, ProofRegistry
from repro.errors import CoalitionError
from repro.traces.model import TraceModel
from repro.traces.trace import AccessKey

A = AccessKey("read", "r1", "s1")
B = AccessKey("write", "r2", "s1")
ALPHABET = (A, B)


def models():
    traces = st.lists(
        st.lists(st.sampled_from([A, B]), max_size=3).map(tuple),
        max_size=3,
    )
    return traces.map(TraceModel.of_traces)


def words():
    return st.lists(st.sampled_from([A, B]), max_size=5).map(tuple)


class TestBooleanOperations:
    def test_intersect(self):
        x = TraceModel.of_traces([(A,), (A, B)])
        y = TraceModel.of_traces([(A, B), (B,)])
        assert x.intersect(y).all_traces() == {(A, B)}

    def test_minus(self):
        x = TraceModel.of_traces([(A,), (A, B)])
        y = TraceModel.of_traces([(A, B)])
        assert x.minus(y).all_traces() == {(A,)}

    def test_complement(self):
        x = TraceModel.of_traces([(A,)])
        comp = x.complement(ALPHABET)
        assert (A,) not in comp
        assert () in comp
        assert (B,) in comp
        assert (A, A) in comp
        assert not comp.is_finite()

    @given(models(), models(), words())
    @settings(max_examples=150, deadline=None)
    def test_intersect_semantics(self, x, y, w):
        assert (w in x.intersect(y)) == (w in x and w in y)

    @given(models(), models(), words())
    @settings(max_examples=150, deadline=None)
    def test_minus_semantics(self, x, y, w):
        assert (w in x.minus(y)) == (w in x and w not in y)

    @given(models(), words())
    @settings(max_examples=150, deadline=None)
    def test_complement_semantics(self, x, w):
        assert (w in x.complement(ALPHABET)) == (w not in x)

    @given(models(), models())
    @settings(max_examples=80, deadline=None)
    def test_de_morgan(self, x, y):
        lhs = x.union(y).complement(ALPHABET)
        rhs = x.complement(ALPHABET).intersect(y.complement(ALPHABET))
        assert lhs.equals(rhs)

    @given(models())
    @settings(max_examples=60, deadline=None)
    def test_double_complement(self, x):
        assert x.complement(ALPHABET).complement(ALPHABET).equals(x)


class TestProofWireFormat:
    def make_registry(self):
        registry = ProofRegistry("naplet-42")
        registry.record(A, 1.5)
        registry.record(B, 2.5)
        registry.record(A, 3.5)
        return registry

    def test_round_trip(self):
        original = self.make_registry()
        restored = ProofRegistry.from_json(original.to_json())
        assert restored.object_id == original.object_id
        assert restored.trace() == original.trace()
        assert restored.verify_chain()
        assert restored.proofs() == original.proofs()

    def test_proof_dict_round_trip(self):
        proof = self.make_registry().proofs()[1]
        assert ExecutionProof.from_dict(proof.to_dict()) == proof

    def test_tampered_json_rejected(self):
        import json

        data = json.loads(self.make_registry().to_json())
        data["proofs"][1]["access"] = ["exec", "evil", "s9"]
        with pytest.raises(CoalitionError):
            ProofRegistry.from_json(json.dumps(data))

    def test_reordered_json_rejected(self):
        import json

        data = json.loads(self.make_registry().to_json())
        data["proofs"].reverse()
        with pytest.raises(CoalitionError):
            ProofRegistry.from_json(json.dumps(data))

    def test_truncated_prefix_rejected(self):
        import json

        data = json.loads(self.make_registry().to_json())
        data["proofs"] = data["proofs"][1:]
        with pytest.raises(CoalitionError):
            ProofRegistry.from_json(json.dumps(data))

    def test_malformed_json_rejected(self):
        with pytest.raises(CoalitionError):
            ProofRegistry.from_json("not json at all {")
        with pytest.raises(CoalitionError):
            ProofRegistry.from_json('{"missing": "keys"}')
        with pytest.raises(CoalitionError):
            ExecutionProof.from_dict({"object_id": "x"})

    def test_empty_chain_round_trips(self):
        empty = ProofRegistry("fresh")
        restored = ProofRegistry.from_json(empty.to_json())
        assert len(restored) == 0
        assert restored.verify_chain()

    @given(st.lists(st.sampled_from([A, B]), max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, accesses):
        registry = ProofRegistry("n")
        for index, access in enumerate(accesses):
            registry.record(access, float(index))
        restored = ProofRegistry.from_json(registry.to_json())
        assert restored.trace() == tuple(accesses)
        assert restored.verify_chain()
