"""Tests for itineraries, access patterns, principals and the security
manager glue."""

import pytest

from repro.agent.itinerary import (
    AltItinerary,
    LoopItinerary,
    SeqItinerary,
    plan_of_program,
)
from repro.agent.naplet import Naplet
from repro.agent.patterns import (
    LoopPattern,
    ParPattern,
    SeqPattern,
    SingletonPattern,
)
from repro.agent.principal import (
    NAPLET_PRINCIPAL,
    Authority,
    Certificate,
)
from repro.agent.security import NapletSecurityManager
from repro.errors import AgentError, AuthenticationError
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.sral.ast import Access, BoolLit, If, Par, Seq, While
from repro.sral.builder import var
from repro.sral.parser import parse_program
from repro.traces.model import program_traces


class TestItineraries:
    def test_seq(self):
        itinerary = SeqItinerary(("s1", "s2", "s3"))
        assert list(itinerary) == ["s1", "s2", "s3"]
        assert itinerary.servers() == {"s1", "s2", "s3"}

    def test_seq_validation(self):
        with pytest.raises(AgentError):
            SeqItinerary(("s1", ""))

    def test_loop(self):
        loop = LoopItinerary(SeqItinerary(("a", "b")), times=3)
        assert list(loop) == ["a", "b"] * 3
        assert loop.servers() == {"a", "b"}
        with pytest.raises(AgentError):
            LoopItinerary(SeqItinerary(("a",)), times=-1)

    def test_alt(self):
        alt = AltItinerary(SeqItinerary(("a",)), SeqItinerary(("b", "c")))
        assert list(alt) == ["a"]
        assert alt.servers() == {"a", "b", "c"}

    def test_plan_of_program(self):
        program = parse_program(
            "read r1 @ s1 ; read r2 @ s1 ; write r3 @ s2 ; exec r4 @ s1"
        )
        assert list(plan_of_program(program)) == ["s1", "s2", "s1"]

    def test_plan_skips_non_access(self):
        program = parse_program("ch ? x ; signal(e)")
        assert list(plan_of_program(program)) == []


class TestPatterns:
    def test_singleton_unguarded(self):
        p = SingletonPattern("read", "db", "s1")
        assert p.to_program() == Access("read", "db", "s1")

    def test_singleton_guarded(self):
        p = SingletonPattern("read", "db", "s1", guard=var("ok").node)
        program = p.to_program()
        assert isinstance(program, If)

    def test_seq_pattern(self):
        p = SeqPattern(
            SingletonPattern("read", "a", "s1"),
            SingletonPattern("read", "b", "s1"),
        )
        assert isinstance(p.to_program(), Seq)

    def test_seq_pattern_accepts_iterable(self):
        parts = [SingletonPattern("read", r, "s1") for r in ("a", "b", "c")]
        assert isinstance(SeqPattern(parts).to_program(), Seq)

    def test_empty_pattern_rejected(self):
        with pytest.raises(AgentError):
            SeqPattern()
        with pytest.raises(AgentError):
            ParPattern()

    def test_par_pattern(self):
        p = ParPattern(
            SingletonPattern("read", "a", "s1"),
            SingletonPattern("read", "b", "s2"),
        )
        assert isinstance(p.to_program(), Par)

    def test_loop_pattern(self):
        p = LoopPattern(BoolLit(True), SingletonPattern("read", "a", "s1"))
        assert isinstance(p.to_program(), While)

    def test_paper_appl_agent_prog(self):
        """The ApplAgentProg example: k cloned naplets, each a sequence
        over its share of the servers, composed in parallel."""
        servers = [f"s{i}" for i in range(1, 7)]
        k = 3
        share = len(servers) // k
        clones = [
            SeqPattern(
                [
                    SingletonPattern("exec", "verify", servers[i * share + j])
                    for j in range(share)
                ]
            )
            for i in range(k)
        ]
        program = ParPattern(clones).to_program()
        model = program_traces(program)
        # One valid trace: everything in declared order.
        from repro.traces.trace import AccessKey

        ordered = tuple(AccessKey("exec", "verify", s) for s in servers)
        assert ordered in model

    def test_pattern_program_feeds_checker(self):
        from repro.srac.checker import check_program
        from repro.srac.parser import parse_constraint

        pattern = SeqPattern(
            SingletonPattern("exec", "m1", "s1"),
            SingletonPattern("exec", "m2", "s2"),
        )
        constraint = parse_constraint("exec m1 @ s1 >> exec m2 @ s2")
        assert check_program(pattern.to_program(), constraint)


class TestAuthority:
    def test_register_and_authenticate(self):
        authority = Authority()
        certificate = authority.register("alice")
        principals = authority.authenticate(certificate)
        assert NAPLET_PRINCIPAL in principals
        assert any("alice" in p for p in principals)

    def test_unregistered_owner_rejected(self):
        authority = Authority()
        with pytest.raises(AuthenticationError):
            authority.authenticate(Certificate("mallory", "f" * 64))

    def test_bad_mac_rejected(self):
        authority = Authority()
        authority.register("alice")
        with pytest.raises(AuthenticationError):
            authority.authenticate(Certificate("alice", "f" * 64))

    def test_different_authorities_do_not_trust(self):
        a1, a2 = Authority(secret=b"one"), Authority(secret=b"two")
        cert = a1.register("alice")
        a2.register("alice")
        with pytest.raises(AuthenticationError):
            a2.authenticate(cert)

    def test_empty_owner_rejected(self):
        with pytest.raises(AuthenticationError):
            Authority().register("")


class TestAdmissionCheck:
    def make_manager(self, admission_check):
        policy = Policy()
        policy.add_user("alice")
        policy.add_role("auditor")
        policy.add_permission(
            Permission(
                "p_rsw",
                op="exec",
                resource="rsw",
                spatial_constraint=__import__("repro.srac.parser", fromlist=["parse_constraint"]).parse_constraint(
                    "count(0, 2, [res = rsw])"
                ),
            )
        )
        policy.assign_user("alice", "auditor")
        policy.assign_permission("auditor", "p_rsw")
        engine = AccessControlEngine(policy)
        return NapletSecurityManager(engine, admission_check=admission_check)

    def test_over_budget_program_rejected_at_admission(self):
        manager = self.make_manager(admission_check=True)
        naplet = Naplet(
            "alice",
            parse_program("exec rsw @ s1 ; exec rsw @ s1 ; exec rsw @ s2"),
            roles=("auditor",),
        )
        with pytest.raises(AuthenticationError):
            manager.on_first_arrival(naplet, "s1", 0.0)

    def test_compliant_program_admitted(self):
        manager = self.make_manager(admission_check=True)
        naplet = Naplet(
            "alice",
            parse_program("exec rsw @ s1 ; exec rsw @ s2"),
            roles=("auditor",),
        )
        manager.on_first_arrival(naplet, "s1", 0.0)
        assert manager.session_of(naplet) is not None

    def test_no_admission_check_admits_anything(self):
        manager = self.make_manager(admission_check=False)
        naplet = Naplet(
            "alice",
            parse_program("exec rsw @ s1 ; exec rsw @ s1 ; exec rsw @ s2"),
            roles=("auditor",),
        )
        manager.on_first_arrival(naplet, "s1", 0.0)

    def test_session_of_unknown_agent(self):
        manager = self.make_manager(admission_check=False)
        with pytest.raises(AuthenticationError):
            manager.session_of(Naplet("alice", parse_program("skip")))


class TestTypecheckedAdmission:
    def make_manager(self, typecheck):
        policy = Policy()
        policy.add_user("alice")
        policy.add_role("r")
        policy.add_permission(Permission("p"))
        policy.assign_user("alice", "r")
        policy.assign_permission("r", "p")
        return NapletSecurityManager(AccessControlEngine(policy), typecheck=typecheck)

    def test_ill_typed_program_rejected(self):
        manager = self.make_manager(typecheck=True)
        naplet = Naplet("alice", parse_program("x := 1 + true"), roles=("r",))
        with pytest.raises(AuthenticationError) as err:
            manager.on_first_arrival(naplet, "s1", 0.0)
        assert "type" in str(err.value)

    def test_well_typed_program_admitted(self):
        manager = self.make_manager(typecheck=True)
        naplet = Naplet(
            "alice",
            parse_program("n := 0 ; while n < 2 do n := n + 1"),
            roles=("r",),
        )
        manager.on_first_arrival(naplet, "s1", 0.0)

    def test_dispatch_env_seeds_types(self):
        manager = self.make_manager(typecheck=True)
        good = Naplet(
            "alice", parse_program("y := x + 1"), env={"x": 5}, roles=("r",)
        )
        manager.on_first_arrival(good, "s1", 0.0)
        bad = Naplet(
            "alice", parse_program("y := x + 1"), env={"x": True}, roles=("r",),
            name="bad-typed",
        )
        with pytest.raises(AuthenticationError):
            manager.on_first_arrival(bad, "s1", 0.0)

    def test_typecheck_off_admits_anything(self):
        manager = self.make_manager(typecheck=False)
        naplet = Naplet("alice", parse_program("x := 1 + true"), roles=("r",))
        manager.on_first_arrival(naplet, "s1", 0.0)
