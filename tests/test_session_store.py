"""Differential properties of the columnar session store.

The contract of :mod:`repro.rbac.session_store` is *bit-identity*: an
engine whose sessions live in struct-of-arrays columns must be
indistinguishable from the classic object-backed engine — same
decisions (full provenance), same audit order, same observation
histories, same validity-tracker states and recorded timelines —
across random policies, interleaved multi-session walks, session
churn and server rescission.  Every test here runs the same workload
through a store-backed and an object-backed engine and compares.

The store's own mechanics (row recycling, generation guards, handle
identity, memory accounting) are unit-tested at the bottom.
"""

from __future__ import annotations

import dataclasses
import gc
import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import tests.strategies as strategies
from repro.errors import RbacError, TemporalError
from repro.rbac.audit import Decision
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.service import DecisionService, ShardedEngine
from repro.srac.parser import parse_constraint
from repro.traces.trace import AccessKey

COUNT_SRC = "count(0, 3, [res = r1])"


def _norm(decision: Decision) -> Decision:
    """Subject ids are globally unique across engines; mask them."""
    return dataclasses.replace(decision, subject_id="")


def _policy(constraints, durations):
    policy = Policy()
    policy.add_user("u")
    policy.add_role("r")
    for i, (constraint, duration) in enumerate(zip(constraints, durations)):
        kwargs = {} if duration is None else {"validity_duration": duration}
        policy.add_permission(
            Permission(
                f"p{i}",
                op="exec",
                resource="r1",
                spatial_constraint=constraint,
                **kwargs,
            )
        )
        policy.assign_permission("r", f"p{i}")
    policy.assign_user("u", "r")
    return policy


def _build_pair(constraints, durations, sessions=1, **engine_kwargs):
    """One policy, two engines: columnar store on vs off, ``sessions``
    activated sessions each."""
    policy = _policy(constraints, durations)
    out = []
    for use_store in (True, False):
        engine = AccessControlEngine(
            policy, use_session_store=use_store, **engine_kwargs
        )
        opened = []
        for _ in range(sessions):
            session = engine.authenticate("u", 0.0)
            engine.activate_role(session, "r", 0.0)
            opened.append(session)
        out.append((engine, opened))
    return out


def _assert_equivalent(store_side, plain_side):
    """Audit, histories, role sets and tracker states must agree."""
    (store_engine, store_sessions) = store_side
    (plain_engine, plain_sessions) = plain_side
    assert [_norm(d) for d in store_engine.audit] == [
        _norm(d) for d in plain_engine.audit
    ]
    assert store_engine.audit.granted_count == plain_engine.audit.granted_count
    for ss, ps in zip(store_sessions, plain_sessions):
        assert tuple(ss.observed) == tuple(ps.observed)
        assert ss.role_set() == ps.role_set()
        assert ss.last_seen == ps.last_seen
        assert set(ss.trackers) == set(ps.trackers)
        for key, plain_tracker in ps.trackers.items():
            store_tracker = ss.trackers[key]
            assert store_tracker.now == plain_tracker.now
            assert store_tracker.state(plain_tracker.now) == (
                plain_tracker.state(plain_tracker.now)
            )
            assert store_tracker.remaining_budget(plain_tracker.now) == (
                plain_tracker.remaining_budget(plain_tracker.now)
            )
            assert (
                store_tracker.valid_timeline() == plain_tracker.valid_timeline()
            )
            assert (
                store_tracker.active_timeline()
                == plain_tracker.active_timeline()
            )


class TestDifferentialProperty:
    """Random policies x random workloads: columnar == object, bitwise."""

    @given(
        constraint=strategies.constraints(max_leaves=4),
        duration=st.one_of(st.none(), st.integers(1, 8).map(float)),
        batch=st.lists(strategies.access_keys(), min_size=1, max_size=16),
        dt=st.sampled_from([0.0, 1.0]),
    )
    @settings(max_examples=80, deadline=None, derandomize=True)
    def test_single_session_bit_identity(self, constraint, duration, batch, dt):
        store, plain = _build_pair([constraint], [duration])
        got = store[0].decide_batch(store[1][0], batch, t=1.0, dt=dt)
        want = plain[0].decide_batch(plain[1][0], batch, t=1.0, dt=dt)
        assert [_norm(d) for d in got] == [_norm(d) for d in want]
        _assert_equivalent(store, plain)

    @given(
        constraint=strategies.constraints(max_leaves=3),
        duration=st.one_of(st.none(), st.integers(1, 6).map(float)),
        walk=st.lists(
            st.tuples(st.integers(0, 3), strategies.access_keys()),
            min_size=1,
            max_size=24,
        ),
        observe_every=st.sampled_from([0, 2]),
    )
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_interleaved_walk_bit_identity(
        self, constraint, duration, walk, observe_every
    ):
        """An interleaved multi-session stream — scalar decides plus
        granted-observation feedback plus a vectorized sweep — must
        leave both engines in identical states."""
        store, plain = _build_pair([constraint], [duration], sessions=4)
        t = 1.0
        for step, (idx, access) in enumerate(walk):
            t += 0.5
            got = store[0].decide(store[1][idx], access, t, history=None)
            want = plain[0].decide(plain[1][idx], access, t, history=None)
            assert _norm(got) == _norm(want)
            if observe_every and step % observe_every == 0 and got.granted:
                store[0].observe(store[1][idx], access)
                plain[0].observe(plain[1][idx], access)
        requests_store = [(store[1][i], a) for i, a in walk]
        requests_plain = [(plain[1][i], a) for i, a in walk]
        got = store[0].decide_batch_many(requests_store, t=t + 1.0, dt=0.25)
        want = plain[0].decide_batch_many(requests_plain, t=t + 1.0, dt=0.25)
        assert [_norm(d) for d in got] == [_norm(d) for d in want]
        _assert_equivalent(store, plain)

    @given(
        closes=st.lists(st.integers(0, 5), min_size=1, max_size=4),
        rescind=st.booleans(),
        batch=st.lists(strategies.access_keys(), min_size=1, max_size=10),
    )
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_churn_and_rescind_bit_identity(self, closes, rescind, batch):
        """Closing sessions mid-stream and rescinding an evicted
        server's observations must behave identically columnar vs
        object-backed (the churn suite's store-mode twin)."""
        constraint = parse_constraint(COUNT_SRC)
        store, plain = _build_pair([constraint], [None], sessions=6)
        seed = AccessKey.of("exec", "r1", "s1")
        for engine, sessions in (store, plain):
            for k, session in enumerate(sessions):
                for _ in range(k % 4):
                    engine.observe(session, seed)
        for engine, sessions in (store, plain):
            engine.decide_batch_many(
                [(sessions[i % 6], a) for i, a in enumerate(batch)],
                t=1.0,
                dt=0.5,
            )
        closed = set()
        for idx in closes:
            if idx in closed:
                continue
            closed.add(idx)
            store[0].close_session(store[1][idx], 50.0)
            plain[0].close_session(plain[1][idx], 50.0)
        if rescind:
            assert store[0].rescind_server("s1") == plain[0].rescind_server(
                "s1"
            )
        survivors_store = (store[0], [
            s for i, s in enumerate(store[1]) if i not in closed
        ])
        survivors_plain = (plain[0], [
            s for i, s in enumerate(plain[1]) if i not in closed
        ])
        for (engine, sessions) in (survivors_store, survivors_plain):
            for k, session in enumerate(sessions):
                engine.decide(session, seed, 60.0 + k, history=None)
        _assert_equivalent(survivors_store, survivors_plain)
        assert store[0].resident_sessions() == plain[0].resident_sessions()


class TestBulkOpen:
    def test_bulk_open_equals_scalar_establishment(self):
        """``open_sessions`` must leave every session exactly as
        ``authenticate`` + ``activate_role`` would: same role set, same
        tracker states, and identical subsequent decisions."""
        constraint = parse_constraint(COUNT_SRC)
        policy = _policy([constraint], [5.0])
        bulk_engine = AccessControlEngine(policy, use_session_store=True)
        scalar_engine = AccessControlEngine(policy, use_session_store=True)
        rows = bulk_engine.open_sessions(["u"] * 8, 1.0, roles=("r",))
        bulk_sessions = [bulk_engine.session_at(r) for r in rows]
        scalar_sessions = []
        for _ in range(8):
            session = scalar_engine.authenticate("u", 1.0)
            scalar_engine.activate_role(session, "r", 1.0)
            scalar_sessions.append(session)
        access = AccessKey.of("exec", "r1", "s1")
        for t in (2.0, 4.0, 7.0):
            got = [
                _norm(bulk_engine.decide(s, access, t, history=None))
                for s in bulk_sessions
            ]
            want = [
                _norm(scalar_engine.decide(s, access, t, history=None))
                for s in scalar_sessions
            ]
            assert got == want
        for bs, ss in zip(bulk_sessions, scalar_sessions):
            assert bs.role_set() == ss.role_set()
            assert set(bs.trackers) == set(ss.trackers)
            for key, st_tracker in ss.trackers.items():
                assert bs.trackers[key].now == st_tracker.now
                assert (
                    bs.trackers[key].valid_timeline()
                    == st_tracker.valid_timeline()
                )

    def test_bulk_open_rejects_unknown_role_and_user(self):
        policy = _policy([None], [None])
        engine = AccessControlEngine(policy, use_session_store=True)
        with pytest.raises(RbacError):
            engine.open_sessions(["nobody"], 0.0, roles=("r",))
        assert engine.resident_sessions() == 0

    def test_bulk_open_requires_store(self):
        engine = AccessControlEngine(
            _policy([None], [None]), use_session_store=False
        )
        with pytest.raises(RbacError):
            engine.open_sessions(["u"], 0.0)


class TestObservedViewMemo:
    """Satellite 3: the ``observed`` tuple view must rebuild once per
    mutation batch, not once per appended access."""

    def _session(self, use_store: bool):
        engine = AccessControlEngine(
            _policy([parse_constraint(COUNT_SRC)], [None]),
            use_session_store=use_store,
        )
        session = engine.authenticate("u", 0.0)
        engine.activate_role(session, "r", 0.0)
        return engine, session

    @pytest.mark.parametrize("use_store", [True, False])
    def test_view_rebuilds_coalesce_per_batch(self, use_store):
        engine, session = self._session(use_store)
        access = AccessKey.of("exec", "r1", "s1")
        assert session.view_rebuilds == 0
        # Repeated reads of an unchanged history share one rebuild.
        assert session.observed == ()
        assert session.observed == ()
        assert session.view_rebuilds == 1
        # A batch of appended observations is one invalidation: the
        # next read rebuilds once, further reads are free.
        session.record_observations([access] * 50)
        assert len(session.observed) == 50
        assert session.observed is session.observed
        assert session.view_rebuilds == 2
        # Scalar appends never rebuild until somebody actually reads.
        for _ in range(25):
            session.record_observation(access)
        assert session.view_rebuilds == 2
        assert len(session.observed) == 75
        assert session.view_rebuilds == 3

    @pytest.mark.parametrize("use_store", [True, False])
    def test_incremental_decides_never_materialize_view(self, use_store):
        """The subject-scope incremental *grant* path reads only the
        history length — a million-session sweep must not rebuild a
        tuple per session per batch.  (Denial provenance legitimately
        walks the history for its coordination footprint.)"""
        engine = AccessControlEngine(
            _policy([parse_constraint("count(0, 100, [res = r1])")], [None]),
            use_session_store=use_store,
        )
        session = engine.authenticate("u", 0.0)
        engine.activate_role(session, "r", 0.0)
        access = AccessKey.of("exec", "r1", "s1")
        for i in range(6):
            assert engine.decide(
                session, access, 1.0 + i, history=None
            ).granted
            engine.observe(session, access)
        assert session.view_rebuilds == 0
        engine.decide_batch(session, [access] * 4, t=10.0, dt=0.5)
        assert session.view_rebuilds == 0


class TestIdleExpiry:
    def _engine(self, use_store: bool):
        engine = AccessControlEngine(
            _policy([None], [None]), use_session_store=use_store
        )
        sessions = []
        for _ in range(4):
            session = engine.authenticate("u", 0.0)
            engine.activate_role(session, "r", 0.0)
            sessions.append(session)
        return engine, sessions

    @pytest.mark.parametrize("use_store", [True, False])
    def test_idle_sessions_expire(self, use_store):
        engine, sessions = self._engine(use_store)
        access = AccessKey.of("exec", "r1", "s1")
        # Sessions 0 and 1 stay hot; 2 and 3 never decide again.
        for t in (10.0, 20.0, 30.0):
            engine.decide(sessions[0], access, t, history=None)
            engine.decide(sessions[1], access, t + 0.5, history=None)
        assert engine.expire_sessions(idle_for=25.0) == 2
        assert engine.resident_sessions() == 2
        # The hot pair survives and keeps deciding.
        decision = engine.decide(sessions[0], access, 40.0, history=None)
        assert decision.granted
        # Everything idles out relative to the latest activity.
        assert engine.expire_sessions(idle_for=0.0) == 2
        assert engine.resident_sessions() == 0

    @pytest.mark.parametrize("use_store", [True, False])
    def test_expire_nothing_when_fresh(self, use_store):
        engine, _ = self._engine(use_store)
        assert engine.expire_sessions(idle_for=1.0) == 0
        assert engine.resident_sessions() == 4

    def test_service_idle_sweep_counts_expired(self):
        engine = ShardedEngine(
            _policy([None], [None]), shards=2, use_session_store=True
        )
        with DecisionService(
            engine,
            workers=2,
            idle_expiry=5.0,
            idle_sweep_interval_s=0.01,
        ) as service:
            stale = engine.authenticate("u", 0.0)
            engine.activate_role(stale, "r", 0.0)
            hot = engine.authenticate("u", 0.0)
            engine.activate_role(hot, "r", 0.0)
            access = AccessKey.of("exec", "r1", "s1")
            service.submit(hot, access, 100.0).result(timeout=30.0)
            deadline = 100
            while service.service_stats().expired_sessions < 1:
                deadline -= 1
                assert deadline > 0, "idle sweep never fired"
                import time

                time.sleep(0.02)
            stats = service.service_stats()
            assert stats.expired_sessions == 1
            assert engine.resident_sessions() == 1
            assert "expired_sessions" in stats.as_dict()

    def test_service_rejects_bad_idle_config(self):
        from repro.errors import ServiceError

        engine = ShardedEngine(_policy([None], [None]), shards=1)
        with pytest.raises(ServiceError):
            DecisionService(engine, idle_expiry=0.0)
        with pytest.raises(ServiceError):
            DecisionService(engine, idle_sweep_interval_s=0.0)


class TestAccessKeyInterning:
    def test_of_returns_one_instance_per_key(self):
        a = AccessKey.of("read", "r1", "s1")
        b = AccessKey.of(("read", "r1", "s1"))
        c = AccessKey.of(AccessKey("read", "r1", "s1"))
        assert a is b is c
        assert a == ("read", "r1", "s1")
        assert AccessKey.of("read", "r1", "s2") is not a

    def test_record_observation_interns(self):
        store, plain = _build_pair([None], [None])
        for _, sessions in (store, plain):
            session = sessions[0]
            session.record_observation(("exec", "r1", "s1"))
            session.record_observation(AccessKey("exec", "r1", "s1"))
            first, second = session.observed
            assert first is second
            assert first is AccessKey.of("exec", "r1", "s1")


class TestStoreMechanics:
    def _engine(self, **kwargs):
        return AccessControlEngine(
            _policy([parse_constraint(COUNT_SRC)], [4.0]),
            use_session_store=True,
            **kwargs,
        )

    def test_handles_are_cached_and_materializable(self):
        engine = self._engine()
        session = engine.authenticate("u", 0.0)
        assert engine.materialize(session.session_id) is session
        assert engine.session_at(session._row) is session
        sid, row = session.session_id, session._row
        del session
        gc.collect()
        # The row is still live; a fresh handle materialises from it.
        revived = engine.materialize(sid)
        assert revived.session_id == sid
        assert revived._row == row

    def test_rows_recycle_with_generation_bump(self):
        engine = self._engine()
        first = engine.authenticate("u", 0.0)
        first.record_observation(("exec", "r1", "s1"))
        row, gen = first._row, first._gen
        sid = first.session_id
        engine.close_session(first, 1.0)
        # Freeing is deferred while a handle is live (views pin it);
        # dropping the last reference recycles the row.
        del first
        gc.collect()
        second = engine.authenticate("u", 2.0)
        assert second._row == row
        assert second._gen == gen + 1
        assert second.start_time == 2.0
        assert second.observed == ()
        with pytest.raises(RbacError):
            engine.materialize(sid)

    def test_dead_handle_operations_fail_closed(self):
        engine = self._engine()
        session = engine.authenticate("u", 0.0)
        engine.activate_role(session, "r", 0.0)
        engine.close_session(session, 1.0)
        assert engine.resident_sessions() == 0
        # Double close is a no-op (generation guard).
        engine.close_session(session, 2.0)
        assert engine.resident_sessions() == 0

    def test_record_timelines_off_drops_event_arenas(self):
        engine = self._engine(record_timelines=False)
        session = engine.authenticate("u", 0.0)
        engine.activate_role(session, "r", 0.0)
        access = AccessKey.of("exec", "r1", "s1")
        decision = engine.decide(session, access, 1.0, history=None)
        assert decision.granted
        (tracker,) = session.trackers.values()
        assert tracker.is_valid(1.0)
        with pytest.raises(TemporalError):
            tracker.valid_timeline()

    def test_store_invalidation_on_policy_change(self):
        engine = self._engine()
        session = engine.authenticate("u", 0.0)
        engine.activate_role(session, "r", 0.0)
        access = AccessKey.of("exec", "r1", "s1")
        for t in (1.0, 2.0):
            engine.observe(session, access)
            engine.decide(session, access, t, history=None)
        engine.invalidate_caches()
        # Monitor states rebuild from the observation arena.
        decision = engine.decide(session, access, 3.0, history=None)
        assert decision.granted


class TestMemoryBudget:
    def test_bytes_per_session_within_budget(self):
        """The ISSUE gate, in miniature: marginal store overhead for a
        bulk-opened population (timelines off, capacity reserved so
        doubling slack is excluded) must stay within 200 B/session."""
        from repro.workloads.scale import ScaleSpec, build_policy

        n = 20_000
        spec = ScaleSpec(sessions=n, users=100, servers=8, requests=1)
        engine = AccessControlEngine(
            build_policy(spec),
            use_session_store=True,
            record_timelines=False,
        )
        names = [f"u{i % spec.users:05d}" for i in range(n)]
        engine._store.reserve(n)
        gc.collect()
        tracemalloc.start()
        base, _ = tracemalloc.get_traced_memory()
        rows = engine.open_sessions(names, 0.0, roles=("agent",))
        current, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert engine.resident_sessions() == n
        traced = (current - base - rows.nbytes) / n
        columns = engine._store.nbytes() / n
        assert max(traced, columns) <= 200.0, (traced, columns)
