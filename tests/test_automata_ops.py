"""Tests for determinisation, minimisation, products and equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.dfa import DFA
from repro.automata.nfa import NFABuilder
from repro.automata.ops import (
    canonical_form,
    contains,
    determinize,
    difference,
    equivalent,
    intersect,
    minimize,
    union,
)

ALPHABET = ("a", "b")


def random_dfas():
    """Random small total DFAs over {a, b}."""

    @st.composite
    def build(draw):
        n = draw(st.integers(1, 5))
        delta = [
            {sym: draw(st.integers(0, n - 1)) for sym in ALPHABET} for _ in range(n)
        ]
        accepts = draw(st.sets(st.integers(0, n - 1)))
        return DFA(delta, 0, accepts)

    return build()


def random_words():
    return st.lists(st.sampled_from(ALPHABET), max_size=8).map(tuple)


def nfa_contains_ab():
    """NFA for Σ* a b Σ* — words containing 'ab'."""
    b = NFABuilder()
    s0, s1, s2 = b.add_states(3)
    for sym in ALPHABET:
        b.add_edge(s0, sym, s0)
        b.add_edge(s2, sym, s2)
    b.add_edge(s0, "a", s1)
    b.add_edge(s1, "b", s2)
    return b.build(s0, [s2])


class TestDeterminize:
    def test_language_preserved(self):
        nfa = nfa_contains_ab()
        dfa = determinize(nfa)
        for word in (
            (),
            ("a",),
            ("a", "b"),
            ("b", "a", "b"),
            ("a", "a", "b", "b"),
            ("b", "b"),
            ("a", "a"),
        ):
            assert dfa.accepts_word(word) == nfa.accepts_word(word), word

    def test_result_is_deterministic(self):
        dfa = determinize(nfa_contains_ab())
        for edges in dfa.delta:
            assert isinstance(edges, dict)  # one successor per symbol

    def test_epsilon_handled(self):
        b = NFABuilder()
        s0, s1, s2 = b.add_states(3)
        b.add_eps(s0, s1)
        b.add_edge(s1, "b", s2)
        nfa = b.build(s0, [s2])
        dfa = determinize(nfa)
        assert dfa.accepts_word(["b"])
        assert not dfa.accepts_word([])


class TestMinimize:
    def test_collapses_equivalent_states(self):
        # Two redundant accepting states accepting the same residual.
        dfa = DFA(
            [{"a": 1, "b": 2}, {"a": 1, "b": 1}, {"a": 2, "b": 2}],
            0,
            [1, 2],
        )
        minimal = minimize(dfa)
        assert minimal.n_states == 2
        assert equivalent(minimal, dfa)

    def test_empty_language(self):
        dfa = DFA([{"a": 0}], 0, [])
        minimal = minimize(dfa)
        assert minimal.is_empty()
        assert minimal.n_states == 1

    def test_minimize_drops_dead_states(self):
        # State 2 is a trap that never accepts.
        dfa = DFA([{"a": 1, "b": 2}, {}, {"a": 2, "b": 2}], 0, [1])
        minimal = minimize(dfa)
        assert minimal.n_states == 2
        assert minimal.accepts_word(["a"])
        assert not minimal.accepts_word(["b"])

    @given(random_dfas(), random_words())
    @settings(max_examples=300, deadline=None)
    def test_minimize_preserves_language(self, dfa, word):
        assert minimize(dfa).accepts_word(word) == dfa.accepts_word(word)

    @given(random_dfas())
    @settings(max_examples=150, deadline=None)
    def test_minimize_is_no_larger(self, dfa):
        assert minimize(dfa).n_states <= max(dfa.n_states, 1)

    @given(random_dfas())
    @settings(max_examples=150, deadline=None)
    def test_minimize_idempotent(self, dfa):
        once = minimize(dfa)
        twice = minimize(once)
        assert twice.n_states == once.n_states
        assert equivalent(once, twice)


class TestProducts:
    @given(random_dfas(), random_dfas(), random_words())
    @settings(max_examples=300, deadline=None)
    def test_intersection_semantics(self, d1, d2, word):
        assert intersect(d1, d2).accepts_word(word) == (
            d1.accepts_word(word) and d2.accepts_word(word)
        )

    @given(random_dfas(), random_dfas(), random_words())
    @settings(max_examples=300, deadline=None)
    def test_union_semantics(self, d1, d2, word):
        assert union(d1, d2).accepts_word(word) == (
            d1.accepts_word(word) or d2.accepts_word(word)
        )

    @given(random_dfas(), random_dfas(), random_words())
    @settings(max_examples=300, deadline=None)
    def test_difference_semantics(self, d1, d2, word):
        assert difference(d1, d2).accepts_word(word) == (
            d1.accepts_word(word) and not d2.accepts_word(word)
        )

    def test_union_over_disjoint_alphabets(self):
        d1 = DFA([{"a": 1}, {}], 0, [1])
        d2 = DFA([{"b": 1}, {}], 0, [1])
        u = union(d1, d2)
        assert u.accepts_word(["a"])
        assert u.accepts_word(["b"])
        assert not u.accepts_word(["a", "b"])


class TestEquivalence:
    def test_equivalent_different_shapes(self):
        # (ab)* as a 2-state DFA vs an inflated 4-state version.
        d1 = DFA([{"a": 1}, {"b": 0}], 0, [0])
        d2 = DFA([{"a": 1}, {"b": 2}, {"a": 3}, {"b": 0}], 0, [0, 2])
        assert equivalent(d1, d2)

    def test_inequivalent(self):
        d1 = DFA([{"a": 1}, {"b": 0}], 0, [0])  # (ab)*
        d2 = DFA([{"a": 1}, {"a": 0}], 0, [0])  # (aa)*
        assert not equivalent(d1, d2)

    @given(random_dfas())
    @settings(max_examples=150, deadline=None)
    def test_reflexive(self, dfa):
        assert equivalent(dfa, dfa)
        assert equivalent(dfa, minimize(dfa))

    @given(random_dfas(), random_dfas())
    @settings(max_examples=200, deadline=None)
    def test_equivalence_matches_canonical_form(self, d1, d2):
        assert equivalent(d1, d2) == (canonical_form(d1) == canonical_form(d2))

    def test_contains(self):
        everything = DFA([{"a": 0, "b": 0}], 0, [0])
        only_ab = DFA([{"a": 1}, {"b": 2}, {}], 0, [2])
        assert contains(everything, only_ab)
        assert not contains(only_ab, everything)

    @given(random_dfas(), random_dfas())
    @settings(max_examples=150, deadline=None)
    def test_mutual_containment_is_equivalence(self, d1, d2):
        both = contains(d1, d2) and contains(d2, d1)
        assert both == equivalent(d1, d2)
