"""Algebraic laws of the trace-model operators (Definition 3.2/3.3).

Trace models under (∪, ·) form an idempotent semiring with {ε} as the
multiplicative unit and ∅ as the additive unit/annihilator; interleaving
(#) is commutative, associative and distributes over union; Kleene
closure satisfies the standard unrolling identities.  These laws are
what make the constraint checker's automaton constructions valid, so we
machine-check them on random small models.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.model import TraceModel
from repro.traces.trace import AccessKey

A = AccessKey("read", "r1", "s1")
B = AccessKey("write", "r2", "s1")
C = AccessKey("exec", "r3", "s2")


def models(max_traces=3, max_len=3):
    """Random finite trace models over a 3-symbol alphabet."""
    traces = st.lists(
        st.lists(st.sampled_from([A, B, C]), max_size=max_len).map(tuple),
        min_size=0,
        max_size=max_traces,
    )
    return traces.map(TraceModel.of_traces)


EPSILON = TraceModel.empty_trace()
ZERO = TraceModel.nothing()


class TestSemiringLaws:
    @given(models(), models())
    @settings(max_examples=80, deadline=None)
    def test_union_commutative(self, x, y):
        assert x.union(y).equals(y.union(x))

    @given(models(), models(), models())
    @settings(max_examples=60, deadline=None)
    def test_union_associative(self, x, y, z):
        assert x.union(y).union(z).equals(x.union(y.union(z)))

    @given(models())
    @settings(max_examples=60, deadline=None)
    def test_union_idempotent_and_identity(self, x):
        assert x.union(x).equals(x)
        assert x.union(ZERO).equals(x)

    @given(models(), models(), models())
    @settings(max_examples=60, deadline=None)
    def test_concat_associative(self, x, y, z):
        assert x.concat(y).concat(z).equals(x.concat(y.concat(z)))

    @given(models())
    @settings(max_examples=60, deadline=None)
    def test_concat_identity_and_annihilator(self, x):
        assert x.concat(EPSILON).equals(x)
        assert EPSILON.concat(x).equals(x)
        assert x.concat(ZERO).equals(ZERO)
        assert ZERO.concat(x).equals(ZERO)

    @given(models(), models(), models())
    @settings(max_examples=60, deadline=None)
    def test_concat_distributes_over_union(self, x, y, z):
        left = x.concat(y.union(z))
        right = x.concat(y).union(x.concat(z))
        assert left.equals(right)
        left2 = y.union(z).concat(x)
        right2 = y.concat(x).union(z.concat(x))
        assert left2.equals(right2)


class TestInterleavingLaws:
    @given(models(2, 2), models(2, 2))
    @settings(max_examples=60, deadline=None)
    def test_commutative(self, x, y):
        assert x.interleave(y).equals(y.interleave(x))

    @given(models(2, 2), models(2, 2), models(2, 2))
    @settings(max_examples=30, deadline=None)
    def test_associative(self, x, y, z):
        left = x.interleave(y).interleave(z)
        right = x.interleave(y.interleave(z))
        assert left.equals(right)

    @given(models(2, 2))
    @settings(max_examples=60, deadline=None)
    def test_epsilon_identity(self, x):
        assert x.interleave(EPSILON).equals(x)

    @given(models(2, 2), models(2, 2), models(2, 2))
    @settings(max_examples=30, deadline=None)
    def test_distributes_over_union(self, x, y, z):
        left = x.interleave(y.union(z))
        right = x.interleave(y).union(x.interleave(z))
        assert left.equals(right)

    @given(models(2, 2), models(2, 2))
    @settings(max_examples=40, deadline=None)
    def test_contains_both_concatenations(self, x, y):
        shuffled = x.interleave(y)
        assert x.concat(y).included_in(shuffled)
        assert y.concat(x).included_in(shuffled)


class TestStarLaws:
    @given(models(2, 2))
    @settings(max_examples=60, deadline=None)
    def test_unrolling(self, x):
        """x* = ε ∪ x·x*"""
        star = x.star()
        unrolled = EPSILON.union(x.concat(star))
        assert star.equals(unrolled)

    @given(models(2, 2))
    @settings(max_examples=40, deadline=None)
    def test_star_of_star(self, x):
        star = x.star()
        assert star.star().equals(star)

    @given(models(2, 2))
    @settings(max_examples=60, deadline=None)
    def test_star_contains_powers(self, x):
        star = x.star()
        assert EPSILON.included_in(star)
        assert x.included_in(star)
        assert x.concat(x).included_in(star)

    def test_empty_star_is_epsilon(self):
        assert ZERO.star().equals(EPSILON)
        assert EPSILON.star().equals(EPSILON)

    @given(models(2, 2), models(2, 2))
    @settings(max_examples=30, deadline=None)
    def test_denesting(self, x, y):
        """(x ∪ y)* = (x* · y*)*"""
        left = x.union(y).star()
        right = x.star().concat(y.star()).star()
        assert left.equals(right)
