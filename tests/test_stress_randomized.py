"""Randomised fleet stress test: many agents, random programs, secured
engine — asserting the global invariants that must survive any
interleaving:

* every executed access has a verifiable proof chain entry;
* grants recorded by the audit log match proofs issued, one for one;
* no agent's proved history violates its permissions' upper-bound
  constraints (the enforcement invariant);
* the simulation terminates with every agent in a terminal or blocked
  state, and the virtual clock never runs backwards for any agent.
"""

import numpy as np
import pytest

from repro.agent.naplet import Naplet, NapletStatus
from repro.agent.scheduler import Simulation
from repro.agent.security import NapletSecurityManager
from repro.coalition.network import Coalition, constant_latency
from repro.coalition.resource import Resource
from repro.coalition.server import CoalitionServer
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.srac.parser import parse_constraint
from repro.srac.trace_check import trace_satisfies
from repro.traces.trace import count_matching
from repro.workloads.programs import access_alphabet, random_program

LIMIT = 4  # per-object quota on r0 accesses
CONSTRAINT = parse_constraint(f"count(0, {LIMIT}, [res = r0])")


def build_world(n_servers=4):
    servers = [
        CoalitionServer(
            f"s{i}",
            resources=[Resource(f"r{j}") for j in range(4)],
        )
        for i in range(n_servers)
    ]
    coalition = Coalition(servers, latency=constant_latency(0.5))
    policy = Policy()
    policy.add_user("owner")
    policy.add_role("worker")
    policy.add_permission(
        Permission("p_quota", resource="r0", spatial_constraint=CONSTRAINT)
    )
    policy.assign_user("owner", "worker")
    policy.assign_permission("worker", "p_quota")
    # One unconstrained permission per OTHER resource: a wildcard here
    # would also match r0 and silently bypass the quota (the engine
    # grants if ANY candidate permission passes).
    for j in range(1, 4):
        policy.add_permission(Permission(f"p_r{j}", resource=f"r{j}"))
        policy.assign_permission("worker", f"p_r{j}")
    engine = AccessControlEngine(policy)
    return coalition, engine


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_randomized_fleet_invariants(seed):
    rng = np.random.default_rng(seed)
    # Alphabet restricted to the world's servers/resources; no channels
    # or signals (no cross-agent blocking => no benign deadlocks).
    alphabet = tuple(
        a for a in access_alphabet(3, 4, 4)
        if a.server in {f"s{i}" for i in range(4)}
        # remap op names onto supported defaults
    )
    # access_alphabet emits op0..; map to supported operations.
    from repro.traces.trace import AccessKey

    def remap(key):
        ops = ("read", "write", "exec")
        return AccessKey(ops[int(key.op[-1]) % 3], key.resource, f"s{int(key.server[-1]) % 4}")

    alphabet = tuple({remap(a) for a in alphabet})

    coalition, engine = build_world()
    manager = NapletSecurityManager(engine, incremental=False)
    sim = Simulation(coalition, security=manager, on_denied="skip", access_cost=0.25)

    agents = []
    for index in range(12):
        program = random_program(
            rng, int(rng.integers(3, 15)), alphabet, p_par=0.1, p_while=0.1
        )
        agent = Naplet("owner", program, roles=("worker",), name=f"agent{index}")
        agents.append(agent)
        sim.add_naplet(agent, f"s{index % 4}", at=float(index) * 0.1)

    report = sim.run()

    total_proofs = 0
    for naplet in report.naplets:
        # 1. terminal or blocked, never mid-flight
        assert naplet.status in (
            NapletStatus.FINISHED,
            NapletStatus.BLOCKED,
            NapletStatus.DENIED,
            NapletStatus.FAILED,
        )
        # 2. proof chains verify and match observations
        assert naplet.registry.verify_chain()
        assert len(naplet.history()) == len(naplet.observations)
        total_proofs += len(naplet.history())
        # 3. the quota held: never more than LIMIT r0 accesses proved
        r0_count = count_matching(
            naplet.history(), {a for a in alphabet if a.resource == "r0"}
        )
        assert r0_count <= LIMIT
        assert trace_satisfies(
            naplet.history(), CONSTRAINT, proofs=naplet.registry.proved
        )
        # 4. per-agent proof timestamps are locally ordered per server
        #    sequence numbers are dense (chain property, already checked)

    # 5. audit ledger consistency: one grant per executed access.
    assert len(engine.audit.grants()) == total_proofs
    # Denials recorded on agents match the audit's denials.
    assert sum(len(n.denials) for n in report.naplets) == len(engine.audit.denials())


def test_denial_permanence_under_random_probing():
    """Once the quota constraint denies and history is immutable, every
    later probe — any server, any time — is denied (the 'forever' of
    the paper's motivating requirement)."""
    rng = np.random.default_rng(7)
    coalition, engine = build_world()
    session = engine.authenticate("owner", 0.0)
    engine.activate_role(session, "worker", 0.0)
    from repro.traces.trace import AccessKey

    history = tuple(
        AccessKey("exec", "r0", f"s{int(rng.integers(4))}") for _ in range(LIMIT)
    )
    denied_once = False
    for probe in range(20):
        server = f"s{int(rng.integers(4))}"
        decision = engine.decide(
            session, ("exec", "r0", server), float(probe + 1), history=history
        )
        if not decision.granted:
            denied_once = True
        # History holds LIMIT accesses; one more would exceed the quota,
        # so every probe must be denied.
        assert not decision.granted
    assert denied_once
