"""Property test: churn-equivalence of the batched decision service.

For any random churn schedule interleaved with any random request
stream, the coalition-bound :class:`~repro.service.DecisionService`
(micro-batched, sharded, vector sweeps and all) must produce decisions
**bit-identical** — outcome, reason and
:class:`~repro.obs.provenance.DecisionProvenance`, including the
membership epoch stamp — to a plain single-threaded
:class:`~repro.rbac.engine.AccessControlEngine` bound to an identical
coalition replica and fed the same epoch-filtered stream.

Churn is applied at round boundaries (after a service drain), the same
way the service is deployed: membership changes take effect between
micro-batches, and an eviction rescinds the evicted server's accesses
from both sides' incremental histories.  Hypothesis runs derandomized
(like ``tests/test_vector_engine.py``) so CI is reproducible.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.faultload import GATE_SERVER, HUB_SERVER, make_churn_policy, make_churn_server
from repro.coalition.network import Coalition
from repro.rbac.audit import Decision
from repro.rbac.engine import AccessControlEngine
from repro.service.service import DecisionService
from repro.service.sharding import ShardedEngine
from repro.traces.trace import AccessKey

OWNERS = ("u0", "u1")

#: The request alphabet: the hub read that justifies the gate, the
#: gated access itself, and count-budgeted rsw filler on every founder.
ACCESSES = (
    AccessKey("read", "r1", HUB_SERVER),
    AccessKey("exec", "gated", GATE_SERVER),
    AccessKey("exec", "rsw", "s1"),
    AccessKey("exec", "rsw", "s2"),
    AccessKey("exec", "rsw", "s3"),
)

CHURN_MENU = ("join", "leave-s3", "evict-s1", "evict-s3", "merge")


def _norm(decision: Decision) -> Decision:
    """Session subject ids are globally unique; mask them out."""
    return dataclasses.replace(decision, subject_id="")


def _apply_churn(op: str | None, coalition: Coalition, state: dict) -> None:
    """Apply one churn op if it is still applicable; the applicability
    rules are pure functions of ``state``, so the service-side and the
    direct-side replicas always take identical steps."""
    if op is None:
        return
    if op == "join":
        name = f"j{state['joined']}"
        state["joined"] += 1
        coalition.join(make_churn_server(name))
    elif op in ("leave-s3", "evict-s3"):
        if "s3" in state["removed"]:
            return
        state["removed"].add("s3")
        if op == "leave-s3":
            coalition.leave("s3")
        else:
            coalition.evict("s3")
    elif op == "evict-s1":
        if "s1" in state["removed"]:
            return
        state["removed"].add("s1")
        coalition.evict("s1")
    elif op == "merge":
        if state["merged"]:
            return
        state["merged"] = True
        coalition.merge(
            Coalition([make_churn_server("n1"), make_churn_server("n2")])
        )


def _evictions_of(op: str | None, state: dict) -> tuple[str, ...]:
    """Which servers the op would evict, under the same applicability
    rules as :func:`_apply_churn` (checked *before* applying)."""
    if op == "evict-s3" and "s3" not in state["removed"]:
        return ("s3",)
    if op == "evict-s1" and "s1" not in state["removed"]:
        return ("s1",)
    return ()


rounds_strategy = st.lists(
    st.tuples(
        st.sampled_from((None,) + CHURN_MENU),
        st.lists(
            st.tuples(
                st.integers(0, len(OWNERS) - 1),
                st.sampled_from(ACCESSES),
            ),
            max_size=8,
        ),
    ),
    min_size=1,
    max_size=4,
)


class TestChurnEquivalence:
    @given(rounds=rounds_strategy, observe=st.booleans(), shards=st.integers(1, 3))
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_service_matches_direct_engine_under_churn(
        self, rounds, observe, shards
    ):
        policy = make_churn_policy(OWNERS)

        # Service side: sharded engine + micro-batched worker pool over
        # coalition A.  Evictions reach the shards via the service's
        # membership subscription.
        coalition_a = Coalition([make_churn_server(s) for s in ("s1", "s2", "s3")])
        sharded = ShardedEngine(policy, shards=shards)
        service = DecisionService(
            sharded, workers=2, max_wait_s=0.0, coalition=coalition_a
        )
        svc_sessions = {}
        for owner in OWNERS:
            session = sharded.authenticate(owner, 0.0)
            sharded.activate_role(session, "member", 0.0)
            svc_sessions[owner] = session

        # Direct side: one plain engine bound to coalition B, the same
        # churn applied by hand (including the eviction rescind).
        coalition_b = Coalition([make_churn_server(s) for s in ("s1", "s2", "s3")])
        direct = AccessControlEngine(policy)
        direct.bind_membership(coalition_b)
        direct_sessions = {}
        for owner in OWNERS:
            session = direct.authenticate(owner, 0.0)
            direct.activate_role(session, "member", 0.0)
            direct_sessions[owner] = session

        state_a = {"joined": 0, "removed": set(), "merged": False}
        state_b = {"joined": 0, "removed": set(), "merged": False}
        try:
            t = 0.0
            for op, requests in rounds:
                evicted = _evictions_of(op, state_b)
                _apply_churn(op, coalition_a, state_a)  # service rescinds via listener
                _apply_churn(op, coalition_b, state_b)
                for name in evicted:
                    direct.rescind_server(name)

                times = [t + i for i in range(len(requests))]
                futures = service.submit_many(
                    [
                        (svc_sessions[OWNERS[who]], access, when)
                        for (who, access), when in zip(requests, times)
                    ],
                    observe_granted=observe,
                )
                got = [f.result(timeout=30.0) for f in futures]
                assert service.drain(timeout=30.0)

                want = []
                for (who, access), when in zip(requests, times):
                    session = direct_sessions[OWNERS[who]]
                    # history=None selects incremental mode — the same
                    # default submit_many uses on the service side.
                    decision = direct.decide(session, access, when, history=None)
                    if observe and decision.granted:
                        direct.observe(session, access)
                    want.append(decision)

                assert [_norm(d) for d in got] == [_norm(d) for d in want]
                # Both replicas moved in lockstep, and the decisions'
                # epoch stamps witness it.
                assert coalition_a.membership_epoch == coalition_b.membership_epoch
                for decision in got:
                    assert decision.provenance is None or (
                        decision.provenance.epoch == coalition_b.membership_epoch
                    )
                t += len(requests)
        finally:
            service.shutdown()
