"""Round-trip and formatting tests for the SRAL pretty-printer."""

from hypothesis import given, settings

import tests.strategies as strat
from repro.sral.ast import Access, BinOp, IntLit, Par, Seq, Skip, Var
from repro.sral.parser import parse_expr, parse_program
from repro.sral.printer import format_program, unparse, unparse_expr


class TestUnparseExamples:
    def test_access(self):
        assert unparse(Access("read", "r1", "s1")) == "read r1 @ s1"

    def test_seq_flat(self):
        p = parse_program("read r1 @ s1 ; read r2 @ s2 ; read r3 @ s3")
        assert unparse(p) == "read r1 @ s1 ; read r2 @ s2 ; read r3 @ s3"

    def test_right_nested_seq_parenthesized(self):
        p = Seq(Access("read", "r1", "s1"), Seq(Access("read", "r2", "s2"), Access("read", "r3", "s3")))
        assert unparse(p) == "read r1 @ s1 ; (read r2 @ s2 ; read r3 @ s3)"
        assert parse_program(unparse(p)) == p

    def test_par_in_seq_needs_parens(self):
        p = Seq(Par(Access("read", "r1", "s1"), Access("read", "r2", "s2")), Skip())
        assert unparse(p) == "(read r1 @ s1 || read r2 @ s2) ; skip"
        assert parse_program(unparse(p)) == p

    def test_expr_minimal_parens(self):
        e = BinOp("*", BinOp("+", IntLit(1), IntLit(2)), IntLit(3))
        assert unparse_expr(e) == "(1 + 2) * 3"
        e2 = BinOp("+", IntLit(1), BinOp("*", IntLit(2), IntLit(3)))
        assert unparse_expr(e2) == "1 + 2 * 3"

    def test_cmp_operand_parens(self):
        e = BinOp("<", BinOp("<", Var("a"), Var("b")), Var("c"))
        assert unparse_expr(e) == "(a < b) < c"
        assert parse_expr(unparse_expr(e)) == e

    def test_string_escaping(self):
        e = parse_expr(r'"a\"b\\c"')
        assert parse_expr(unparse_expr(e)) == e


class TestRoundTripProperties:
    @given(strat.exprs(max_depth=4))
    @settings(max_examples=300, deadline=None)
    def test_expr_round_trip(self, expr):
        assert parse_expr(unparse_expr(expr)) == expr

    @given(strat.programs(max_leaves=16))
    @settings(max_examples=300, deadline=None)
    def test_program_round_trip(self, program):
        assert parse_program(unparse(program)) == program

    @given(strat.programs(max_leaves=12))
    @settings(max_examples=150, deadline=None)
    def test_format_program_round_trip(self, program):
        assert parse_program(format_program(program)) == program


class TestFormatProgram:
    def test_multiline_while(self):
        p = parse_program("while n < 3 do { exec tool @ s1 ; n := n + 1 }")
        text = format_program(p)
        assert "while n < 3 do {" in text
        assert text.count("\n") >= 2
        assert parse_program(text) == p

    def test_multiline_if(self):
        p = parse_program("if x > 0 then read r1 @ s1 else read r2 @ s2")
        text = format_program(p)
        assert "} else {" in text
        assert parse_program(text) == p

    def test_multiline_par(self):
        p = parse_program("read r1 @ s1 || read r2 @ s2")
        text = format_program(p)
        assert "||" in text
        assert parse_program(text) == p
