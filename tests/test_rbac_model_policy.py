"""Tests for RBAC entities, hierarchy, separation of duty and policy."""

import math

import pytest

from repro.errors import PolicyError, RbacError
from repro.rbac.hierarchy import RoleHierarchy
from repro.rbac.model import Permission, Role, Subject, User
from repro.rbac.policy import Policy
from repro.rbac.separation import DSDConstraint, SSDConstraint
from repro.srac.ast import Count
from repro.srac.selection import select_resource
from repro.traces.trace import AccessKey


class TestEntities:
    def test_user_role_validation(self):
        with pytest.raises(RbacError):
            User("")
        with pytest.raises(RbacError):
            Role("")

    def test_permission_matching(self):
        p = Permission("p", op="read", resource="*", server="s1")
        assert p.matches(AccessKey("read", "anything", "s1"))
        assert not p.matches(AccessKey("write", "anything", "s1"))
        assert not p.matches(AccessKey("read", "anything", "s2"))
        assert p.matches(("read", "r", "s1"))  # plain tuple accepted

    def test_full_wildcard(self):
        p = Permission("any")
        assert p.matches(AccessKey("x", "y", "z"))

    def test_permission_validation(self):
        with pytest.raises(RbacError):
            Permission("")
        with pytest.raises(RbacError):
            Permission("p", validity_duration=0.0)

    def test_time_sensitivity(self):
        assert not Permission("p").time_sensitive
        assert Permission("p", validity_duration=5.0).time_sensitive

    def test_subject_ids_unique(self):
        u = User("alice")
        s1, s2 = Subject(u), Subject(u)
        assert s1.subject_id != s2.subject_id

    def test_subject_principals(self):
        s = Subject(User("alice"), frozenset({"NapletPrincipal"}))
        assert s.has_principal("NapletPrincipal")
        assert not s.has_principal("Admin")


class TestHierarchy:
    def make(self):
        h = RoleHierarchy()
        admin, auditor, clerk = Role("admin"), Role("auditor"), Role("clerk")
        h.add_inheritance(admin, auditor)
        h.add_inheritance(auditor, clerk)
        return h, admin, auditor, clerk

    def test_transitive_juniors(self):
        h, admin, auditor, clerk = self.make()
        assert h.juniors_of(admin) == {auditor, clerk}
        assert h.juniors_of(auditor) == {clerk}
        assert h.juniors_of(clerk) == frozenset()

    def test_closure(self):
        h, admin, auditor, clerk = self.make()
        assert h.closure([admin]) == {admin, auditor, clerk}
        assert h.closure([clerk]) == {clerk}

    def test_seniors(self):
        h, admin, auditor, clerk = self.make()
        assert h.seniors_of(clerk) == {auditor, admin}
        assert h.seniors_of(admin) == frozenset()

    def test_cycle_rejected(self):
        h, admin, auditor, clerk = self.make()
        with pytest.raises(RbacError):
            h.add_inheritance(clerk, admin)
        with pytest.raises(RbacError):
            h.add_inheritance(admin, admin)

    def test_diamond(self):
        h = RoleHierarchy()
        top, l1, l2, bottom = (Role(n) for n in "top l1 l2 bottom".split())
        h.add_inheritance(top, l1)
        h.add_inheritance(top, l2)
        h.add_inheritance(l1, bottom)
        h.add_inheritance(l2, bottom)
        assert h.juniors_of(top) == {l1, l2, bottom}
        assert h.roles() == {top, l1, l2, bottom}


class TestSeparation:
    def test_validation(self):
        r1, r2 = Role("a"), Role("b")
        with pytest.raises(RbacError):
            SSDConstraint("", frozenset({r1, r2}))
        with pytest.raises(RbacError):
            SSDConstraint("x", frozenset({r1, r2}), cardinality=1)
        with pytest.raises(RbacError):
            SSDConstraint("x", frozenset({r1}), cardinality=2)

    def test_violation(self):
        r1, r2, r3 = Role("a"), Role("b"), Role("c")
        c = DSDConstraint("x", frozenset({r1, r2, r3}), cardinality=2)
        assert not c.violated_by([r1])
        assert c.violated_by([r1, r2])
        assert not c.violated_by([Role("other")])


class TestPolicy:
    def make_policy(self):
        policy = Policy()
        policy.add_user("alice")
        policy.add_role("auditor")
        policy.add_role("clerk")
        policy.add_permission(Permission("p_read", op="read"))
        policy.add_permission(
            Permission(
                "p_rsw",
                op="exec",
                resource="rsw",
                spatial_constraint=Count(0, 5, select_resource("rsw")),
                validity_duration=30.0,
            )
        )
        policy.add_inheritance("auditor", "clerk")
        policy.assign_user("alice", "auditor")
        policy.assign_permission("clerk", "p_read")
        policy.assign_permission("auditor", "p_rsw")
        return policy

    def test_duplicates_rejected(self):
        policy = self.make_policy()
        with pytest.raises(PolicyError):
            policy.add_user("alice")
        with pytest.raises(PolicyError):
            policy.add_role("clerk")
        with pytest.raises(PolicyError):
            policy.add_permission(Permission("p_read"))

    def test_unknown_lookups(self):
        policy = self.make_policy()
        with pytest.raises(PolicyError):
            policy.user("bob")
        with pytest.raises(PolicyError):
            policy.role("nothing")
        with pytest.raises(PolicyError):
            policy.permission("zzz")

    def test_inheritance_collects_permissions(self):
        policy = self.make_policy()
        auditor = policy.role("auditor")
        names = {p.name for p in policy.permissions_of_role(auditor)}
        assert names == {"p_read", "p_rsw"}
        clerk_names = {p.name for p in policy.permissions_of_role(policy.role("clerk"))}
        assert clerk_names == {"p_read"}

    def test_ssd_blocks_assignment(self):
        policy = self.make_policy()
        policy.add_role("payer")
        policy.add_ssd(
            SSDConstraint(
                "sep", frozenset({policy.role("auditor"), policy.role("payer")})
            )
        )
        with pytest.raises(PolicyError):
            policy.assign_user("alice", "payer")

    def test_ssd_checks_inherited_roles(self):
        policy = self.make_policy()
        policy.add_role("payer")
        # Conflict is between clerk (inherited via auditor) and payer.
        policy.add_ssd(
            SSDConstraint(
                "sep", frozenset({policy.role("clerk"), policy.role("payer")})
            )
        )
        with pytest.raises(PolicyError):
            policy.assign_user("alice", "payer")

    def test_retroactive_ssd_rejected(self):
        policy = self.make_policy()
        policy.add_role("payer")
        policy.assign_user("alice", "payer")
        with pytest.raises(PolicyError):
            policy.add_ssd(
                SSDConstraint(
                    "sep",
                    frozenset({policy.role("auditor"), policy.role("payer")}),
                )
            )

    def test_from_dict(self):
        policy = Policy.from_dict(
            {
                "users": ["alice"],
                "roles": ["auditor", "clerk"],
                "permissions": [
                    {
                        "name": "p_rsw",
                        "op": "exec",
                        "resource": "rsw",
                        "constraint": "count(0, 5, [res = rsw])",
                        "duration": 30.0,
                    },
                    {"name": "p_read", "op": "read"},
                ],
                "hierarchy": [["auditor", "clerk"]],
                "user_roles": [["alice", "auditor"]],
                "role_permissions": [["clerk", "p_read"], ["auditor", "p_rsw"]],
            }
        )
        auditor = policy.role("auditor")
        assert {p.name for p in policy.permissions_of_role(auditor)} == {
            "p_read",
            "p_rsw",
        }
        p = policy.permission("p_rsw")
        assert p.spatial_constraint is not None
        assert p.validity_duration == 30.0
        assert math.isinf(policy.permission("p_read").validity_duration)

    def test_from_dict_missing_key(self):
        with pytest.raises(PolicyError):
            Policy.from_dict({"permissions": [{"op": "read"}]})
