"""Tests for the SRAL interpreter and expression evaluator."""

import pytest
from hypothesis import given, settings

import tests.strategies as strat
from repro.agent.interpreter import (
    DoAccess,
    DoReceive,
    DoSend,
    DoSignal,
    DoSpawn,
    DoWait,
    evaluate_expr,
    interpret,
)
from repro.errors import AgentError
from repro.sral.parser import parse_expr, parse_program


def drive(program_source, env=None, replies=None):
    """Run a program, feeding ``replies`` to requests in order; returns
    the list of requests and the final environment."""
    env = dict(env or {})
    replies = list(replies or [])
    requests = []
    gen = interpret(parse_program(program_source), env)
    try:
        request = next(gen)
        while True:
            requests.append(request)
            reply = replies.pop(0) if replies else None
            request = gen.send(reply)
    except StopIteration:
        pass
    return requests, env


class TestExpressionEvaluation:
    def test_literals_and_vars(self):
        assert evaluate_expr(parse_expr("42"), {}) == 42
        assert evaluate_expr(parse_expr("true"), {}) is True
        assert evaluate_expr(parse_expr('"hi"'), {}) == "hi"
        assert evaluate_expr(parse_expr("x"), {"x": 7}) == 7

    def test_unbound_variable(self):
        with pytest.raises(AgentError):
            evaluate_expr(parse_expr("nope"), {})

    def test_arithmetic(self):
        env = {"x": 10, "y": 3}
        assert evaluate_expr(parse_expr("x + y * 2"), env) == 16
        assert evaluate_expr(parse_expr("x - y"), env) == 7
        assert evaluate_expr(parse_expr("x / y"), env) == 3
        assert evaluate_expr(parse_expr("x % y"), env) == 1
        assert evaluate_expr(parse_expr("-x"), env) == -10

    def test_java_style_division(self):
        assert evaluate_expr(parse_expr("(0 - 7) / 2"), {}) == -3  # truncates
        assert evaluate_expr(parse_expr("(0 - 7) % 2"), {}) == -1

    def test_division_by_zero(self):
        with pytest.raises(AgentError):
            evaluate_expr(parse_expr("1 / 0"), {})
        with pytest.raises(AgentError):
            evaluate_expr(parse_expr("1 % 0"), {})

    def test_comparisons(self):
        assert evaluate_expr(parse_expr("2 < 3"), {}) is True
        assert evaluate_expr(parse_expr("3 <= 2"), {}) is False
        assert evaluate_expr(parse_expr("3 > 2"), {}) is True
        assert evaluate_expr(parse_expr("2 >= 3"), {}) is False

    def test_equality_is_type_strict(self):
        assert evaluate_expr(parse_expr("1 == 1"), {}) is True
        assert evaluate_expr(parse_expr("true == 1"), {}) is False
        assert evaluate_expr(parse_expr("1 != 2"), {}) is True

    def test_boolean_short_circuit(self):
        # The right operand (division by zero) must not be evaluated.
        assert evaluate_expr(parse_expr("false and 1 / 0 == 0"), {}) is False
        assert evaluate_expr(parse_expr("true or 1 / 0 == 0"), {}) is True

    def test_string_concatenation(self):
        assert evaluate_expr(parse_expr('"a" + "b"'), {}) == "ab"

    def test_type_errors(self):
        with pytest.raises(AgentError):
            evaluate_expr(parse_expr("1 + true"), {})
        with pytest.raises(AgentError):
            evaluate_expr(parse_expr('"a" < "b"'), {})
        with pytest.raises(AgentError):
            evaluate_expr(parse_expr("not 3"), {})


class TestInterpretation:
    def test_single_access(self):
        requests, _ = drive("read r1 @ s1")
        assert requests == [DoAccess("read", "r1", "s1")]

    def test_sequence_order(self):
        requests, _ = drive("read r1 @ s1 ; write r2 @ s2")
        assert requests == [
            DoAccess("read", "r1", "s1"),
            DoAccess("write", "r2", "s2"),
        ]

    def test_assignment_and_conditional(self):
        requests, env = drive("x := 5 ; if x > 3 then read big @ s1 else read small @ s1")
        assert requests == [DoAccess("read", "big", "s1")]
        assert env["x"] == 5

    def test_while_loop_counts(self):
        requests, env = drive(
            "n := 0 ; while n < 3 do { exec tool @ s1 ; n := n + 1 }"
        )
        assert requests == [DoAccess("exec", "tool", "s1")] * 3
        assert env["n"] == 3

    def test_receive_binds_variable(self):
        requests, env = drive("ch ? x ; ch2 ! x + 1", replies=[10])
        assert requests == [DoReceive("ch"), DoSend("ch2", 11)]
        assert env["x"] == 10

    def test_signal_and_wait(self):
        requests, _ = drive("signal(go) ; wait(done)")
        assert requests == [DoSignal("go"), DoWait("done")]

    def test_par_spawns(self):
        requests, _ = drive("read r1 @ s1 || read r2 @ s2")
        assert len(requests) == 1
        assert isinstance(requests[0], DoSpawn)
        assert len(requests[0].programs) == 2

    def test_skip_produces_nothing(self):
        requests, _ = drive("skip")
        assert requests == []

    def test_runaway_loop_guarded(self):
        gen = interpret(parse_program("while true do x := 1"), {}, max_loop_iterations=10)
        with pytest.raises(AgentError):
            next(gen)

    def test_condition_must_be_boolean(self):
        with pytest.raises(AgentError):
            drive("if 3 then skip else skip")
        with pytest.raises(AgentError):
            drive("while 3 do skip")

    @given(strat.exprs(max_depth=3))
    @settings(max_examples=200, deadline=None)
    def test_evaluator_is_total_on_random_exprs(self, expr):
        """Evaluation either returns a plain value or raises AgentError —
        never any other exception."""
        env = {"x": 1, "y": 2, "n": 0}
        try:
            value = evaluate_expr(expr, env)
        except AgentError:
            return
        assert isinstance(value, (int, bool, str))
