"""Differential tests for the micro-batched decision service.

The batched drain loop (``max_batch > 1``) must be observationally
identical to the scalar per-request service (``max_batch=1``) and to
deciding directly on a :class:`~repro.service.ShardedEngine` — same
decisions *bit-identically* (fields, provenance, reasons), same
per-shard audit order, same invariants — while actually routing
vector-eligible traffic through
:func:`~repro.rbac.vector_engine.sweep_interleaved`.

The workload mixes the shapes that matter: grants, spatial denials
(sessions pre-seeded past the count bound), no-candidate accesses,
several sessions interleaved per shard, and (in the fallback tests)
explicit histories / ``observe_granted`` feedback that must leave the
vector path in exactly their arrival slot.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import CancelledError

import pytest

import repro.rbac.engine as rbac_engine
import repro.rbac.model as rbac_model
from repro.errors import ServiceError
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.service import DecisionService, ShardedEngine
from repro.srac.compiled import clear_table_cache, table_cache_counters
from repro.srac.parser import parse_constraint
from repro.traces.trace import AccessKey

SERVERS = [f"s{i}" for i in range(3)]
EXEC = [AccessKey("exec", "rsw", s) for s in SERVERS]
#: No permission matches this access — the "no-candidate" decision shape.
UNMATCHED = AccessKey("write", "ledger", "s0")

SESSIONS_N = 8
PER_SESSION = 30


def make_policy(count_bound: int = 5) -> Policy:
    policy = Policy()
    policy.add_user("u")
    policy.add_role("r")
    policy.add_permission(
        Permission(
            "p",
            op="exec",
            resource="rsw",
            spatial_constraint=parse_constraint(
                f"count(0, {count_bound}, [res = rsw])"
            ),
        )
    )
    policy.assign_user("u", "r")
    policy.assign_permission("r", "p")
    return policy


def build_engine(shards: int = 4):
    """Sharded engine + sessions with deterministic routing and mixed
    starting histories: odd sessions are pre-seeded past the count
    bound, so their vector decisions are spatial denials.

    Subject/session id counters are process-global; restarting them
    here makes independently built engines assign identical ids, so
    whole :class:`Decision` objects compare bit-identically across the
    scalar run, the batched run and the direct reference.
    """
    rbac_model._subject_counter = itertools.count(1)
    rbac_engine._session_counter = itertools.count(1)
    engine = ShardedEngine(make_policy(), shards=shards)
    sessions = []
    for k in range(SESSIONS_N):
        session = engine.authenticate("u", 0.0, shard_key=f"agent-{k}")
        engine.activate_role(session, "r", 0.0)
        if k % 2 == 1:
            for _ in range(6):  # past the count bound of 5
                engine.observe(session, EXEC[0])
        sessions.append(session)
    return engine, sessions


def workload(k: int, i: int) -> AccessKey:
    """Deterministic mixed stream: grants, denials, no-candidates."""
    if (k + i) % 7 == 0:
        return UNMATCHED
    return EXEC[(k + i) % len(EXEC)]


def submit_wave(service, sessions, observe_granted=False):
    """One interleaved submit_many wave (arrival order round-robins
    the sessions, per-session times strictly increasing)."""
    requests = []
    for i in range(PER_SESSION):
        for k, session in enumerate(sessions):
            requests.append((session, workload(k, i), float(i + 1)))
    return service.submit_many(requests, observe_granted=observe_granted)


def audit_per_shard(engine: ShardedEngine):
    return [list(shard.engine.audit) for shard in engine._shards]


def run_service(max_batch: int, workers: int = 4, **kwargs):
    engine, sessions = build_engine()
    with DecisionService(
        engine, workers=workers, queue_depth=4096,
        max_batch=max_batch, **kwargs,
    ) as service:
        futures = submit_wave(service, sessions)
        assert service.drain(timeout=60.0)
        stats = service.service_stats()
    decisions = [f.result() for f in futures]
    return engine, decisions, stats


class TestBatchedDifferential:
    """batched service ≡ scalar service ≡ direct engine."""

    def test_batched_equals_scalar_equals_direct(self):
        scalar_engine, scalar_decisions, scalar_stats = run_service(
            max_batch=1
        )
        batched_engine, batched_decisions, batched_stats = run_service(
            max_batch=64, max_wait_s=0.001
        )

        # Direct reference: same construction, decided inline in the
        # same arrival order.
        direct_engine, direct_sessions = build_engine()
        direct_decisions = []
        for i in range(PER_SESSION):
            for k, session in enumerate(direct_sessions):
                direct_decisions.append(
                    direct_engine.decide(
                        session, workload(k, i), float(i + 1), history=None
                    )
                )

        # Bit-identical decisions (dataclass equality covers access,
        # grant, reason, role/permission attribution and the full
        # provenance tree).
        assert batched_decisions == scalar_decisions == direct_decisions
        assert any(d.granted for d in batched_decisions)
        assert any(
            not d.granted and d.provenance.kind == "spatial"
            for d in batched_decisions
        )
        assert any(
            d.provenance.kind == "no-candidate" for d in batched_decisions
        )

        # Same per-shard audit order (single submit_many wave -> the
        # per-shard queue order is the arrival order for all three).
        assert (
            audit_per_shard(batched_engine)
            == audit_per_shard(scalar_engine)
            == audit_per_shard(direct_engine)
        )

        # The equivalence is not vacuous: the batched run actually used
        # the vector path, the scalar run never did.
        assert batched_stats.vector_decisions > 0
        assert scalar_stats.vector_decisions == 0
        assert batched_stats.batches < batched_stats.batched_requests
        assert batched_stats.mean_batch_size > 1.0
        assert batched_stats.max_batch_size <= 64
        assert scalar_stats.max_batch_size == 1

    def test_concurrent_submitters_per_session_equivalence(self):
        """4 racing submit_many threads (disjoint session subsets):
        per-session outcome sequences still match the direct engine."""
        engine, sessions = build_engine()
        with DecisionService(
            engine, workers=4, queue_depth=4096,
            max_batch=32, max_wait_s=0.001,
        ) as service:
            futures_by_k: dict[int, list] = {}

            def submitter(ks):
                for k in ks:
                    requests = [
                        (sessions[k], workload(k, i), float(i + 1))
                        for i in range(PER_SESSION)
                    ]
                    futures_by_k[k] = service.submit_many(requests)

            threads = [
                threading.Thread(target=submitter, args=([k, k + 4],))
                for k in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert service.drain(timeout=60.0)
            stats = service.service_stats()
        assert stats.errors == 0
        assert stats.completed == SESSIONS_N * PER_SESSION

        direct_engine, direct_sessions = build_engine()
        for k in range(SESSIONS_N):
            expected = [
                direct_engine.decide(
                    direct_sessions[k], workload(k, i), float(i + 1),
                    history=None,
                )
                for i in range(PER_SESSION)
            ]
            actual = [f.result() for f in futures_by_k[k]]
            assert actual == expected


class TestScalarFallbacks:
    """Requests the sweep must not touch leave the vector path in
    exactly their arrival slot."""

    def test_explicit_history_and_observe_granted_interleaved(self):
        def drive(max_batch):
            engine, sessions = build_engine()
            with DecisionService(
                engine, workers=2, queue_depth=4096,
                max_batch=max_batch, max_wait_s=0.001,
            ) as service:
                futures = []
                for i in range(PER_SESSION):
                    for k, session in enumerate(sessions):
                        access = workload(k, i)
                        if (k + i) % 5 == 0:
                            # Explicit empty history: scalar-only mode.
                            futures.append(
                                service.submit(
                                    session, access, float(i + 1), history=()
                                )
                            )
                        elif (k + i) % 5 == 1:
                            # Feedback: mutates mid-stream, scalar-only.
                            futures.append(
                                service.submit(
                                    session, access, float(i + 1),
                                    observe_granted=True,
                                )
                            )
                        else:
                            futures.append(
                                service.submit(session, access, float(i + 1))
                            )
                assert service.drain(timeout=60.0)
                stats = service.service_stats()
            return engine, [f.result() for f in futures], stats

        scalar_engine, scalar_decisions, _ = drive(max_batch=1)
        batched_engine, batched_decisions, batched_stats = drive(max_batch=64)
        assert batched_decisions == scalar_decisions
        assert audit_per_shard(batched_engine) == audit_per_shard(
            scalar_engine
        )
        # observe_granted feedback replayed in stream order produces
        # denials later in each stream; the mix is real.
        assert any(d.granted for d in batched_decisions)
        assert any(not d.granted for d in batched_decisions)
        assert batched_stats.vector_decisions > 0

    def test_poisoned_request_fails_only_its_own_future(self):
        engine, sessions = build_engine()
        with DecisionService(
            engine, workers=1, queue_depth=4096,
            max_batch=64, max_wait_s=0.0,
        ) as service:
            requests = [
                (sessions[0], EXEC[i % len(EXEC)], float(i + 1))
                for i in range(10)
            ]
            # A non-numeric decision time poisons the sweep *and* the
            # scalar replay — but must fail only its own future.
            requests[4] = (sessions[0], EXEC[1], "not-a-time")
            futures = service.submit_many(requests)
            assert service.drain(timeout=60.0)
            stats = service.service_stats()
        assert isinstance(futures[4].exception(), Exception)
        healthy = [f for i, f in enumerate(futures) if i != 4]
        assert all(f.result().granted is not None for f in healthy)
        assert stats.errors == 1
        assert stats.completed == 10

        # The healthy neighbours decide exactly as a clean stream
        # decides at the same instants on a fresh engine.
        direct_engine, direct_sessions = build_engine()
        expected = [
            direct_engine.decide(
                direct_sessions[0], EXEC[i % len(EXEC)], float(i + 1),
                history=None,
            )
            for i in range(10)
            if i != 4
        ]
        assert [f.result() for f in healthy] == expected


class TestCancellation:
    def test_queued_futures_cancel_before_entering_a_sweep(self):
        gate = threading.Event()
        in_hook = threading.Event()

        def hook(decision):
            in_hook.set()
            assert gate.wait(timeout=30.0)

        engine, sessions = build_engine()
        try:
            service = DecisionService(
                engine, workers=1, queue_depth=4096,
                max_batch=64, max_wait_s=0.0, post_decision_hook=hook,
            )
            # Park the only worker in the hook (outside the shard lock).
            first = service.submit(sessions[0], EXEC[0], 1.0)
            assert in_hook.wait(timeout=30.0)
            # Everything submitted now queues behind the parked drain.
            queued = submit_wave(service, sessions)
            cancelled_ok = [f.cancel() for f in queued]
            assert any(cancelled_ok)
            gate.set()
            assert service.drain(timeout=60.0)
            stats = service.service_stats()
        finally:
            gate.set()
            service.shutdown()
        assert first.result().granted
        n_cancelled = sum(cancelled_ok)
        assert stats.cancelled == n_cancelled
        assert stats.completed + stats.cancelled == stats.submitted
        for ok, future in zip(cancelled_ok, queued):
            if ok:
                with pytest.raises(CancelledError):
                    future.result()
            else:
                assert future.result() is not None


class TestPrewarm:
    def test_prewarm_compiles_tables_with_zero_misses_after(self):
        clear_table_cache()
        engine, sessions = build_engine()
        with DecisionService(
            engine, workers=2, queue_depth=4096,
            max_batch=64, max_wait_s=0.001, prewarm=EXEC,
        ) as service:
            _hits, misses_after_init, fallbacks0, entries = (
                table_cache_counters()
            )
            assert entries > 0  # prewarm actually compiled tables
            futures = submit_wave(service, sessions)
            assert service.drain(timeout=60.0)
            stats = service.service_stats()
            _hits, misses_after_load, fallbacks1, _ = table_cache_counters()
        assert all(f.exception() is None for f in futures)
        # Serving traffic after prewarm never misses the table cache.
        assert misses_after_load == misses_after_init
        assert fallbacks1 == fallbacks0
        assert stats.vector_decisions > 0

    def test_prewarm_true_warms_constraint_universes(self):
        clear_table_cache()
        engine, _sessions = build_engine()
        with DecisionService(engine, prewarm=True):
            _hits, misses, _fallbacks, entries = table_cache_counters()
        assert entries > 0
        assert misses > 0  # the construction-time compile is the miss

    def test_prewarm_validation_still_applies(self):
        engine, _sessions = build_engine()
        with pytest.raises(ServiceError):
            DecisionService(engine, max_batch=0)
        with pytest.raises(ServiceError):
            DecisionService(engine, max_wait_s=-1.0)


class TestBatchObservability:
    def test_shard_stats_expose_vector_counters(self):
        engine, decisions, stats = run_service(
            max_batch=64, max_wait_s=0.001
        )
        rows = engine.shard_stats()
        for row in rows:
            assert {"vector_decisions", "vector_fallbacks"} <= row.keys()
        assert (
            sum(row["vector_decisions"] for row in rows)
            == stats.vector_decisions
            > 0
        )
        assert stats.as_dict()["vector_decisions"] == stats.vector_decisions
        assert stats.as_dict()["mean_batch_size"] == stats.mean_batch_size

    def test_batch_histograms_recorded_when_obs_enabled(self):
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            run_service(max_batch=64, max_wait_s=0.001)
            export = obs.export()
        finally:
            obs.disable()
            obs.reset()
        histograms = export["metrics"]["histograms"]
        batch_rows = [
            row for name, row in histograms.items()
            if name.startswith("service.batch_size{") and row["count"]
        ]
        occupancy_rows = [
            row for name, row in histograms.items()
            if name.startswith("service.queue_occupancy{") and row["count"]
        ]
        assert batch_rows and occupancy_rows
        assert any("buckets" in row for row in batch_rows)
        assert (
            sum(row["count"] for row in batch_rows)
            == sum(row["count"] for row in occupancy_rows)
        )


class TestBackpressure:
    def test_submit_many_nonblocking_rejects_overflow_per_future(self):
        gate = threading.Event()
        in_hook = threading.Event()

        def hook(decision):
            in_hook.set()
            assert gate.wait(timeout=30.0)

        engine, sessions = build_engine()
        try:
            service = DecisionService(
                engine, workers=1, queue_depth=3,
                max_batch=1, max_wait_s=0.0, post_decision_hook=hook,
            )
            # One request parks the worker; sessions[0] and sessions[2]
            # share a 4-shard ring position only if routed so — submit
            # everything to one session, hence one shard queue.
            first = service.submit(sessions[0], EXEC[0], 1.0)
            assert in_hook.wait(timeout=30.0)
            requests = [
                (sessions[0], EXEC[0], float(i + 2)) for i in range(8)
            ]
            futures = service.submit_many(requests, block=False)
            rejected = [
                f for f in futures
                if f.done() and isinstance(f.exception(), ServiceError)
            ]
            assert len(rejected) == len(requests) - 3  # queue_depth room
            gate.set()
            assert service.drain(timeout=60.0)
            stats = service.service_stats()
        finally:
            gate.set()
            service.shutdown()
        assert first.result() is not None
        assert stats.rejected == len(rejected)
        assert stats.completed + stats.cancelled == stats.submitted
        accepted = [f for f in futures if not isinstance(
            f.exception(), ServiceError
        )]
        assert all(f.result() is not None for f in accepted)


class TestAdaptiveController:
    def test_window_grows_under_depth_and_collapses_on_trickle(self):
        engine, sessions = build_engine(shards=1)
        with DecisionService(
            engine, workers=1, queue_depth=8192,
            max_batch=32, max_wait_s=0.005,
        ) as service:
            # Deep wave: drains come up at max_batch, the EWMA rises
            # past the goal and the window opens to the full budget.
            requests = [
                (sessions[0], EXEC[i % len(EXEC)], float(i + 1))
                for i in range(1024)
            ]
            service.submit_many(requests)
            assert service.drain(timeout=60.0)
            assert service._windows[0] == pytest.approx(0.005)

            # Trickle: one request at a time fully drained each time —
            # the EWMA decays and the window collapses to zero, so low
            # load pays no coalescing latency.
            t = 2000.0
            for _ in range(30):
                service.submit(sessions[0], EXEC[0], t).result(timeout=30.0)
                t += 1.0
            assert service._windows[0] == 0.0
        stats = service.service_stats()
        assert stats.max_batch_size <= 32
