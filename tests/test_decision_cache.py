"""The compiled-constraint cache and coreachability precomputation:
cached / precomputed decisions must be bit-identical to the uncached
BFS path, caches must invalidate when the policy changes, and the
counters must account for the hot path."""

from hypothesis import given, settings
from hypothesis import strategies as st

import tests.strategies as strat
from repro.coalition.resource import Resource
from repro.coalition.server import CoalitionServer
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.srac import reachability
from repro.srac.checker import (
    satisfiable_extension,
    satisfiable_extension_states,
)
from repro.srac.monitors import compile_constraint
from repro.srac.parser import parse_constraint
from repro.traces.trace import AccessKey

ALPHABET = tuple(
    AccessKey(op, res, srv)
    for op in ("read", "exec")
    for res in ("r1", "rsw")
    for srv in ("s1", "s2")
)


def make_engine(constraint_src="count(0, 5, [res = rsw])", **kwargs):
    policy = Policy()
    policy.add_user("u")
    policy.add_role("r")
    policy.add_permission(
        Permission(
            "p",
            op="exec",
            resource="rsw",
            spatial_constraint=parse_constraint(constraint_src),
        )
    )
    policy.assign_user("u", "r")
    policy.assign_permission("r", "p")
    engine = AccessControlEngine(policy, **kwargs)
    session = engine.authenticate("u", 0.0)
    engine.activate_role(session, "r", 0.0)
    return engine, session


class TestCompileCache:
    def test_interned_per_constraint(self):
        reachability.clear_caches()
        c1 = parse_constraint("count(0, 5, [res = rsw])")
        c2 = parse_constraint("count(0, 5, [res = rsw])")
        assert compile_constraint(c1) is compile_constraint(c2)
        stats = reachability.cache_stats()
        assert stats.compile_misses == 1
        assert stats.compile_hits == 1

    def test_cache_false_is_fresh(self):
        c = parse_constraint("count(0, 5, [res = rsw])")
        assert compile_constraint(c, cache=False) is not compile_constraint(
            c, cache=False
        )

    def test_clear(self):
        reachability.clear_caches()
        c = parse_constraint("exec rsw @ s1")
        first = compile_constraint(c)
        reachability.clear_caches()
        assert compile_constraint(c) is not first
        assert reachability.cache_stats().compile_misses == 1


class TestLiveSetSemantics:
    def test_live_set_matches_bfs_simple(self):
        constraint = parse_constraint("count(0, 2, [res = rsw])")
        compiled = compile_constraint(constraint, cache=False)
        universe = (AccessKey("exec", "rsw", "s1"),)
        live = reachability.live_set(compiled, universe)
        # Count monitor states: 0..3; 3 = saturated over the bound.
        for state in range(4):
            expected = satisfiable_extension_states(
                compiled, (state,), universe, use_cache=False
            )
            assert ((state,) in live) == expected

    def test_budget_exceeded_returns_none_and_counts_fallback(self):
        reachability.clear_caches()
        constraint = parse_constraint("count(0, 100000, [res = rsw])")
        compiled = compile_constraint(constraint, cache=False)
        universe = (AccessKey("exec", "rsw", "s1"),)
        assert compiled.state_space() > 50
        assert reachability.live_set(compiled, universe, state_budget=50) is None
        # The None outcome is cached; queries report fallback.
        verdict = reachability.satisfiable_states(
            compiled, (0,), universe, state_budget=50
        )
        assert verdict is None
        assert reachability.cache_stats().fallbacks >= 1
        # And the BFS fallback in the checker still answers correctly.
        assert satisfiable_extension_states(compiled, (0,), universe)

    def test_query_state_outside_alphabet_reachable_set(self):
        """History accesses outside the request alphabet can put
        monitors into states the alphabet alone cannot reach; the
        full-product live set must still answer correctly."""
        constraint = parse_constraint("count(0, 1, [res = rsw])")
        compiled = compile_constraint(constraint, cache=False)
        # Request alphabet selects nothing the counter matches.
        universe = (AccessKey("read", "r1", "s1"),)
        # History drove the counter over the bound (state 2): dead.
        state = compiled.run(
            (AccessKey("exec", "rsw", "s1"), AccessKey("exec", "rsw", "s2"))
        )
        bfs = satisfiable_extension_states(
            compiled, state, universe, use_cache=False
        )
        cached = satisfiable_extension_states(compiled, state, universe)
        assert cached == bfs is False

    @given(
        strat.constraints(max_leaves=5, expressible_only=False),
        strat.traces_over_alphabet(max_size=6),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_cached_equals_bfs(self, constraint, history):
        """For random constraints and history-induced states the
        precomputed live-set verdict is bit-identical to the BFS."""
        compiled = compile_constraint(constraint, cache=False)
        states = compiled.run(history)
        for universe in (ALPHABET, ALPHABET[:2], ()):
            bfs = satisfiable_extension_states(
                compiled, states, universe, use_cache=False
            )
            cached = satisfiable_extension_states(compiled, states, universe)
            assert cached == bfs

    @given(
        strat.constraints(max_leaves=5, expressible_only=False),
        strat.traces_over_alphabet(max_size=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_satisfiable_extension_cached_equals_uncached(
        self, constraint, history
    ):
        cached = satisfiable_extension(constraint, history, ALPHABET)
        uncached = satisfiable_extension(
            constraint, history, ALPHABET, use_cache=False
        )
        assert cached == uncached


class TestEngineEquivalence:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["exec"]),
                st.just("rsw"),
                st.sampled_from(["s1", "s2"]),
            ),
            max_size=10,
        ),
        strat.constraints(max_leaves=5, expressible_only=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_cached_engine_matches_uncached(self, stream, constraint):
        """Decisions of the cached engine (live sets + interned
        compilations) are bit-identical to the cache-free engine on
        random constraints and access streams."""

        def engine_with(use_srac_caches):
            policy = Policy()
            policy.add_user("u")
            policy.add_role("r")
            policy.add_permission(Permission("p", spatial_constraint=constraint))
            policy.assign_user("u", "r")
            policy.assign_permission("r", "p")
            engine = AccessControlEngine(policy, use_srac_caches=use_srac_caches)
            session = engine.authenticate("u", 0.0)
            engine.activate_role(session, "r", 0.0)
            return engine, session

        engine_a, session_a = engine_with(False)
        engine_b, session_b = engine_with(True)
        for i, triple in enumerate(stream):
            access = AccessKey(*triple)
            plain = engine_a.decide(session_a, access, float(i), history=None)
            cached = engine_b.decide(session_b, access, float(i), history=None)
            assert plain.granted == cached.granted
            if plain.granted:
                engine_a.observe(session_a, access)
                engine_b.observe(session_b, access)

    def test_decide_batch_matches_sequential(self):
        engine_a, session_a = make_engine()
        engine_b, session_b = make_engine()
        stream = [("exec", "rsw", f"s{i % 3}") for i in range(8)]
        sequential = []
        for i, access in enumerate(stream):
            decision = engine_a.decide(
                session_a, access, float(i), history=None
            )
            if decision.granted:
                engine_a.observe(session_a, AccessKey(*access))
            sequential.append(decision.granted)
        batched = engine_b.decide_batch(
            session_b, stream, 0.0, dt=1.0, observe_granted=True
        )
        assert [d.granted for d in batched] == sequential
        assert session_b.observed == session_a.observed

    def test_fast_path_denies_at_other_server(self):
        """The flagship Example 3.5 behaviour survives the fast path."""
        engine, session = make_engine()
        for _ in range(5):
            engine.observe(session, AccessKey("exec", "rsw", "s1"))
        assert not engine.decide(
            session, ("exec", "rsw", "s2"), 1.0, history=None
        ).granted
        assert engine.cache_stats().live_hits >= 1


class TestCacheInvalidation:
    def test_policy_mutation_bumps_version(self):
        policy = Policy()
        v0 = policy.version
        policy.add_user("u")
        policy.add_role("r")
        policy.assign_user("u", "r")
        assert policy.version > v0

    def test_candidates_refresh_on_new_grant(self):
        """A permission granted after decisions have been cached must
        be seen by the very next decision."""
        engine, session = make_engine()
        denied = engine.decide(session, ("read", "r1", "s1"), 0.0, history=None)
        assert not denied.granted
        engine.policy.add_permission(Permission("p2", op="read", resource="r1"))
        engine.policy.assign_permission("r", "p2")
        # Re-activating the role arms the new permission's tracker.
        engine.activate_role(session, "r", 1.0)
        granted = engine.decide(session, ("read", "r1", "s1"), 1.0, history=None)
        assert granted.granted

    def test_constraint_replacement_changes_decisions(self):
        """Replacing a permission's spatial constraint invalidates the
        compiled/live-set entries keyed on the old constraint."""
        engine, session = make_engine("count(0, 5, [res = rsw])")
        access = AccessKey("exec", "rsw", "s1")
        for i in range(3):
            assert engine.decide(session, access, float(i), history=None).granted
            engine.observe(session, access)
        engine.policy.replace_permission(
            Permission(
                "p",
                op="exec",
                resource="rsw",
                spatial_constraint=parse_constraint("count(0, 4, [res = rsw])"),
            )
        )
        assert engine.decide(session, access, 3.0, history=None).granted
        engine.observe(session, access)
        # Four observed; the tightened bound of 4 now denies the fifth.
        assert not engine.decide(session, access, 4.0, history=None).granted

    def test_invalidate_caches_clears_derived_state(self):
        engine, session = make_engine()
        engine.decide(session, ("exec", "rsw", "s1"), 0.0, history=None)
        assert engine._extension_cache
        engine.invalidate_caches()
        assert not engine._extension_cache
        assert not engine._candidates_cache
        assert not session.monitor_cache
        # Still decides correctly after the purge.
        assert engine.decide(
            session, ("exec", "rsw", "s1"), 1.0, history=None
        ).granted


class TestObservedStorage:
    def test_observed_is_tuple_view_over_list(self):
        engine, session = make_engine()
        access = AccessKey("exec", "rsw", "s1")
        engine.observe(session, access)
        engine.observe(session, access)
        assert session.observed == (access, access)
        assert isinstance(session.observed, tuple)
        # Memoised view: same object until the next observation.
        assert session.observed is session.observed

    def test_observed_setter_resets_monitors(self):
        engine, session = make_engine("count(0, 2, [res = rsw])")
        access = AccessKey("exec", "rsw", "s1")
        assert engine.decide(session, access, 0.0, history=None).granted
        session.observed = (access, access)
        # Monitor cache was rebuilt from the assigned history: the
        # count is at the bound, so the next request is denied.
        assert not engine.decide(session, access, 1.0, history=None).granted
        assert session.observed == (access, access)


class TestStatsAndPrewarm:
    def test_cache_stats_counts_hot_path(self):
        engine, session = make_engine()
        for i in range(10):
            engine.decide(session, ("exec", "rsw", "s1"), float(i), history=None)
        stats = engine.cache_stats()
        assert stats.live_hits == 10
        assert stats.live_fallbacks == 0
        assert stats.candidate_hits == 9
        assert stats.candidate_misses == 1
        assert stats.as_dict()["live_hits"] == 10

    def test_prewarm_from_server_alphabet(self):
        engine, session = make_engine()
        server = CoalitionServer(
            "s1", resources=[Resource("rsw", operations=("exec",))]
        )
        alphabet = server.access_alphabet()
        assert alphabet == (AccessKey("exec", "rsw", "s1"),)
        warmed = engine.prewarm(alphabet)
        assert warmed == 1
        assert engine.cache_stats().extension_entries == 1
        # The first decision is already a pure lookup.
        engine.decide(session, ("exec", "rsw", "s1"), 0.0, history=None)
        assert engine.cache_stats().live_hits == 1

    def test_uncached_engine_reports_no_live_hits(self):
        engine, session = make_engine(use_srac_caches=False)
        engine.decide(session, ("exec", "rsw", "s1"), 0.0, history=None)
        stats = engine.cache_stats()
        assert stats.live_hits == 0
        assert stats.live_fallbacks == 0
