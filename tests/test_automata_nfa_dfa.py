"""Unit tests for the NFA/DFA substrate."""

import pytest

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA, NFABuilder
from repro.errors import AutomatonError


def nfa_ab_star():
    """NFA for (ab)* over {'a','b'}."""
    b = NFABuilder()
    s0, s1 = b.add_states(2)
    b.add_edge(s0, "a", s1)
    b.add_edge(s1, "b", s0)
    return b.build(s0, [s0])


def nfa_with_eps():
    """ε-NFA for a? b  (optional a then b)."""
    b = NFABuilder()
    s0, s1, s2 = b.add_states(3)
    b.add_edge(s0, "a", s1)
    b.add_eps(s0, s1)
    b.add_edge(s1, "b", s2)
    return b.build(s0, [s2])


class TestNFABuilder:
    def test_add_state_indices_are_dense(self):
        b = NFABuilder()
        assert b.add_state() == 0
        assert b.add_state() == 1
        assert b.n_states == 2

    def test_edge_to_unknown_state_rejected(self):
        b = NFABuilder()
        b.add_state()
        with pytest.raises(AutomatonError):
            b.add_edge(0, "a", 5)
        with pytest.raises(AutomatonError):
            b.add_eps(3, 0)

    def test_build_validates_start_and_accepts(self):
        b = NFABuilder()
        b.add_state()
        with pytest.raises(AutomatonError):
            b.build(7, [0])
        with pytest.raises(AutomatonError):
            b.build(0, [9])

    def test_embed_preserves_language(self):
        inner = nfa_ab_star()
        b = NFABuilder()
        mapping = b.embed(inner)
        nfa = b.build(mapping[inner.start], [mapping[a] for a in inner.accepts])
        assert nfa.accepts_word(["a", "b", "a", "b"])
        assert not nfa.accepts_word(["a"])


class TestNFAExecution:
    def test_accepts_and_rejects(self):
        nfa = nfa_ab_star()
        assert nfa.accepts_word([])
        assert nfa.accepts_word(["a", "b"])
        assert nfa.accepts_word(["a", "b", "a", "b"])
        assert not nfa.accepts_word(["a"])
        assert not nfa.accepts_word(["b", "a"])
        assert not nfa.accepts_word(["a", "b", "c"])

    def test_epsilon_closure(self):
        nfa = nfa_with_eps()
        assert nfa.epsilon_closure(0) == {0, 1}
        assert nfa.epsilon_closure(2) == {2}

    def test_epsilon_nfa_acceptance(self):
        nfa = nfa_with_eps()
        assert nfa.accepts_word(["b"])
        assert nfa.accepts_word(["a", "b"])
        assert not nfa.accepts_word(["a"])
        assert not nfa.accepts_word(["a", "a", "b"])

    def test_alphabet(self):
        assert nfa_ab_star().alphabet() == {"a", "b"}

    def test_shortest_word(self):
        assert nfa_ab_star().shortest_word() == ()
        assert nfa_with_eps().shortest_word() == ("b",)

    def test_shortest_word_empty_language(self):
        b = NFABuilder()
        b.add_state()
        nfa = b.build(0, [])
        assert nfa.shortest_word() is None
        assert nfa.is_empty()

    def test_words_up_to(self):
        words = set(nfa_ab_star().words_up_to(4))
        assert words == {(), ("a", "b"), ("a", "b", "a", "b")}

    def test_words_up_to_dedup(self):
        # Two paths for the same word must yield it once.
        b = NFABuilder()
        s0, s1, s2, s3 = b.add_states(4)
        b.add_edge(s0, "a", s1)
        b.add_edge(s0, "a", s2)
        b.add_edge(s1, "b", s3)
        b.add_edge(s2, "b", s3)
        nfa = b.build(s0, [s3])
        assert list(nfa.words_up_to(3)) == [("a", "b")]


class TestDFA:
    def make_even_as(self):
        """DFA accepting words over {a,b} with an even number of a's."""
        return DFA([{"a": 1, "b": 0}, {"a": 0, "b": 1}], 0, [0])

    def test_accepts(self):
        dfa = self.make_even_as()
        assert dfa.accepts_word([])
        assert dfa.accepts_word(["a", "a"])
        assert dfa.accepts_word(["b", "a", "b", "a"])
        assert not dfa.accepts_word(["a"])

    def test_partial_transitions_reject(self):
        dfa = DFA([{"a": 1}, {}], 0, [1])
        assert dfa.accepts_word(["a"])
        assert not dfa.accepts_word(["b"])
        assert not dfa.accepts_word(["a", "a"])

    def test_validation(self):
        with pytest.raises(AutomatonError):
            DFA([{}], 5, [])
        with pytest.raises(AutomatonError):
            DFA([{}], 0, [3])
        with pytest.raises(AutomatonError):
            DFA([{"a": 9}], 0, [0])

    def test_reachable_and_trim(self):
        dfa = DFA([{"a": 1}, {}, {"a": 1}], 0, [1, 2])
        assert dfa.reachable_states() == {0, 1}
        trimmed = dfa.trim()
        assert trimmed.n_states == 2
        assert trimmed.accepts_word(["a"])

    def test_completed_adds_dead_state(self):
        dfa = DFA([{"a": 0}], 0, [0])
        total = dfa.completed({"a", "b"})
        assert total.n_states == 2
        assert not total.accepts_word(["b"])
        assert total.accepts_word(["a", "a"])

    def test_completed_noop_when_total(self):
        dfa = self.make_even_as()
        assert dfa.completed({"a", "b"}) is dfa

    def test_complement(self):
        dfa = self.make_even_as()
        comp = dfa.complement({"a", "b"})
        for word in ([], ["a"], ["a", "b"], ["a", "a"], ["b", "b", "a"]):
            assert dfa.accepts_word(word) != comp.accepts_word(word)

    def test_is_empty(self):
        assert DFA([{}], 0, []).is_empty()
        assert not self.make_even_as().is_empty()

    def test_shortest_word(self):
        dfa = DFA([{"a": 1}, {"b": 2}, {}], 0, [2])
        assert dfa.shortest_word() == ("a", "b")
        assert DFA([{}], 0, [0]).shortest_word() == ()
        assert DFA([{}], 0, []).shortest_word() is None

    def test_words_up_to(self):
        dfa = self.make_even_as()
        words = set(dfa.words_up_to(2))
        assert words == {(), ("b",), ("a", "a"), ("b", "b")}
