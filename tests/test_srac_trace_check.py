"""Tests for trace satisfaction (Definition 3.6) and the monitor
compilation, including their agreement on random inputs."""

from hypothesis import given, settings

import tests.strategies as strat
from repro.srac.ast import (
    And,
    Atom,
    Bottom,
    Count,
    Implies,
    Not,
    Or,
    Ordered,
    Top,
)
from repro.srac.monitors import (
    AtomMonitor,
    CountMonitor,
    OrderedMonitor,
    compile_constraint,
)
from repro.srac.parser import parse_constraint
from repro.srac.selection import SelectAll, select_resource
from repro.srac.trace_check import trace_satisfies
from repro.traces.trace import AccessKey

A = AccessKey("read", "r1", "s1")
B = AccessKey("write", "r2", "s1")
C = AccessKey("exec", "r3", "s2")


class TestDefinition36:
    """Each case of Definition 3.6, directly."""

    def test_top_and_bottom(self):
        assert trace_satisfies((), Top())
        assert not trace_satisfies((), Bottom())
        assert trace_satisfies((A,), Top())

    def test_atom_membership(self):
        assert trace_satisfies((A, B), Atom(A))
        assert not trace_satisfies((B,), Atom(A))
        assert not trace_satisfies((), Atom(A))

    def test_atom_requires_proof(self):
        proved = {B}
        assert not trace_satisfies((A, B), Atom(A), proofs=lambda a: a in proved)
        assert trace_satisfies((A, B), Atom(B), proofs=lambda a: a in proved)

    def test_ordered(self):
        assert trace_satisfies((A, B), Ordered(A, B))
        assert trace_satisfies((A, C, B), Ordered(A, B))
        assert not trace_satisfies((B, A), Ordered(A, B))
        assert not trace_satisfies((A,), Ordered(A, B))

    def test_ordered_requires_both_proofs(self):
        assert not trace_satisfies((A, B), Ordered(A, B), proofs=lambda a: a == A)
        assert trace_satisfies((A, B), Ordered(A, B), proofs=lambda a: True)

    def test_count_window(self):
        c = Count(1, 2, select_resource("r1"))
        assert not trace_satisfies((), c)
        assert trace_satisfies((A,), c)
        assert trace_satisfies((A, A), c)
        assert not trace_satisfies((A, A, A), c)

    def test_count_unbounded(self):
        c = Count(2, None, SelectAll())
        assert not trace_satisfies((A,), c)
        assert trace_satisfies((A, B), c)
        assert trace_satisfies((A, B, C, A), c)

    def test_count_zero_lower_bound_on_empty(self):
        assert trace_satisfies((), Count(0, 5, SelectAll()))

    def test_boolean_connectives(self):
        assert trace_satisfies((A, B), And(Atom(A), Atom(B)))
        assert not trace_satisfies((A,), And(Atom(A), Atom(B)))
        assert trace_satisfies((A,), Or(Atom(A), Atom(B)))
        assert trace_satisfies((B,), Not(Atom(A)))
        assert trace_satisfies((B,), Implies(Atom(A), Atom(C)))  # vacuous
        assert trace_satisfies((A, C), Implies(Atom(A), Atom(C)))
        assert not trace_satisfies((A,), Implies(Atom(A), Atom(C)))

    def test_example_35_rsw(self):
        """Example 3.5: RSW accessed at most 5 times, anywhere."""
        constraint = parse_constraint("count(0, 5, [res = rsw])")
        rsw_s1 = AccessKey("exec", "rsw", "s1")
        rsw_s2 = AccessKey("exec", "rsw", "s2")
        assert trace_satisfies((rsw_s1,) * 3 + (rsw_s2,) * 2, constraint)
        # 6 accesses spread over two servers violate it: the constraint
        # is *coordinated* — it does not matter where the object runs.
        assert not trace_satisfies((rsw_s1,) * 3 + (rsw_s2,) * 3, constraint)

    def test_proof_filtering_equivalence(self):
        """Checking with proofs equals checking the proved sub-trace."""
        trace = (A, B, C, A)
        proved = {A, C}
        constraint = parse_constraint(
            "read r1 @ s1 & count(0, 1, [res = r2]) | exec r3 @ s2 >> read r1 @ s1"
        )
        filtered = tuple(a for a in trace if a in proved)
        assert trace_satisfies(trace, constraint, proofs=lambda a: a in proved) == \
            trace_satisfies(filtered, constraint)


class TestMonitors:
    def test_atom_monitor(self):
        m = AtomMonitor(A)
        assert not m.accepting(m.initial())
        state = m.step(m.initial(), B)
        assert not m.accepting(state)
        state = m.step(state, A)
        assert m.accepting(state)
        assert m.accepting(m.step(state, B))  # latched
        assert m.size() == 2

    def test_ordered_monitor(self):
        m = OrderedMonitor(A, B)
        s = m.run((B, A))  # wrong order
        assert not m.accepting(s)
        s = m.run((A, C, B))
        assert m.accepting(s)
        assert m.size() == 3

    def test_ordered_monitor_same_access(self):
        m = OrderedMonitor(A, A)
        assert not m.accepting(m.run((A,)))
        assert m.accepting(m.run((A, A)))

    def test_count_monitor_saturation(self):
        m = CountMonitor(0, 2, SelectAll().matches)
        state = m.run((A, A, A, A, A))
        assert state == 3  # saturated at hi+1
        assert not m.accepting(state)
        assert m.size() == 4

    def test_count_monitor_unbounded_saturation(self):
        m = CountMonitor(2, None, SelectAll().matches)
        assert m.run((A,) * 100) == 2
        assert m.accepting(2)
        assert not m.accepting(1)

    def test_compiled_shares_duplicate_monitors(self):
        c = And(Atom(A), Or(Atom(A), Atom(B)))
        compiled = compile_constraint(c)
        assert len(compiled.monitors) == 2

    def test_state_space(self):
        c = And(Atom(A), Count(0, 2, SelectAll()))
        compiled = compile_constraint(c)
        assert compiled.state_space() == 2 * 4

    @given(
        strat.constraints(max_leaves=8, expressible_only=False),
        strat.traces_over_alphabet(8),
    )
    @settings(max_examples=300, deadline=None)
    def test_monitor_semantics_matches_definition(self, constraint, trace):
        """The compiled monitor evaluation agrees with the direct
        recursive Definition 3.6 evaluation on every trace."""
        compiled = compile_constraint(constraint)
        assert compiled.satisfied_by(trace) == trace_satisfies(trace, constraint)
