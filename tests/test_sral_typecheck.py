"""Tests for the SRAL static type checker."""

import pytest
from hypothesis import given, settings

import tests.strategies as strat
from repro.agent.interpreter import evaluate_expr, interpret
from repro.errors import AgentError
from repro.sral.parser import parse_expr, parse_program
from repro.sral.typecheck import (
    BOOL,
    INT,
    STR,
    SralTypeError,
    typecheck_expr,
    typecheck_program,
)


class TestExpressions:
    def test_literals(self):
        assert typecheck_expr(parse_expr("3"), {}) == INT
        assert typecheck_expr(parse_expr("true"), {}) == BOOL
        assert typecheck_expr(parse_expr('"s"'), {}) == STR

    def test_variables(self):
        assert typecheck_expr(parse_expr("x"), {"x": INT}) == INT
        with pytest.raises(SralTypeError):
            typecheck_expr(parse_expr("nope"), {})

    def test_arithmetic(self):
        assert typecheck_expr(parse_expr("1 + 2 * 3"), {}) == INT
        assert typecheck_expr(parse_expr('"a" + "b"'), {}) == STR
        with pytest.raises(SralTypeError):
            typecheck_expr(parse_expr('1 + "a"'), {})
        with pytest.raises(SralTypeError):
            typecheck_expr(parse_expr("true + 1"), {})

    def test_comparisons(self):
        assert typecheck_expr(parse_expr("1 < 2"), {}) == BOOL
        with pytest.raises(SralTypeError):
            typecheck_expr(parse_expr('"a" < "b"'), {})

    def test_equality_requires_same_type(self):
        assert typecheck_expr(parse_expr("1 == 2"), {}) == BOOL
        assert typecheck_expr(parse_expr('"a" != "b"'), {}) == BOOL
        with pytest.raises(SralTypeError):
            typecheck_expr(parse_expr("1 == true"), {})

    def test_boolean_ops(self):
        assert typecheck_expr(parse_expr("true and not false"), {}) == BOOL
        with pytest.raises(SralTypeError):
            typecheck_expr(parse_expr("1 and true"), {})
        with pytest.raises(SralTypeError):
            typecheck_expr(parse_expr("not 1"), {})

    def test_unary_minus(self):
        assert typecheck_expr(parse_expr("-3"), {}) == INT
        assert typecheck_expr(parse_expr("-(1)"), {}) == INT
        with pytest.raises(SralTypeError):
            typecheck_expr(parse_expr("-true"), {})


class TestPrograms:
    def test_well_typed_program(self):
        env = typecheck_program(
            parse_program(
                "n := 0 ; while n < 3 do { read r1 @ s1 ; n := n + 1 } ; "
                "done := n == 3"
            )
        )
        assert env == {"n": INT, "done": BOOL}

    def test_rebinding_at_other_type_rejected(self):
        with pytest.raises(SralTypeError):
            typecheck_program(parse_program("x := 1 ; x := true"))

    def test_condition_must_be_bool(self):
        with pytest.raises(SralTypeError):
            typecheck_program(parse_program("if 3 then skip else skip"))
        with pytest.raises(SralTypeError):
            typecheck_program(parse_program("while 3 do skip"))

    def test_use_before_assignment(self):
        with pytest.raises(SralTypeError):
            typecheck_program(parse_program("y := x + 1"))

    def test_seed_environment(self):
        env = typecheck_program(parse_program("y := x + 1"), env={"x": INT})
        assert env["y"] == INT

    def test_branch_join_keeps_agreements_only(self):
        env = typecheck_program(
            parse_program(
                'if c then { a := 1 ; b := 1 } else { a := 2 ; b := "s" }'
            ),
            env={"c": BOOL},
        )
        assert env.get("a") == INT
        assert "b" not in env  # branches disagree

    def test_channel_type_inference(self):
        env = typecheck_program(
            parse_program("ch ! 41 ; ch ? x ; y := x + 1")
        )
        assert env == {"x": INT, "y": INT}

    def test_channel_type_conflict(self):
        with pytest.raises(SralTypeError):
            typecheck_program(parse_program('ch ! 1 ; ch ! "s"'))

    def test_receive_from_unknown_channel(self):
        with pytest.raises(SralTypeError):
            typecheck_program(parse_program("ch ? x"))

    def test_loop_second_iteration_mismatch(self):
        # First iteration sees x:int from outside; the body re-binds it
        # as bool, breaking iteration two.
        with pytest.raises(SralTypeError):
            typecheck_program(
                parse_program("x := 1 ; while c do x := x == 1"),
                env={"c": BOOL},
            )

    def test_par_does_not_leak_clone_bindings(self):
        env = typecheck_program(parse_program("(x := 1 || y := 2) ; skip"))
        assert "x" not in env and "y" not in env

    def test_par_branches_still_checked(self):
        with pytest.raises(SralTypeError):
            typecheck_program(parse_program("(x := 1 + true || skip)"))


class TestSoundness:
    """If the checker accepts, the interpreter never raises a type
    error on communication-free programs (loops bounded)."""

    @given(strat.programs(max_leaves=10, with_par=False, with_comm=False))
    @settings(max_examples=200, deadline=None)
    def test_accepted_programs_run_clean(self, program):
        try:
            typecheck_program(program)
        except SralTypeError:
            return  # rejected: no guarantee claimed
        gen = interpret(program, {}, max_loop_iterations=50)
        try:
            request = next(gen)
            while True:
                request = gen.send(None)
        except StopIteration:
            pass
        except AgentError as error:
            # The only permitted dynamic failures are value errors the
            # type system does not track (division by zero, loop bound).
            message = str(error)
            assert "division by zero" in message or "loop iterations" in message
