"""Membership-churn chaos suite: seeded workloads while the topology moves.

Each scenario runs one seeded agent workload while a deterministic
:class:`~repro.faults.churn.MembershipSchedule` joins, drains, evicts
and merges coalition members mid-run.  Everything (workload, churn
times, joined-server construction) is a pure function of the seed, so
failures reproduce exactly.  The base seed can be shifted via
``REPRO_CHAOS_SEED`` (the dedicated CI job pins it).

Asserted per scenario:

(a) **the run survives** — no deadlock, no exception escapes; agents
    whose server departed fail individually with a migration error,
    everyone else finishes.
(b) **cross-epoch no-overgrant** — every granted access is replayed
    against a from-scratch engine whose history holds only the proofs
    admissible at the decision's epoch (``assert_no_overgrant``); a
    denial there means the live run consumed a proof from a server
    evicted in an earlier epoch.
(c) **epoch bookkeeping** — proof chains verify (epochs are inside the
    digest), per-agent proof epochs never regress, and the final epoch
    equals the number of applied membership events.
"""

from __future__ import annotations

import os
import random

import pytest

from tests.faultload import (
    GATE_SERVER,
    HUB_SERVER,
    SERVERS,
    assert_no_overgrant,
    churn_workload,
    decision_log,
    make_churn_coalition,
    make_churn_policy,
    make_churn_server,
    run_churn_workload,
)
from repro.agent.naplet import NapletStatus
from repro.coalition.network import Coalition
from repro.errors import CoalitionError, MigrationError
from repro.faults import ChurnEvent, MembershipSchedule
from repro.rbac.engine import AccessControlEngine

BASE_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def random_churn(seed: int) -> MembershipSchedule:
    """A deterministic mixed schedule: 1-2 joins, at most one removal
    (graceful or abrupt, never the gate server so gated decisions keep
    flowing), and sometimes a merge of a freshly built coalition."""
    rng = random.Random(seed * 7919 + 3)
    events: list[ChurnEvent] = []
    for i in range(rng.randint(1, 2)):
        name = f"j{i}"
        events.append(
            ChurnEvent(
                at=rng.uniform(2.0, 20.0),
                kind="join",
                make_server=lambda name=name: make_churn_server(name),
            )
        )
    removal = rng.choice((None, ("leave", "s3"), ("evict", "s3"), ("evict", HUB_SERVER)))
    if removal is not None:
        kind, victim = removal
        events.append(ChurnEvent(at=rng.uniform(3.0, 22.0), kind=kind, server=victim))
    if rng.random() < 0.4:
        events.append(
            ChurnEvent(
                at=rng.uniform(4.0, 24.0),
                kind="merge",
                make_coalition=lambda: Coalition(
                    [make_churn_server("m1"), make_churn_server("m2")]
                ),
            )
        )
    return MembershipSchedule(events)


def assert_survived(report, naplets) -> None:
    """(a): nobody deadlocks; the only tolerated failure is an agent
    stranded by a departed server."""
    assert report.deadlocked == ()
    for naplet in naplets:
        assert naplet.status in (NapletStatus.FINISHED, NapletStatus.FAILED), (
            naplet.naplet_id,
            naplet.status,
        )
        if naplet.status is NapletStatus.FAILED:
            assert isinstance(naplet.error, (MigrationError, CoalitionError)), (
                naplet.naplet_id,
                naplet.error,
            )


def assert_epochs_coherent(sim, naplets, n_events: int) -> None:
    """(c): chains verify, epochs never regress, final epoch counted."""
    assert sim.churn_applied == n_events
    assert sim.coalition.membership_epoch >= n_events
    for naplet in naplets:
        assert naplet.registry.verify_chain()
        epochs = [p.epoch for p in naplet.registry]
        assert epochs == sorted(epochs), (naplet.naplet_id, epochs)
        for epoch in epochs:
            assert 0 <= epoch <= sim.coalition.membership_epoch


class TestRandomChurn:
    """Mixed random schedules; explicit-history and incremental modes."""

    @pytest.mark.parametrize("seed", [BASE_SEED + i for i in range(10)])
    @pytest.mark.parametrize("incremental", [False, True])
    def test_random_schedule_never_overgrants(self, seed, incremental):
        churn = random_churn(seed)
        n_events = len(churn)
        sim, report, naplets = run_churn_workload(
            churn_workload(seed), churn=churn, incremental=incremental
        )
        assert_survived(report, naplets)
        assert_epochs_coherent(sim, naplets, n_events)
        assert_no_overgrant(naplets, sim.coalition)

    @pytest.mark.parametrize("seed", [BASE_SEED + 100 + i for i in range(4)])
    def test_seed_determinism(self, seed):
        """Same seed, fresh schedule objects: bit-identical decisions,
        epochs and proof chains across two runs."""
        runs = []
        for _ in range(2):
            sim, _report, naplets = run_churn_workload(
                churn_workload(seed), churn=random_churn(seed)
            )
            runs.append(
                (
                    decision_log(naplets),
                    sim.coalition.membership_epoch,
                    sim.churn_applied,
                    [
                        [(p.access, p.epoch, p.local_time) for p in n.registry]
                        for n in naplets
                    ],
                )
            )
        assert runs[0] == runs[1]


class TestJoinDuringFlush:
    """A server joins while proof batches are coalescing: the batcher
    must pick up the new destination and deliver post-join proofs."""

    @pytest.mark.parametrize("seed", [BASE_SEED + 200 + i for i in range(5)])
    def test_join_receives_post_join_proofs(self, seed):
        rng = random.Random(seed * 31 + 7)
        join_at = rng.uniform(3.0, 12.0)
        churn = MembershipSchedule(
            [
                ChurnEvent(
                    at=join_at,
                    kind="join",
                    make_server=lambda: make_churn_server("j1"),
                )
            ]
        )
        sim, report, naplets = run_churn_workload(
            churn_workload(seed),
            churn=churn,
            proof_propagation="batched",
            proof_batch_size=2,
        )
        assert_survived(report, naplets)
        assert "j1" in sim.coalition
        assert sim.proof_batch.stats()["destinations_added"] == 1
        # Every proof issued at the post-join epoch (at another server)
        # reaches the joiner by the end-of-run flush.
        joined = sim.coalition.server("j1")
        post_join = [
            p
            for n in naplets
            for p in n.registry
            if p.epoch >= 1 and p.access.server != "j1"
        ]
        for proof in post_join:
            assert joined.knows_proof(proof), proof
        assert_no_overgrant(naplets, sim.coalition)


class TestLeaveWithPendingBatches:
    """A graceful leave while batches for the leaver are still pending:
    the hand-off flush drains them, and the leaver's proofs stay valid."""

    @pytest.mark.parametrize("seed", [BASE_SEED + 300 + i for i in range(5)])
    def test_leave_drains_and_keeps_proofs_admissible(self, seed):
        rng = random.Random(seed * 53 + 1)
        churn = MembershipSchedule(
            [ChurnEvent(at=rng.uniform(4.0, 16.0), kind="leave", server="s3")]
        )
        # Large batch + long latency: nothing flushes before the leave,
        # so the hand-off path actually has pending proofs to drain.
        sim, report, naplets = run_churn_workload(
            churn_workload(seed),
            churn=churn,
            proof_propagation="batched",
            proof_batch_size=64,
            latency=10.0,
        )
        assert_survived(report, naplets)
        assert "s3" not in sim.coalition
        stats = sim.proof_batch.stats()
        # Whatever was pending for the leaver was either hand-off
        # delivered or accounted as dropped — never silently lost.
        assert stats["handoff_delivered"] + stats["handoff_dropped"] >= 0
        assert "s3" not in sim.proof_batch._pending
        # Graceful departure: the leaver's proofs remain admissible.
        assert sim.coalition.is_admissible("s3")
        assert sim.coalition.evicted_epoch("s3") is None
        assert_no_overgrant(naplets, sim.coalition)


class TestAbruptEviction:
    """The hub server is evicted mid-run: its proofs become
    inadmissible, so no later decision may be justified by them."""

    @pytest.mark.parametrize("seed", [BASE_SEED + 400 + i for i in range(6)])
    def test_eviction_mid_decide_never_overgrants(self, seed):
        rng = random.Random(seed * 97 + 13)
        churn = MembershipSchedule(
            [ChurnEvent(at=rng.uniform(3.0, 14.0), kind="evict", server=HUB_SERVER)]
        )
        sim, report, naplets = run_churn_workload(
            churn_workload(seed), churn=churn
        )
        assert_survived(report, naplets)
        eviction_epoch = sim.coalition.evicted_epoch(HUB_SERVER)
        assert eviction_epoch == 1
        # The gated permission needs an admissible hub read; from the
        # eviction epoch on there can be none, so no gated grant may
        # carry an epoch at or past it.
        for naplet in naplets:
            for proof in naplet.registry:
                if proof.access.resource == "gated":
                    assert proof.epoch < eviction_epoch, (
                        f"{naplet.naplet_id} was granted {proof.access} at "
                        f"epoch {proof.epoch}, after the hub's eviction"
                    )
        assert_no_overgrant(naplets, sim.coalition)


class TestMergeLiveCoalitions:
    """A second live coalition (itself past epoch 0) is absorbed whole:
    epochs stay strictly ordered and the batcher follows."""

    @pytest.mark.parametrize("seed", [BASE_SEED + 500 + i for i in range(5)])
    def test_merge_absorbs_and_propagates(self, seed):
        rng = random.Random(seed * 151 + 29)

        def make_live_coalition():
            other = Coalition([make_churn_server("m1"), make_churn_server("m2")])
            # Make it *live*: a join bumps it past epoch 0 before the
            # merge, so the merged epoch must clear both sides.
            other.join(make_churn_server("m3"))
            return other

        merge_at = rng.uniform(4.0, 14.0)
        churn = MembershipSchedule(
            [ChurnEvent(at=merge_at, kind="merge", make_coalition=make_live_coalition)]
        )
        sim, report, naplets = run_churn_workload(
            churn_workload(seed),
            churn=churn,
            proof_propagation="batched",
            proof_batch_size=2,
        )
        assert_survived(report, naplets)
        for name in ("m1", "m2", "m3"):
            assert name in sim.coalition
        # merge epoch = max(self, other) + 1 = max(0, 1) + 1.
        assert sim.coalition.membership_epoch == 2
        assert sim.proof_batch.stats()["destinations_added"] == 3
        merged = sim.coalition.server("m1")
        for naplet in naplets:
            for proof in naplet.registry:
                if proof.epoch >= 2 and proof.access.server != "m1":
                    assert merged.knows_proof(proof), proof
        assert_no_overgrant(naplets, sim.coalition)


class TestOracleBite:
    """Deterministic scenarios proving the oracle and the epoch filter
    are not vacuous: the gated grant observably flips on eviction."""

    WORKLOAD = [("u0", f"read r1 @ {HUB_SERVER} ; exec gated @ {GATE_SERVER}", HUB_SERVER)]

    def test_gated_granted_without_churn(self):
        _sim, report, naplets = run_churn_workload(self.WORKLOAD)
        assert report.all_finished()
        (naplet,) = naplets
        assert ("exec", "gated", GATE_SERVER) in [
            tuple(p.access) for p in naplet.registry
        ]
        assert naplet.denials == []

    @pytest.mark.parametrize("incremental", [False, True])
    def test_eviction_flips_gated_to_deny(self, incremental):
        # The read lands at t=0 on the hub; the agent then migrates
        # (latency 2.0) and requests the gated access at t=3.  Evicting
        # the hub at t=2 makes the justifying read inadmissible first.
        churn = MembershipSchedule(
            [ChurnEvent(at=2.0, kind="evict", server=HUB_SERVER)]
        )
        sim, report, naplets = run_churn_workload(
            self.WORKLOAD, churn=churn, incremental=incremental
        )
        (naplet,) = naplets
        assert naplet.status is NapletStatus.FINISHED
        granted = [tuple(p.access) for p in naplet.registry]
        assert ("read", "r1", HUB_SERVER) in granted
        assert ("exec", "gated", GATE_SERVER) not in granted
        assert [tuple(d.access) for d in naplet.denials] == [
            ("exec", "gated", GATE_SERVER)
        ]
        assert_no_overgrant(naplets, sim.coalition)

    def test_oracle_catches_manufactured_overgrant(self):
        """Vacuity guard: a hand-built chain where a gated access was
        'granted' at an epoch past the hub's eviction must make the
        oracle fail."""
        from repro.agent.naplet import Naplet
        from repro.sral.parser import parse_program

        coalition = make_churn_coalition()
        coalition.evict(HUB_SERVER)  # epoch 1, evicted at epoch 1
        naplet = Naplet("u0", parse_program("read r1 @ s2"), roles=("member",))
        naplet.registry.record(("read", "r1", HUB_SERVER), 0.0, epoch=0)
        naplet.registry.record(("exec", "gated", GATE_SERVER), 1.0, epoch=1)
        with pytest.raises(AssertionError, match="OVERGRANT"):
            assert_no_overgrant([naplet], coalition)

    def test_full_history_would_have_granted(self):
        """The companion direction: the manufactured chain above is
        *only* wrong because of the epoch filter — with the evicted
        read left in, a fresh engine grants the gated access."""
        engine = AccessControlEngine(make_churn_policy(["u0"]))
        session = engine.authenticate("u0", 0.0)
        engine.activate_role(session, "member", 0.0)
        unfiltered = (("read", "r1", HUB_SERVER),)
        decision = engine.decide(
            session, ("exec", "gated", GATE_SERVER), 1.0, history=unfiltered
        )
        assert decision.granted
