"""Tests for owner-scope coordination: companion agents of one owner
share constraint budgets (paper Section 1: decisions depend on "the
previous access actions of the device and even of its companions")."""

import pytest

from repro.agent.naplet import Naplet, NapletStatus
from repro.agent.scheduler import Simulation
from repro.agent.security import NapletSecurityManager
from repro.coalition.network import Coalition
from repro.coalition.resource import Resource
from repro.coalition.server import CoalitionServer
from repro.errors import RbacError
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.sral.parser import parse_program
from repro.srac.parser import parse_constraint
from repro.traces.trace import AccessKey

RSW = AccessKey("exec", "rsw", "s1")


def make_engine(scope):
    policy = Policy()
    policy.add_user("team-owner")
    policy.add_user("other-owner")
    policy.add_role("trial")
    policy.add_permission(
        Permission(
            "p_rsw",
            op="exec",
            resource="rsw",
            spatial_constraint=parse_constraint("count(0, 5, [res = rsw])"),
        )
    )
    for user in ("team-owner", "other-owner"):
        policy.assign_user(user, "trial")
    policy.assign_permission("trial", "p_rsw")
    return AccessControlEngine(policy, coordination_scope=scope)


def session_for(engine, user="team-owner"):
    session = engine.authenticate(user, 0.0)
    engine.activate_role(session, "trial", 0.0)
    return session


class TestEngineOwnerScope:
    def test_invalid_scope_rejected(self):
        with pytest.raises(RbacError):
            make_engine("galaxy")

    def test_companions_share_budget(self):
        engine = make_engine("owner")
        companion_a = session_for(engine)
        companion_b = session_for(engine)
        # Companion A runs the trial software three times...
        for i in range(3):
            assert engine.decide(companion_a, RSW, float(i), history=None).granted
            engine.observe(companion_a, RSW)
        # ... companion B gets only the remaining two.
        assert engine.decide(companion_b, RSW, 4.0, history=None).granted
        engine.observe(companion_b, RSW)
        assert engine.decide(companion_b, RSW, 5.0, history=None).granted
        engine.observe(companion_b, RSW)
        denied_b = engine.decide(companion_b, RSW, 6.0, history=None)
        assert not denied_b.granted
        # And A is now denied as well — the budget is the owner's.
        assert not engine.decide(companion_a, RSW, 7.0, history=None).granted

    def test_subject_scope_keeps_budgets_separate(self):
        engine = make_engine("subject")
        companion_a = session_for(engine)
        companion_b = session_for(engine)
        for i in range(5):
            engine.observe(companion_a, RSW)
        # A exhausted ITS budget; B is untouched.
        assert not engine.decide(companion_a, RSW, 1.0, history=None).granted
        assert engine.decide(companion_b, RSW, 1.0, history=None).granted

    def test_different_owners_do_not_interfere(self):
        engine = make_engine("owner")
        team = session_for(engine, "team-owner")
        other = session_for(engine, "other-owner")
        for _ in range(5):
            engine.observe(team, RSW)
        assert not engine.decide(team, RSW, 1.0, history=None).granted
        assert engine.decide(other, RSW, 1.0, history=None).granted

    def test_cache_created_after_history_sees_prior_accesses(self):
        engine = make_engine("owner")
        early = session_for(engine)
        for _ in range(5):
            engine.observe(early, RSW)
        late = session_for(engine)  # fresh session, cache built lazily
        assert not engine.decide(late, RSW, 1.0, history=None).granted


class TestClonedNapletsShareOwnerBudget:
    def test_par_clones_count_against_one_owner(self):
        """The ApplAgentProg pattern under owner scope: k clones share
        the RSW quota even though each clone is its own subject."""
        engine = make_engine("owner")
        coalition = Coalition(
            [CoalitionServer("s1", resources=[Resource("rsw")])]
        )
        manager = NapletSecurityManager(engine, incremental=True)
        sim = Simulation(coalition, security=manager, on_denied="skip")
        # Three clones, each attempting 2 runs: 6 attempts vs quota 5.
        program = parse_program(
            "{ exec rsw @ s1 ; exec rsw @ s1 } || "
            "{ exec rsw @ s1 ; exec rsw @ s1 } || "
            "{ exec rsw @ s1 ; exec rsw @ s1 }"
        )
        naplet = Naplet("team-owner", program, roles=("trial",), name="team")
        sim.add_naplet(naplet, "s1")
        report = sim.run()
        clones = [n for n in report.naplets if "/" in n.naplet_id]
        executed = sum(len(n.history()) for n in clones)
        denied = sum(len(n.denials) for n in clones)
        assert executed == 5  # exactly the owner-wide quota
        assert denied == 1

    def test_subject_scope_lets_each_clone_use_full_quota(self):
        engine = make_engine("subject")
        coalition = Coalition(
            [CoalitionServer("s1", resources=[Resource("rsw")])]
        )
        manager = NapletSecurityManager(engine, incremental=True)
        sim = Simulation(coalition, security=manager, on_denied="skip")
        program = parse_program(
            "{ exec rsw @ s1 ; exec rsw @ s1 } || "
            "{ exec rsw @ s1 ; exec rsw @ s1 }"
        )
        naplet = Naplet("team-owner", program, roles=("trial",), name="team")
        sim.add_naplet(naplet, "s1")
        report = sim.run()
        clones = [n for n in report.naplets if "/" in n.naplet_id]
        assert sum(len(n.history()) for n in clones) == 4  # nothing denied
