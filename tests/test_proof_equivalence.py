"""Differential suite: batched proof propagation ≡ eager propagation.

:class:`~repro.service.batching.ProofBatch` exists purely as a
performance optimisation — coalescing announcements must never change
*what* is decided, only how many delivery calls carry the proofs.
Each test replays one seeded workload (three roaming agents, a shared
count budget — see :mod:`tests.faultload`) under both propagation
modes and requires the per-agent decision logs (granted accesses plus
denial reasons, in program order) to be byte-identical.

A third leg runs the batched mode through a **zero-fault**
:class:`~repro.faults.transport.FaultyTransport`, pinning that the
retry-capable delivery path is itself outcome-neutral when no fault
fires.
"""

from __future__ import annotations

import pytest

from tests.faultload import decision_log, random_workload, run_workload
from repro.agent.naplet import NapletStatus
from repro.faults import FaultPlan, FaultyLink, ServerLifecycle

N_WORKLOADS = 50
SEEDS = list(range(1000, 1000 + N_WORKLOADS))


@pytest.mark.parametrize("seed", SEEDS)
def test_batched_equals_eager(seed):
    workload = random_workload(seed)
    _, eager_report, eager_naplets = run_workload(workload, "eager")
    _, batched_report, batched_naplets = run_workload(workload, "batched")
    assert decision_log(batched_naplets) == decision_log(eager_naplets)
    # Both modes finish every agent; batching never strands anyone.
    for naplets in (eager_naplets, batched_naplets):
        assert all(n.status is NapletStatus.FINISHED for n in naplets)
    assert batched_report.end_time == eager_report.end_time


@pytest.mark.parametrize("seed", SEEDS[::5])
def test_zero_fault_transport_is_outcome_neutral(seed):
    """A FaultyTransport with every fault rate at zero must behave
    exactly like the default DirectTransport path."""
    workload = random_workload(seed)
    _, _, eager_naplets = run_workload(workload, "eager")
    plan = FaultPlan(
        link=FaultyLink(drop=0.0, duplicate=0.0, seed=seed),
        lifecycle=ServerLifecycle(),
    )
    sim, report, naplets = run_workload(workload, "batched", faults=plan)
    assert decision_log(naplets) == decision_log(eager_naplets)
    assert report.deadlocked == ()
    stats = sim.proof_batch.stats()
    assert stats["failed_deliveries"] == 0
    assert stats["abandoned_batches"] == 0
    assert stats["pending"] == 0


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_batching_reduces_delivery_calls(seed):
    """The point of the optimisation: strictly fewer delivery calls
    than proofs announced (for a non-trivial workload)."""
    workload = random_workload(seed)
    sim, _, naplets = run_workload(workload, "batched", proof_batch_size=8)
    stats = sim.proof_batch.stats()
    assert stats["pending"] == 0
    assert stats["delivered"] == stats["enqueued"]
    if stats["enqueued"] > 8:
        assert stats["delivery_calls"] < stats["enqueued"]
        assert stats["mean_batch_size"] > 1.0
