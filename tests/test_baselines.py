"""Tests for the related-work baselines: interval-based TRBAC and
local-history access control — including the failure modes the paper
attributes to them."""

import pytest

from repro.coalition.clock import ServerClock
from repro.errors import RbacError
from repro.rbac.history_baseline import CoordinatedReference, LocalHistoryEngine
from repro.rbac.trbac import PeriodicInterval, TRBACEngine, TRBACPolicy
from repro.srac.parser import parse_constraint
from repro.traces.trace import AccessKey

RSW_S1 = AccessKey("exec", "rsw", "s1")
RSW_S2 = AccessKey("exec", "rsw", "s2")


class TestPeriodicInterval:
    def test_daily_window(self):
        night = PeriodicInterval(24.0, 0.0, 3.0)  # midnight to 3am
        assert night.enabled_at(0.0)
        assert night.enabled_at(2.9)
        assert not night.enabled_at(3.0)
        assert not night.enabled_at(12.0)
        assert night.enabled_at(24.5)  # next day
        assert night.window_length() == 3.0

    def test_mid_period_window(self):
        office = PeriodicInterval(24.0, 9.0, 17.0)
        assert not office.enabled_at(8.9)
        assert office.enabled_at(9.0)
        assert office.enabled_at(16.99)
        assert not office.enabled_at(17.0)

    def test_validation(self):
        with pytest.raises(RbacError):
            PeriodicInterval(0.0, 0.0, 1.0)
        with pytest.raises(RbacError):
            PeriodicInterval(24.0, 25.0, 26.0)
        with pytest.raises(RbacError):
            PeriodicInterval(24.0, 3.0, 3.0)
        with pytest.raises(RbacError):
            PeriodicInterval(24.0, 3.0, 25.0)


class TestTRBACPolicy:
    def make(self):
        policy = TRBACPolicy()
        policy.add_role("editor", PeriodicInterval(24.0, 0.0, 3.0))
        policy.add_role("reader")  # always enabled
        policy.grant("editor", op="write", resource="issue")
        policy.grant("reader", op="read")
        return policy

    def test_role_enabling(self):
        policy = self.make()
        assert policy.role_enabled("editor", 1.0)
        assert not policy.role_enabled("editor", 5.0)
        assert policy.role_enabled("reader", 5.0)

    def test_role_matching(self):
        policy = self.make()
        assert policy.role_matches("editor", AccessKey("write", "issue", "s1"))
        assert not policy.role_matches("editor", AccessKey("read", "issue", "s1"))
        assert policy.role_matches("reader", AccessKey("read", "x", "s9"))

    def test_duplicate_and_unknown_roles(self):
        policy = self.make()
        with pytest.raises(RbacError):
            policy.add_role("editor")
        with pytest.raises(RbacError):
            policy.grant("ghost")
        with pytest.raises(RbacError):
            policy.role_enabled("ghost", 0.0)

    def test_roles_required_quantifies_granularity(self):
        """The paper's critique: one role per distinct window."""
        w1 = PeriodicInterval(24.0, 0.0, 3.0)
        w2 = PeriodicInterval(24.0, 9.0, 17.0)
        assert TRBACPolicy.roles_required({"p1": w1, "p2": w1}) == 1
        assert TRBACPolicy.roles_required({"p1": w1, "p2": w2, "p3": w2}) == 2


class TestTRBACSkewFailure:
    """The measurable failure the paper predicts: interval checks on a
    skewed local clock err near window edges."""

    def make_engine(self):
        policy = TRBACPolicy()
        policy.add_role("editor", PeriodicInterval(24.0, 0.0, 3.0))
        policy.grant("editor", op="write", resource="issue")
        return TRBACEngine(policy)

    def test_correct_with_perfect_clock(self):
        engine = self.make_engine()
        access = ("write", "issue", "s1")
        assert engine.decide(["editor"], access, 2.5)
        assert not engine.decide(["editor"], access, 3.5)

    def test_skew_causes_wrongful_grant(self):
        engine = self.make_engine()
        access = ("write", "issue", "s1")
        slow_clock = ServerClock(skew=-1.0)  # server clock runs 1h behind
        # Global 3.5 (past deadline) reads as local 2.5 (inside window):
        assert engine.decide(["editor"], access, 3.5, slow_clock)

    def test_skew_causes_wrongful_denial(self):
        engine = self.make_engine()
        access = ("write", "issue", "s1")
        fast_clock = ServerClock(skew=+1.0)
        # Global 2.5 (inside window) reads as local 3.5 (past it):
        assert not engine.decide(["editor"], access, 2.5, fast_clock)

    def test_duration_scheme_immune_to_skew(self):
        """The paper's remedy: durations, not absolute intervals.  The
        validity tracker meters elapsed time, which clock skew cannot
        touch (only drift can, and only proportionally)."""
        from repro.temporal.validity import ValidityTracker

        tracker = ValidityTracker(duration=3.0)
        tracker.activate(0.0)
        # Whatever any server's clock *displays*, elapsed global time
        # governs the state:
        assert tracker.is_valid(2.5)
        assert not tracker.is_valid(3.5)


class TestLocalHistoryBaseline:
    LIMIT = parse_constraint("count(0, 5, [res = rsw])")

    def test_agrees_on_single_site(self):
        local = LocalHistoryEngine()
        coordinated = CoordinatedReference()
        history = (RSW_S1,) * 5
        # All history at s1, request at s1: both engines deny the 6th.
        assert local.decide(self.LIMIT, history, RSW_S1) == \
            coordinated.decide(self.LIMIT, history, RSW_S1) == False  # noqa: E712

    def test_wrongful_grant_across_sites(self):
        """The paper's critique, verbatim: the local mechanism 'can not
        be applied … where the authorization decision depends on the
        access actions on other related sites'."""
        local = LocalHistoryEngine()
        coordinated = CoordinatedReference()
        history = (RSW_S1,) * 5  # budget exhausted — but all at s1
        # Request at s2: the local engine sees an empty local history
        # and wrongly grants; the coordinated engine correctly denies.
        assert local.decide(self.LIMIT, history, RSW_S2) is True
        assert coordinated.decide(self.LIMIT, history, RSW_S2) is False

    def test_local_engine_is_sound_when_history_is_local(self):
        local = LocalHistoryEngine()
        history = (RSW_S2,) * 5
        assert local.decide(self.LIMIT, history, RSW_S2) is False

    def test_wrongful_grant_rate_grows_with_mobility(self):
        """Quantified: the more servers the history spreads over, the
        more the local baseline over-grants."""
        local = LocalHistoryEngine()
        coordinated = CoordinatedReference()

        def wrongful(history, request):
            return local.decide(self.LIMIT, history, request) and not \
                coordinated.decide(self.LIMIT, history, request)

        same_site = (AccessKey("exec", "rsw", "s1"),) * 6
        # Request where the history lives: local sees everything, no error.
        assert not wrongful(same_site, AccessKey("exec", "rsw", "s1"))
        # Same history, roaming request: the local engine over-grants.
        assert wrongful(same_site, AccessKey("exec", "rsw", "s9"))
        spread = tuple(AccessKey("exec", "rsw", f"s{i % 3}") for i in range(6))
        assert wrongful(spread, AccessKey("exec", "rsw", "s0"))
