"""Tests for the command-line interface."""

import pytest

from repro.cli import main

PROGRAM = "exec rsw @ s1 ; exec rsw @ s1 ; exec rsw @ s2\n"
POLICY = """
user alice
role trial
permission p_rsw exec rsw @ * constraint "count(0, 2, [res = rsw])"
assign alice trial
grant trial p_rsw
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.sral"
    path.write_text(PROGRAM)
    return path


@pytest.fixture
def policy_file(tmp_path):
    path = tmp_path / "policy.txt"
    path.write_text(POLICY)
    return path


class TestCheck:
    def test_holds(self, program_file, capsys):
        rc = main(["check", str(program_file), "count(0, 5, [res = rsw])"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "True" in out

    def test_violation_with_witness(self, program_file, capsys):
        rc = main(["check", str(program_file), "count(0, 2, [res = rsw])"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "False" in out
        assert "violating trace" in out

    def test_exists_mode(self, program_file, capsys):
        rc = main(
            ["check", str(program_file), "exec rsw @ s2", "--mode", "exists"]
        )
        assert rc == 0
        assert "satisfying trace" in capsys.readouterr().out

    def test_syntax_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.sral"
        bad.write_text("read r1 @")
        rc = main(["check", str(bad), "T"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        rc = main(["check", str(tmp_path / "nope.sral"), "T"])
        assert rc == 2


class TestTraces:
    def test_enumerates(self, program_file, capsys):
        rc = main(["traces", str(program_file)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "finite" in out
        assert "exec rsw @ s1 -> exec rsw @ s1 -> exec rsw @ s2" in out

    def test_infinite_model_flagged(self, tmp_path, capsys):
        path = tmp_path / "loop.sral"
        path.write_text("while c do read r1 @ s1")
        rc = main(["traces", str(path), "--max-length", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "infinite" in out
        assert "<empty trace>" in out

    def test_limit(self, tmp_path, capsys):
        path = tmp_path / "loop.sral"
        path.write_text("while c do { read r1 @ s1 ; read r2 @ s1 }")
        rc = main(["traces", str(path), "--max-length", "6", "--limit", "2"])
        out = capsys.readouterr().out
        assert "limit 2 reached" in out


class TestFigure1:
    def test_ascii(self, capsys):
        rc = main(["figure1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[s1]" in out and "(mA) --> mB, mC, mD" in out

    def test_dot_output(self, tmp_path, capsys):
        dot = tmp_path / "fig1.dot"
        rc = main(["figure1", "--dot", str(dot)])
        assert rc == 0
        assert dot.read_text().startswith("digraph dependency {")


class TestAudit:
    def test_clean_figure1(self, capsys):
        rc = main(["audit"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "VERIFIED" in out and "UNVERIFIED" not in out

    def test_tampered(self, capsys):
        rc = main(["audit", "--tamper", "m7"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "UNVERIFIED" in out

    def test_random_graph(self, capsys):
        rc = main(["audit", "--modules", "10", "--servers", "3", "--seed", "1"])
        assert rc == 0

    def test_deadline(self, capsys):
        rc = main(["audit", "--deadline", "4"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "denied=" in out


class TestSimulate:
    def test_denied_run(self, policy_file, program_file, capsys):
        rc = main(
            [
                "simulate",
                str(policy_file),
                str(program_file),
                "--owner",
                "alice",
                "--roles",
                "trial",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "status: denied" in out
        assert "proved history (2 accesses)" in out
        assert "proof chain verifies: True" in out

    def test_successful_run(self, policy_file, tmp_path, capsys):
        path = tmp_path / "ok.sral"
        path.write_text("exec rsw @ s1 ; exec rsw @ s2")
        rc = main(
            ["simulate", str(policy_file), str(path), "--owner", "alice",
             "--roles", "trial"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "status: finished" in out

    def test_no_access_program(self, policy_file, tmp_path, capsys):
        path = tmp_path / "empty.sral"
        path.write_text("skip")
        rc = main(
            ["simulate", str(policy_file), str(path), "--owner", "alice"]
        )
        assert rc == 1
        assert "no shared-resource access" in capsys.readouterr().out

    def test_skip_policy(self, policy_file, program_file, capsys):
        rc = main(
            ["simulate", str(policy_file), str(program_file), "--owner", "alice",
             "--roles", "trial", "--on-denied", "skip"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "status: finished" in out
        assert "denials:" in out

    def test_unknown_owner_fails_agent(self, policy_file, program_file, capsys):
        rc = main(
            ["simulate", str(policy_file), str(program_file), "--owner", "mallory"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "status: failed" in out
        assert "mallory" in out  # the authentication error is surfaced


class TestObs:
    def test_denied_run_prints_provenance_and_metrics(
        self, policy_file, program_file, capsys
    ):
        rc = main(
            ["obs", str(policy_file), str(program_file), "--owner", "alice",
             "--roles", "trial"]
        )
        out = capsys.readouterr().out
        assert rc == 1  # the count-2 bound denies the third access
        assert "status: denied" in out
        assert "spatial constraint 'count(0, 2, [res = rsw])'" in out
        assert "granted via role 'trial'" in out
        assert "metrics:" in out
        assert "engine.decisions = 3" in out
        assert "engine.decisions.denied = 1" in out

    def test_json_export(self, policy_file, program_file, tmp_path, capsys):
        import json

        export_path = tmp_path / "obs.json"
        main(
            ["obs", str(policy_file), str(program_file), "--owner", "alice",
             "--roles", "trial", "--json", str(export_path)]
        )
        data = json.loads(export_path.read_text())
        assert data["metrics"]["collected"]["engine.decisions"] == 3
        denials = [d for d in data["decisions"] if not d["granted"]]
        assert denials
        for denial in denials:
            assert denial["provenance"]["kind"] == "spatial"
            assert "count(0, 2, [res = rsw])" in denial["provenance"]["summary"]
