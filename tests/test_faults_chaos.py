"""Chaos / soak suite: seeded random workloads under injected faults.

Each scenario replays one seeded workload twice: a fault-free *oracle*
run with eager proof propagation, and a *chaos* run with batched
propagation under link drops, extra delay, duplication, reordering and
scheduled server crashes.  Everything (workload, fault draws, outage
schedule) is a pure function of the seed, so failures reproduce
exactly.  The base seed can be shifted via ``REPRO_CHAOS_SEED`` (the
dedicated CI job pins it).

Asserted per scenario:

(a) **no exceptions escape** — the chaos run completes, no agent ends
    FAILED or deadlocked; duplicated deliveries are invisible.
(b) **fail-closed never over-grants** — every access the chaos run
    granted is re-decided by a fresh fault-free engine given the same
    carried history, and must be granted there too (the fault layer
    may only *add* denials on top of the engine's verdict).
(c) **convergence after heal** — once the plan is healed and the
    retry queue drained, every server's announced ledger contains
    every foreign proof (and without a degradation gate, per-agent
    outcomes equal the oracle run's exactly).
"""

from __future__ import annotations

import os
import random

import pytest

from tests.faultload import (
    RSW_LIMIT,
    SERVERS,
    decision_log,
    make_policy,
    random_workload,
    run_workload,
)
from repro.agent.naplet import NapletStatus
from repro.faults import (
    FaultPlan,
    FaultyLink,
    RetryPolicy,
    ServerLifecycle,
    fail_closed,
    stale_ok,
)
from repro.rbac.engine import AccessControlEngine

BASE_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
N_SCENARIOS = 50
SEEDS = [BASE_SEED + i for i in range(N_SCENARIOS)]


def chaos_plan(seed: int, degradation=None) -> FaultPlan:
    """A deterministic fault plan: 1-2 crashing servers, a lossy
    reordering link, tight delivery retries, generous agent retries."""
    rng = random.Random(seed * 9176 + 11)
    lifecycle = ServerLifecycle()
    for server in rng.sample(SERVERS, k=rng.randint(1, 2)):
        lifecycle.schedule_crash(
            server,
            at=rng.uniform(2.0, 20.0),
            down_for=rng.uniform(1.0, 6.0),
            recovering_for=rng.uniform(0.0, 2.0),
        )
    link = FaultyLink(
        drop=0.3,
        extra_delay=0.25,
        duplicate=0.2,
        reorder_window=1.5,
        seed=seed,
    )
    return FaultPlan(
        link=link,
        lifecycle=lifecycle,
        retry=RetryPolicy(base_delay=0.25, max_delay=4.0, max_attempts=8),
        migration_retry=RetryPolicy(base_delay=0.5, max_delay=4.0, max_attempts=64),
        degradation=degradation,
    )


def assert_converged(sim, naplets) -> None:
    """Heal + drain, then every foreign proof is known everywhere."""
    end = sim.now
    sim.faults.heal(end)
    sim.proof_batch.flush(now=end)
    assert sim.proof_batch.pending_count() == 0
    assert sim.proof_batch.parked_destinations() == ()
    for naplet in naplets:
        for proof in naplet.registry.proofs():
            for name in SERVERS:
                if name != proof.access.server:
                    assert sim.coalition.server(name).knows_proof(proof), (
                        f"{name} never learned proof #{proof.seq} of "
                        f"{naplet.naplet_id}"
                    )


def assert_no_overgrant(naplets) -> None:
    """Oracle replay: each granted access, re-decided by a fresh
    fault-free engine under the same carried history, is granted."""
    engine = AccessControlEngine(make_policy([n.owner for n in naplets]))
    for naplet in naplets:
        session = engine.authenticate(naplet.owner, 0.0)
        engine.activate_role(session, "member", 0.0)
        proofs = naplet.registry.proofs()
        for index, proof in enumerate(proofs):
            history = tuple(p.access for p in proofs[:index])
            decision = engine.decide(
                session, proof.access, proof.local_time, history
            )
            assert decision.granted, (
                f"chaos run granted {proof.access} to {naplet.naplet_id} "
                f"but the fault-free oracle denies it in the same state: "
                f"{decision.reason}"
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_transient_faults_do_not_change_outcomes(seed):
    """Propagation faults + crashes without a degradation gate: the
    chaos run is slower, never different."""
    workload = random_workload(seed)
    _, oracle_report, oracle_naplets = run_workload(workload, "eager")
    sim, report, naplets = run_workload(
        workload, "batched", faults=chaos_plan(seed)
    )
    # (a) nothing escaped, nobody died.
    assert report.deadlocked == ()
    assert all(n.status is NapletStatus.FINISHED for n in naplets), (
        report.statuses()
    )
    # Outcome equivalence: same grants, same denials, agent by agent.
    assert decision_log(naplets) == decision_log(oracle_naplets)
    # Faults cost time, never correctness.
    assert report.end_time >= oracle_report.end_time
    # (c) heal + drain converges the ledgers.
    assert_converged(sim, naplets)
    # (b) holds trivially here too — replay the grants anyway.
    assert_no_overgrant(naplets)


@pytest.mark.parametrize("seed", SEEDS[::2])
def test_chaos_fail_closed_never_over_grants(seed):
    """With the fail-closed degradation gate, uncorroborated histories
    produce extra denials — and only ever extra denials."""
    workload = random_workload(seed)
    _, _, oracle_naplets = run_workload(workload, "eager")
    sim, report, naplets = run_workload(
        workload, "batched", faults=chaos_plan(seed, degradation=fail_closed())
    )
    assert report.deadlocked == ()
    assert all(n.status is NapletStatus.FINISHED for n in naplets)
    # (b) the headline safety property.
    assert_no_overgrant(naplets)
    # Degradation denials carry an explicit reason for the audit trail.
    degraded = [
        d
        for n in naplets
        for d in n.denials
        if d is not None and d.reason.startswith("degraded")
    ]
    assert len(degraded) == sim.degraded_denials
    # Budget arithmetic: every rsw access shares one count budget, so
    # the chaos run never exceeds the cap and never grants more
    # budgeted accesses than the oracle did (degradation can only
    # forfeit budget, not mint it).
    oracle_log = decision_log(oracle_naplets)
    for naplet in naplets:
        rsw = [a for a in naplet.history() if a.resource == "rsw"]
        oracle_rsw = [
            a
            for a in oracle_log[naplet.naplet_id]["granted"]
            if a.resource == "rsw"
        ]
        assert len(rsw) <= RSW_LIMIT
        assert len(rsw) <= len(oracle_rsw)
    # (c) convergence still holds with the gate on.
    assert_converged(sim, naplets)
    # After the drain, no corroboration gap remains anywhere.
    for naplet in naplets:
        for name in SERVERS:
            server = sim.coalition.server(name)
            assert all(
                server.knows_proof(p)
                for p in naplet.registry.foreign_proofs(name)
            )


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_chaos_stale_ok_tolerates_propagation_lag(seed):
    """``stale_ok`` with a huge budget never blocks anything (equal to
    the no-degradation run); a zero budget denies at least as much as
    the tolerant setting."""
    workload = random_workload(seed)
    _, _, plain_naplets = run_workload(
        workload, "batched", faults=chaos_plan(seed)
    )
    _, _, tolerant_naplets = run_workload(
        workload, "batched", faults=chaos_plan(seed, degradation=stale_ok(1e9))
    )
    assert decision_log(tolerant_naplets) == decision_log(plain_naplets)
    _, _, strict_naplets = run_workload(
        workload, "batched", faults=chaos_plan(seed, degradation=stale_ok(0.0))
    )
    strict_denials = sum(len(n.denials) for n in strict_naplets)
    tolerant_denials = sum(len(n.denials) for n in tolerant_naplets)
    assert strict_denials >= tolerant_denials


def test_chaos_seed_determinism():
    """The same seed replays the chaos run bit-identically."""
    workload = random_workload(BASE_SEED + 3)
    runs = []
    for _ in range(2):
        sim, report, naplets = run_workload(
            workload, "batched", faults=chaos_plan(BASE_SEED + 3, fail_closed())
        )
        runs.append(
            (
                report.end_time,
                report.events_processed,
                decision_log(naplets),
                sim.proof_batch.stats(),
                sim.degraded_denials,
            )
        )
    assert runs[0] == runs[1]
