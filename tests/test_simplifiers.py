"""Tests for the program normaliser and constraint simplifier."""

import pytest
from hypothesis import given, settings

import tests.strategies as strat
from repro.sral.ast import (
    Access,
    BoolLit,
    If,
    Par,
    Seq,
    Skip,
    Var,
    While,
    program_size,
)
from repro.sral.normalize import simplify_constants, simplify_traces
from repro.sral.parser import parse_program
from repro.srac.ast import And, Atom, Bottom, Count, Iff, Implies, Not, Or, Top, constraint_size
from repro.srac.selection import SelectAll
from repro.srac.simplify import simplify_constraint
from repro.srac.trace_check import trace_satisfies
from repro.traces.model import program_traces
from repro.traces.trace import AccessKey

A = Access("read", "r1", "s1")
KEY = AccessKey("read", "r1", "s1")


class TestSimplifyTraces:
    def test_skip_elimination_in_seq(self):
        assert simplify_traces(Seq(Skip(), A)) == A
        assert simplify_traces(Seq(A, Skip())) == A
        assert simplify_traces(Seq(Skip(), Skip())) == Skip()

    def test_skip_elimination_in_par(self):
        assert simplify_traces(Par(Skip(), A)) == A
        assert simplify_traces(Par(A, Skip())) == A

    def test_identical_branches_merge(self):
        assert simplify_traces(If(Var("c"), A, A)) == A

    def test_empty_loop_collapses(self):
        assert simplify_traces(While(Var("c"), Skip())) == Skip()

    def test_nested_cleanup(self):
        p = parse_program("skip ; { skip ; read r1 @ s1 } ; skip")
        assert simplify_traces(p) == A

    def test_literal_conditions_not_folded(self):
        p = If(BoolLit(True), A, Access("write", "r2", "s1"))
        assert simplify_traces(p) == p  # both branches stay

    def test_deep_program_no_recursion_error(self):
        from repro.sral.ast import seq

        deep = seq(*([Skip()] * 5000 + [A]))
        assert simplify_traces(deep) == A

    @given(strat.programs(max_leaves=12))
    @settings(max_examples=150, deadline=None)
    def test_preserves_trace_model(self, program):
        simplified = simplify_traces(program)
        assert program_traces(simplified).equals(program_traces(program))
        assert program_size(simplified) <= program_size(program)

    @given(strat.programs(max_leaves=10))
    @settings(max_examples=80, deadline=None)
    def test_idempotent(self, program):
        once = simplify_traces(program)
        assert simplify_traces(once) == once


class TestSimplifyConstants:
    def test_true_condition_folds(self):
        b = Access("write", "r2", "s1")
        assert simplify_constants(If(BoolLit(True), A, b)) == A
        assert simplify_constants(If(BoolLit(False), A, b)) == b

    def test_false_loop_folds(self):
        assert simplify_constants(While(BoolLit(False), A)) == Skip()

    def test_true_loop_kept(self):
        p = While(BoolLit(True), A)
        assert simplify_constants(p) == p

    def test_opaque_conditions_kept(self):
        p = If(Var("c"), A, Access("write", "r2", "s1"))
        assert simplify_constants(p) == p

    def test_execution_equivalence_on_closed_programs(self):
        """Constant folding must not change the request stream."""
        from repro.agent.interpreter import interpret

        source = (
            "if true then read r1 @ s1 else write r2 @ s1 ; "
            "while false do exec r3 @ s2 ; "
            "skip ; write r2 @ s1"
        )
        program = parse_program(source)
        folded = simplify_constants(program)

        def stream(p):
            out = []
            gen = interpret(p, {})
            try:
                req = next(gen)
                while True:
                    out.append(req)
                    req = gen.send(None)
            except StopIteration:
                return out

        assert stream(program) == stream(folded)
        assert program_size(folded) < program_size(program)


class TestSimplifyConstraint:
    def test_boolean_identities(self):
        a = Atom(KEY)
        assert simplify_constraint(And(Top(), a)) == a
        assert simplify_constraint(And(a, Bottom())) == Bottom()
        assert simplify_constraint(Or(a, Top())) == Top()
        assert simplify_constraint(Or(Bottom(), a)) == a
        assert simplify_constraint(And(a, a)) == a
        assert simplify_constraint(Or(a, a)) == a

    def test_negation_rules(self):
        a = Atom(KEY)
        assert simplify_constraint(Not(Top())) == Bottom()
        assert simplify_constraint(Not(Bottom())) == Top()
        assert simplify_constraint(Not(Not(a))) == a

    def test_implication_rules(self):
        a = Atom(KEY)
        assert simplify_constraint(Implies(Bottom(), a)) == Top()
        assert simplify_constraint(Implies(Top(), a)) == a
        assert simplify_constraint(Implies(a, Top())) == Top()
        assert simplify_constraint(Implies(a, Bottom())) == Not(a)
        assert simplify_constraint(Implies(a, a)) == Top()

    def test_iff_rules(self):
        a = Atom(KEY)
        assert simplify_constraint(Iff(a, a)) == Top()
        assert simplify_constraint(Iff(Top(), a)) == a
        assert simplify_constraint(Iff(a, Bottom())) == Not(a)

    def test_trivial_count(self):
        assert simplify_constraint(Count(0, None, SelectAll())) == Top()
        c = Count(1, None, SelectAll())
        assert simplify_constraint(c) == c

    def test_nested_collapse(self):
        a = Atom(KEY)
        nested = And(Top(), Or(Bottom(), And(a, Top())))
        assert simplify_constraint(nested) == a

    @given(
        strat.constraints(max_leaves=8, expressible_only=False),
        strat.traces_over_alphabet(6),
    )
    @settings(max_examples=250, deadline=None)
    def test_preserves_satisfaction(self, constraint, trace):
        simplified = simplify_constraint(constraint)
        assert trace_satisfies(trace, simplified) == trace_satisfies(trace, constraint)
        assert constraint_size(simplified) <= constraint_size(constraint)

    @given(strat.constraints(max_leaves=8, expressible_only=False))
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, constraint):
        once = simplify_constraint(constraint)
        assert simplify_constraint(once) == once
