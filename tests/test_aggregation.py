"""Tests for permission classification and validity aggregation
(the paper's future-work extension)."""

import math

import pytest

from repro.errors import TemporalError
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.temporal.aggregation import (
    AggregationStrategy,
    PermissionClass,
    PermissionClassifier,
)


class TestPermissionClass:
    def test_validation(self):
        with pytest.raises(TemporalError):
            PermissionClass("", frozenset({"p"}))
        with pytest.raises(TemporalError):
            PermissionClass("c", frozenset())
        with pytest.raises(TemporalError):
            PermissionClass("c", frozenset({"p"}), duration=0.0)

    def test_explicit_duration_overrides(self):
        cls = PermissionClass("c", frozenset({"a", "b"}), duration=7.0)
        assert cls.aggregate({"a": 1.0, "b": 2.0}) == 7.0

    def test_sum_strategy(self):
        cls = PermissionClass("c", frozenset({"a", "b"}), AggregationStrategy.SUM)
        assert cls.aggregate({"a": 1.0, "b": 2.0}) == 3.0

    def test_sum_with_infinite_member(self):
        cls = PermissionClass("c", frozenset({"a", "b"}), AggregationStrategy.SUM)
        assert math.isinf(cls.aggregate({"a": 1.0, "b": math.inf}))

    def test_min_max_strategies(self):
        durations = {"a": 1.0, "b": 5.0}
        low = PermissionClass("c", frozenset({"a", "b"}), AggregationStrategy.MIN)
        high = PermissionClass("d", frozenset({"a", "b"}), AggregationStrategy.MAX)
        assert low.aggregate(durations) == 1.0
        assert high.aggregate(durations) == 5.0

    def test_no_member_durations(self):
        cls = PermissionClass("c", frozenset({"ghost"}))
        with pytest.raises(TemporalError):
            cls.aggregate({})


class TestClassifier:
    def test_class_of(self):
        classifier = PermissionClassifier(
            [PermissionClass("sw", frozenset({"p1", "p2"}))]
        )
        assert classifier.class_of("p1").name == "sw"
        assert classifier.class_of("other") is None
        assert "p2" in classifier
        assert "other" not in classifier

    def test_duplicate_class_rejected(self):
        classifier = PermissionClassifier([PermissionClass("c", frozenset({"p"}))])
        with pytest.raises(TemporalError):
            classifier.add(PermissionClass("c", frozenset({"q"})))

    def test_overlapping_membership_rejected(self):
        classifier = PermissionClassifier([PermissionClass("c", frozenset({"p"}))])
        with pytest.raises(TemporalError):
            classifier.add(PermissionClass("d", frozenset({"p", "q"})))


class TestEngineIntegration:
    def make_engine(self, classifier):
        policy = Policy()
        policy.add_user("u")
        policy.add_role("r")
        policy.add_permission(
            Permission("p_word", op="exec", resource="word", validity_duration=4.0)
        )
        policy.add_permission(
            Permission("p_excel", op="exec", resource="excel", validity_duration=4.0)
        )
        policy.add_permission(
            Permission("p_other", op="read", resource="doc", validity_duration=4.0)
        )
        policy.assign_user("u", "r")
        for name in ("p_word", "p_excel", "p_other"):
            policy.assign_permission("r", name)
        engine = AccessControlEngine(policy, classifier=classifier)
        session = engine.authenticate("u", 0.0)
        engine.activate_role(session, "r", 0.0)
        return engine, session

    def test_classified_permissions_share_budget(self):
        """'Office suite' permissions share one MIN-aggregated budget:
        time spent valid counts against both."""
        classifier = PermissionClassifier(
            [
                PermissionClass(
                    "office",
                    frozenset({"p_word", "p_excel"}),
                    AggregationStrategy.MIN,
                )
            ]
        )
        engine, session = self.make_engine(classifier)
        # Shared 4-unit budget (MIN of 4, 4) runs from activation t=0.
        assert engine.decide(session, ("exec", "word", "s1"), 3.0).granted
        # At t=5 the *shared* budget is gone — excel denied too, even
        # though excel alone was never used:
        assert not engine.decide(session, ("exec", "excel", "s1"), 5.0).granted
        # The unclassified permission has its own (also expired) budget:
        assert not engine.decide(session, ("read", "doc", "s1"), 5.0).granted

    def test_sum_strategy_pools_budgets(self):
        classifier = PermissionClassifier(
            [
                PermissionClass(
                    "office",
                    frozenset({"p_word", "p_excel"}),
                    AggregationStrategy.SUM,
                )
            ]
        )
        engine, session = self.make_engine(classifier)
        # Pooled budget 4 + 4 = 8: valid at t=7, expired at t=9.
        assert engine.decide(session, ("exec", "word", "s1"), 7.0).granted
        assert not engine.decide(session, ("exec", "excel", "s1"), 9.0).granted

    def test_without_classifier_budgets_are_independent(self):
        engine, session = self.make_engine(classifier=None)
        assert engine.decide(session, ("exec", "word", "s1"), 3.0).granted
        assert not engine.decide(session, ("exec", "word", "s1"), 5.0).granted

    def test_shared_tracker_key(self):
        classifier = PermissionClassifier(
            [PermissionClass("office", frozenset({"p_word", "p_excel"}))]
        )
        engine, session = self.make_engine(classifier)
        assert "class:office" in session.trackers
        assert "p_word" not in session.trackers
        assert "p_other" in session.trackers

    def test_deactivation_with_classes(self):
        classifier = PermissionClassifier(
            [PermissionClass("office", frozenset({"p_word", "p_excel"}))]
        )
        engine, session = self.make_engine(classifier)
        engine.deactivate_role(session, "r", 1.0)
        assert not engine.decide(session, ("exec", "word", "s1"), 2.0).granted
