"""Tests for SRAL AST helpers and the fluent builder."""

import pytest

from repro.sral.ast import (
    Access,
    Assign,
    BinOp,
    IntLit,
    Par,
    Seq,
    Skip,
    Var,
    While,
    par,
    program_size,
    seq,
    walk,
)
from repro.sral.builder import (
    E,
    access,
    as_expr,
    assign,
    if_,
    lit,
    recv,
    repeat,
    send,
    signal,
    skip,
    var,
    wait,
    while_,
)
from repro.sral.parser import parse_program
from repro.sral.printer import unparse


class TestAstHelpers:
    def test_seq_empty_is_skip(self):
        assert seq() == Skip()

    def test_seq_single_is_identity(self):
        a = Access("read", "r1", "s1")
        assert seq(a) is a

    def test_seq_right_associates(self):
        a, b, c = (Access("read", r, "s1") for r in ("r1", "r2", "r3"))
        assert seq(a, b, c) == Seq(a, Seq(b, c))

    def test_par_right_associates(self):
        a, b, c = (Access("read", r, "s1") for r in ("r1", "r2", "r3"))
        assert par(a, b, c) == Par(a, Par(b, c))

    def test_walk_visits_all_nodes(self):
        p = parse_program("if x > 0 then read r1 @ s1 else skip")
        names = {type(n).__name__ for n in walk(p)}
        assert {"If", "BinOp", "Var", "IntLit", "Access", "Skip"} <= names

    def test_program_size_counts_exprs(self):
        p = parse_program("x := 1 + 2")
        # Assign, BinOp, IntLit, IntLit
        assert program_size(p) == 4

    def test_access_validates_identifiers(self):
        with pytest.raises(ValueError):
            Access("", "r1", "s1")
        with pytest.raises(ValueError):
            Access("read", "", "s1")
        with pytest.raises(ValueError):
            Access("read", "r1", "")

    def test_nodes_are_hashable_and_comparable(self):
        a1 = Access("read", "r1", "s1")
        a2 = Access("read", "r1", "s1")
        assert a1 == a2
        assert hash(a1) == hash(a2)
        assert len({a1, a2}) == 1

    def test_str_is_concrete_syntax(self):
        assert str(Access("read", "r1", "s1")) == "read r1 @ s1"


class TestBuilder:
    def test_expression_operators(self):
        e = (var("n") + 1) * 2 < var("m")
        assert isinstance(e, E)
        assert e.node == BinOp(
            "<",
            BinOp("*", BinOp("+", Var("n"), IntLit(1)), IntLit(2)),
            Var("m"),
        )

    def test_reflected_operators(self):
        assert (1 + var("x")).node == BinOp("+", IntLit(1), Var("x"))
        assert (3 - var("x")).node == BinOp("-", IntLit(3), Var("x"))
        assert (2 * var("x")).node == BinOp("*", IntLit(2), Var("x"))

    def test_boolean_operators(self):
        e = (var("a") < 1) & ~(var("b") > 2) | lit(True)
        src = unparse(assign("t", e))
        assert parse_program(src) == assign("t", e)

    def test_eq_ne_methods(self):
        assert var("x").eq(3).node == BinOp("==", Var("x"), IntLit(3))
        assert var("x").ne(3).node == BinOp("!=", Var("x"), IntLit(3))

    def test_as_expr_coercions(self):
        assert as_expr(5) == IntLit(5)
        assert as_expr(True).value is True
        assert as_expr("s").value == "s"
        with pytest.raises(TypeError):
            as_expr(3.14)

    def test_if_without_else_defaults_to_skip(self):
        node = if_(var("x") > 0, access("read", "r1", "s1"))
        assert node.orelse == Skip()

    def test_statement_builders_round_trip(self):
        prog = seq(
            access("read", "manifest", "s1"),
            recv("ch", "x"),
            send("ch", var("x") + 1),
            signal("done"),
            wait("ready"),
            assign("n", 0),
            while_(var("n") < 3, assign("n", var("n") + 1)),
            skip(),
        )
        assert parse_program(unparse(prog)) == prog

    def test_repeat_expands_to_counted_while(self):
        body = access("exec", "tool", "s1")
        prog = repeat("i", 3, body)
        assert isinstance(prog, Seq)
        assert prog.first == Assign("i", IntLit(0))
        assert isinstance(prog.second, While)

    def test_repeat_round_trips(self):
        prog = repeat("i", 5, access("read", "r1", "s2"))
        assert parse_program(unparse(prog)) == prog
