"""Tests for permission validity tracking (Eq. 4.1, Theorem 4.1)."""

import math

import pytest

from repro.errors import TemporalError
from repro.sral.parser import parse_program
from repro.srac.ast import Top
from repro.srac.parser import parse_constraint
from repro.temporal.checker import check_validity
from repro.temporal.duration import (
    Chop,
    DCAnd,
    DCNot,
    DCOr,
    DurationAtLeast,
    DurationAtMost,
    Everywhere,
    Somewhere,
    evaluate,
)
from repro.temporal.timeline import BooleanTimeline
from repro.temporal.validity import PermissionState, Scheme, ValidityTracker


class TestStates:
    def test_initially_inactive(self):
        tracker = ValidityTracker(duration=10.0)
        assert tracker.state(0.0) is PermissionState.INACTIVE
        assert not tracker.is_valid(1.0)

    def test_activation_makes_valid(self):
        tracker = ValidityTracker(duration=10.0)
        tracker.activate(2.0)
        assert tracker.state(3.0) is PermissionState.VALID

    def test_expiry_makes_active_invalid(self):
        tracker = ValidityTracker(duration=5.0)
        tracker.activate(0.0)
        assert tracker.state(4.999) is PermissionState.VALID
        assert tracker.state(5.0) is PermissionState.ACTIVE_INVALID
        assert tracker.state(100.0) is PermissionState.ACTIVE_INVALID

    def test_deactivate_returns_to_inactive(self):
        tracker = ValidityTracker(duration=10.0)
        tracker.activate(0.0)
        tracker.deactivate(3.0)
        assert tracker.state(4.0) is PermissionState.INACTIVE

    def test_budget_not_consumed_while_inactive(self):
        tracker = ValidityTracker(duration=5.0)
        tracker.activate(0.0)
        tracker.deactivate(2.0)  # consumed 2
        tracker.activate(50.0)
        assert tracker.state(52.9) is PermissionState.VALID
        assert tracker.state(53.0) is PermissionState.ACTIVE_INVALID

    def test_infinite_duration_never_expires(self):
        tracker = ValidityTracker(duration=math.inf)
        tracker.activate(0.0)
        assert tracker.state(1e12) is PermissionState.VALID
        assert tracker.expiry_time() is None
        assert tracker.remaining_budget() == math.inf

    def test_double_activate_is_idempotent(self):
        tracker = ValidityTracker(duration=5.0)
        tracker.activate(0.0)
        tracker.activate(1.0)
        assert tracker.state(4.9) is PermissionState.VALID

    def test_validation(self):
        with pytest.raises(TemporalError):
            ValidityTracker(duration=0.0)
        with pytest.raises(TemporalError):
            ValidityTracker(duration=-1.0)
        tracker = ValidityTracker(duration=1.0)
        tracker.activate(5.0)
        with pytest.raises(TemporalError):
            tracker.deactivate(4.0)  # time went backwards


class TestExpiryAndBudget:
    def test_expiry_time(self):
        tracker = ValidityTracker(duration=5.0)
        tracker.activate(2.0)
        assert tracker.expiry_time() == pytest.approx(7.0)

    def test_expiry_time_accounts_for_consumption(self):
        tracker = ValidityTracker(duration=5.0)
        tracker.activate(0.0)
        tracker.deactivate(2.0)
        tracker.activate(10.0)
        assert tracker.expiry_time() == pytest.approx(13.0)

    def test_expiry_none_when_inactive_or_expired(self):
        tracker = ValidityTracker(duration=5.0)
        assert tracker.expiry_time() is None
        tracker.activate(0.0)
        tracker.state(10.0)
        assert tracker.expiry_time() is None

    def test_remaining_budget(self):
        tracker = ValidityTracker(duration=5.0)
        tracker.activate(0.0)
        assert tracker.remaining_budget(3.0) == pytest.approx(2.0)
        assert tracker.remaining_budget(9.0) == 0.0


class TestSchemes:
    def test_scheme_a_resets_on_migration(self):
        """t_b = t_i: per-server budget (Section 4, first scheme)."""
        tracker = ValidityTracker(duration=5.0, scheme=Scheme.PER_SERVER)
        tracker.activate(0.0)
        assert tracker.state(4.9) is PermissionState.VALID
        tracker.migrate(6.0)  # budget was exhausted at t=5...
        assert tracker.state(6.5) is PermissionState.VALID  # ...but resets
        assert tracker.state(11.0) is PermissionState.ACTIVE_INVALID

    def test_scheme_b_spans_migrations(self):
        """t_b = t_1: whole-execution budget (Section 4, second scheme)."""
        tracker = ValidityTracker(duration=5.0, scheme=Scheme.WHOLE_EXECUTION)
        tracker.activate(0.0)
        tracker.migrate(3.0)
        assert tracker.state(4.9) is PermissionState.VALID
        assert tracker.state(5.0) is PermissionState.ACTIVE_INVALID
        tracker.migrate(6.0)
        assert tracker.state(7.0) is PermissionState.ACTIVE_INVALID

    def test_migration_while_inactive(self):
        tracker = ValidityTracker(duration=5.0, scheme=Scheme.PER_SERVER)
        tracker.activate(0.0)
        tracker.deactivate(4.99)
        tracker.migrate(10.0)
        tracker.activate(11.0)
        assert tracker.state(15.9) is PermissionState.VALID


class TestTimelineConsistency:
    def test_recorded_valid_matches_integral_semantics(self):
        """Eq. 4.1: valid(perm,t)=1 exactly while active with budget,
        and the accumulated integral never exceeds dur(perm)."""
        tracker = ValidityTracker(duration=5.0)
        tracker.activate(1.0)
        tracker.deactivate(3.0)  # 2 consumed
        tracker.activate(4.0)
        tracker.state(20.0)  # expiry at t=7
        timeline = tracker.valid_timeline()
        assert timeline == BooleanTimeline.from_intervals([(1, 3), (4, 7)])
        assert timeline.integrate(0, 20) == pytest.approx(5.0)

    def test_valid_implies_active(self):
        tracker = ValidityTracker(duration=3.0)
        tracker.activate(1.0)
        tracker.deactivate(2.0)
        tracker.activate(5.0)
        tracker.state(30.0)
        valid = tracker.valid_timeline()
        active = tracker.active_timeline()
        for t in (0.5, 1.5, 3.0, 5.5, 7.5, 20.0):
            if valid.value_at(t):
                assert active.value_at(t)


class TestDurationCalculus:
    STATE = BooleanTimeline.from_intervals([(0, 2), (5, 8)])

    def test_duration_bounds(self):
        assert evaluate(DurationAtLeast(self.STATE, 5.0), 0, 10)
        assert not evaluate(DurationAtLeast(self.STATE, 5.1), 0, 10)
        assert evaluate(DurationAtMost(self.STATE, 5.0), 0, 10)
        assert not evaluate(DurationAtMost(self.STATE, 4.9), 0, 10)

    def test_everywhere(self):
        assert evaluate(Everywhere(self.STATE), 0, 2)
        assert evaluate(Everywhere(self.STATE), 5.5, 7.5)
        assert not evaluate(Everywhere(self.STATE), 1, 3)
        assert not evaluate(Everywhere(self.STATE), 2, 2)  # point interval

    def test_somewhere(self):
        assert evaluate(Somewhere(self.STATE), 1.9, 4)
        assert not evaluate(Somewhere(self.STATE), 2.5, 4.5)

    def test_boolean_connectives(self):
        f = DCAnd(Somewhere(self.STATE), DCNot(Everywhere(self.STATE)))
        assert evaluate(f, 1, 3)
        g = DCOr(Everywhere(self.STATE), Somewhere(self.STATE))
        assert evaluate(g, 0, 1)

    def test_chop(self):
        # [0,8] splits at 2: everywhere-on ; then at most 1s on in [2,?]..
        f = Chop(Everywhere(self.STATE), DurationAtMost(self.STATE, 3.0))
        assert evaluate(f, 0, 8)
        g = Chop(Everywhere(self.STATE), DurationAtLeast(self.STATE, 3.1))
        assert not evaluate(g, 0, 8)

    def test_bad_interval(self):
        with pytest.raises(TemporalError):
            evaluate(Somewhere(self.STATE), 5, 3)


class TestCheckValidity:
    def test_combined_decision(self):
        program = parse_program("exec rsw @ s2")
        constraint = parse_constraint("count(0, 5, [res = rsw])")
        valid = BooleanTimeline.from_intervals([(0, 4)])
        decision = check_validity(
            program, constraint, valid, t_b=0.0, t=10.0, duration=5.0
        )
        assert decision.holds
        assert decision.accumulated == pytest.approx(4.0)

    def test_temporal_violation(self):
        program = parse_program("exec rsw @ s2")
        valid = BooleanTimeline.from_intervals([(0, 7)])
        decision = check_validity(program, Top(), valid, 0.0, 10.0, duration=5.0)
        assert not decision.holds
        assert decision.spatial_ok
        assert not decision.temporal_ok

    def test_spatial_violation(self):
        from repro.traces.trace import AccessKey

        program = parse_program("exec rsw @ s2")
        constraint = parse_constraint("count(0, 5, [res = rsw])")
        history = (AccessKey("exec", "rsw", "s1"),) * 5
        valid = BooleanTimeline.from_intervals([(0, 1)])
        decision = check_validity(
            program, constraint, valid, 0.0, 10.0, duration=5.0, history=history
        )
        assert not decision.holds
        assert not decision.spatial_ok
        assert decision.temporal_ok
