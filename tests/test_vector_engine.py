"""Differential properties of the vectorized decision core.

The contract of :mod:`repro.rbac.vector_engine` is *bit-identity*: for
any eligible batch, the vector sweep must return exactly the decisions
the scalar loop returns — same grants, same reasons, same
:class:`~repro.obs.provenance.DecisionProvenance`, same audit order,
and the same validity-tracker end state (including the recorded
timelines).  Every test here runs the same workload through a
vector-enabled and a vector-disabled engine and compares.

Ineligible batches must *fall back*, not fail: the fallback paths are
driven both through configuration (owner scope, uncached SRAC,
explicit history, ``observe_granted``) and through forced
:class:`~repro.errors.AlphabetError` interning failures.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import tests.strategies as strategies
from repro.errors import AlphabetError, ReproError
from repro.rbac.audit import AuditLog, Decision
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.srac.compiled import TransitionTable, compile_table
from repro.srac.parser import parse_constraint
from repro.service.sharding import ShardedEngine
from repro.traces.trace import AccessKey

CHAIN_SRC = "exec r1 @ s1 >> exec r1 @ s2"
COUNT_SRC = "count(0, 3, [res = r1])"


def _norm(decision: Decision) -> Decision:
    """Session subject ids are globally unique; mask them out."""
    return dataclasses.replace(decision, subject_id="")


def _build_engines(permissions, durations, use_srac_caches=True):
    """One policy, two engines: vector path on vs off."""
    policy = Policy()
    policy.add_user("u")
    policy.add_role("r")
    for i, (constraint, duration) in enumerate(zip(permissions, durations)):
        kwargs = {} if duration is None else {"validity_duration": duration}
        policy.add_permission(
            Permission(
                f"p{i}",
                op="exec",
                resource="r1",
                spatial_constraint=constraint,
                **kwargs,
            )
        )
        policy.assign_permission("r", f"p{i}")
    policy.assign_user("u", "r")
    out = []
    for use_vector in (True, False):
        engine = AccessControlEngine(
            policy,
            use_srac_caches=use_srac_caches,
            use_vector_batches=use_vector,
        )
        session = engine.authenticate("u", 0.0)
        engine.activate_role(session, "r", 0.0)
        out.append((engine, session))
    return out


def _assert_equivalent(vec, sc):
    """Decisions, audit, counters and tracker timelines must agree."""
    (vec_engine, vec_session), (sc_engine, sc_session) = vec, sc
    assert [_norm(d) for d in vec_engine.audit] == [
        _norm(d) for d in sc_engine.audit
    ]
    assert vec_engine.audit.granted_count == sc_engine.audit.granted_count
    assert vec_engine.audit.denied_count == sc_engine.audit.denied_count
    assert set(vec_session.trackers) == set(sc_session.trackers)
    for key, sc_tracker in sc_session.trackers.items():
        vec_tracker = vec_session.trackers[key]
        assert vec_tracker.now == sc_tracker.now
        assert vec_tracker.state(sc_tracker.now) == sc_tracker.state(
            sc_tracker.now
        )
        assert vec_tracker.valid_timeline() == sc_tracker.valid_timeline()
        assert vec_tracker.active_timeline() == sc_tracker.active_timeline()


class TestDifferentialProperty:
    """Random policies x random workloads: scalar == vector, bitwise."""

    @given(
        constraint=strategies.constraints(max_leaves=4),
        duration=st.one_of(st.none(), st.integers(1, 8).map(float)),
        batch=st.lists(strategies.access_keys(), min_size=1, max_size=20),
        t0=st.integers(0, 5).map(float),
        dt=st.sampled_from([0.0, 1.0]),
    )
    @settings(max_examples=200, deadline=None, derandomize=True)
    def test_random_policy_bit_identity(
        self, constraint, duration, batch, t0, dt
    ):
        vec, sc = _build_engines([constraint], [duration])
        got = vec[0].decide_batch(vec[1], batch, t=t0, dt=dt)
        want = sc[0].decide_batch(sc[1], batch, t=t0, dt=dt)
        assert [_norm(d) for d in got] == [_norm(d) for d in want]
        _assert_equivalent(vec, sc)

    @given(
        c1=strategies.constraints(max_leaves=3),
        c2=strategies.constraints(max_leaves=3),
        batch=st.lists(strategies.access_keys(), min_size=1, max_size=12),
        dt=st.sampled_from([0.0, 0.5]),
    )
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_multi_candidate_bit_identity(self, c1, c2, batch, dt):
        """Several (role, permission) candidates per access: the
        first-grant short-circuit and the failing-candidate provenance
        must match the scalar walk exactly."""
        vec, sc = _build_engines([c1, c2], [3.0, None])
        got = vec[0].decide_batch(vec[1], batch, t=1.0, dt=dt)
        want = sc[0].decide_batch(sc[1], batch, t=1.0, dt=dt)
        assert [_norm(d) for d in got] == [_norm(d) for d in want]
        _assert_equivalent(vec, sc)

    def test_vector_path_actually_taken(self):
        vec, sc = _build_engines([parse_constraint(COUNT_SRC)], [None])
        batch = [AccessKey("exec", "r1", "s1")] * 10
        got = vec[0].decide_batch(vec[1], batch, t=1.0, dt=0.5)
        want = sc[0].decide_batch(sc[1], batch, t=1.0, dt=0.5)
        assert [_norm(d) for d in got] == [_norm(d) for d in want]
        stats = vec[0].cache_stats()
        assert stats.vector_decisions == 10
        assert stats.vector_fallbacks == 0
        assert sc[0].cache_stats().vector_decisions == 0


class TestTemporalBoundaries:
    def test_decision_exactly_at_expiry_instant(self):
        """``t >= expiry`` denies: the breakpoint arrays use
        ``side="right"``, which must agree at the boundary itself."""
        duration = 4.0
        vec, sc = _build_engines([None], [duration])
        # Role activation at 0.0 -> expiry at exactly 4.0.  The batch
        # instants 0, 2, 4, 6, 8 include the boundary itself.
        batch = [AccessKey("exec", "r1", "s1")] * 5
        got = vec[0].decide_batch(vec[1], batch, t=0.0, dt=2.0)
        want = sc[0].decide_batch(sc[1], batch, t=0.0, dt=2.0)
        assert [_norm(d) for d in got] == [_norm(d) for d in want]
        assert [d.granted for d in got] == [True, True, False, False, False]
        _assert_equivalent(vec, sc)

    def test_expiry_switch_recorded_at_same_instant(self):
        """The committed tracker advance must emit the validity-expired
        timeline switch at the same instant the scalar path records."""
        vec, sc = _build_engines([None], [2.0])
        batch = [AccessKey("exec", "r1", "s1")] * 8
        vec[0].decide_batch(vec[1], batch, t=0.5, dt=0.5)
        sc[0].decide_batch(sc[1], batch, t=0.5, dt=0.5)
        _assert_equivalent(vec, sc)
        (tracker,) = vec[1].trackers.values()
        assert 2.0 in tracker.valid_timeline().switches


class TestFallbacks:
    def _grant_batch(self):
        return [AccessKey("exec", "r1", "s1")] * 6

    def test_owner_scope_falls_back(self):
        policy = Policy()
        policy.add_user("u")
        policy.add_role("r")
        policy.add_permission(
            Permission("p", op="exec", resource="r1",
                       spatial_constraint=parse_constraint(COUNT_SRC))
        )
        policy.assign_user("u", "r")
        policy.assign_permission("r", "p")
        engine = AccessControlEngine(policy, coordination_scope="owner")
        session = engine.authenticate("u", 0.0)
        engine.activate_role(session, "r", 0.0)
        decisions = engine.decide_batch(session, self._grant_batch(), t=1.0)
        assert all(d.granted for d in decisions[:3])
        stats = engine.cache_stats()
        assert stats.vector_fallbacks == 6
        assert stats.vector_decisions == 0

    def test_uncached_srac_falls_back_identically(self):
        constraint = parse_constraint(COUNT_SRC)
        vec, sc = _build_engines(
            [constraint], [None], use_srac_caches=False
        )
        got = vec[0].decide_batch(vec[1], self._grant_batch(), t=1.0, dt=1.0)
        want = sc[0].decide_batch(sc[1], self._grant_batch(), t=1.0, dt=1.0)
        assert [_norm(d) for d in got] == [_norm(d) for d in want]
        assert vec[0].cache_stats().vector_fallbacks == 6

    def test_explicit_history_and_observe_granted_fall_back(self):
        constraint = parse_constraint(COUNT_SRC)
        for kwargs in (
            {"history": ()},
            {"observe_granted": True},
        ):
            vec, sc = _build_engines([constraint], [None])
            got = vec[0].decide_batch(
                vec[1], self._grant_batch(), t=1.0, dt=1.0, **kwargs
            )
            want = sc[0].decide_batch(
                sc[1], self._grant_batch(), t=1.0, dt=1.0, **kwargs
            )
            assert [_norm(d) for d in got] == [_norm(d) for d in want]
            assert vec[0].cache_stats().vector_fallbacks == 6
            _assert_equivalent(vec, sc)

    def test_alphabet_error_falls_back_not_raises(self, monkeypatch):
        """A forced interning failure mid-prepare must degrade to the
        scalar loop, not surface (prepare leaves no session state)."""
        constraint = parse_constraint(COUNT_SRC)
        vec, sc = _build_engines([constraint], [None])

        def boom(self, access):
            raise AlphabetError(f"access {access} outside table alphabet")

        monkeypatch.setattr(TransitionTable, "intern", boom)
        got = vec[0].decide_batch(vec[1], self._grant_batch(), t=1.0, dt=1.0)
        monkeypatch.undo()
        want = sc[0].decide_batch(sc[1], self._grant_batch(), t=1.0, dt=1.0)
        assert [_norm(d) for d in got] == [_norm(d) for d in want]
        assert vec[0].cache_stats().vector_fallbacks == 6
        _assert_equivalent(vec, sc)

    def test_stale_time_falls_back(self):
        """A batch starting behind an existing tracker's clock cannot be
        swept (tracker queries must stay monotone) — and the scalar
        loop's behaviour, whatever it is, is reproduced."""
        constraint = parse_constraint(COUNT_SRC)
        vec, sc = _build_engines([constraint], [5.0])
        for engine, session in (vec, sc):
            engine.decide_batch(session, self._grant_batch()[:1], t=4.0)
        outcomes = []
        for engine, session in (vec, sc):
            try:
                result = engine.decide_batch(
                    session, self._grant_batch()[:2], t=1.0, dt=0.5
                )
                outcomes.append([_norm(d) for d in result])
            except ReproError as exc:
                outcomes.append(type(exc).__name__)
        assert outcomes[0] == outcomes[1]
        assert vec[0].cache_stats().vector_fallbacks == 2


class TestAlphabetInterning:
    def test_intern_raises_typed_error(self):
        constraint = parse_constraint(CHAIN_SRC)
        universe = (
            AccessKey("exec", "r1", "s1"),
            AccessKey("exec", "r1", "s2"),
        )
        table = compile_table(constraint, universe, cache=False)
        assert table is not None
        foreign = AccessKey("write", "r9", "s9")
        with pytest.raises(AlphabetError) as err:
            table.intern(foreign)
        assert isinstance(err.value, ReproError)
        assert not isinstance(err.value, KeyError)
        assert "r9" in str(err.value)

    def test_intern_many_raises_typed_error(self):
        constraint = parse_constraint(CHAIN_SRC)
        universe = (
            AccessKey("exec", "r1", "s1"),
            AccessKey("exec", "r1", "s2"),
        )
        table = compile_table(constraint, universe, cache=False)
        with pytest.raises(AlphabetError):
            table.intern_many(
                [AccessKey("exec", "r1", "s1"), AccessKey("read", "r2", "s3")]
            )

    def test_step_ids_matches_monitor_steps(self):
        constraint = parse_constraint(COUNT_SRC)
        universe = tuple(
            AccessKey("exec", "r1", s) for s in ("s1", "s2", "s3")
        )
        table = compile_table(constraint, universe, cache=False)
        state = table.initial
        for access in universe * 3:
            state = int(table.trans[state, table.intern(access)])
        assert 0 <= state < table.trans.shape[0]
        # Counting 9 accesses against count(0, 3) leaves a dead state.
        assert not bool(table.live[state])


class TestBatchMany:
    def _sessions(self, engine, k):
        out = []
        for _ in range(k):
            session = engine.authenticate("u", 0.0)
            engine.activate_role(session, "r", 0.0)
            out.append(session)
        return out

    def test_interleaved_stream_matches_scalar(self):
        constraint = parse_constraint(COUNT_SRC)
        vec, sc = _build_engines([constraint], [6.0])
        vec_sessions = [vec[1]] + self._sessions(vec[0], 2)
        sc_sessions = [sc[1]] + self._sessions(sc[0], 2)
        accesses = [
            AccessKey("exec", "r1", f"s{1 + i % 3}") for i in range(24)
        ]
        got = vec[0].decide_batch_many(
            [(vec_sessions[i % 3], accesses[i]) for i in range(24)],
            t=1.0,
            dt=0.25,
        )
        want = sc[0].decide_batch_many(
            [(sc_sessions[i % 3], accesses[i]) for i in range(24)],
            t=1.0,
            dt=0.25,
        )
        assert [_norm(d) for d in got] == [_norm(d) for d in want]
        assert vec[0].cache_stats().vector_decisions == 24
        assert [_norm(d) for d in vec[0].audit] == [
            _norm(d) for d in sc[0].audit
        ]
        for v, s in zip(vec_sessions, sc_sessions):
            for key, sc_tracker in s.trackers.items():
                vec_tracker = v.trackers[key]
                assert vec_tracker.now == sc_tracker.now
                assert (
                    vec_tracker.valid_timeline() == sc_tracker.valid_timeline()
                )

    def test_sharded_sweep_matches_plain_engine(self):
        policy = Policy()
        policy.add_user("u")
        policy.add_role("r")
        policy.add_permission(
            Permission(
                "p",
                op="exec",
                resource="r1",
                spatial_constraint=parse_constraint(COUNT_SRC),
                validity_duration=8.0,
            )
        )
        policy.assign_user("u", "r")
        policy.assign_permission("r", "p")
        sharded = ShardedEngine(policy, shards=3)
        plain = AccessControlEngine(policy)
        sh_sessions, pl_sessions = [], []
        for i in range(4):
            s = sharded.authenticate("u", 0.0, shard_key=f"agent-{i}")
            sharded.activate_role(s, "r", 0.0)
            sh_sessions.append(s)
            p = plain.authenticate("u", 0.0)
            plain.activate_role(p, "r", 0.0)
            pl_sessions.append(p)
        requests = [
            (i % 4, AccessKey("exec", "r1", f"s{1 + i % 3}"))
            for i in range(20)
        ]
        got = sharded.decide_batch_many(
            [(sh_sessions[j], a) for j, a in requests], t=2.0, dt=0.5
        )
        want = plain.decide_batch_many(
            [(pl_sessions[j], a) for j, a in requests], t=2.0, dt=0.5
        )
        assert [_norm(d) for d in got] == [_norm(d) for d in want]
        assert sum(s["decisions"] for s in sharded.shard_stats()) == 20

    def test_explicit_times_length_mismatch(self):
        constraint = parse_constraint(COUNT_SRC)
        vec, _sc = _build_engines([constraint], [None])
        with pytest.raises(ReproError):
            vec[0].decide_batch_many(
                [(vec[1], AccessKey("exec", "r1", "s1"))],
                t=0.0,
                times=[1.0, 2.0],
            )


class TestAuditRecordMany:
    def test_counters_match_scalar_recording(self):
        grant = Decision("s", AccessKey("e", "r", "s"), True, 1.0)
        deny = Decision("s", AccessKey("e", "r", "s"), False, 2.0)
        log = AuditLog()
        log.record_many([grant, deny, grant])
        assert (log.granted_count, log.denied_count) == (2, 1)
        log.record_many([deny, deny], granted=0)
        assert (log.granted_count, log.denied_count) == (2, 3)
        assert len(log) == 5
        assert list(log)[-1] is deny

    def test_empty_batch(self):
        log = AuditLog()
        log.record_many([])
        assert len(log) == 0
        assert log.grant_rate() == 0.0


class TestStateCodes:
    def test_state_codes_match_scalar_states(self):
        """The read-only vectorized state query agrees with repeated
        scalar queries at every instant, including breakpoints."""
        from repro.temporal.validity import (
            STATE_CODES,
            ValidityTracker,
        )

        tracker = ValidityTracker(duration=3.0)
        # Inactive tracker: every instant reads INACTIVE.
        inactive = tracker.state_codes_at(np.array([0.0, 0.5]))
        assert [STATE_CODES[c] for c in inactive.tolist()] == [
            tracker.state(0.0),
            tracker.state(0.5),
        ]
        tracker.activate(1.0)
        # Contract: query instants are >= now; the probe includes the
        # expiry breakpoint (activation 1.0 + duration 3.0 = 4.0).
        probe = np.array([1.0, 2.0, 3.999, 4.0, 4.5, 9.0])
        codes = tracker.state_codes_at(probe)
        scalar_states = [tracker.state(float(t)) for t in probe]
        assert [STATE_CODES[c] for c in codes.tolist()] == scalar_states
