"""Tests for the observability layer (:mod:`repro.obs`) and the
service/temporal bug fixes that shipped with it.

The load-bearing property: instrumentation is **decision-neutral** —
running the same workload with observability enabled and disabled
produces bit-identical decision content (verdict, reason, provenance),
because provenance is part of the decision itself and the obs layer
only ever counts and times.
"""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.errors import ServiceError
from repro.obs import (
    OBS,
    RECORDER,
    REGISTRY,
    CandidateProvenance,
    DecisionProvenance,
    MetricsRegistry,
    SpanRecorder,
    span,
)
from repro.rbac.engine import DECIDE_SPAN_SAMPLE, AccessControlEngine
from repro.service import DecisionService, ShardedEngine
from repro.temporal.duration import (
    DurationAtLeast,
    DurationAtMost,
    Everywhere,
    Somewhere,
    evaluate,
)
from repro.temporal.timeline import BooleanTimeline
from repro.traces.trace import AccessKey

from tests.test_service_concurrency import SERVERS, make_policy, random_workload


@pytest.fixture(autouse=True)
def _obs_clean():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.gauge("g").add(0.5)
        hist = reg.histogram("h")
        for v in (0.1, 0.3, 0.2):
            hist.observe(v)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 2.0
        row = snap["histograms"]["h"]
        assert row["count"] == 3
        assert row["sum"] == pytest.approx(0.6)
        assert row["min"] == pytest.approx(0.1)
        assert row["max"] == pytest.approx(0.3)

    def test_labels_key_separate_instruments(self):
        reg = MetricsRegistry()
        reg.counter("c", shard="0").inc()
        reg.counter("c", shard="1").inc(5)
        snap = reg.snapshot()
        assert snap["counters"]["c{shard=0}"] == 1
        assert snap["counters"]["c{shard=1}"] == 5

    def test_same_key_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("c", a="1") is reg.counter("c", a="1")
        assert reg.counter("c", a="1") is not reg.counter("c", a="2")

    def test_bucketed_histogram(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            hist.observe(v)
        buckets = reg.snapshot()["histograms"]["h"]["buckets"]
        assert buckets["0.1"] == 1
        assert buckets["1.0"] == 1
        assert buckets["+inf"] == 1

    def test_reset_zeroes_but_keeps_bound_instruments(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        counter.inc(7)
        reg.reset()
        assert reg.snapshot()["counters"]["c"] == 0
        counter.inc()  # the pre-bound handle still works
        assert reg.snapshot()["counters"]["c"] == 1

    def test_bound_method_collector_lives_with_owner(self):
        class Owner:
            def collect(self):
                return {"owner.value": 42}

        reg = MetricsRegistry()
        owner = Owner()
        reg.register_collector(owner.collect)
        # A bound method must survive registration (WeakMethod): a
        # plain weakref to `owner.collect` would die immediately.
        assert reg.snapshot()["collected"] == {"owner.value": 42}
        del owner
        assert "collected" not in reg.snapshot()

    def test_collectors_sum_duplicate_keys(self):
        class Shard:
            def __init__(self, n):
                self.n = n

            def collect(self):
                return {"shard.decisions": self.n}

        reg = MetricsRegistry()
        shards = [Shard(1), Shard(10)]
        for shard in shards:
            reg.register_collector(shard.collect)
        assert reg.snapshot()["collected"]["shard.decisions"] == 11

    def test_absorb_preserves_dead_collector_totals(self):
        reg = MetricsRegistry()
        reg.absorb({"engine.decisions": 5})
        reg.absorb({"engine.decisions": 3})
        assert reg.snapshot()["collected"]["engine.decisions"] == 8
        reg.reset()
        assert "collected" not in reg.snapshot()

    def test_unregister_collector(self):
        class Owner:
            def collect(self):
                return {"x": 1}

        reg = MetricsRegistry()
        owner = Owner()
        reg.register_collector(owner.collect)
        reg.unregister_collector(owner.collect)
        assert "collected" not in reg.snapshot()


# ---------------------------------------------------------------------------
# span recorder
# ---------------------------------------------------------------------------


class TestSpanRecorder:
    def test_record_and_query(self):
        rec = SpanRecorder(capacity=8)
        rec.record("a", 0.0, 0.5)
        rec.record("b", 1.0, 0.25, {"k": "v"})
        assert len(rec) == 2
        assert [s.name for s in rec.spans()] == ["a", "b"]
        assert rec.spans("b")[0].attrs == {"k": "v"}
        assert rec.recent(1)[0].name == "b"

    def test_ring_buffer_caps_capacity(self):
        rec = SpanRecorder(capacity=4)
        for i in range(10):
            rec.record(f"s{i}", float(i), 0.0)
        assert len(rec) == 4
        assert [s.name for s in rec.spans()] == ["s6", "s7", "s8", "s9"]

    def test_summary_aggregates(self):
        rec = SpanRecorder()
        rec.record("op", 0.0, 1.0)
        rec.record("op", 1.0, 3.0, error="ValueError")
        summary = rec.summary()["op"]
        assert summary["count"] == 2
        assert summary["total_s"] == pytest.approx(4.0)
        assert summary["mean_s"] == pytest.approx(2.0)
        assert summary["max_s"] == pytest.approx(3.0)
        assert summary["errors"] == 1

    def test_span_contextmanager_noop_when_disabled(self):
        rec = SpanRecorder()
        with span("idle", recorder=rec):
            pass
        assert len(rec) == 0

    def test_span_contextmanager_records_when_enabled(self):
        rec = SpanRecorder()
        obs.enable()
        with span("work", recorder=rec, where="here"):
            pass
        (recorded,) = rec.spans()
        assert recorded.name == "work"
        assert recorded.attrs == {"where": "here"}
        assert recorded.error is None

    def test_span_contextmanager_records_error_and_reraises(self):
        rec = SpanRecorder()
        obs.enable()
        with pytest.raises(ValueError):
            with span("boom", recorder=rec):
                raise ValueError("nope")
        (recorded,) = rec.spans()
        assert recorded.error == "ValueError"


# ---------------------------------------------------------------------------
# obs switch / export
# ---------------------------------------------------------------------------


class TestObsSwitch:
    def test_enable_disable(self):
        assert not obs.is_enabled()
        obs.enable()
        assert obs.is_enabled() and OBS.enabled
        obs.disable()
        assert not obs.is_enabled()

    def test_export_shape(self):
        obs.enable()
        REGISTRY.counter("x").inc()
        RECORDER.record("s", 0.0, 0.1)
        out = obs.export()
        assert out["enabled"] is True
        assert out["metrics"]["counters"]["x"] == 1
        assert out["spans"]["s"]["count"] == 1
        obs.reset()
        out = obs.export()
        assert out["metrics"]["counters"]["x"] == 0
        assert out["spans"] == {}


# ---------------------------------------------------------------------------
# engine instrumentation + provenance
# ---------------------------------------------------------------------------


def _fresh_engine(count_bound: int = 2):
    engine = AccessControlEngine(make_policy(count_bound))
    session = engine.authenticate("u", 0.0)
    engine.activate_role(session, "r", 0.0)
    return engine, session


class TestEngineObservability:
    def test_collector_counts_decisions(self):
        obs.enable()
        engine, session = _fresh_engine(count_bound=2)
        for i in range(4):
            decision = engine.decide(
                session, ("exec", "rsw", "s0"), float(i + 1), history=None
            )
            if decision.granted:
                engine.observe(session, decision.access)
        collected = REGISTRY.snapshot()["collected"]
        assert collected["engine.decisions"] == 4
        assert collected["engine.decisions.granted"] == 2
        assert collected["engine.decisions.denied"] == 2

    def test_outcome_counts_are_audit_derived_even_when_disabled(self):
        engine, session = _fresh_engine(count_bound=5)
        engine.decide(session, ("exec", "rsw", "s0"), 1.0, history=None)
        collected = REGISTRY.snapshot()["collected"]
        assert collected["engine.decisions"] == 1
        assert collected["engine.decisions.granted"] == 1

    def test_decide_spans_sampled(self):
        obs.enable()
        engine, session = _fresh_engine(count_bound=10 ** 6)
        n = 2 * DECIDE_SPAN_SAMPLE
        for i in range(n):
            engine.decide(session, ("exec", "rsw", "s0"), float(i + 1), history=None)
        assert len(RECORDER.spans("engine.decide")) == 2
        collected = REGISTRY.snapshot()["collected"]
        assert collected["engine.decide.sampled"] == 2
        assert collected["engine.decide.sampled_s"] > 0

    def test_no_spans_while_disabled(self):
        engine, session = _fresh_engine(count_bound=10 ** 6)
        for i in range(2 * DECIDE_SPAN_SAMPLE):
            engine.decide(session, ("exec", "rsw", "s0"), float(i + 1), history=None)
        assert len(RECORDER.spans("engine.decide")) == 0

    def test_reset_stats_rebaselines_obs_counters(self):
        obs.enable()
        engine, session = _fresh_engine(count_bound=5)
        engine.decide(session, ("exec", "rsw", "s0"), 1.0, history=None)
        engine.reset_stats()
        collected = REGISTRY.snapshot()["collected"]
        assert collected["engine.decisions"] == 0
        engine.decide(session, ("exec", "rsw", "s0"), 2.0, history=None)
        collected = REGISTRY.snapshot()["collected"]
        assert collected["engine.decisions"] == 1


class TestProvenance:
    def test_grant_carries_winning_candidate(self):
        engine, session = _fresh_engine()
        decision = engine.decide(session, ("exec", "rsw", "s0"), 1.0, history=None)
        assert decision.granted
        p = decision.provenance
        assert p.kind == "granted"
        assert p.history_mode == "incremental"
        (candidate,) = p.candidates
        assert candidate.role == "r"
        assert candidate.permission == "p"
        assert candidate.spatial_ok and candidate.temporal_ok
        assert "count(0, 2, [res = rsw])" in candidate.constraint
        assert "granted via role 'r'" in p.describe()

    def test_spatial_denial_names_constraint(self):
        engine, session = _fresh_engine(count_bound=2)
        for i in range(2):
            decision = engine.decide(
                session, ("exec", "rsw", "s0"), float(i + 1), history=None
            )
            engine.observe(session, decision.access)
        denial = engine.decide(session, ("exec", "rsw", "s0"), 3.0, history=None)
        assert not denial.granted
        p = denial.provenance
        assert p.kind == "spatial"
        assert p.failing is not None and not p.failing.spatial_ok
        assert "count(0, 2, [res = rsw])" in p.describe()
        assert p.history_len == 2

    def test_no_candidate_denial(self):
        engine, session = _fresh_engine()
        denial = engine.decide(session, ("read", "nothing", "s0"), 1.0, history=None)
        assert denial.provenance.kind == "no-candidate"
        assert denial.provenance.describe()

    def test_explicit_history_mode_and_foreign_servers(self):
        engine, session = _fresh_engine(count_bound=1)
        history = (
            AccessKey("exec", "rsw", "s1"),
            AccessKey("exec", "rsw", "s2"),
        )
        denial = engine.decide(session, ("exec", "rsw", "s0"), 1.0, history=history)
        assert not denial.granted
        p = denial.provenance
        assert p.history_mode == "explicit"
        assert p.history_len == 2
        # Both history entries came from servers other than s0.
        assert p.foreign_servers == ("s1", "s2")

    def test_every_denial_has_nonempty_provenance(self):
        engine, session = _fresh_engine(count_bound=1)
        engine.observe(session, AccessKey("exec", "rsw", "s0"))
        for access in (("exec", "rsw", "s1"), ("read", "x", "s0")):
            denial = engine.decide(session, access, 5.0, history=None)
            assert not denial.granted
            assert denial.provenance is not None
            assert denial.provenance.describe()

    def test_degraded_describe(self):
        p = DecisionProvenance(
            kind="degraded", uncorroborated=("d1", "d2"), detail="deny-uncorroborated"
        )
        assert "2 uncorroborated" in p.describe()
        assert "deny-uncorroborated" in p.describe()

    def test_as_dict_roundtrips_to_plain_types(self):
        engine, session = _fresh_engine()
        decision = engine.decide(session, ("exec", "rsw", "s0"), 1.0, history=None)
        d = decision.provenance.as_dict()
        assert d["kind"] == "granted"
        assert isinstance(d["candidates"], list)
        assert d["summary"] == decision.provenance.describe()
        assert isinstance(d["candidates"][0], dict)

    def test_temporal_describe_names_state(self):
        p = DecisionProvenance(
            kind="temporal",
            candidates=(
                CandidateProvenance(
                    role="r",
                    permission="p",
                    constraint=None,
                    spatial_ok=True,
                    temporal_ok=False,
                    temporal_state="active-but-invalid",
                ),
            ),
        )
        assert "active-but-invalid" in p.describe()


class TestDecisionNeutrality:
    """Instrumentation is decision-neutral: the same workload decides
    bit-identically with observability on and off (PR2's determinism
    harness, replayed under both switches)."""

    @staticmethod
    def _run(seed: int, enabled: bool):
        if enabled:
            obs.enable()
        else:
            obs.disable()
        try:
            workload = random_workload(seed, sessions=6, per_session=20)
            engine = AccessControlEngine(make_policy())
            outcomes = []
            for k, stream in enumerate(workload):
                session = engine.authenticate("u", 0.0)
                engine.activate_role(session, "r", 0.0)
                row = []
                for i, access in enumerate(stream):
                    decision = engine.decide(
                        session, access, float(i + 1), history=None
                    )
                    if decision.granted:
                        engine.observe(session, access)
                    # Everything decision-relevant except the
                    # process-global session id and wall-clock inputs.
                    row.append(
                        (
                            access,
                            decision.granted,
                            decision.role,
                            decision.permission,
                            decision.spatial_ok,
                            decision.temporal_ok,
                            decision.reason,
                            decision.provenance,
                        )
                    )
                outcomes.append(row)
            return outcomes
        finally:
            obs.disable()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_decisions_identical_with_obs_on_and_off(self, seed):
        assert self._run(seed, enabled=False) == self._run(seed, enabled=True)


# ---------------------------------------------------------------------------
# service regressions (satellites a, b, c)
# ---------------------------------------------------------------------------


class TestSubmitManyParity:
    def test_batch_and_single_submission_decide_identically(self):
        workload = random_workload(7, sessions=4, per_session=25)

        def run(batched: bool):
            sharded = ShardedEngine(make_policy(), shards=2)
            sessions = []
            for k in range(len(workload)):
                session = sharded.authenticate("u", 0.0, shard_key=f"agent-{k}")
                sharded.activate_role(session, "r", 0.0)
                sessions.append(session)
            requests = [
                (sessions[k], workload[k][i], float(i + 1))
                for i in range(len(workload[0]))
                for k in range(len(workload))
            ]
            with DecisionService(sharded, workers=4) as service:
                if batched:
                    futures = service.submit_many(requests, observe_granted=True)
                else:
                    futures = [
                        service.submit(s, a, t, observe_granted=True)
                        for s, a, t in requests
                    ]
                assert service.drain(timeout=60.0)
            return [
                (f.result().granted, f.result().reason, f.result().provenance)
                for f in futures
            ]

        assert run(batched=False) == run(batched=True)

    def test_explicit_empty_history_differs_from_incremental(self):
        """``history=()`` means "exactly this (empty) proved trace";
        ``history=None`` means the session's own observed history.
        With a count-2 bound the former never denies, the latter does."""
        sharded = ShardedEngine(make_policy(count_bound=2), shards=1)
        session = sharded.authenticate("u", 0.0)
        sharded.activate_role(session, "r", 0.0)
        with DecisionService(sharded, workers=1) as service:
            incremental = [
                service.submit(
                    session, ("exec", "rsw", "s0"), float(i + 1),
                    observe_granted=True,
                ).result()
                for i in range(4)
            ]
            explicit = [
                service.submit(
                    session, ("exec", "rsw", "s0"), float(i + 10), history=()
                ).result()
                for i in range(4)
            ]
        assert [d.granted for d in incremental] == [True, True, False, False]
        assert all(d.granted for d in explicit)


class TestCancellation:
    def _blocked_service(self):
        """A 1-worker service whose single worker is parked inside the
        post-decision hook until ``gate`` is set."""
        gate = threading.Event()
        in_hook = threading.Event()

        def hook(decision):
            in_hook.set()
            assert gate.wait(timeout=30.0)

        sharded = ShardedEngine(make_policy(), shards=1)
        session = sharded.authenticate("u", 0.0)
        sharded.activate_role(session, "r", 0.0)
        service = DecisionService(
            sharded, workers=1, post_decision_hook=hook, queue_depth=4
        )
        return service, session, gate, in_hook

    def test_cancelled_future_never_decided_and_counted(self):
        service, session, gate, in_hook = self._blocked_service()
        try:
            first = service.submit(session, ("exec", "rsw", "s0"), 1.0)
            assert in_hook.wait(timeout=30.0)
            second = service.submit(session, ("exec", "rsw", "s0"), 2.0)
            assert second.cancel()  # not yet picked up by the worker
            gate.set()
            assert service.drain(timeout=30.0)
            stats = service.service_stats()
            assert stats.cancelled == 1
            assert stats.completed == 1
            assert stats.submitted == 2
            assert second.cancelled()
            assert first.result().granted
            # The cancelled request was never decided: only one
            # decision ever reached the shard.
            assert sum(stats.shard_decisions) == 1
            assert stats.as_dict()["cancelled"] == 1
        finally:
            gate.set()
            service.shutdown()

    def test_queue_full_rolls_back_submitted(self):
        gate = threading.Event()
        in_hook = threading.Event()

        def hook(decision):
            in_hook.set()
            assert gate.wait(timeout=30.0)

        sharded = ShardedEngine(make_policy(), shards=1)
        session = sharded.authenticate("u", 0.0)
        sharded.activate_role(session, "r", 0.0)
        service = DecisionService(
            sharded, workers=1, post_decision_hook=hook, queue_depth=1
        )
        try:
            service.submit(session, ("exec", "rsw", "s0"), 1.0)
            assert in_hook.wait(timeout=30.0)
            service.submit(session, ("exec", "rsw", "s0"), 2.0)
            with pytest.raises(ServiceError):
                service.submit(session, ("exec", "rsw", "s0"), 3.0, block=False)
            stats = service.service_stats()
            assert stats.submitted == 2  # the rejected one was rolled back
            assert stats.rejected == 1
            gate.set()
            assert service.drain(timeout=30.0)
            final = service.service_stats()
            assert final.completed + final.cancelled == final.submitted == 2
        finally:
            gate.set()
            service.shutdown()


class TestSubmittedInvariant:
    def test_completed_never_exceeds_submitted_under_stress(self):
        """8 submitter threads vs. a sampler asserting the invariant
        ``completed + cancelled <= submitted`` at every observation —
        this is why the submission count is reserved *before* the
        queue put."""
        sharded = ShardedEngine(make_policy(count_bound=10 ** 6), shards=4)
        sessions = []
        for k in range(8):
            session = sharded.authenticate("u", 0.0, shard_key=f"agent-{k}")
            sharded.activate_role(session, "r", 0.0)
            sessions.append(session)
        violations = []
        stop = threading.Event()

        with DecisionService(sharded, workers=4, queue_depth=64) as service:

            def sample():
                while not stop.is_set():
                    stats = service.service_stats()
                    if stats.completed + stats.cancelled > stats.submitted:
                        violations.append(stats)

            def submit_all(k: int):
                for i in range(100):
                    while True:
                        try:
                            service.submit(
                                sessions[k],
                                ("exec", "rsw", SERVERS[i % len(SERVERS)]),
                                float(i + 1),
                                block=True,
                                timeout=5.0,
                            )
                            break
                        except ServiceError:
                            continue

            sampler = threading.Thread(target=sample)
            submitters = [
                threading.Thread(target=submit_all, args=(k,)) for k in range(8)
            ]
            sampler.start()
            for t in submitters:
                t.start()
            for t in submitters:
                t.join(timeout=60.0)
            assert service.drain(timeout=60.0)
            stop.set()
            sampler.join(timeout=10.0)
            assert not violations
            stats = service.service_stats()
            assert stats.completed + stats.cancelled == stats.submitted == 800


# ---------------------------------------------------------------------------
# duration-calculus tolerance boundaries (satellite d)
# ---------------------------------------------------------------------------


class TestDurationToleranceBoundaries:
    def _state(self, intervals):
        return BooleanTimeline.from_intervals(intervals)

    @pytest.mark.parametrize("scale", [1e-9, 1.0, 1e6, 1e9])
    def test_exact_boundary_compares_equal_at_any_scale(self, scale):
        """∫S over [0, scale] with S on for the first half is exactly
        scale/2 up to rounding; comparing against that bound must not
        misclassify at small or large horizons."""
        state = self._state([(0.0, scale / 2)])
        bound = state.integrate(0.0, scale)
        assert evaluate(DurationAtLeast(state, bound), 0.0, scale)
        assert evaluate(DurationAtMost(state, bound), 0.0, scale)

    @pytest.mark.parametrize("scale", [1e6, 1e9])
    def test_accumulated_rounding_does_not_flip_the_verdict(self, scale):
        """Many tiny intervals summing to (almost) the bound: the sum
        carries accumulated rounding error proportional to the scale,
        which the scale-relative tolerance absorbs — an absolute
        1e-12 epsilon would not."""
        k = 1000
        width = scale / (2 * k)
        intervals = [(i * 2 * width, i * 2 * width + width) for i in range(k)]
        state = self._state(intervals)
        assert evaluate(DurationAtLeast(state, scale / 2), 0.0, scale)
        assert evaluate(DurationAtMost(state, scale / 2), 0.0, scale)

    def test_tolerance_stays_below_meaningful_differences(self):
        """A genuine half-second deficit on a 1e9 s horizon must still
        deny: the relative tolerance (1e-12 × 1e9 = 1e-3 s) is far
        below any duration difference the model cares about."""
        scale = 1e9
        state = self._state([(0.0, scale / 2 - 0.5)])
        assert not evaluate(DurationAtLeast(state, scale / 2), 0.0, scale)
        assert evaluate(DurationAtMost(state, scale / 2), 0.0, scale)

    def test_somewhere_sees_half_second_on_huge_horizon(self):
        scale = 1e9
        state = self._state([(123456.0, 123456.5)])
        assert evaluate(Somewhere(state), 0.0, scale)

    def test_somewhere_rejects_empty_state_on_huge_horizon(self):
        state = self._state([])
        assert not evaluate(Somewhere(state), 0.0, 1e9)

    @pytest.mark.parametrize("scale", [1e-9, 1e9])
    def test_everywhere_at_scale_boundaries(self, scale):
        on = self._state([(0.0, scale)])
        assert evaluate(Everywhere(on), 0.0, scale)
        # A point interval never satisfies Everywhere.
        assert not evaluate(Everywhere(on), scale / 2, scale / 2)

    def test_small_horizon_keeps_historic_absolute_slack(self):
        """At sub-unit scale the tolerance floors at the historic
        absolute 1e-12, so tiny-horizon behaviour is unchanged."""
        state = self._state([(0.0, 1e-9)])
        bound = state.integrate(0.0, 1e-9)
        assert evaluate(DurationAtLeast(state, bound), 0.0, 1e-9)
        assert not evaluate(DurationAtLeast(state, bound + 1e-10), 0.0, 1e-9)
