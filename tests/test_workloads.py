"""Tests for the synthetic workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.sral.analysis import alphabet as program_alphabet
from repro.sral.ast import program_size
from repro.srac.ast import constraint_size
from repro.traces.regular import regex_size, verify_regular_completeness
from repro.workloads import (
    access_alphabet,
    coalition_topology,
    random_constraint,
    random_module_graph,
    random_program,
    random_regex,
    random_selection,
)


class TestAlphabet:
    def test_size(self):
        assert len(access_alphabet(2, 3, 4)) == 24

    def test_validation(self):
        with pytest.raises(WorkloadError):
            access_alphabet(0, 1, 1)


class TestRandomProgram:
    def test_deterministic_under_seed(self):
        p1 = random_program(np.random.default_rng(5), 30)
        p2 = random_program(np.random.default_rng(5), 30)
        assert p1 == p2

    def test_size_scales_with_leaves(self):
        rng = np.random.default_rng(0)
        small = program_size(random_program(rng, 10))
        rng = np.random.default_rng(0)
        large = program_size(random_program(rng, 100))
        assert large > small
        assert large >= 100

    def test_alphabet_respected(self):
        alphabet = access_alphabet(1, 1, 1)
        program = random_program(np.random.default_rng(1), 20, alphabet)
        assert program_alphabet(program) <= set(alphabet)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            random_program(np.random.default_rng(0), 0)

    @given(st.integers(1, 40), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_always_valid_program(self, leaves, seed):
        from repro.traces.model import program_traces

        program = random_program(np.random.default_rng(seed), leaves)
        # The trace model must be constructible and non-empty.
        assert not program_traces(program).is_empty()


class TestRandomRegex:
    def test_deterministic(self):
        r1 = random_regex(np.random.default_rng(9), 15)
        r2 = random_regex(np.random.default_rng(9), 15)
        assert r1 == r2

    @given(st.integers(1, 15), st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_theorem31_holds_on_generated(self, leaves, seed):
        regex = random_regex(np.random.default_rng(seed), leaves)
        assert regex_size(regex) >= leaves
        assert verify_regular_completeness(regex)


class TestRandomConstraint:
    def test_deterministic(self):
        c1 = random_constraint(np.random.default_rng(3), 8)
        c2 = random_constraint(np.random.default_rng(3), 8)
        assert c1 == c2

    def test_size_scales(self):
        c = random_constraint(np.random.default_rng(1), 20)
        assert constraint_size(c) >= 20

    def test_selection_fields_from_alphabet(self):
        alphabet = access_alphabet(2, 2, 2)
        sel = random_selection(np.random.default_rng(0), alphabet)
        assert sel.restrict(alphabet)  # selects something

    @given(st.integers(1, 12), st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_generated_constraints_are_checkable(self, leaves, seed):
        from repro.srac.checker import check_program

        rng = np.random.default_rng(seed)
        alphabet = access_alphabet(2, 2, 2)
        constraint = random_constraint(rng, leaves, alphabet)
        program = random_program(rng, 6, alphabet)
        # Must terminate and return a bool, whatever the combination.
        assert check_program(program, constraint) in (True, False)


class TestTopologies:
    def test_complete(self):
        c = coalition_topology(4, "complete", base_latency=2.0)
        assert c.migration_latency("s1", "s4") == 2.0

    def test_star(self):
        c = coalition_topology(4, "star", base_latency=1.0)
        assert c.migration_latency("s1", "s3") == 1.0  # hub spoke
        assert c.migration_latency("s2", "s3") == 2.0  # spoke-spoke

    def test_ring(self):
        c = coalition_topology(6, "ring", base_latency=1.0)
        assert c.migration_latency("s1", "s2") == 1.0
        assert c.migration_latency("s1", "s4") == 3.0
        assert c.migration_latency("s1", "s6") == 1.0  # wraps around

    def test_clocks_applied(self):
        c = coalition_topology(3, "complete", clock_skew=5.0, seed=1)
        skews = [c.server(n).clock.skew for n in c.server_names()]
        assert any(abs(s) > 0 for s in skews)

    def test_unknown_shape(self):
        with pytest.raises(WorkloadError):
            coalition_topology(3, "torus")

    def test_resources_present(self):
        c = coalition_topology(2, resources_per_server=3)
        assert len(c.server("s1").resources) == 3


class TestRandomModuleGraph:
    def test_deterministic(self):
        g1 = random_module_graph(10, 3, seed=4)
        g2 = random_module_graph(10, 3, seed=4)
        assert [m.name for m in g1.modules()] == [m.name for m in g2.modules()]
        assert [m.depends_on for m in g1.modules()] == [
            m.depends_on for m in g2.modules()
        ]

    def test_acyclic_by_construction(self):
        for seed in range(5):
            graph = random_module_graph(25, 4, edge_probability=0.5, seed=seed)
            assert len(graph.topological_order()) == 25

    def test_validation(self):
        with pytest.raises(WorkloadError):
            random_module_graph(0, 1)
        with pytest.raises(WorkloadError):
            random_module_graph(5, 2, edge_probability=1.5)
