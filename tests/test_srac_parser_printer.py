"""Parser and printer tests for SRAC concrete syntax."""

import pytest
from hypothesis import given, settings

import tests.strategies as strat
from repro.errors import ConstraintError, SracSyntaxError
from repro.srac.ast import (
    And,
    Atom,
    Bottom,
    Count,
    Iff,
    Implies,
    Not,
    Or,
    Ordered,
    Top,
)
from repro.srac.parser import parse_constraint, parse_selection
from repro.srac.printer import unparse_constraint, unparse_selection
from repro.srac.selection import (
    SelectAccesses,
    SelectAll,
    SelectAnd,
    SelectField,
    SelectNot,
    SelectOr,
)
from repro.traces.trace import AccessKey

A = AccessKey("read", "r1", "s1")
B = AccessKey("write", "r2", "s1")


class TestParsePrimary:
    def test_top_bottom(self):
        assert parse_constraint("T") == Top()
        assert parse_constraint("F") == Bottom()

    def test_atom(self):
        assert parse_constraint("read r1 @ s1") == Atom(A)

    def test_ordered(self):
        assert parse_constraint("read r1 @ s1 >> write r2 @ s1") == Ordered(A, B)

    def test_count_bounded(self):
        c = parse_constraint("count(0, 5, [res = rsw])")
        assert c == Count(0, 5, SelectField("resource", frozenset({"rsw"})))

    def test_count_unbounded(self):
        c = parse_constraint("count(2, *, [])")
        assert c == Count(2, None, SelectAll())

    def test_count_access_set(self):
        c = parse_constraint("count(0, 1, {read r1 @ s1, write r2 @ s1})")
        assert c == Count(0, 1, SelectAccesses(frozenset({A, B})))

    def test_selector_multi_field(self):
        sel = parse_selection("[op = {read, write}, server = s1]")
        assert sel == SelectAnd(
            (
                SelectField("op", frozenset({"read", "write"})),
                SelectField("server", frozenset({"s1"})),
            )
        )

    def test_selector_resource_alias(self):
        assert parse_selection("[res = r1]") == parse_selection("[resource = r1]")


class TestConnectives:
    def test_precedence_not_and_or(self):
        c = parse_constraint("~read r1 @ s1 & T | F")
        assert c == Or(And(Not(Atom(A)), Top()), Bottom())

    def test_keyword_connectives(self):
        assert parse_constraint("T and F") == And(Top(), Bottom())
        assert parse_constraint("T or F") == Or(Top(), Bottom())
        assert parse_constraint("not T") == Not(Top())

    def test_implies_right_associative(self):
        c = parse_constraint("T -> F -> T")
        assert c == Implies(Top(), Implies(Bottom(), Top()))

    def test_iff(self):
        assert parse_constraint("T <-> F") == Iff(Top(), Bottom())

    def test_or_binds_tighter_than_implies(self):
        c = parse_constraint("T | F -> F")
        assert c == Implies(Or(Top(), Bottom()), Bottom())

    def test_parentheses(self):
        c = parse_constraint("~(T | F)")
        assert c == Not(Or(Top(), Bottom()))

    def test_paper_example_rsw(self):
        # Example 3.5: #(0, 5, σ_RSW(A))
        c = parse_constraint("count(0, 5, [res = rsw])")
        assert isinstance(c, Count)
        assert c.lo == 0 and c.hi == 5

    def test_paper_example_dependency(self):
        # "module is correct iff its dependencies are verified first":
        # verify dependencies before the module.
        source = "exec m4 @ s2 >> exec m1 @ s1 & exec m5 @ s2 >> exec m1 @ s1"
        c = parse_constraint(source)
        assert isinstance(c, And)
        assert isinstance(c.left, Ordered)
        assert isinstance(c.right, Ordered)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "count(5, 2, [])",  # hi < lo
            "count(0, 5, )",
            "count(0, 5, [unknown = x])",
            "count(0, 5, [op = read, op = write])",  # duplicate field
            "count(-1, 5, [])",  # negative literal not allowed here
            "read r1 @",  # malformed access
            "read r1 @ s1 >>",  # dangling ordered
            "T &",
            "(T",
            "T T",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises((SracSyntaxError, ConstraintError)):
            parse_constraint(bad)


class TestRoundTrip:
    def test_examples(self):
        for source in [
            "T",
            "read r1 @ s1 >> write r2 @ s1",
            "count(0, 5, [res = rsw])",
            "~(T | F) & read r1 @ s1",
            "T -> F -> T",
            "(T -> F) -> T",
            "T <-> F <-> T",
        ]:
            constraint = parse_constraint(source)
            assert parse_constraint(unparse_constraint(constraint)) == constraint

    @given(strat.constraints(max_leaves=10, expressible_only=True))
    @settings(max_examples=300, deadline=None)
    def test_round_trip_property(self, constraint):
        assert parse_constraint(unparse_constraint(constraint)) == constraint

    @given(strat.selections(expressible_only=True))
    @settings(max_examples=200, deadline=None)
    def test_selection_round_trip(self, selection):
        assert parse_selection(unparse_selection(selection)) == selection

    def test_inexpressible_selection_raises(self):
        with pytest.raises(ConstraintError):
            unparse_selection(SelectOr((SelectAll(), SelectAll())))
        with pytest.raises(ConstraintError):
            unparse_selection(SelectNot(SelectAll()))
