"""Tests for regular trace models and Theorem 3.1 (regular completeness)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sral.analysis import has_loops
from repro.sral.ast import If, Seq, Skip, While
from repro.sral.ast import Access as AccessNode
from repro.traces.model import program_traces
from repro.traces.regular import (
    Alt,
    Cat,
    Eps,
    Star,
    Sym,
    regex_size,
    regex_to_program,
    regex_traces,
    verify_regular_completeness,
)
from repro.traces.trace import AccessKey

A = AccessKey("read", "r1", "s1")
B = AccessKey("write", "r2", "s1")
C = AccessKey("exec", "r3", "s2")


def regexes(max_leaves: int = 10):
    leaves = st.one_of(
        st.sampled_from([A, B, C]).map(Sym),
        st.just(Eps()),
    )

    def extend(children):
        return st.one_of(
            st.builds(Alt, children, children),
            st.builds(Cat, children, children),
            st.builds(Star, children),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


class TestRegexTraces:
    def test_sym(self):
        assert regex_traces(Sym(A)).all_traces() == {(A,)}

    def test_sym_accepts_plain_tuple(self):
        r = Sym(("read", "r1", "s1"))
        assert isinstance(r.access, AccessKey)
        assert regex_traces(r).all_traces() == {(A,)}

    def test_eps(self):
        assert regex_traces(Eps()).all_traces() == {()}

    def test_alt_cat_star(self):
        r = Cat(Sym(A), Star(Alt(Sym(B), Sym(C))))
        m = regex_traces(r)
        assert (A,) in m
        assert (A, B, C, B) in m
        assert (B,) not in m

    def test_regex_size(self):
        assert regex_size(Sym(A)) == 1
        assert regex_size(Cat(Sym(A), Star(Sym(B)))) == 4


class TestTheorem31:
    def test_sym_becomes_access(self):
        p = regex_to_program(Sym(A))
        assert isinstance(p, AccessNode)
        assert p.key() == A

    def test_eps_becomes_skip(self):
        assert regex_to_program(Eps()) == Skip()

    def test_alt_becomes_if(self):
        p = regex_to_program(Alt(Sym(A), Sym(B)))
        assert isinstance(p, If)

    def test_cat_becomes_seq(self):
        p = regex_to_program(Cat(Sym(A), Sym(B)))
        assert isinstance(p, Seq)

    def test_star_becomes_while(self):
        p = regex_to_program(Star(Sym(A)))
        assert isinstance(p, While)
        assert has_loops(p)

    def test_fresh_conditions_are_distinct(self):
        p = regex_to_program(Alt(Alt(Sym(A), Sym(B)), Star(Sym(C))))
        conds = set()

        def collect(node):
            if isinstance(node, (If, While)):
                conds.add(node.cond)
            for child in node.children():
                collect(child)

        collect(p)
        assert len(conds) == 3

    def test_paper_proof_example(self):
        # T ∪ V, T · V and T* all synthesise correctly for T={<A>}, V={<B>}.
        for regex in (Alt(Sym(A), Sym(B)), Cat(Sym(A), Sym(B)), Star(Sym(A))):
            assert verify_regular_completeness(regex)

    @given(regexes(max_leaves=12))
    @settings(max_examples=150, deadline=None)
    def test_regular_completeness_property(self, regex):
        """Theorem 3.1, machine-checked: for every regular trace model m
        there is a program P with traces(P) = m."""
        assert verify_regular_completeness(regex)

    @given(regexes(max_leaves=8))
    @settings(max_examples=80, deadline=None)
    def test_synthesised_program_traces_equal_regex_model(self, regex):
        program = regex_to_program(regex)
        assert program_traces(program).equals(regex_traces(regex))
