"""Tests for program satisfaction P |= C (Definition 3.7 / Theorem 3.2)."""

import pytest
from hypothesis import given, settings

import tests.strategies as strat
from repro.errors import ConstraintError
from repro.sral.parser import parse_program
from repro.srac.ast import Atom, Bottom, Count, Not, Ordered, Top
from repro.srac.checker import check_program, check_program_stats
from repro.srac.parser import parse_constraint
from repro.srac.selection import SelectAll
from repro.srac.trace_check import trace_satisfies
from repro.traces.model import program_traces
from repro.traces.trace import AccessKey

A = AccessKey("read", "r1", "s1")
B = AccessKey("write", "r2", "s1")
C = AccessKey("exec", "r3", "s2")


class TestForallMode:
    def test_simple_atom_holds(self):
        p = parse_program("read r1 @ s1 ; write r2 @ s1")
        assert check_program(p, Atom(A))
        assert check_program(p, Atom(B))
        assert not check_program(p, Atom(C))

    def test_branch_can_violate(self):
        p = parse_program("if c then read r1 @ s1 else write r2 @ s1")
        # Only one branch performs A, so not every trace satisfies it.
        assert not check_program(p, Atom(A))
        assert check_program(p, parse_constraint("read r1 @ s1 | write r2 @ s1"))

    def test_ordered_holds_for_seq(self):
        p = parse_program("read r1 @ s1 ; write r2 @ s1")
        assert check_program(p, Ordered(A, B))
        assert not check_program(p, Ordered(B, A))

    def test_ordered_violated_by_par(self):
        p = parse_program("read r1 @ s1 || write r2 @ s1")
        # Some interleaving performs B first.
        assert not check_program(p, Ordered(A, B))

    def test_loop_can_exceed_count(self):
        p = parse_program("while c do read r1 @ s1")
        limit = Count(0, 5, SelectAll())
        assert not check_program(p, limit)
        result = check_program_stats(p, limit)
        assert result.witness is not None
        assert len(result.witness) == 6  # shortest violating trace

    def test_loop_free_program_within_count(self):
        p = parse_program("read r1 @ s1 ; read r1 @ s1")
        assert check_program(p, Count(0, 5, SelectAll()))
        assert not check_program(p, Count(3, None, SelectAll()))

    def test_top_bottom(self):
        p = parse_program("read r1 @ s1")
        assert check_program(p, Top())
        assert not check_program(p, Bottom())

    def test_skip_program_and_empty_trace(self):
        p = parse_program("skip")
        assert check_program(p, Top())
        assert not check_program(p, Atom(A))
        assert check_program(p, Not(Atom(A)))

    def test_witness_is_violating_trace(self):
        p = parse_program("if c then read r1 @ s1 else write r2 @ s1")
        result = check_program_stats(p, Atom(A))
        assert result.holds is False
        assert result.witness == (B,)
        assert not trace_satisfies(result.witness, Atom(A))


class TestExistsMode:
    def test_exists_finds_satisfying_branch(self):
        p = parse_program("if c then read r1 @ s1 else write r2 @ s1")
        assert check_program(p, Atom(A), mode="exists")
        assert check_program(p, Atom(B), mode="exists")
        assert not check_program(p, Atom(C), mode="exists")

    def test_exists_with_loop(self):
        p = parse_program("while c do read r1 @ s1")
        assert check_program(p, Count(3, None, SelectAll()), mode="exists")

    def test_exists_witness_satisfies(self):
        p = parse_program("while c do read r1 @ s1")
        result = check_program_stats(p, Count(3, None, SelectAll()), mode="exists")
        assert result.holds
        assert result.witness is not None
        assert trace_satisfies(result.witness, Count(3, None, SelectAll()))

    def test_bad_mode_rejected(self):
        with pytest.raises(ConstraintError):
            check_program(parse_program("skip"), Top(), mode="sometimes")


class TestHistory:
    def test_history_advances_monitors(self):
        # Program performs one more RSW access; history already has 5.
        rsw = AccessKey("exec", "rsw", "s2")
        p = parse_program("exec rsw @ s2")
        limit = parse_constraint("count(0, 5, [res = rsw])")
        history5 = (AccessKey("exec", "rsw", "s1"),) * 5
        assert check_program(p, limit, history=history5) is False
        assert check_program(p, limit, history=history5[:4]) is True

    def test_history_satisfies_ordered_prefix(self):
        p = parse_program("write r2 @ s1")
        assert check_program(p, Ordered(A, B), history=(A,))
        assert not check_program(p, Ordered(A, B), history=())

    def test_coordinated_denial_across_servers(self):
        """The paper's motivating requirement: too many accesses at s1
        deny the access at s2 forever."""
        rsw_s1 = AccessKey("exec", "rsw", "s1")
        limit = parse_constraint("count(0, 5, [res = rsw])")
        request_at_s2 = parse_program("exec rsw @ s2")
        # 5 previous accesses at s1: the 6th (at a different server!) fails.
        assert not check_program(request_at_s2, limit, history=(rsw_s1,) * 5)


class TestAgainstEnumeration:
    @given(
        strat.loop_free_programs(max_leaves=5),
        strat.constraints(max_leaves=6, expressible_only=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_forall_matches_explicit_enumeration(self, program, constraint):
        expected = all(
            trace_satisfies(t, constraint)
            for t in program_traces(program).all_traces()
        )
        assert check_program(program, constraint) == expected

    @given(
        strat.loop_free_programs(max_leaves=5),
        strat.constraints(max_leaves=6, expressible_only=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_exists_matches_explicit_enumeration(self, program, constraint):
        expected = any(
            trace_satisfies(t, constraint)
            for t in program_traces(program).all_traces()
        )
        assert check_program(program, constraint, mode="exists") == expected

    @given(strat.programs(max_leaves=6), strat.constraints(max_leaves=5))
    @settings(max_examples=100, deadline=None)
    def test_forall_implies_exists_on_programs(self, program, constraint):
        # traces(P) is never empty, so forall-satisfaction implies
        # exists-satisfaction.
        if check_program(program, constraint):
            assert check_program(program, constraint, mode="exists")

    @given(strat.loop_free_programs(max_leaves=5), strat.constraints(max_leaves=5))
    @settings(max_examples=100, deadline=None)
    def test_negation_duality(self, program, constraint):
        # forall t: t |= C  <=>  not exists t: t |= ~C
        forall_c = check_program(program, constraint)
        exists_not_c = check_program(program, Not(constraint), mode="exists")
        assert forall_c == (not exists_not_c)


class TestComplexityGuard:
    def test_max_configurations_enforced(self):
        p = parse_program("while c do { read r1 @ s1 ; write r2 @ s1 ; exec r3 @ s2 }")
        big = parse_constraint("count(0, 500, []) & count(0, 499, []) ")
        with pytest.raises(ConstraintError):
            check_program(p, big, max_configurations=10)

    def test_stats_report_configurations(self):
        p = parse_program("read r1 @ s1 ; write r2 @ s1")
        result = check_program_stats(p, Atom(A))
        assert result.configurations >= 3
