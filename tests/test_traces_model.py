"""Tests for TraceModel and program_traces (Definition 3.2)."""

import itertools

import pytest
from hypothesis import given, settings

import tests.strategies as strat
from repro.errors import TraceModelError
from repro.sral.parser import parse_program
from repro.traces.model import TraceModel, program_traces
from repro.traces.trace import AccessKey, interleavings

A = AccessKey("read", "r1", "s1")
B = AccessKey("write", "r2", "s1")
C = AccessKey("exec", "r3", "s2")


class TestConstructors:
    def test_single(self):
        m = TraceModel.single(A)
        assert (A,) in m
        assert () not in m
        assert (A, A) not in m

    def test_empty_trace_model(self):
        m = TraceModel.empty_trace()
        assert () in m
        assert (A,) not in m

    def test_nothing(self):
        m = TraceModel.nothing()
        assert m.is_empty()
        assert () not in m

    def test_of_traces(self):
        m = TraceModel.of_traces([(A, B), (C,)])
        assert (A, B) in m
        assert (C,) in m
        assert (A,) not in m
        assert m.all_traces() == {(A, B), (C,)}


class TestAlgebra:
    def test_concat(self):
        m = TraceModel.single(A).concat(TraceModel.single(B))
        assert m.all_traces() == {(A, B)}

    def test_union(self):
        m = TraceModel.single(A).union(TraceModel.single(B))
        assert m.all_traces() == {(A,), (B,)}

    def test_star_contains_all_powers(self):
        m = TraceModel.single(A).star()
        for k in range(5):
            assert (A,) * k in m
        assert not m.is_finite()

    def test_interleave_matches_paper_example(self):
        # traces(a1 ; a2) interleaved with {<b>}
        left = TraceModel.of_traces([(A, B)])
        right = TraceModel.single(C)
        m = left.interleave(right)
        assert m.all_traces() == set(interleavings((A, B), (C,)))

    def test_interleave_with_empty_trace_is_identity(self):
        left = TraceModel.of_traces([(A, B), (C,)])
        m = left.interleave(TraceModel.empty_trace())
        assert m.equals(left)

    def test_concat_identity(self):
        left = TraceModel.of_traces([(A,), (B, C)])
        assert left.concat(TraceModel.empty_trace()).equals(left)
        assert TraceModel.empty_trace().concat(left).equals(left)

    def test_union_idempotent(self):
        m = TraceModel.of_traces([(A,), (B,)])
        assert m.union(m).equals(m)

    def test_star_idempotent(self):
        m = TraceModel.single(A).star()
        assert m.star().equals(m)


class TestDecisionProcedures:
    def test_equality_is_by_language(self):
        # a ; (b|c) == (a;b) | (a;c)
        m1 = TraceModel.single(A).concat(
            TraceModel.single(B).union(TraceModel.single(C))
        )
        m2 = TraceModel.of_traces([(A, B)]).union(TraceModel.of_traces([(A, C)]))
        assert m1 == m2
        assert hash(m1) == hash(m2)

    def test_inclusion(self):
        small = TraceModel.of_traces([(A,)])
        big = TraceModel.single(A).star()
        assert small.included_in(big)
        assert not big.included_in(small)

    def test_is_finite(self):
        assert TraceModel.of_traces([(A, B), ()]).is_finite()
        assert not TraceModel.single(A).star().is_finite()

    def test_all_traces_rejects_infinite(self):
        with pytest.raises(TraceModelError):
            TraceModel.single(A).star().all_traces()

    def test_enumerate_ordered_by_length(self):
        m = TraceModel.single(A).star()
        words = list(m.enumerate(3))
        assert words == [(), (A,), (A, A), (A, A, A)]

    def test_shortest_trace(self):
        m = TraceModel.of_traces([(A, B), (C,)])
        assert m.shortest_trace() == (C,)
        assert TraceModel.nothing().shortest_trace() is None


class TestProgramTraces:
    def test_single_access(self):
        m = program_traces(parse_program("read r1 @ s1"))
        assert m.all_traces() == {(A,)}

    def test_seq(self):
        m = program_traces(parse_program("read r1 @ s1 ; write r2 @ s1"))
        assert m.all_traces() == {(A, B)}

    def test_if_is_union(self):
        m = program_traces(
            parse_program("if x > 0 then read r1 @ s1 else write r2 @ s1")
        )
        assert m.all_traces() == {(A,), (B,)}

    def test_while_is_star(self):
        m = program_traces(parse_program("while c do read r1 @ s1"))
        assert not m.is_finite()
        assert () in m
        assert (A, A, A) in m

    def test_par_is_interleaving(self):
        m = program_traces(parse_program("read r1 @ s1 || write r2 @ s1"))
        assert m.all_traces() == {(A, B), (B, A)}

    def test_non_access_statements_are_invisible(self):
        m = program_traces(
            parse_program("ch ? x ; ch ! 1 ; signal(e) ; wait(e) ; n := 2 ; skip")
        )
        assert m.all_traces() == {()}

    def test_paper_example_traces_a1_a2(self):
        # "traces(a1 ; a2) = {<a1, a2>}" from Section 3.2
        m = program_traces(parse_program("read r1 @ s1 ; write r2 @ s1"))
        assert m.all_traces() == {(A, B)}

    def test_nested_loop_and_choice(self):
        p = parse_program("while c do { if d then read r1 @ s1 else write r2 @ s1 }")
        m = program_traces(p)
        # Any word over {A, B} is a trace.
        for word in itertools.product([A, B], repeat=3):
            assert word in m

    @given(strat.loop_free_programs(max_leaves=6))
    @settings(max_examples=80, deadline=None)
    def test_loop_free_models_are_finite(self, program):
        model = program_traces(program)
        assert model.is_finite()
        traces = model.all_traces()
        assert traces  # every program has at least one trace

    @given(strat.programs(max_leaves=8))
    @settings(max_examples=80, deadline=None)
    def test_trace_model_never_empty(self, program):
        # traces(P) always contains at least one trace (possibly <>).
        assert not program_traces(program).is_empty()

    @given(strat.loop_free_programs(max_leaves=5, with_par=True))
    @settings(max_examples=60, deadline=None)
    def test_model_matches_explicit_enumeration(self, program):
        """Cross-validate the automaton semantics against a direct
        set-based evaluation of Definition 3.2 on small programs."""
        from repro.sral.ast import Access, If, Par, Seq
        from repro.traces.trace import interleavings as ilv

        def explicit(p):
            if isinstance(p, Access):
                return {(AccessKey(*p.key()),)}
            if isinstance(p, Seq):
                return {
                    t + v
                    for t in explicit(p.first)
                    for v in explicit(p.second)
                }
            if isinstance(p, If):
                return explicit(p.then) | explicit(p.orelse)
            if isinstance(p, Par):
                out = set()
                for t in explicit(p.left):
                    for v in explicit(p.right):
                        out |= set(ilv(t, v))
                return out
            return {()}

        assert program_traces(program).all_traces() == explicit(program)
