"""Tests for the coalition substrate: clocks, resources, proofs,
channels, servers and the coalition network."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coalition.channels import EMPTY, Channel, ChannelTable, SignalTable
from repro.coalition.clock import ServerClock, make_clocks
from repro.coalition.network import Coalition, constant_latency, uniform_latency
from repro.coalition.proofs import GENESIS_DIGEST, ExecutionProof, ProofRegistry
from repro.coalition.resource import Resource, ResourceRegistry
from repro.coalition.server import CoalitionServer
from repro.errors import ChannelError, CoalitionError, MigrationError
from repro.traces.trace import AccessKey


class TestClocks:
    def test_identity_clock(self):
        clock = ServerClock()
        assert clock.local_time(42.0) == 42.0

    def test_skew_and_drift(self):
        clock = ServerClock(skew=5.0, drift=0.01)
        assert clock.local_time(100.0) == pytest.approx(106.0)
        assert clock.local_duration(100.0) == pytest.approx(101.0)

    def test_round_trip(self):
        clock = ServerClock(skew=-3.0, drift=1e-4)
        for t in (0.0, 17.5, 1e6):
            assert clock.global_time(clock.local_time(t)) == pytest.approx(t)

    def test_pathological_drift_rejected(self):
        with pytest.raises(CoalitionError):
            ServerClock(drift=-1.0)

    def test_make_clocks_deterministic(self):
        a = make_clocks(5, seed=7)
        b = make_clocks(5, seed=7)
        assert a == b
        assert len(a) == 5
        assert all(abs(c.skew) <= 5.0 and abs(c.drift) <= 1e-4 for c in a)

    def test_make_clocks_negative_count(self):
        with pytest.raises(CoalitionError):
            make_clocks(-1)


class TestResources:
    def test_resource_defaults(self):
        r = Resource("pkg")
        assert r.supports("read") and r.supports("exec")
        assert not r.supports("delete")

    def test_resource_validation(self):
        with pytest.raises(CoalitionError):
            Resource("")
        with pytest.raises(CoalitionError):
            Resource("x", operations=frozenset())

    def test_digest_is_sha256(self):
        import hashlib

        r = Resource("mod", content=b"module bytes")
        assert r.digest() == hashlib.sha256(b"module bytes").hexdigest()

    def test_registry(self):
        reg = ResourceRegistry([Resource("a"), Resource("b")])
        assert "a" in reg and "c" not in reg
        assert reg.get("b").name == "b"
        assert reg.names() == ["a", "b"]
        assert len(reg) == 2
        with pytest.raises(CoalitionError):
            reg.add(Resource("a"))
        with pytest.raises(CoalitionError):
            reg.get("zzz")


class TestProofs:
    A = AccessKey("read", "r1", "s1")
    B = AccessKey("write", "r2", "s2")

    def test_record_and_prove(self):
        reg = ProofRegistry("naplet-1")
        assert not reg.proved(self.A)
        proof = reg.record(self.A, 10.0)
        assert reg.proved(self.A)
        assert not reg.proved(self.B)
        assert proof.seq == 0
        assert proof.prev_digest == GENESIS_DIGEST

    def test_trace_reflects_order(self):
        reg = ProofRegistry("n")
        reg.record(self.A, 1.0)
        reg.record(self.B, 2.0)
        reg.record(self.A, 3.0)
        assert reg.trace() == (self.A, self.B, self.A)

    def test_chain_verification(self):
        reg = ProofRegistry("n")
        for t in range(5):
            reg.record(self.A, float(t))
        assert reg.verify_chain()

    def test_tampered_proof_detected(self):
        reg = ProofRegistry("n")
        reg.record(self.A, 1.0)
        good = reg.proofs()[0]
        tampered = ExecutionProof(
            good.object_id, self.B, good.local_time, good.seq,
            good.prev_digest, good.digest,
        )
        assert not tampered.is_consistent()

    def test_extend_verified_accepts_valid_chain(self):
        source = ProofRegistry("n")
        source.record(self.A, 1.0)
        source.record(self.B, 2.0)
        sink = ProofRegistry("n")
        sink.extend_verified(source.proofs())
        assert sink.trace() == source.trace()
        assert sink.verify_chain()

    def test_extend_verified_rejects_gap(self):
        source = ProofRegistry("n")
        source.record(self.A, 1.0)
        source.record(self.B, 2.0)
        sink = ProofRegistry("n")
        with pytest.raises(CoalitionError):
            sink.extend_verified(source.proofs()[1:])  # missing seq 0

    def test_extend_verified_rejects_reorder(self):
        source = ProofRegistry("n")
        source.record(self.A, 1.0)
        source.record(self.B, 2.0)
        p0, p1 = source.proofs()
        sink = ProofRegistry("n")
        with pytest.raises(CoalitionError):
            sink.extend_verified([p1, p0])

    def test_extend_verified_rejects_wrong_object(self):
        source = ProofRegistry("other")
        source.record(self.A, 1.0)
        sink = ProofRegistry("n")
        with pytest.raises(CoalitionError):
            sink.extend_verified(source.proofs())

    @given(st.lists(st.sampled_from([A, B]), max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_chain_always_verifies_after_recording(self, accesses):
        reg = ProofRegistry("n")
        for index, access in enumerate(accesses):
            reg.record(access, float(index))
        assert reg.verify_chain()
        assert reg.trace() == tuple(accesses)


class TestChannels:
    def test_fifo_order(self):
        ch = Channel("c")
        ch.send(1)
        ch.send(2)
        assert ch.try_receive() == 1
        assert ch.try_receive() == 2
        assert ch.try_receive() is EMPTY

    def test_none_payload_distinct_from_empty(self):
        ch = Channel("c")
        ch.send(None)
        assert ch.try_receive() is None
        assert ch.try_receive() is EMPTY

    def test_send_wakes_waiters(self):
        ch = Channel("c")
        ch.add_waiter("agent-1")
        ch.add_waiter("agent-2")
        woken = ch.send(99)
        assert woken == ["agent-1", "agent-2"]
        assert ch.waiters() == ()

    def test_duplicate_waiter_rejected(self):
        ch = Channel("c")
        ch.add_waiter("a")
        with pytest.raises(ChannelError):
            ch.add_waiter("a")

    def test_channel_table_creates_on_demand(self):
        table = ChannelTable()
        assert "x" not in table
        ch = table.get("x")
        assert table.get("x") is ch
        assert table.names() == ["x"]


class TestSignals:
    def test_signal_then_wait_passes(self):
        sig = SignalTable()
        assert sig.raise_signal("e") == []
        assert sig.is_raised("e")

    def test_wait_then_signal_wakes(self):
        sig = SignalTable()
        sig.add_waiter("e", "agent-1")
        assert sig.waiters("e") == ("agent-1",)
        woken = sig.raise_signal("e")
        assert woken == ["agent-1"]
        assert sig.waiters("e") == ()

    def test_signals_are_sticky(self):
        sig = SignalTable()
        sig.raise_signal("e")
        with pytest.raises(ChannelError):
            sig.add_waiter("e", "a")  # no need to wait anymore

    def test_pending_events(self):
        sig = SignalTable()
        sig.add_waiter("x", "a")
        sig.add_waiter("y", "b")
        sig.raise_signal("x")
        assert sig.pending_events() == ["y"]


class TestServer:
    def make_server(self):
        return CoalitionServer(
            "s1",
            resources=[Resource("db"), Resource("mod", content=b"bits")],
            clock=ServerClock(skew=10.0),
        )

    def test_execute_access_issues_proof(self):
        server = self.make_server()
        registry = ProofRegistry("n")
        outcome = server.execute_access(registry, "read", "db", global_time=5.0)
        assert outcome.proof.access == AccessKey("read", "db", "s1")
        assert outcome.proof.local_time == pytest.approx(15.0)  # skewed
        assert registry.proved(("read", "db", "s1"))
        assert server.executed_accesses == 1
        assert server.resources.get("db").access_count == 1

    def test_exec_returns_digest(self):
        server = self.make_server()
        registry = ProofRegistry("n")
        outcome = server.execute_access(registry, "exec", "mod", 0.0)
        assert outcome.value == Resource("mod", content=b"bits").digest()

    def test_read_returns_content(self):
        server = self.make_server()
        outcome = server.execute_access(ProofRegistry("n"), "read", "mod", 0.0)
        assert outcome.value == b"bits"

    def test_unknown_resource(self):
        with pytest.raises(CoalitionError):
            self.make_server().execute_access(ProofRegistry("n"), "read", "zzz", 0.0)

    def test_unsupported_operation(self):
        server = CoalitionServer("s", [Resource("r", operations=frozenset({"read"}))])
        with pytest.raises(CoalitionError):
            server.execute_access(ProofRegistry("n"), "write", "r", 0.0)


class TestCoalition:
    def make_coalition(self):
        return Coalition(
            [CoalitionServer("s1"), CoalitionServer("s2"), CoalitionServer("s3")],
            latency=uniform_latency({("s1", "s2"): 2.0}, default=5.0),
        )

    def test_membership(self):
        c = self.make_coalition()
        assert len(c) == 3
        assert "s1" in c and "s9" not in c
        assert c.server_names() == ["s1", "s2", "s3"]
        assert c.server("s2").name == "s2"
        with pytest.raises(CoalitionError):
            c.server("s9")
        with pytest.raises(CoalitionError):
            c.add_server(CoalitionServer("s1"))

    def test_latency_model(self):
        c = self.make_coalition()
        assert c.migration_latency("s1", "s2") == 2.0
        assert c.migration_latency("s2", "s1") == 2.0  # symmetric fallback
        assert c.migration_latency("s1", "s3") == 5.0
        assert c.migration_latency("s1", "s1") == 0.0

    def test_unknown_endpoints(self):
        c = self.make_coalition()
        with pytest.raises(MigrationError):
            c.migration_latency("s1", "nope")
        with pytest.raises(MigrationError):
            c.migration_latency("nope", "s1")

    def test_constant_latency_validation(self):
        with pytest.raises(CoalitionError):
            constant_latency(-1.0)
        model = constant_latency(3.0)
        assert model("a", "b") == 3.0
        assert model("a", "a") == 0.0

    def test_shared_channels_and_signals(self):
        c = self.make_coalition()
        c.channels.get("ch").send(5)
        assert c.channels.get("ch").try_receive() == 5
        c.signals.raise_signal("done")
        assert c.signals.is_raised("done")

    def test_uniform_latency_negative_default_rejected(self):
        # Regression: a negative default used to be accepted at
        # construction and only explode inside migration_latency.
        with pytest.raises(CoalitionError):
            uniform_latency({("s1", "s2"): 2.0}, default=-1.0)

    def test_uniform_latency_negative_table_entry_rejected(self):
        with pytest.raises(CoalitionError):
            uniform_latency({("s1", "s2"): -2.0})

    def test_freeze_makes_membership_immutable(self):
        c = self.make_coalition()
        assert not c.frozen
        c.freeze()
        assert c.frozen
        with pytest.raises(CoalitionError):
            c.add_server(CoalitionServer("s4"))
        # Idempotent, and existing servers stay reachable.
        c.freeze()
        assert c.server("s1").name == "s1"
        assert c.server_names() == ["s1", "s2", "s3"]

    def test_constant_latency_error_names_offending_value(self):
        # Parity with uniform_latency: the rejected value appears in
        # the message so a misconfigured deployment is self-diagnosing.
        with pytest.raises(CoalitionError, match=r"got -2\.5"):
            constant_latency(-2.5)

    def test_uniform_latency_directed_entry_wins_over_reverse(self):
        # Lookup precedence is pinned: an exact (src, dst) entry beats
        # the symmetric (dst, src) fallback, which beats the default.
        model = uniform_latency(
            {("s1", "s2"): 5.0, ("s2", "s1"): 7.0, ("s3", "s1"): 2.0},
            default=1.0,
        )
        assert model("s1", "s2") == 5.0   # directed entry
        assert model("s2", "s1") == 7.0   # its own directed entry
        assert model("s1", "s3") == 2.0   # reverse fallback
        assert model("s2", "s3") == 1.0   # default
        assert model("s3", "s3") == 0.0   # self is always free

    def test_frozen_rejection_names_server(self):
        c = self.make_coalition()
        c.freeze()
        with pytest.raises(CoalitionError, match="frozen.*'s9'"):
            c.add_server(CoalitionServer("s9"))

    def test_proof_batch_subscribes_instead_of_freezing(self):
        from repro.service.batching import ProofBatch

        c = self.make_coalition()
        batch = ProofBatch(c)
        # The batcher no longer pins the topology: it follows churn
        # through membership events instead.
        assert not c.frozen
        # But founder-time add_server is off the table once a listener
        # watches the membership — the old freeze-then-mutate footgun
        # (slipping a server past a component that cached the topology)
        # now raises instead of silently desynchronising.
        with pytest.raises(CoalitionError, match="live.*join"):
            c.add_server(CoalitionServer("s9"))
        # join() is the supported path, and the batcher tracks it.
        c.join(CoalitionServer("s9"))
        assert "s9" in batch._pending
        assert batch is not None  # keep the listener alive to here

    def test_freeze_pins_dynamic_membership(self):
        c = self.make_coalition()
        c.freeze()
        with pytest.raises(CoalitionError):
            c.join(CoalitionServer("s9"))
        with pytest.raises(CoalitionError):
            c.leave("s1")
        with pytest.raises(CoalitionError):
            c.evict("s1")
        assert c.membership_epoch == 0

    def test_membership_epoch_read_api(self):
        c = self.make_coalition()
        assert c.membership_epoch == 0
        e1 = c.join(CoalitionServer("s4"))
        assert e1 == 1 == c.membership_epoch
        e2 = c.leave("s2")
        assert e2 == 2 == c.membership_epoch
        assert c.evicted_epoch("s2") is None  # graceful: proofs stay valid
        e3 = c.evict("s3")
        assert e3 == 3 == c.membership_epoch
        assert c.evicted_epoch("s3") == 3
        assert c.evictions_table() == {"s3": 3}
        assert c.is_admissible("s1")
        assert c.is_admissible("s2")
        assert not c.is_admissible("s3")
