"""Tests for the Section 6 / Figure 1 integrity-verification app."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.integrity import (
    DependencyGraph,
    ModuleSpec,
    auditor_program,
    build_coalition,
    figure1_graph,
    run_audit,
    verification_constraint,
)
from repro.errors import WorkloadError
from repro.srac.ast import And, Ordered, Top
from repro.srac.checker import check_program
from repro.traces.trace import AccessKey
from repro.workloads.digraphs import random_module_graph


def tiny_graph():
    return DependencyGraph(
        [
            ModuleSpec("lib", "s1", b"lib bytes"),
            ModuleSpec("app", "s2", b"app bytes", depends_on=("lib",)),
        ]
    )


class TestDependencyGraph:
    def test_duplicate_rejected(self):
        with pytest.raises(WorkloadError):
            DependencyGraph([ModuleSpec("a", "s1", b""), ModuleSpec("a", "s1", b"")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(WorkloadError):
            DependencyGraph([ModuleSpec("a", "s1", b"", depends_on=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(WorkloadError):
            DependencyGraph(
                [
                    ModuleSpec("a", "s1", b"", depends_on=("b",)),
                    ModuleSpec("b", "s1", b"", depends_on=("a",)),
                ]
            )

    def test_topological_order_respects_deps(self):
        graph = figure1_graph()
        order = graph.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for module in graph.modules():
            for dep in module.depends_on:
                assert position[dep] < position[module.name]

    def test_locality_order_respects_deps(self):
        graph = figure1_graph()
        order = graph.locality_order()
        position = {name: i for i, name in enumerate(order)}
        for module in graph.modules():
            for dep in module.depends_on:
                assert position[dep] < position[module.name]

    def test_locality_order_reduces_migrations(self):
        graph = figure1_graph()

        def migrations(order):
            servers = [graph.module(n).server for n in order]
            return sum(1 for a, b in zip(servers, servers[1:]) if a != b)

        assert migrations(graph.locality_order()) <= migrations(
            graph.topological_order()
        )

    def test_dependants_closure(self):
        graph = figure1_graph()
        closure = graph.dependants_closure({"m7"})
        assert {"m7", "m8", "m10", "m11", "m12"} <= set(closure)
        assert "mD" not in closure

    def test_figure1_shape(self):
        graph = figure1_graph()
        assert len(graph) == 12
        assert graph.servers() == ("s1", "s2", "s3", "s4")
        # The paper's explicit example: A depends on D.
        assert "mD" in graph.module("mA").depends_on


class TestConstraintAndProgram:
    def test_constraint_has_one_ordered_per_edge(self):
        graph = figure1_graph()
        constraint = verification_constraint(graph)
        n_edges = sum(len(m.depends_on) for m in graph.modules())

        def count_ordered(c):
            if isinstance(c, Ordered):
                return 1
            if isinstance(c, And):
                return count_ordered(c.left) + count_ordered(c.right)
            return 0

        assert count_ordered(constraint) == n_edges

    def test_empty_graph_constraint_is_top(self):
        graph = DependencyGraph([ModuleSpec("only", "s1", b"x")])
        assert verification_constraint(graph) == Top()

    def test_auditor_program_satisfies_constraint(self):
        """The locality-ordered program provably satisfies the
        dependency constraint (P |= C, Theorem 3.2 applied to Fig. 1)."""
        graph = figure1_graph()
        assert check_program(auditor_program(graph), verification_constraint(graph))

    def test_wrong_order_violates_constraint(self):
        graph = tiny_graph()
        bad = auditor_program(graph, order=("app", "lib"))
        assert not check_program(bad, verification_constraint(graph))

    def test_build_coalition_hosts_modules(self):
        coalition = build_coalition(figure1_graph())
        assert "mA" in coalition.server("s2").resources
        assert "m12" in coalition.server("s4").resources

    def test_tampering_changes_stored_bytes(self):
        graph = tiny_graph()
        clean = build_coalition(graph)
        dirty = build_coalition(graph, tamper={"lib"})
        assert (
            clean.server("s1").resources.get("lib").digest()
            != dirty.server("s1").resources.get("lib").digest()
        )


class TestRunAudit:
    def test_clean_audit_verifies_everything(self):
        report = run_audit(figure1_graph())
        assert report.finished
        assert report.all_verified()
        assert report.order_constraint_ok
        assert report.denied_accesses == 0
        assert len(report.audited) == 12

    def test_tampered_module_poisons_dependants(self):
        report = run_audit(figure1_graph(), tamper={"m7"})
        assert not report.verified["m7"]
        assert not report.verified["m8"]
        assert not report.verified["m12"]
        assert report.verified["mD"]  # unrelated modules stay verified
        assert report.hash_ok["m8"]  # m8's own bytes are fine

    def test_deadline_cuts_audit_short(self):
        unlimited = run_audit(figure1_graph())
        limited = run_audit(figure1_graph(), deadline=5.0)
        assert limited.denied_accesses > 0
        assert len(limited.unverified()) > 0
        assert len(limited.audited) < len(unlimited.audited)

    def test_generous_deadline_is_enough(self):
        report = run_audit(figure1_graph(), deadline=1000.0)
        assert report.all_verified()

    def test_migrations_counted(self):
        report = run_audit(figure1_graph(), latency=2.0)
        assert report.migrations >= 3  # four servers to cover
        assert report.duration > 12  # 12 accesses + migrations

    @given(st.integers(2, 20), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs_verify_clean(self, n_modules, n_servers):
        graph = random_module_graph(n_modules, n_servers, seed=n_modules)
        report = run_audit(graph)
        assert report.all_verified()
        assert report.order_constraint_ok

    @given(st.integers(3, 15))
    @settings(max_examples=15, deadline=None)
    def test_random_tampering_detected_exactly(self, n_modules):
        import numpy as np

        graph = random_module_graph(n_modules, 3, seed=n_modules * 7)
        rng = np.random.default_rng(n_modules)
        victim = graph.names()[int(rng.integers(n_modules))]
        report = run_audit(graph, tamper={victim})
        poisoned = graph.dependants_closure({victim})
        for name in graph.names():
            assert report.verified[name] == (name not in poisoned)
