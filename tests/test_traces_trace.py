"""Tests for trace-level operators (repro.traces.trace)."""

from math import comb

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sral.ast import Access
from repro.traces.trace import (
    EMPTY_TRACE,
    AccessKey,
    concat,
    count_interleavings,
    count_matching,
    head,
    interleavings,
    is_subsequence,
    make_trace,
    occurs_before,
    tail,
)

A = AccessKey("read", "r1", "s1")
B = AccessKey("write", "r2", "s1")
C = AccessKey("exec", "r3", "s2")


def short_traces(max_size=4):
    return st.lists(st.sampled_from([A, B, C]), max_size=max_size).map(tuple)


class TestBasics:
    def test_access_key_equals_plain_tuple(self):
        assert A == ("read", "r1", "s1")
        assert hash(A) == hash(("read", "r1", "s1"))

    def test_access_key_matches_ast_access_key(self):
        node = Access("read", "r1", "s1")
        assert node.key() == A

    def test_make_trace(self):
        t = make_trace(("read", "r1", "s1"), B)
        assert t == (A, B)
        assert all(isinstance(a, AccessKey) for a in t)

    def test_head_tail(self):
        t = (A, B, C)
        assert head(t) == A
        assert tail(t) == (B, C)
        assert tail((A,)) == EMPTY_TRACE

    def test_concat(self):
        assert concat((A,), (B, C)) == (A, B, C)
        assert concat(EMPTY_TRACE, (A,)) == (A,)


class TestInterleavings:
    def test_empty_cases(self):
        assert set(interleavings((), ())) == {()}
        assert set(interleavings((A,), ())) == {(A,)}
        assert set(interleavings((), (B,))) == {(B,)}

    def test_two_singletons(self):
        assert set(interleavings((A,), (B,))) == {(A, B), (B, A)}

    def test_order_preserved_within_components(self):
        result = set(interleavings((A, B), (C,)))
        assert result == {(A, B, C), (A, C, B), (C, A, B)}
        for trace in result:
            assert trace.index(A) < trace.index(B)

    def test_duplicate_symbols_deduplicated(self):
        # (A) # (A) has only one distinct interleaving: (A, A).
        assert set(interleavings((A,), (A,))) == {(A, A)}

    def test_count_matches_binomial_for_distinct_symbols(self):
        t, v = (A, A), (B, B, B)
        assert count_interleavings(t, v) == comb(5, 2)

    @given(short_traces(3), short_traces(3))
    @settings(max_examples=100, deadline=None)
    def test_every_interleaving_preserves_subsequences(self, t, v):
        for mixed in interleavings(t, v):
            assert len(mixed) == len(t) + len(v)
            assert is_subsequence(t, mixed)
            assert is_subsequence(v, mixed)

    @given(short_traces(3), short_traces(3))
    @settings(max_examples=100, deadline=None)
    def test_interleaving_symmetric(self, t, v):
        assert set(interleavings(t, v)) == set(interleavings(v, t))


class TestPredicates:
    def test_is_subsequence(self):
        assert is_subsequence((A, C), (A, B, C))
        assert is_subsequence((), (A,))
        assert not is_subsequence((C, A), (A, B, C))
        assert not is_subsequence((A, A), (A, B, C))

    def test_count_matching(self):
        assert count_matching((A, B, A, C), {A}) == 2
        assert count_matching((A, B), {C}) == 0
        assert count_matching((), {A}) == 0

    def test_occurs_before(self):
        assert occurs_before((A, B), A, B)
        assert occurs_before((A, C, B), A, B)
        assert not occurs_before((B, A), A, B)
        assert not occurs_before((A,), A, B)
        assert not occurs_before((), A, B)

    def test_occurs_before_same_access_needs_two(self):
        assert occurs_before((A, A), A, A)
        assert not occurs_before((A,), A, A)

    def test_occurs_before_uses_earliest_occurrence(self):
        # first=A occurs at 0 and 2; B only after index 0.
        assert occurs_before((A, B, A), A, B)
