"""End-to-end scenarios straight from the paper's narrative, exercised
through the public API (`import repro`)."""

import math

import pytest

import repro
from repro import (
    AccessControlEngine,
    AccessKey,
    Authority,
    Coalition,
    CoalitionServer,
    Naplet,
    NapletSecurityManager,
    NapletStatus,
    Permission,
    Policy,
    Resource,
    Scheme,
    Simulation,
    check_program,
    parse_constraint,
    parse_program,
    program_traces,
    trace_satisfies,
)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_figure1_via_top_level(self):
        report = repro.run_audit(repro.figure1_graph())
        assert report.all_verified()


class TestPaperSection1Scenarios:
    """The two motivating requirements from the introduction."""

    def test_licensed_software_requirement(self):
        """'if a mobile device accesses a resource r on site s1 for too
        many times …, it is not allowed to access the resource on site
        s2 forever'"""
        limit = parse_constraint("count(0, 5, [res = rsw])")
        history_at_s1 = (AccessKey("exec", "rsw", "s1"),) * 5
        # Any future attempt, at any site, fails Definition 3.6 with one
        # more access:
        for site in ("s1", "s2", "s3"):
            attempt = history_at_s1 + (AccessKey("exec", "rsw", site),)
            assert not trace_satisfies(attempt, limit)
        # Whereas the history itself is still compliant:
        assert trace_satisfies(history_at_s1, limit)

    def test_newspaper_deadline_requirement(self):
        """'the editing deadline for an issue of a daily newspaper is
        by 3am' — the permission's validity duration is the window."""
        from repro.temporal.validity import ValidityTracker

        tracker = ValidityTracker(duration=3.0, scheme=Scheme.WHOLE_EXECUTION)
        tracker.activate(0.0)  # midnight
        assert tracker.is_valid(2.5)
        assert not tracker.is_valid(3.1)  # past 3am: invalid everywhere


class TestSection2Semantics:
    def test_execution_proof_semantics(self):
        """Pr_x(a) = true iff access a has been successfully carried
        out (Section 2)."""
        from repro.coalition.proofs import ProofRegistry

        registry = ProofRegistry("o")
        a = AccessKey("read", "r", "s")
        assert not registry.proved(a)
        registry.record(a, 0.0)
        assert registry.proved(a)


class TestFullPipeline:
    def test_disclosure_enables_better_decisions(self):
        """An agent disclosing its remaining program can be denied
        *early*: the engine sees the program cannot comply."""
        limit = parse_constraint("count(0, 2, [res = rsw])")
        policy = Policy()
        policy.add_user("u")
        policy.add_role("r")
        policy.add_permission(
            Permission("p", op="exec", resource="rsw", spatial_constraint=limit)
        )
        policy.assign_user("u", "r")
        policy.assign_permission("r", "p")
        engine = AccessControlEngine(policy)
        session = engine.authenticate("u", 0.0)
        engine.activate_role(session, "r", 0.0)

        # Program that will perform 3 rsw accesses in total.
        remaining = parse_program("exec rsw @ s2 ; exec rsw @ s3")
        # Without disclosure, the first access looks fine:
        blind = engine.decide(session, ("exec", "rsw", "s1"), 1.0, history=())
        assert blind.granted
        # With disclosure, the engine sees 1 + 2 = 3 > 2 and denies now:
        informed = engine.decide(
            session, ("exec", "rsw", "s1"), 1.0, history=(), program=remaining
        )
        assert not informed.granted

    def test_proofs_carried_across_servers_convince_engine(self):
        """A second engine (another organisation of the coalition) can
        verify the carried chain and reuse the history."""
        from repro.coalition.proofs import ProofRegistry

        coalition = Coalition(
            [
                CoalitionServer("s1", resources=[Resource("rsw")]),
                CoalitionServer("s2", resources=[Resource("rsw")]),
            ]
        )
        sim = Simulation(coalition)
        naplet = Naplet("u", parse_program("exec rsw @ s1 ; exec rsw @ s2"))
        sim.add_naplet(naplet, "s1")
        sim.run()

        imported = ProofRegistry(naplet.naplet_id)
        imported.extend_verified(naplet.registry.proofs())
        assert imported.trace() == naplet.history()
        assert imported.verify_chain()

    def test_spatio_temporal_conjunction(self):
        """Both dimensions must hold: a spatially fine access fails on
        an expired permission, and vice versa."""
        limit = parse_constraint("count(0, 5, [res = doc])")
        policy = Policy()
        policy.add_user("u")
        policy.add_role("r")
        policy.add_permission(
            Permission(
                "p",
                op="write",
                resource="doc",
                spatial_constraint=limit,
                validity_duration=10.0,
            )
        )
        policy.assign_user("u", "r")
        policy.assign_permission("r", "p")
        engine = AccessControlEngine(policy)
        session = engine.authenticate("u", 0.0)
        engine.activate_role(session, "r", 0.0)
        doc = ("write", "doc", "s1")

        ok = engine.decide(session, doc, 5.0)
        assert ok.granted
        # Temporal violation (budget 10 exhausted), spatial still fine:
        late = engine.decide(session, doc, 20.0)
        assert not late.granted and late.spatial_ok and not late.temporal_ok
        # Spatial violation in a fresh session (count exhausted),
        # temporal fine:
        session2 = engine.authenticate("u", 100.0)
        engine.activate_role(session2, "r", 100.0)
        history = (AccessKey("write", "doc", "s1"),) * 5
        crowded = engine.decide(session2, doc, 101.0, history=history)
        assert not crowded.granted and not crowded.spatial_ok

    def test_agent_roaming_under_skewed_clocks(self):
        """Proof timestamps are server-local (skewed); the simulation
        still works and histories stay ordered by sequence number."""
        from repro.coalition.clock import ServerClock

        coalition = Coalition(
            [
                CoalitionServer("s1", [Resource("db")], clock=ServerClock(skew=100.0)),
                CoalitionServer("s2", [Resource("db")], clock=ServerClock(skew=-50.0)),
            ]
        )
        sim = Simulation(coalition)
        naplet = Naplet("u", parse_program("read db @ s1 ; read db @ s2 ; read db @ s1"))
        sim.add_naplet(naplet, "s1")
        sim.run()
        proofs = naplet.registry.proofs()
        # Local times are NOT globally monotone (no global clock!) …
        local_times = [p.local_time for p in proofs]
        assert local_times != sorted(local_times)
        # … but the hash chain still fixes the true order.
        assert [p.seq for p in proofs] == [0, 1, 2]
        assert naplet.registry.verify_chain()

    def test_admission_plus_runtime_defense_in_depth(self):
        """An over-budget program is caught at admission when enabled;
        without admission checks it is caught at the offending access."""
        from repro.agent.security import NapletSecurityManager

        limit = parse_constraint("count(0, 1, [res = rsw])")
        policy = Policy()
        policy.add_user("u")
        policy.add_role("r")
        policy.add_permission(
            Permission("p", op="exec", resource="rsw", spatial_constraint=limit)
        )
        policy.assign_user("u", "r")
        policy.assign_permission("r", "p")

        program = parse_program("exec rsw @ s1 ; exec rsw @ s2")
        coalition = Coalition(
            [
                CoalitionServer("s1", resources=[Resource("rsw")]),
                CoalitionServer("s2", resources=[Resource("rsw")]),
            ]
        )
        # Runtime-only: first access granted, second denied.
        engine = AccessControlEngine(policy)
        sim = Simulation(coalition, security=NapletSecurityManager(engine))
        runtime_agent = Naplet("u", program, roles=("r",), name="runtime")
        sim.add_naplet(runtime_agent, "s1")
        sim.run()
        assert runtime_agent.status is NapletStatus.DENIED
        assert len(runtime_agent.history()) == 1

        # Admission check: rejected before any access happens.
        engine2 = AccessControlEngine(policy)
        sim2 = Simulation(
            Coalition(
                [
                    CoalitionServer("s1", resources=[Resource("rsw")]),
                    CoalitionServer("s2", resources=[Resource("rsw")]),
                ]
            ),
            security=NapletSecurityManager(engine2, admission_check=True),
        )
        admitted_agent = Naplet("u", program, roles=("r",), name="admission")
        sim2.add_naplet(admitted_agent, "s1")
        sim2.run()
        assert admitted_agent.status is NapletStatus.FAILED
        assert len(admitted_agent.history()) == 0


class TestTheoremCrossChecks:
    def test_theorem_32_against_definition_36(self):
        """For finite programs, the product checker and per-trace
        Definition 3.6 agree — the paper's Definition 3.7 linkage."""
        program = parse_program(
            "read a @ s1 ; (write b @ s1 || exec c @ s2) ; read a @ s1"
        )
        constraint = parse_constraint(
            "read a @ s1 >> exec c @ s2 & count(0, 2, [res = a])"
        )
        by_enumeration = all(
            trace_satisfies(t, constraint)
            for t in program_traces(program).all_traces()
        )
        assert check_program(program, constraint) == by_enumeration

    def test_theorem_41_operational_vs_declarative(self):
        """Tracker state (operational) matches Eq. 4.1's integral
        condition (declarative) at every probe point."""
        from repro.temporal.validity import PermissionState, ValidityTracker

        duration = 4.0
        events = [("activate", 1.0), ("deactivate", 3.0), ("activate", 6.0)]
        tracker = ValidityTracker(duration=duration)
        for kind, t in events:
            getattr(tracker, kind)(t)
        tracker.state(20.0)
        valid = tracker.valid_timeline()
        active = tracker.active_timeline()
        for probe in (0.5, 2.0, 4.0, 6.5, 7.9, 8.1, 15.0):
            declarative = (
                active.value_at(probe)
                and valid.integrate(0.0, probe) <= duration
                and valid.value_at(probe)
            )
            assert valid.value_at(probe) == declarative
