"""Shared hypothesis strategies for randomly generated SRAL/SRAC objects.

Used by the property-based tests across the suite.  Alphabets are kept
small so that interesting coincidences (same access appearing twice,
constraints matching program accesses) actually occur.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.sral.ast import (
    Access,
    Assign,
    BinOp,
    BoolLit,
    If,
    IntLit,
    Par,
    Receive,
    Send,
    Seq,
    Signal,
    Skip,
    StrLit,
    UnaryOp,
    Var,
    Wait,
    While,
)

OPS = ("read", "write", "exec")
RESOURCES = ("r1", "r2", "r3")
SERVERS = ("s1", "s2", "s3")
CHANNELS = ("chA", "chB")
EVENTS = ("evX", "evY")
VARS = ("x", "y", "n")

identifiers = st.sampled_from(VARS)


def accesses():
    """Random primitive accesses over the small shared alphabet."""
    return st.builds(
        Access,
        st.sampled_from(OPS),
        st.sampled_from(RESOURCES),
        st.sampled_from(SERVERS),
    )


def exprs(max_depth: int = 3):
    """Random SRAL expressions."""
    leaves = st.one_of(
        st.integers(-20, 20).map(IntLit),
        st.booleans().map(BoolLit),
        st.sampled_from(VARS).map(Var),
        st.sampled_from(["a", "b c", 'quo"te', "back\\slash"]).map(StrLit),
    )

    def extend(children):
        return st.one_of(
            st.builds(UnaryOp, st.sampled_from(["not", "-"]), children),
            st.builds(
                BinOp,
                st.sampled_from(
                    ["+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "and", "or"]
                ),
                children,
                children,
            ),
        )

    return st.recursive(leaves, extend, max_leaves=2**max_depth)


def programs(max_leaves: int = 12, with_par: bool = True, with_comm: bool = True):
    """Random SRAL programs.

    ``with_par=False`` produces sequential programs only (useful where
    interleaving would blow up enumeration); ``with_comm=False`` omits
    channel/signal statements (useful for single-agent interpretation).
    """
    leaf_options = [accesses(), st.just(Skip())]
    if with_comm:
        leaf_options += [
            st.builds(Receive, st.sampled_from(CHANNELS), st.sampled_from(VARS)),
            st.builds(Send, st.sampled_from(CHANNELS), exprs(2)),
            st.builds(Signal, st.sampled_from(EVENTS)),
            st.builds(Wait, st.sampled_from(EVENTS)),
            st.builds(Assign, st.sampled_from(VARS), exprs(2)),
        ]
    leaves = st.one_of(*leaf_options)

    def extend(children):
        options = [
            st.builds(Seq, children, children),
            st.builds(If, exprs(2), children, children),
            st.builds(While, exprs(2), children),
        ]
        if with_par:
            options.append(st.builds(Par, children, children))
        return st.one_of(*options)

    return st.recursive(leaves, extend, max_leaves=max_leaves)


def loop_free_programs(max_leaves: int = 8, with_par: bool = True):
    """Random SRAL programs without while-loops (finite trace models)."""
    leaves = st.one_of(accesses(), st.just(Skip()))

    def extend(children):
        options = [
            st.builds(Seq, children, children),
            st.builds(If, exprs(2), children, children),
        ]
        if with_par:
            options.append(st.builds(Par, children, children))
        return st.one_of(*options)

    return st.recursive(leaves, extend, max_leaves=max_leaves)


# ---------------------------------------------------------------------------
# SRAC constraint strategies
# ---------------------------------------------------------------------------

def access_keys():
    """Random AccessKey over the same alphabet as `accesses()`."""
    from repro.traces.trace import AccessKey

    return st.builds(
        AccessKey,
        st.sampled_from(OPS),
        st.sampled_from(RESOURCES),
        st.sampled_from(SERVERS),
    )


def selections(expressible_only: bool = True):
    """Random σ selection operators.

    ``expressible_only=True`` restricts to shapes the concrete syntax can
    print (for parser/printer round-trips).
    """
    from repro.srac.selection import (
        SelectAccesses,
        SelectAll,
        SelectAnd,
        SelectField,
        SelectNot,
        SelectOr,
    )

    fields = st.one_of(
        st.builds(
            SelectField,
            st.just("op"),
            st.sets(st.sampled_from(OPS), min_size=1).map(frozenset),
        ),
        st.builds(
            SelectField,
            st.just("resource"),
            st.sets(st.sampled_from(RESOURCES), min_size=1).map(frozenset),
        ),
        st.builds(
            SelectField,
            st.just("server"),
            st.sets(st.sampled_from(SERVERS), min_size=1).map(frozenset),
        ),
    )

    def distinct_field_and(draw_fields):
        # conjunction of fields with distinct field names
        return st.lists(draw_fields, min_size=2, max_size=3, unique_by=lambda f: f.field_name).map(
            lambda fs: SelectAnd(tuple(fs))
        )

    base = st.one_of(
        st.just(SelectAll()),
        fields,
        distinct_field_and(fields),
        st.sets(access_keys(), min_size=1, max_size=3).map(
            lambda s: SelectAccesses(frozenset(s))
        ),
    )
    if expressible_only:
        return base
    return st.recursive(
        base,
        lambda children: st.one_of(
            st.lists(children, min_size=1, max_size=3).map(lambda p: SelectAnd(tuple(p))),
            st.lists(children, min_size=1, max_size=3).map(lambda p: SelectOr(tuple(p))),
            st.builds(SelectNot, children),
        ),
        max_leaves=4,
    )


def counts(expressible_only: bool = True):
    from repro.srac.ast import Count

    @st.composite
    def build(draw):
        lo = draw(st.integers(0, 4))
        hi = draw(st.one_of(st.none(), st.integers(lo, lo + 4)))
        sel = draw(selections(expressible_only))
        return Count(lo, hi, sel)

    return build()


def constraints(max_leaves: int = 8, expressible_only: bool = True):
    """Random SRAC constraints."""
    from repro.srac.ast import And, Atom, Bottom, Iff, Implies, Not, Or, Ordered, Top

    leaves = st.one_of(
        st.just(Top()),
        st.just(Bottom()),
        access_keys().map(Atom),
        st.builds(Ordered, access_keys(), access_keys()),
        counts(expressible_only),
    )

    def extend(children):
        return st.one_of(
            st.builds(And, children, children),
            st.builds(Or, children, children),
            st.builds(Not, children),
            st.builds(Implies, children, children),
            st.builds(Iff, children, children),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


def traces_over_alphabet(max_size: int = 8):
    return st.lists(access_keys(), max_size=max_size).map(tuple)
