"""Tests for the coordinated access-control engine (Eq. 3.1 + Eq. 4.1)."""

import pytest

from repro.errors import AccessDenied, RbacError
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.rbac.separation import DSDConstraint
from repro.sral.parser import parse_program
from repro.srac.parser import parse_constraint
from repro.temporal.validity import Scheme
from repro.traces.trace import AccessKey

RSW_S1 = AccessKey("exec", "rsw", "s1")
RSW_S2 = AccessKey("exec", "rsw", "s2")


def make_policy():
    policy = Policy()
    policy.add_user("alice")
    policy.add_user("bob")
    policy.add_role("auditor")
    policy.add_role("clerk")
    policy.add_permission(
        Permission(
            "p_rsw",
            op="exec",
            resource="rsw",
            spatial_constraint=parse_constraint("count(0, 5, [res = rsw])"),
        )
    )
    policy.add_permission(Permission("p_read", op="read"))
    policy.add_permission(
        Permission("p_timed", op="write", resource="doc", validity_duration=10.0)
    )
    policy.add_inheritance("auditor", "clerk")
    policy.assign_user("alice", "auditor")
    policy.assign_user("bob", "clerk")
    policy.assign_permission("auditor", "p_rsw")
    policy.assign_permission("auditor", "p_timed")
    policy.assign_permission("clerk", "p_read")
    return policy


def make_engine(scheme=Scheme.WHOLE_EXECUTION):
    return AccessControlEngine(make_policy(), scheme=scheme)


class TestSessions:
    def test_authenticate_creates_subject(self):
        engine = make_engine()
        session = engine.authenticate("alice", t=0.0, principals={"NapletPrincipal"})
        assert session.subject.user.name == "alice"
        assert session.subject.has_principal("NapletPrincipal")
        assert session.subject.has_principal("user:alice")

    def test_unknown_user_rejected(self):
        with pytest.raises(RbacError):
            make_engine().authenticate("mallory", t=0.0)

    def test_activate_assigned_role(self):
        engine = make_engine()
        session = engine.authenticate("alice", 0.0)
        engine.activate_role(session, "auditor", 0.0)
        assert {r.name for r in session.active_roles} == {"auditor"}

    def test_activate_inherited_role(self):
        # alice holds auditor, which dominates clerk.
        engine = make_engine()
        session = engine.authenticate("alice", 0.0)
        engine.activate_role(session, "clerk", 0.0)
        assert {r.name for r in session.active_roles} == {"clerk"}

    def test_activate_unassigned_role_rejected(self):
        engine = make_engine()
        session = engine.authenticate("bob", 0.0)
        with pytest.raises(RbacError):
            engine.activate_role(session, "auditor", 0.0)

    def test_dsd_blocks_activation(self):
        policy = make_policy()
        policy.add_dsd(
            DSDConstraint(
                "no-both",
                frozenset({policy.role("auditor"), policy.role("clerk")}),
            )
        )
        engine = AccessControlEngine(policy)
        session = engine.authenticate("alice", 0.0)
        engine.activate_role(session, "auditor", 0.0)
        with pytest.raises(RbacError):
            engine.activate_role(session, "clerk", 0.0)

    def test_close_session(self):
        engine = make_engine()
        session = engine.authenticate("alice", 0.0)
        engine.activate_role(session, "auditor", 0.0)
        engine.close_session(session, 1.0)
        decision = engine.decide(session, ("read", "x", "s1"), 2.0)
        assert not decision.granted


class TestSpatialDecisions:
    def test_grant_within_count(self):
        engine = make_engine()
        session = engine.authenticate("alice", 0.0)
        engine.activate_role(session, "auditor", 0.0)
        history = (RSW_S1,) * 4
        decision = engine.decide(session, RSW_S2, 1.0, history=history)
        assert decision.granted
        assert decision.permission == "p_rsw"
        assert decision.role == "auditor"

    def test_coordinated_denial_across_servers(self):
        """The paper's flagship requirement: 5 accesses at s1 deny the
        6th at s2 — coordination across sites."""
        engine = make_engine()
        session = engine.authenticate("alice", 0.0)
        engine.activate_role(session, "auditor", 0.0)
        history = (RSW_S1,) * 5
        decision = engine.decide(session, RSW_S2, 1.0, history=history)
        assert not decision.granted
        assert decision.spatial_ok is False
        assert "spatial" in decision.reason

    def test_denial_is_permanent(self):
        engine = make_engine()
        session = engine.authenticate("alice", 0.0)
        engine.activate_role(session, "auditor", 0.0)
        history = (RSW_S1,) * 7
        for server in ("s1", "s2", "s3"):
            decision = engine.decide(
                session, AccessKey("exec", "rsw", server), 1.0, history=history
            )
            assert not decision.granted

    def test_program_aware_check(self):
        """With a disclosed program, the engine checks through it."""
        engine = make_engine()
        session = engine.authenticate("alice", 0.0)
        engine.activate_role(session, "auditor", 0.0)
        # Remaining program would do 2 more rsw accesses after this one:
        remaining = parse_program("exec rsw @ s1 ; exec rsw @ s2")
        history = (RSW_S1,) * 3
        # 3 (history) + 1 (request) = 4; future adds 2 → can reach 6 BUT
        # "exists" mode asks satisfiability: the object *could* comply...
        # the full program path does 6 > 5, so no completion satisfies.
        decision = engine.decide(
            session, RSW_S2, 1.0, history=history, program=remaining
        )
        assert not decision.granted
        # With a shorter history the same program can comply.
        decision2 = engine.decide(
            session, RSW_S2, 1.0, history=history[:2], program=remaining
        )
        assert decision2.granted

    def test_no_matching_permission(self):
        engine = make_engine()
        session = engine.authenticate("bob", 0.0)
        engine.activate_role(session, "clerk", 0.0)
        decision = engine.decide(session, ("write", "doc", "s1"), 1.0)
        assert not decision.granted
        assert "no active role" in decision.reason

    def test_unconstrained_permission_granted(self):
        engine = make_engine()
        session = engine.authenticate("bob", 0.0)
        engine.activate_role(session, "clerk", 0.0)
        assert engine.decide(session, ("read", "anything", "s9"), 1.0).granted

    def test_enforce_raises(self):
        engine = make_engine()
        session = engine.authenticate("bob", 0.0)
        engine.activate_role(session, "clerk", 0.0)
        with pytest.raises(AccessDenied) as err:
            engine.enforce(session, ("write", "doc", "s1"), 1.0)
        assert err.value.decision is not None


class TestTemporalDecisions:
    def test_expiry_denies(self):
        engine = make_engine()
        session = engine.authenticate("alice", 0.0)
        engine.activate_role(session, "auditor", 0.0)
        access = ("write", "doc", "s1")
        assert engine.decide(session, access, 5.0).granted
        # p_timed has a 10-unit budget starting at activation (t=0).
        decision = engine.decide(session, access, 11.0)
        assert not decision.granted
        assert decision.temporal_ok is False
        assert "active-but-invalid" in decision.reason

    def test_per_server_scheme_regrants_after_migration(self):
        engine = make_engine(scheme=Scheme.PER_SERVER)
        session = engine.authenticate("alice", 0.0)
        engine.activate_role(session, "auditor", 0.0)
        access = ("write", "doc", "s1")
        assert not engine.decide(session, access, 11.0).granted
        engine.notify_migration(session, 12.0)
        assert engine.decide(session, access, 13.0).granted

    def test_whole_execution_scheme_stays_denied(self):
        engine = make_engine(scheme=Scheme.WHOLE_EXECUTION)
        session = engine.authenticate("alice", 0.0)
        engine.activate_role(session, "auditor", 0.0)
        access = ("write", "doc", "s1")
        assert not engine.decide(session, access, 11.0).granted
        engine.notify_migration(session, 12.0)
        assert not engine.decide(session, access, 13.0).granted

    def test_deactivation_stops_budget_consumption(self):
        engine = make_engine()
        session = engine.authenticate("alice", 0.0)
        engine.activate_role(session, "auditor", 0.0)
        engine.deactivate_role(session, "auditor", 4.0)  # consumed 4
        engine.activate_role(session, "auditor", 100.0)
        access = ("write", "doc", "s1")
        assert engine.decide(session, access, 105.0).granted  # 4+5 < 10
        assert not engine.decide(session, access, 107.0).granted  # 4+7 > 10


class TestAudit:
    def test_decisions_are_logged(self):
        engine = make_engine()
        session = engine.authenticate("alice", 0.0)
        engine.activate_role(session, "auditor", 0.0)
        engine.decide(session, RSW_S1, 1.0)
        engine.decide(session, RSW_S2, 2.0, history=(RSW_S1,) * 5)
        assert len(engine.audit) == 2
        assert len(engine.audit.grants()) == 1
        assert len(engine.audit.denials()) == 1
        assert engine.audit.grant_rate() == pytest.approx(0.5)

    def test_audit_by_subject(self):
        engine = make_engine()
        s1 = engine.authenticate("alice", 0.0)
        s2 = engine.authenticate("bob", 0.0)
        engine.activate_role(s1, "auditor", 0.0)
        engine.activate_role(s2, "clerk", 0.0)
        engine.decide(s1, RSW_S1, 1.0)
        engine.decide(s2, ("read", "x", "s1"), 1.0)
        assert len(engine.audit.for_subject(s1.subject.subject_id)) == 1
        assert len(engine.audit.for_subject(s2.subject.subject_id)) == 1
