"""Tests for SRAC AST helpers and selection operators."""

import pytest
from hypothesis import given, settings

import tests.strategies as strat
from repro.errors import ConstraintError
from repro.srac.ast import (
    And,
    Atom,
    Bottom,
    Count,
    Iff,
    Implies,
    Not,
    Or,
    Ordered,
    Top,
    atomic_parts,
    constraint_alphabet,
    constraint_size,
    desugar,
)
from repro.srac.selection import (
    SelectAccesses,
    SelectAll,
    SelectAnd,
    SelectField,
    SelectNot,
    SelectOr,
    select_access,
    select_op,
    select_resource,
    select_server,
)
from repro.srac.trace_check import trace_satisfies
from repro.traces.trace import AccessKey

A = AccessKey("read", "r1", "s1")
B = AccessKey("write", "r2", "s1")
C = AccessKey("exec", "r3", "s2")


class TestSelections:
    def test_select_all(self):
        assert SelectAll().matches(A)
        assert SelectAll().restrict([A, B]) == {A, B}

    def test_select_field_op(self):
        sel = select_op("read")
        assert sel.matches(A)
        assert not sel.matches(B)

    def test_select_field_resource(self):
        sel = select_resource("r1", "r2")
        assert sel.matches(A)
        assert sel.matches(B)
        assert not sel.matches(C)

    def test_select_field_server(self):
        sel = select_server("s2")
        assert sel.matches(C)
        assert not sel.matches(A)

    def test_select_field_validation(self):
        with pytest.raises(ConstraintError):
            SelectField("bogus", frozenset({"x"}))
        with pytest.raises(ConstraintError):
            SelectField("op", frozenset())

    def test_select_accesses(self):
        sel = select_access(A, ("write", "r2", "s1"))
        assert sel.matches(A)
        assert sel.matches(B)
        assert not sel.matches(C)

    def test_combinators(self):
        sel = select_op("read") & select_server("s1")
        assert sel.matches(A)
        assert not sel.matches(C)
        sel2 = select_op("exec") | select_op("write")
        assert sel2.matches(B)
        assert sel2.matches(C)
        assert not sel2.matches(A)
        assert (~select_op("read")).matches(B)
        assert not (~select_op("read")).matches(A)

    def test_empty_combinators_rejected(self):
        with pytest.raises(ConstraintError):
            SelectAnd(())
        with pytest.raises(ConstraintError):
            SelectOr(())

    def test_selections_hashable(self):
        assert hash(select_op("read")) == hash(select_op("read"))
        assert select_op("read") == select_op("read")

    @given(strat.selections(expressible_only=False), strat.access_keys())
    @settings(max_examples=150, deadline=None)
    def test_not_is_complement(self, sel, access):
        assert SelectNot(sel).matches(access) != sel.matches(access)


class TestConstraintAst:
    def test_count_validation(self):
        with pytest.raises(ConstraintError):
            Count(-1, 2, SelectAll())
        with pytest.raises(ConstraintError):
            Count(3, 2, SelectAll())
        Count(3, None, SelectAll())  # unbounded is fine

    def test_atom_normalises_tuple(self):
        atom = Atom(("read", "r1", "s1"))
        assert isinstance(atom.access, AccessKey)

    def test_ordered_normalises_tuples(self):
        o = Ordered(("read", "r1", "s1"), ("write", "r2", "s1"))
        assert o.first == A and o.second == B

    def test_operator_sugar(self):
        c = Atom(A) & ~Atom(B) | Top()
        assert isinstance(c, Or)
        assert isinstance(c.left, And)
        assert isinstance(c.left.right, Not)
        assert Atom(A).implies(Atom(B)) == Implies(Atom(A), Atom(B))

    def test_constraint_size(self):
        assert constraint_size(Top()) == 1
        assert constraint_size(And(Atom(A), Not(Atom(B)))) == 4

    def test_atomic_parts(self):
        c = And(Atom(A), Or(Ordered(A, B), Count(0, 5, SelectAll())))
        parts = list(atomic_parts(c))
        assert parts == [Atom(A), Ordered(A, B), Count(0, 5, SelectAll())]

    def test_constraint_alphabet(self):
        c = And(Atom(A), Ordered(B, C))
        assert constraint_alphabet(c) == {A, B, C}

    def test_desugar_implies(self):
        d = desugar(Implies(Atom(A), Atom(B)))
        assert d == Or(Not(Atom(A)), Atom(B))

    def test_desugar_iff(self):
        d = desugar(Iff(Atom(A), Atom(B)))
        assert isinstance(d, And)

    @given(strat.constraints(max_leaves=6, expressible_only=False), strat.traces_over_alphabet(6))
    @settings(max_examples=200, deadline=None)
    def test_desugar_preserves_semantics(self, constraint, trace):
        assert trace_satisfies(trace, constraint) == trace_satisfies(
            trace, desugar(constraint)
        )
