"""Concurrency tests for the sharded decision service
(:mod:`repro.service`) and the lock-striped coalition substrate.

The two load-bearing properties:

* **Determinism modulo interleaving** — the same randomized agent
  workload produces identical per-session decision outcomes through a
  plain single-threaded engine and through the sharded service at 4
  workers (per-session request order is preserved by the per-shard
  FIFO queues; sessions are independent, so interleaving across
  sessions cannot change any outcome).
* **No lost or duplicated messages** — 8 threads hammering one
  :class:`~repro.coalition.channels.ChannelTable` deliver every sent
  value exactly once.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.concurrency import LockStripe, stable_hash, stripe_index
from repro.coalition.channels import EMPTY, ChannelTable, SignalTable
from repro.coalition.network import Coalition, constant_latency, uniform_latency
from repro.coalition.proofs import ProofRegistry
from repro.coalition.resource import Resource
from repro.coalition.server import CoalitionServer
from repro.errors import ChannelError, CoalitionError, ServiceError
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.service import DecisionService, ProofBatch, ShardedEngine
from repro.srac.parser import parse_constraint
from repro.traces.trace import AccessKey

SERVERS = [f"s{i}" for i in range(4)]


def make_policy(count_bound: int = 5) -> Policy:
    policy = Policy()
    policy.add_user("u")
    policy.add_role("r")
    policy.add_permission(
        Permission(
            "p",
            op="exec",
            resource="rsw",
            spatial_constraint=parse_constraint(
                f"count(0, {count_bound}, [res = rsw])"
            ),
        )
    )
    policy.assign_user("u", "r")
    policy.assign_permission("r", "p")
    return policy


def random_workload(seed: int, sessions: int, per_session: int):
    """Per-session randomized request streams (server varies)."""
    rng = random.Random(seed)
    return [
        [
            AccessKey("exec", "rsw", rng.choice(SERVERS))
            for _ in range(per_session)
        ]
        for _ in range(sessions)
    ]


class TestStableRouting:
    def test_stable_hash_is_process_independent(self):
        # CRC-32 of the UTF-8 bytes — fixed reference values.
        assert stable_hash("agent-0") == 2054976783
        assert stable_hash("") == 0

    def test_stripe_index_bounds(self):
        for key in ("a", "b", "agent-17", "x" * 100):
            assert 0 <= stripe_index(key, 7) < 7
        with pytest.raises(ValueError):
            stripe_index("a", 0)

    def test_lock_stripe_same_key_same_lock(self):
        stripe = LockStripe(8)
        assert stripe.lock_for("k") is stripe.lock_for("k")
        assert len(stripe) == 8


class TestShardedDeterminism:
    """The concurrency property test of ISSUE 2."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_outcomes_identical_to_single_threaded(self, seed):
        sessions_n, per_session = 12, 25
        workload = random_workload(seed, sessions_n, per_session)

        # Single-threaded reference: each granted access is observed,
        # so the count bound eventually denies — outcomes are a mix.
        engine = AccessControlEngine(make_policy())
        reference: list[list[tuple[AccessKey, bool]]] = []
        for k in range(sessions_n):
            session = engine.authenticate("u", 0.0)
            engine.activate_role(session, "r", 0.0)
            row = []
            for i, access in enumerate(workload[k]):
                decision = engine.decide(
                    session, access, float(i + 1), history=None
                )
                if decision.granted:
                    engine.observe(session, access)
                row.append((access, decision.granted))
            reference.append(row)
        assert any(not granted for row in reference for _, granted in row)
        assert any(granted for row in reference for _, granted in row)

        # Sharded service at 4 workers, interleaved submission order.
        sharded = ShardedEngine(make_policy(), shards=4)
        sharded_sessions = []
        for k in range(sessions_n):
            session = sharded.authenticate("u", 0.0, shard_key=f"agent-{k}")
            sharded.activate_role(session, "r", 0.0)
            sharded_sessions.append(session)
        futures: list[list] = [[] for _ in range(sessions_n)]
        with DecisionService(sharded, workers=4, queue_depth=256) as service:
            for i in range(per_session):
                for k in range(sessions_n):
                    futures[k].append(
                        service.submit(
                            sharded_sessions[k],
                            workload[k][i],
                            float(i + 1),
                            history=None,
                            observe_granted=True,
                        )
                    )
            assert service.drain(timeout=60.0)
            stats = service.service_stats()
        assert stats.errors == 0
        assert stats.completed == sessions_n * per_session

        actual = [
            [
                (workload[k][i], futures[k][i].result().granted)
                for i in range(per_session)
            ]
            for k in range(sessions_n)
        ]
        # Per-session outcome sequences identical — which implies the
        # multiset of (session, access, decision) triples is identical.
        assert actual == reference

    def test_same_owner_sessions_share_a_shard(self):
        sharded = ShardedEngine(make_policy(), shards=8)
        a = sharded.authenticate("u", 0.0)
        b = sharded.authenticate("u", 0.0)
        assert sharded.shard_of(a) == sharded.shard_of(b)

    def test_unrouted_session_rejected(self):
        sharded = ShardedEngine(make_policy(), shards=2)
        foreign = AccessControlEngine(make_policy()).authenticate("u", 0.0)
        with pytest.raises(ServiceError):
            sharded.decide(foreign, ("exec", "rsw", "s0"), 1.0)

    def test_shard_count_validation(self):
        with pytest.raises(ServiceError):
            ShardedEngine(make_policy(), shards=0)


class TestChannelTableStress:
    def test_eight_threads_no_loss_no_duplication(self):
        """8 producer/consumer threads on one ChannelTable: every sent
        value is received exactly once."""
        table = ChannelTable()
        channels = [f"ch{i}" for i in range(5)]
        per_thread = 500
        producers = 4
        consumers = 4
        total = producers * per_thread
        received: list[list[tuple[int, int]]] = [[] for _ in range(consumers)]
        done = threading.Event()
        barrier = threading.Barrier(producers + consumers)

        def produce(thread_id: int) -> None:
            rng = random.Random(thread_id)
            barrier.wait()
            for i in range(per_thread):
                table.get(rng.choice(channels)).send((thread_id, i))

        def consume(slot: int) -> None:
            rng = random.Random(100 + slot)
            barrier.wait()
            while not done.is_set():
                value = table.get(rng.choice(channels)).try_receive()
                if value is not EMPTY:
                    received[slot].append(value)

        threads = [
            threading.Thread(target=produce, args=(t,)) for t in range(producers)
        ] + [threading.Thread(target=consume, args=(s,)) for s in range(consumers)]
        for thread in threads:
            thread.start()
        for thread in threads[:producers]:
            thread.join(timeout=30.0)
        # Let consumers drain the remainder, then stop them.
        deadline = threading.Event()
        for _ in range(200):
            if sum(len(r) for r in received) + sum(
                len(table.get(c)) for c in channels
            ) >= total and all(len(table.get(c)) == 0 for c in channels):
                break
            deadline.wait(0.01)
        done.set()
        for thread in threads[producers:]:
            thread.join(timeout=30.0)

        # Sweep anything left (consumers may stop between emptiness
        # check and done), then assert exactly-once delivery.
        leftovers = []
        for name in channels:
            while True:
                value = table.get(name).try_receive()
                if value is EMPTY:
                    break
                leftovers.append(value)
        everything = [v for row in received for v in row] + leftovers
        assert len(everything) == total
        assert sorted(everything) == sorted(
            (t, i) for t in range(producers) for i in range(per_thread)
        )

    def test_signal_raise_wait_race_never_loses_a_waiter(self):
        """Concurrent add_waiter/raise_signal: every waiter is either
        woken by the raise or rejected because the signal was already
        up — never silently left behind."""
        for round_no in range(50):
            signals = SignalTable()
            outcome: dict[str, object] = {}
            barrier = threading.Barrier(2)

            def waiter() -> None:
                barrier.wait()
                try:
                    signals.add_waiter("go", "agent")
                    outcome["registered"] = True
                except ChannelError:
                    outcome["rejected"] = True

            def raiser() -> None:
                barrier.wait()
                outcome["woken"] = signals.raise_signal("go")

            threads = [
                threading.Thread(target=waiter),
                threading.Thread(target=raiser),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10.0)
            if outcome.get("registered"):
                # add_waiter won the race, so the signal was not yet up
                # when it registered — the raise (serialised behind the
                # same stripe lock) must have woken it.
                assert outcome["woken"] == ["agent"]
                assert signals.waiters("go") == ()
            else:
                # raise_signal won: sticky signal rejects the waiter.
                assert outcome.get("rejected")
                assert outcome["woken"] == []

    def test_proof_registry_concurrent_record_keeps_chain_dense(self):
        registry = ProofRegistry("obj")
        threads = [
            threading.Thread(
                target=lambda: [
                    registry.record(("exec", "rsw", "s0"), float(i))
                    for i in range(200)
                ]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert len(registry) == 8 * 200
        assert registry.verify_chain()


class TestProofBatch:
    def make_coalition(self) -> Coalition:
        return Coalition(
            [CoalitionServer(s, [Resource("rsw")]) for s in SERVERS],
            latency=constant_latency(2.0),
        )

    def issue(self, n: int, server: str = "s0"):
        registry = ProofRegistry("obj")
        return [
            registry.record(("exec", "rsw", server), float(i)) for i in range(n)
        ]

    def test_tracks_topology_through_membership_events(self):
        coalition = self.make_coalition()
        batch = ProofBatch(coalition)
        # The batcher follows churn instead of freezing the coalition;
        # founder-time add_server is rejected once it subscribes.
        assert not coalition.frozen
        with pytest.raises(CoalitionError):
            coalition.add_server(CoalitionServer("s9"))
        coalition.join(CoalitionServer("s9", [Resource("rsw")]))
        (proof,) = self.issue(1)
        batch.enqueue("s0", proof, now=0.0)
        batch.flush()
        # The joined server receives propagated proofs like a founder.
        assert coalition.server("s9").knows_proof(proof)

    def test_coalesces_until_flush(self):
        coalition = self.make_coalition()
        batch = ProofBatch(coalition, max_batch=100)
        proofs = self.issue(5)
        for proof in proofs:
            batch.enqueue("s0", proof, now=0.0)
        # Nothing delivered yet; 5 proofs pending per other server.
        assert batch.pending_count() == 5 * (len(SERVERS) - 1)
        assert coalition.server("s1").announced_proof_count() == 0
        delivered = batch.flush()
        assert delivered == 5 * (len(SERVERS) - 1)
        assert batch.pending_count() == 0
        for name in SERVERS[1:]:
            server = coalition.server(name)
            assert server.announced_proof_count() == 5
            assert all(server.knows_proof(p) for p in proofs)
        # One delivery call per destination, not per proof.
        assert batch.stats()["delivery_calls"] == len(SERVERS) - 1
        assert batch.stats()["mean_batch_size"] == 5.0

    def test_latency_aware_flush_due(self):
        coalition = self.make_coalition()
        batch = ProofBatch(coalition, max_batch=100)
        (proof,) = self.issue(1)
        batch.enqueue("s0", proof, now=10.0)
        # Latency is 2.0: nothing is deliverable before t=12.
        assert batch.flush_due(11.9) == 0
        assert batch.pending_count() == 3
        assert batch.flush_due(12.0) == 3
        assert batch.pending_count() == 0
        assert coalition.server("s3").knows_proof(proof)

    def test_overflow_flushes_immediately(self):
        coalition = self.make_coalition()
        batch = ProofBatch(coalition, max_batch=3)
        delivered = 0
        for proof in self.issue(3):
            delivered += batch.enqueue("s0", proof, now=0.0)
        assert delivered == 3 * (len(SERVERS) - 1)
        assert batch.pending_count() == 0
        assert batch.stats()["overflow_flushes"] == len(SERVERS) - 1

    def test_duplicate_announcements_not_double_counted(self):
        coalition = self.make_coalition()
        (proof,) = self.issue(1)
        server = coalition.server("s1")
        assert server.receive_proofs([proof, proof]) == 1
        assert server.receive_proofs([proof]) == 0
        assert server.announced_proof_count() == 1

    def test_unknown_source_rejected(self):
        batch = ProofBatch(self.make_coalition())
        with pytest.raises(ServiceError):
            batch.enqueue("nope", self.issue(1)[0])

    def test_simulation_batched_propagation_delivers_everything(self):
        from repro.agent.naplet import Naplet
        from repro.agent.scheduler import Simulation
        from repro.sral.parser import parse_program

        program_src = " ; ".join(["exec rsw @ s0"] * 8)

        def run(mode):
            coalition = Coalition(
                [CoalitionServer(s, [Resource("rsw")]) for s in SERVERS],
                latency=constant_latency(100.0),
            )
            sim = Simulation(coalition, proof_propagation=mode)
            sim.add_naplet(Naplet("owner", parse_program(program_src)), "s0")
            report = sim.run()
            assert report.all_finished()
            return sim

        eager = run("eager")
        batched = run("batched")
        # Both modes deliver everything: the three non-executing
        # servers each learn all 8 proofs, the source learns none.
        for sim in (eager, batched):
            assert sim.coalition.server("s0").announced_proof_count() == 0
            for name in SERVERS[1:]:
                assert sim.coalition.server(name).announced_proof_count() == 8
        # Eager pays one delivery call per access per destination;
        # batched coalesces — the 100-unit latency window never elapses
        # during the 8-unit run, so everything lands in the end-of-run
        # flush: one call per destination.
        assert eager.proof_batch.stats()["delivery_calls"] == 8 * 3
        assert batched.proof_batch.stats()["delivery_calls"] == 3
        assert batched.proof_batch.stats()["mean_batch_size"] == 8.0


class TestStatsHygiene:
    def test_engine_reset_stats_keeps_cache_contents(self):
        engine = AccessControlEngine(make_policy())
        session = engine.authenticate("u", 0.0)
        engine.activate_role(session, "r", 0.0)
        for i in range(5):
            engine.decide(session, ("exec", "rsw", "s0"), float(i + 1), history=None)
        before = engine.cache_stats()
        assert before.candidate_hits > 0
        engine.reset_stats()
        after = engine.cache_stats()
        assert after.candidate_hits == 0
        assert after.candidate_misses == 0
        assert after.live_hits == 0
        # Contents survive: the next decision is a candidate-cache hit.
        engine.decide(session, ("exec", "rsw", "s0"), 10.0, history=None)
        assert engine.cache_stats().candidate_hits == 1
        assert after.extension_entries == before.extension_entries

    def test_service_reset_stats(self):
        sharded = ShardedEngine(make_policy(), shards=2)
        session = sharded.authenticate("u", 0.0)
        sharded.activate_role(session, "r", 0.0)
        with DecisionService(sharded, workers=2) as service:
            for i in range(4):
                service.submit(session, ("exec", "rsw", "s0"), float(i + 1), history=None)
            assert service.drain(timeout=30.0)
            assert service.service_stats().completed == 4
            service.reset_stats()
            stats = service.service_stats()
            assert stats.completed == 0
            assert stats.granted == 0
            assert stats.submitted == 0
            assert sum(stats.shard_decisions) == 0
            # Still serviceable after the reset.
            future = service.submit(
                session, ("exec", "rsw", "s0"), 100.0, history=None
            )
            assert future.result().granted in (True, False)
            assert service.drain(timeout=30.0)
            assert service.service_stats().completed == 1

    def test_service_rejects_after_shutdown(self):
        sharded = ShardedEngine(make_policy(), shards=2)
        session = sharded.authenticate("u", 0.0)
        sharded.activate_role(session, "r", 0.0)
        service = DecisionService(sharded, workers=1)
        service.shutdown()
        with pytest.raises(ServiceError):
            service.submit(session, ("exec", "rsw", "s0"), 1.0)
