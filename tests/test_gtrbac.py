"""Tests for the GTRBAC baseline: the richer constructs work, and the
two structural limitations the paper identifies remain."""

import pytest

from repro.coalition.clock import ServerClock
from repro.errors import RbacError
from repro.rbac.gtrbac import Activation, GTRBACEngine, GTRBACPolicy
from repro.rbac.trbac import PeriodicInterval
from repro.traces.trace import AccessKey

DAY = 24.0
NIGHT = PeriodicInterval(DAY, 0.0, 3.0)
OFFICE = PeriodicInterval(DAY, 9.0, 17.0)
EDIT = AccessKey("write", "issue", "s1")


def make_policy():
    policy = GTRBACPolicy()
    policy.add_role("editor", enabling=NIGHT, max_activation=2.0)
    policy.add_role("clerk")
    policy.assign_user("alice", "editor")
    policy.assign_user("bob", "clerk", window=OFFICE)
    policy.grant("editor", op="write", resource="issue")
    policy.grant("clerk", op="read", window=OFFICE)
    policy.grant("clerk", op="exec", resource="tool")
    return policy


class TestPolicyConstructs:
    def test_duplicate_and_unknown_roles(self):
        policy = make_policy()
        with pytest.raises(RbacError):
            policy.add_role("editor")
        with pytest.raises(RbacError):
            policy.assign_user("x", "ghost")
        with pytest.raises(RbacError):
            policy.grant("ghost")
        with pytest.raises(RbacError):
            GTRBACPolicy().add_role("r", max_activation=0.0)

    def test_role_enabling_window(self):
        policy = make_policy()
        assert policy.role_enabled("editor", 1.0)
        assert not policy.role_enabled("editor", 12.0)
        assert policy.role_enabled("clerk", 12.0)  # no window = always

    def test_assignment_window(self):
        policy = make_policy()
        assert policy.assignment_valid("alice", "editor", 1.0)
        assert policy.assignment_valid("bob", "clerk", 10.0)
        assert not policy.assignment_valid("bob", "clerk", 20.0)  # after hours
        assert not policy.assignment_valid("mallory", "clerk", 10.0)

    def test_grant_window(self):
        policy = make_policy()
        read = AccessKey("read", "anything", "s1")
        tool = AccessKey("exec", "tool", "s1")
        assert policy.matching_grants("clerk", read, 10.0)
        assert not policy.matching_grants("clerk", read, 20.0)  # windowed grant
        assert policy.matching_grants("clerk", tool, 20.0)  # unwindowed grant

    def test_activation_duration_cap(self):
        policy = make_policy()
        activation = Activation("alice", "editor", started_at=0.5)
        assert policy.activation_alive(activation, 2.0)
        assert not policy.activation_alive(activation, 2.6)
        clerk = Activation("bob", "clerk", started_at=0.0)
        assert policy.activation_alive(clerk, 1e6)  # no cap


class TestEngine:
    def test_all_dimensions_conjoined(self):
        engine = GTRBACEngine(make_policy())
        activation = Activation("alice", "editor", started_at=0.0)
        assert engine.decide(activation, EDIT, 1.0)
        # Past the role window:
        assert not engine.decide(activation, EDIT, 5.0)
        # Inside the window but past the activation cap:
        assert not engine.decide(activation, EDIT, 2.5)
        # Wrong user for the role:
        assert not engine.decide(Activation("bob", "editor", 0.0), EDIT, 1.0)

    def test_skew_sensitivity_remains(self):
        """GTRBAC's richer constructs change nothing about the clock
        problem the paper identifies: every dimension reads absolute
        local time."""
        engine = GTRBACEngine(make_policy())
        activation = Activation("alice", "editor", started_at=0.0)
        # Global 2.6 is past the 2h activation cap...
        assert not engine.decide(activation, EDIT, 2.6)
        # ...but a slow server clock (local 1.6) wrongly allows it:
        assert engine.decide(activation, EDIT, 2.6, ServerClock(skew=-1.0))
        # and a fast clock wrongly denies a legal access:
        assert not engine.decide(activation, EDIT, 1.0, ServerClock(skew=+3.0))

    def test_no_spatial_expressiveness(self):
        """GTRBAC has no notion of cross-server access history: after 5
        rsw runs at s1 it still grants the 6th at s2, where the paper's
        coordinated engine denies (see test_rbac_engine)."""
        policy = GTRBACPolicy()
        policy.add_role("trial")
        policy.assign_user("u", "trial")
        policy.grant("trial", op="exec", resource="rsw")
        engine = GTRBACEngine(policy)
        activation = Activation("u", "trial", 0.0)
        # GTRBAC takes no history input at all — every request passes.
        for i in range(10):
            assert engine.decide(activation, ("exec", "rsw", "s2"), float(i))
