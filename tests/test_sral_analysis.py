"""Tests for static analyses over SRAL programs."""

import pytest
from hypothesis import given, settings

import tests.strategies as strat
from repro.errors import TraceModelError
from repro.sral.analysis import (
    alphabet,
    assigned_variables,
    channels_used,
    count_nodes,
    free_variables,
    has_loops,
    has_parallelism,
    is_finite,
    max_trace_length,
    operations_used,
    resources_used,
    servers_visited,
    signals_used,
)
from repro.sral.ast import Access, walk
from repro.sral.parser import parse_program

PROG = parse_program(
    """
    read manifest @ s1 ;
    ch ? x ;
    if x > 0 then write report @ s2 else exec tool @ s1 ;
    ch2 ! x + y ;
    signal(done) ;
    wait(ready) ;
    n := n + 1 ;
    while n < 3 do read extra @ s3
    """
)


class TestProjections:
    def test_alphabet(self):
        assert alphabet(PROG) == {
            ("read", "manifest", "s1"),
            ("write", "report", "s2"),
            ("exec", "tool", "s1"),
            ("read", "extra", "s3"),
        }

    def test_servers_visited(self):
        assert servers_visited(PROG) == {"s1", "s2", "s3"}

    def test_resources_used(self):
        assert resources_used(PROG) == {"manifest", "report", "tool", "extra"}

    def test_operations_used(self):
        assert operations_used(PROG) == {"read", "write", "exec"}

    def test_channels_used(self):
        assert channels_used(PROG) == {"ch", "ch2"}

    def test_signals_used(self):
        assert signals_used(PROG) == {"done", "ready"}

    def test_free_variables(self):
        assert free_variables(PROG) == {"x", "y", "n"}

    def test_assigned_variables(self):
        assert assigned_variables(PROG) == {"x", "n"}


class TestShape:
    def test_has_loops(self):
        assert has_loops(PROG)
        assert not has_loops(parse_program("read r1 @ s1"))

    def test_has_parallelism(self):
        assert not has_parallelism(PROG)
        assert has_parallelism(parse_program("read r1 @ s1 || read r2 @ s2"))

    def test_is_finite_iff_loop_free(self):
        assert not is_finite(PROG)
        assert is_finite(parse_program("read r1 @ s1 ; read r2 @ s2"))

    def test_max_trace_length_seq(self):
        p = parse_program("read r1 @ s1 ; read r2 @ s2 ; skip")
        assert max_trace_length(p) == 2

    def test_max_trace_length_if_takes_max(self):
        p = parse_program(
            "if c then { read r1 @ s1 ; read r2 @ s2 } else read r3 @ s3"
        )
        assert max_trace_length(p) == 2

    def test_max_trace_length_par_adds(self):
        p = parse_program("read r1 @ s1 || { read r2 @ s2 ; read r3 @ s3 }")
        assert max_trace_length(p) == 3

    def test_max_trace_length_ignores_non_accesses(self):
        p = parse_program("ch ? x ; signal(e) ; x := 1")
        assert max_trace_length(p) == 0

    def test_max_trace_length_rejects_loops(self):
        with pytest.raises(TraceModelError):
            max_trace_length(PROG)

    def test_count_nodes(self):
        census = count_nodes(parse_program("read r1 @ s1 ; read r2 @ s1"))
        assert census["Access"] == 2
        assert census["Seq"] == 1


class TestProperties:
    @given(strat.programs(max_leaves=14))
    @settings(max_examples=150, deadline=None)
    def test_alphabet_matches_walk(self, program):
        expected = {n.key() for n in walk(program) if isinstance(n, Access)}
        assert alphabet(program) == expected

    @given(strat.loop_free_programs(max_leaves=10))
    @settings(max_examples=150, deadline=None)
    def test_loop_free_programs_are_finite(self, program):
        assert is_finite(program)
        assert max_trace_length(program) >= 0

    @given(strat.programs(max_leaves=12))
    @settings(max_examples=150, deadline=None)
    def test_servers_subset_alphabet(self, program):
        assert servers_visited(program) == {s for (_, _, s) in alphabet(program)}
