"""Integration tests for the discrete-event mobile-agent simulation."""

import pytest

from repro.agent.naplet import LifecycleHooks, Naplet, NapletStatus
from repro.agent.principal import Authority
from repro.agent.scheduler import Simulation
from repro.agent.security import NapletSecurityManager
from repro.coalition.network import Coalition, constant_latency
from repro.coalition.resource import Resource
from repro.coalition.server import CoalitionServer
from repro.errors import SimulationError
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.sral.parser import parse_program
from repro.srac.parser import parse_constraint
from repro.traces.trace import AccessKey


def make_coalition(n=3, latency=2.0):
    servers = [
        CoalitionServer(f"s{i}", resources=[Resource("db"), Resource("rsw"), Resource("doc")])
        for i in range(1, n + 1)
    ]
    return Coalition(servers, latency=constant_latency(latency))


class TestBasicRuns:
    def test_single_access(self):
        sim = Simulation(make_coalition())
        naplet = Naplet("alice", parse_program("read db @ s1"))
        sim.add_naplet(naplet, "s1")
        report = sim.run()
        assert report.all_finished()
        assert naplet.history() == (AccessKey("read", "db", "s1"),)
        assert naplet.registry.verify_chain()

    def test_sequence_records_ordered_history(self):
        sim = Simulation(make_coalition())
        naplet = Naplet("alice", parse_program("read db @ s1 ; write db @ s1 ; exec rsw @ s1"))
        sim.add_naplet(naplet, "s1")
        sim.run()
        assert [a.op for a in naplet.history()] == ["read", "write", "exec"]

    def test_access_consumes_time(self):
        sim = Simulation(make_coalition(), access_cost=3.0)
        naplet = Naplet("alice", parse_program("read db @ s1 ; read db @ s1"))
        sim.add_naplet(naplet, "s1")
        report = sim.run()
        assert naplet.finish_time == pytest.approx(6.0)

    def test_callable_access_cost(self):
        sim = Simulation(
            make_coalition(),
            access_cost=lambda access: 5.0 if access.op == "exec" else 1.0,
        )
        naplet = Naplet("alice", parse_program("read db @ s1 ; exec rsw @ s1"))
        sim.add_naplet(naplet, "s1")
        sim.run()
        assert naplet.finish_time == pytest.approx(6.0)

    def test_migration_latency(self):
        sim = Simulation(make_coalition(latency=10.0), access_cost=1.0)
        naplet = Naplet("alice", parse_program("read db @ s1 ; read db @ s2"))
        sim.add_naplet(naplet, "s1")
        sim.run()
        # t=0 access at s1 (1), migrate (10), access at s2 (1) → 12
        assert naplet.finish_time == pytest.approx(12.0)
        assert naplet.location == "s2"

    def test_no_migration_for_same_server(self):
        coalition = make_coalition(latency=50.0)
        sim = Simulation(coalition, access_cost=1.0)
        naplet = Naplet("alice", parse_program("read db @ s1 ; write db @ s1"))
        sim.add_naplet(naplet, "s1")
        sim.run()
        assert naplet.finish_time == pytest.approx(2.0)

    def test_arrivals_counted(self):
        coalition = make_coalition()
        sim = Simulation(coalition)
        naplet = Naplet("alice", parse_program("read db @ s1 ; read db @ s2 ; read db @ s1"))
        sim.add_naplet(naplet, "s1")
        sim.run()
        assert coalition.server("s1").arrivals == 2
        assert coalition.server("s2").arrivals == 1

    def test_duplicate_naplet_rejected(self):
        sim = Simulation(make_coalition())
        naplet = Naplet("alice", parse_program("skip"))
        sim.add_naplet(naplet, "s1")
        with pytest.raises(SimulationError):
            sim.add_naplet(naplet, "s1")

    def test_unknown_start_server(self):
        sim = Simulation(make_coalition())
        with pytest.raises(SimulationError):
            sim.add_naplet(Naplet("alice", parse_program("skip")), "nowhere")

    def test_failed_program_reports_error(self):
        sim = Simulation(make_coalition())
        naplet = Naplet("alice", parse_program("x := 1 / 0"))
        sim.add_naplet(naplet, "s1")
        report = sim.run()
        assert naplet.status is NapletStatus.FAILED
        assert naplet.error is not None
        assert not report.all_finished()


class TestCommunication:
    def test_channel_transfer_between_agents(self):
        sim = Simulation(make_coalition())
        producer = Naplet("alice", parse_program("read db @ s1 ; ch ! 42"), name="prod")
        consumer = Naplet("bob", parse_program("ch ? x ; if x == 42 then read db @ s2 else skip"), name="cons")
        sim.add_naplet(producer, "s1")
        sim.add_naplet(consumer, "s2")
        report = sim.run()
        assert report.all_finished()
        assert consumer.env["x"] == 42
        assert consumer.history() == (AccessKey("read", "db", "s2"),)

    def test_receive_blocks_until_send(self):
        sim = Simulation(make_coalition(), access_cost=5.0)
        consumer = Naplet("bob", parse_program("ch ? x"), name="cons")
        producer = Naplet("alice", parse_program("read db @ s1 ; ch ! 1"), name="prod")
        sim.add_naplet(consumer, "s2")
        sim.add_naplet(producer, "s1")
        report = sim.run()
        assert report.all_finished()
        # Consumer could only proceed after the producer's t=5 send.
        assert consumer.finish_time == pytest.approx(5.0)

    def test_signal_wait_ordering(self):
        sim = Simulation(make_coalition(), access_cost=2.0)
        waiter = Naplet("bob", parse_program("wait(go) ; read db @ s2"), name="w")
        signaller = Naplet("alice", parse_program("read db @ s1 ; signal(go)"), name="sig")
        sim.add_naplet(waiter, "s2")
        sim.add_naplet(signaller, "s1")
        report = sim.run()
        assert report.all_finished()
        assert waiter.finish_time >= 2.0

    def test_wait_after_signal_passes_immediately(self):
        sim = Simulation(make_coalition())
        first = Naplet("alice", parse_program("signal(go)"), name="a")
        second = Naplet("bob", parse_program("wait(go)"), name="b")
        sim.add_naplet(first, "s1", at=0.0)
        sim.add_naplet(second, "s1", at=1.0)
        report = sim.run()
        assert report.all_finished()

    def test_deadlock_detected(self):
        sim = Simulation(make_coalition())
        stuck = Naplet("alice", parse_program("wait(never)"), name="stuck")
        sim.add_naplet(stuck, "s1")
        report = sim.run()
        assert report.deadlocked == ("stuck",)
        assert stuck.status is NapletStatus.BLOCKED

    def test_two_receivers_race_one_value(self):
        sim = Simulation(make_coalition())
        r1 = Naplet("alice", parse_program("ch ? x"), name="r1")
        r2 = Naplet("bob", parse_program("ch ? x"), name="r2")
        sender = Naplet("carol", parse_program("ch ! 7"), name="snd")
        sim.add_naplet(r1, "s1")
        sim.add_naplet(r2, "s1")
        sim.add_naplet(sender, "s2", at=1.0)
        report = sim.run()
        got = [n for n in (r1, r2) if n.env.get("x") == 7]
        blocked = [n for n in (r1, r2) if n.status is NapletStatus.BLOCKED]
        assert len(got) == 1
        assert len(blocked) == 1
        assert report.deadlocked == (blocked[0].naplet_id,)


class TestCloning:
    def test_par_spawns_clones(self):
        sim = Simulation(make_coalition())
        naplet = Naplet("alice", parse_program("read db @ s1 || read db @ s2"), name="par")
        sim.add_naplet(naplet, "s1")
        report = sim.run()
        assert naplet.status is NapletStatus.FINISHED
        clone_ids = {n.naplet_id for n in report.naplets} - {"par"}
        assert clone_ids == {"par/clone0", "par/clone1"}
        histories = {n.naplet_id: n.history() for n in report.naplets}
        assert histories["par/clone0"] == (AccessKey("read", "db", "s1"),)
        assert histories["par/clone1"] == (AccessKey("read", "db", "s2"),)

    def test_parent_waits_for_clones(self):
        sim = Simulation(make_coalition(latency=4.0), access_cost=1.0)
        naplet = Naplet(
            "alice",
            parse_program("(read db @ s1 || read db @ s2) ; write db @ s1"),
            name="par",
        )
        sim.add_naplet(naplet, "s1")
        sim.run()
        # Clone to s2: 4 (migration) + 1 (access) = 5; parent writes after.
        assert naplet.finish_time == pytest.approx(6.0)
        assert naplet.history() == (AccessKey("write", "db", "s1"),)

    def test_clone_envs_are_isolated(self):
        sim = Simulation(make_coalition())
        naplet = Naplet(
            "alice",
            parse_program("x := 1 ; (x := 2 || x := 3) ; read db @ s1"),
            name="par",
        )
        sim.add_naplet(naplet, "s1")
        sim.run()
        assert naplet.env["x"] == 1  # parent env untouched by clones

    def test_nested_par(self):
        sim = Simulation(make_coalition())
        naplet = Naplet(
            "alice",
            parse_program("(read db @ s1 || (read db @ s2 || read db @ s3))"),
            name="par",
        )
        sim.add_naplet(naplet, "s1")
        report = sim.run()
        assert naplet.status is NapletStatus.FINISHED
        assert len(report.naplets) == 5  # parent + 2 + nested 2


class TestHooks:
    def test_lifecycle_hooks_fire(self):
        events = []
        hooks = LifecycleHooks(
            on_arrival=lambda n, s, t: events.append(("arrive", s, t)),
            on_departure=lambda n, s, t: events.append(("depart", s, t)),
            on_finish=lambda n, t: events.append(("finish", t)),
        )
        sim = Simulation(make_coalition(latency=1.0), access_cost=1.0)
        naplet = Naplet("alice", parse_program("read db @ s1 ; read db @ s2"), hooks=hooks)
        sim.add_naplet(naplet, "s1")
        sim.run()
        kinds = [e[0] for e in events]
        assert kinds == ["arrive", "depart", "arrive", "finish"]


class TestSecuredSimulation:
    def make_secured(self, on_denied="abort", scheme=None):
        from repro.temporal.validity import Scheme

        policy = Policy()
        policy.add_user("alice")
        policy.add_role("auditor")
        policy.add_permission(
            Permission(
                "p_rsw",
                op="exec",
                resource="rsw",
                spatial_constraint=parse_constraint("count(0, 2, [res = rsw])"),
            )
        )
        policy.add_permission(Permission("p_rest", op="read"))
        policy.assign_user("alice", "auditor")
        policy.assign_permission("auditor", "p_rsw")
        policy.assign_permission("auditor", "p_rest")
        engine = AccessControlEngine(
            policy, scheme=scheme or Scheme.WHOLE_EXECUTION
        )
        authority = Authority()
        certificate = authority.register("alice")
        manager = NapletSecurityManager(engine, authority=authority)
        coalition = make_coalition()
        sim = Simulation(coalition, security=manager, on_denied=on_denied)
        return sim, certificate, engine

    def test_grant_within_budget(self):
        sim, certificate, engine = self.make_secured()
        naplet = Naplet(
            "alice",
            parse_program("exec rsw @ s1 ; exec rsw @ s2"),
            certificate=certificate,
            roles=("auditor",),
        )
        sim.add_naplet(naplet, "s1")
        report = sim.run()
        assert report.all_finished()
        assert len(naplet.history()) == 2

    def test_coordinated_denial_on_third_access(self):
        """Two rsw accesses at s1 exhaust the budget; the third — at a
        different server — is denied (the paper's coordinated control)."""
        sim, certificate, engine = self.make_secured()
        naplet = Naplet(
            "alice",
            parse_program("exec rsw @ s1 ; exec rsw @ s1 ; exec rsw @ s2"),
            certificate=certificate,
            roles=("auditor",),
        )
        sim.add_naplet(naplet, "s1")
        sim.run()
        assert naplet.status is NapletStatus.DENIED
        assert len(naplet.history()) == 2
        assert len(naplet.denials) == 1
        denied = engine.audit.denials()
        assert len(denied) == 1
        assert denied[0].access.server == "s2"

    def test_skip_policy_continues_after_denial(self):
        sim, certificate, engine = self.make_secured(on_denied="skip")
        naplet = Naplet(
            "alice",
            parse_program("exec rsw @ s1 ; exec rsw @ s1 ; exec rsw @ s2 ; read db @ s2"),
            certificate=certificate,
            roles=("auditor",),
        )
        sim.add_naplet(naplet, "s1")
        report = sim.run()
        assert naplet.status is NapletStatus.FINISHED
        ops = [a.op for a in naplet.history()]
        assert ops == ["exec", "exec", "read"]  # denied access skipped

    def test_unauthenticated_agent_rejected(self):
        sim, certificate, engine = self.make_secured()
        naplet = Naplet("alice", parse_program("read db @ s1"), certificate=None)
        sim.add_naplet(naplet, "s1")
        sim.run()
        assert naplet.status is NapletStatus.FAILED

    def test_forged_certificate_rejected(self):
        from repro.agent.principal import Certificate

        sim, certificate, engine = self.make_secured()
        forged = Certificate("alice", "0" * 64)
        naplet = Naplet("alice", parse_program("read db @ s1"), certificate=forged)
        sim.add_naplet(naplet, "s1")
        sim.run()
        assert naplet.status is NapletStatus.FAILED


class TestSchedulerRobustness:
    def test_unknown_resource_fails_agent_not_simulation(self):
        sim = Simulation(make_coalition())
        bad = Naplet("alice", parse_program("read ghost_resource @ s1"), name="bad")
        good = Naplet("bob", parse_program("read db @ s2"), name="good")
        sim.add_naplet(bad, "s1")
        sim.add_naplet(good, "s2")
        report = sim.run()
        assert report.by_id("bad").status is NapletStatus.FAILED
        assert report.by_id("good").status is NapletStatus.FINISHED

    def test_unsupported_operation_fails_agent(self):
        from repro.coalition.resource import Resource
        from repro.coalition.server import CoalitionServer
        from repro.coalition.network import Coalition

        coalition = Coalition(
            [CoalitionServer("s1", [Resource("ro", operations=frozenset({"read"}))])]
        )
        sim = Simulation(coalition)
        naplet = Naplet("alice", parse_program("write ro @ s1"))
        sim.add_naplet(naplet, "s1")
        report = sim.run()
        assert naplet.status is NapletStatus.FAILED
        assert naplet.error is not None

    def test_migration_to_unknown_server_fails_agent(self):
        sim = Simulation(make_coalition())
        naplet = Naplet("alice", parse_program("read db @ s1 ; read db @ nowhere"))
        sim.add_naplet(naplet, "s1")
        report = sim.run()
        assert naplet.status is NapletStatus.FAILED
        assert len(naplet.history()) == 1  # first access succeeded

    def test_run_until_pauses_and_resumes(self):
        sim = Simulation(make_coalition(), access_cost=1.0)
        naplet = Naplet("alice", parse_program(
            "read db @ s1 ; read db @ s1 ; read db @ s1 ; read db @ s1"))
        sim.add_naplet(naplet, "s1")
        partial = sim.run(until=2.0)
        assert len(naplet.history()) >= 2
        assert naplet.status is not NapletStatus.FINISHED
        final = sim.run()
        assert naplet.status is NapletStatus.FINISHED
        assert len(naplet.history()) == 4

    def test_long_sequential_program_no_recursion_error(self):
        from repro.sral.ast import seq
        from repro.sral.builder import access

        program = seq(*(access("read", "db", "s1") for _ in range(3000)))
        sim = Simulation(make_coalition(), access_cost=0.0)
        naplet = Naplet("alice", program)
        sim.add_naplet(naplet, "s1")
        report = sim.run()
        assert naplet.status is NapletStatus.FINISHED
        assert len(naplet.history()) == 3000

    def test_deep_loop_program(self):
        src = "n := 0 ; while n < 2000 do { read db @ s1 ; n := n + 1 }"
        sim = Simulation(make_coalition(), access_cost=0.0)
        naplet = Naplet("alice", parse_program(src))
        sim.add_naplet(naplet, "s1")
        sim.run()
        assert naplet.status is NapletStatus.FINISHED
        assert len(naplet.history()) == 2000

    def test_unknown_policy_user_fails_agent_only(self):
        """An agent whose owner the policy does not know fails at
        authentication without killing other agents' runs."""
        policy = Policy()
        policy.add_user("known")
        engine = AccessControlEngine(policy)
        sim = Simulation(make_coalition(), security=NapletSecurityManager(engine))
        ghost = Naplet("ghost-owner", parse_program("read db @ s1"), name="ghost")
        sim.add_naplet(ghost, "s1")
        report = sim.run()
        assert ghost.status is NapletStatus.FAILED
        assert ghost.error is not None
