"""Unit tests for the fault-injection layer (:mod:`repro.faults`).

The chaos suite (:mod:`tests.test_faults_chaos`) exercises the layer
end-to-end; these tests pin each component's contract in isolation —
retry arithmetic, seeded link draws, lifecycle state machines, the
degradation gate, transport failure modes, the batcher's
retry/park/re-arm cycle, server-side unavailability, and the decision
service's hook retry.
"""

from __future__ import annotations

import threading

import pytest

from repro.coalition.network import Coalition, constant_latency
from repro.coalition.proofs import ProofRegistry
from repro.coalition.resource import Resource
from repro.coalition.server import CoalitionServer
from repro.errors import FaultError, ServerUnavailable, SimulationError
from repro.faults import (
    DegradationPolicy,
    DirectTransport,
    FaultPlan,
    FaultyLink,
    FaultyTransport,
    Outage,
    RetryPolicy,
    ServerLifecycle,
    ServerState,
    fail_closed,
    stale_ok,
)
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.service import DecisionService, ProofBatch, ShardedEngine
from repro.traces.trace import AccessKey


class TestRetryPolicy:
    def test_exponential_backoff_capped(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=5.0)
        assert [policy.delay(k) for k in range(4)] == [1.0, 2.0, 4.0, 5.0]

    def test_schedule_absolute_times(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=2.0, max_delay=8.0, max_attempts=3
        )
        assert policy.schedule(10.0) == (11.0, 13.0, 17.0)

    def test_schedule_deadline_truncates(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=2.0, max_delay=8.0,
            max_attempts=6, deadline=4.0,
        )
        # 11, 13 are within 4 of start=10; 17 is past the deadline.
        assert policy.schedule(10.0) == (11.0, 13.0)

    def test_exhausted_by_attempts(self):
        policy = RetryPolicy(max_attempts=2)
        assert not policy.exhausted(1, 0.0, 100.0)
        assert policy.exhausted(2, 0.0, 0.0)

    def test_exhausted_by_deadline(self):
        policy = RetryPolicy(max_attempts=100, deadline=5.0)
        assert not policy.exhausted(0, 10.0, 15.0)
        assert policy.exhausted(0, 10.0, 15.1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_delay": 0.0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"base_delay": 2.0, "max_delay": 1.0},
            {"max_attempts": 0},
            {"deadline": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(FaultError):
            RetryPolicy(**kwargs)

    def test_negative_attempt_rejected(self):
        with pytest.raises(FaultError):
            RetryPolicy().delay(-1)


class TestFaultyLink:
    def test_probability_validation(self):
        with pytest.raises(FaultError):
            FaultyLink(drop=1.5)
        with pytest.raises(FaultError):
            FaultyLink(duplicate=-0.1)
        with pytest.raises(FaultError):
            FaultyLink(extra_delay=-1.0)
        with pytest.raises(FaultError):
            FaultyLink(reorder_window=-1.0)

    def test_same_seed_same_draws(self):
        a = FaultyLink(drop=0.5, duplicate=0.5, reorder_window=2.0, seed=7)
        b = FaultyLink(drop=0.5, duplicate=0.5, reorder_window=2.0, seed=7)
        draws_a = [
            (a.dropped("x", "y"), a.duplicated("x", "y"), a.delivery_delay("x", "y"))
            for _ in range(50)
        ]
        draws_b = [
            (b.dropped("x", "y"), b.duplicated("x", "y"), b.delivery_delay("x", "y"))
            for _ in range(50)
        ]
        assert draws_a == draws_b

    def test_certain_drop_counts(self):
        link = FaultyLink(drop=1.0)
        assert all(link.dropped("a", "b") for _ in range(5))
        assert link.drops == 5
        assert link.stats()["drops"] == 5

    def test_delivery_delay_bounds(self):
        link = FaultyLink(extra_delay=1.0, reorder_window=2.0, seed=3)
        for _ in range(100):
            delay = link.delivery_delay("a", "b")
            assert 1.0 <= delay < 3.0

    def test_wrap_adds_extra_delay_for_distinct_servers(self):
        link = FaultyLink(extra_delay=0.5)
        model = link.wrap(constant_latency(2.0))
        assert model("a", "b") == 2.5
        assert model("a", "a") == 0.0

    def test_wrap_sees_heal(self):
        # wrap() reads the attribute at call time, so healing the link
        # immediately heals every latency model composed from it.
        link = FaultyLink(drop=1.0, extra_delay=0.5, reorder_window=2.0)
        model = link.wrap(constant_latency(2.0))
        link.heal()
        assert model("a", "b") == 2.0
        assert not link.dropped("a", "b")
        assert link.delivery_delay("a", "b") == 0.0


class TestServerLifecycle:
    def test_unscheduled_server_is_always_up(self):
        lifecycle = ServerLifecycle()
        assert lifecycle.is_up("s1", 0.0)
        assert lifecycle.state("s1", 1e9) is ServerState.UP

    def test_outage_state_machine(self):
        lifecycle = ServerLifecycle()
        lifecycle.schedule_crash("s1", at=10.0, down_for=5.0, recovering_for=2.0)
        assert lifecycle.state("s1", 9.9) is ServerState.UP
        assert lifecycle.state("s1", 10.0) is ServerState.DOWN
        assert lifecycle.state("s1", 14.9) is ServerState.DOWN
        assert lifecycle.state("s1", 15.0) is ServerState.RECOVERING
        assert lifecycle.state("s1", 16.9) is ServerState.RECOVERING
        assert lifecycle.state("s1", 17.0) is ServerState.UP

    def test_recovering_receives_but_does_not_execute(self):
        lifecycle = ServerLifecycle()
        lifecycle.schedule_crash("s1", at=0.0, down_for=1.0, recovering_for=1.0)
        assert not lifecycle.can_execute("s1", 0.5)
        assert not lifecycle.can_receive("s1", 0.5)
        assert not lifecycle.can_execute("s1", 1.5)
        assert lifecycle.can_receive("s1", 1.5)
        assert lifecycle.can_execute("s1", 2.0)

    def test_overlapping_windows_rejected(self):
        lifecycle = ServerLifecycle()
        lifecycle.schedule_crash("s1", at=10.0, down_for=5.0)
        with pytest.raises(FaultError):
            lifecycle.schedule_crash("s1", at=12.0, down_for=1.0)
        # Disjoint windows (other server, or later time) are fine.
        lifecycle.schedule_crash("s2", at=12.0, down_for=1.0)
        lifecycle.schedule_crash("s1", at=20.0, down_for=1.0)
        assert len(lifecycle.outages("s1")) == 2

    def test_next_up_time(self):
        lifecycle = ServerLifecycle()
        lifecycle.schedule_crash("s1", at=10.0, down_for=5.0, recovering_for=2.0)
        assert lifecycle.next_up_time("s1", 5.0) == 5.0
        assert lifecycle.next_up_time("s1", 12.0) == 17.0
        assert lifecycle.next_up_time("s1", 17.0) == 17.0

    def test_heal_truncates(self):
        lifecycle = ServerLifecycle()
        lifecycle.schedule_crash("s1", at=10.0, down_for=100.0)
        lifecycle.schedule_crash("s2", at=500.0, down_for=10.0)
        lifecycle.heal(20.0)
        assert lifecycle.is_up("s1", 20.0)
        # The future outage never happens.
        assert lifecycle.outages("s2") == ()
        # History before the heal is preserved.
        assert lifecycle.state("s1", 15.0) is ServerState.DOWN

    def test_validation(self):
        lifecycle = ServerLifecycle()
        with pytest.raises(FaultError):
            lifecycle.schedule_crash("s1", at=-1.0, down_for=1.0)
        with pytest.raises(FaultError):
            lifecycle.schedule_crash("s1", at=0.0, down_for=-1.0)
        with pytest.raises(FaultError):
            Outage(down_at=5.0, recover_at=4.0, up_at=6.0)


class TestDegradationPolicy:
    def test_fail_closed_tolerates_nothing(self):
        policy = fail_closed()
        assert not policy.tolerates(0.0)
        assert not policy.tolerates(100.0)

    def test_stale_ok_age_budget(self):
        policy = stale_ok(5.0)
        assert policy.tolerates(0.0)
        assert policy.tolerates(5.0)
        assert not policy.tolerates(5.1)

    def test_validation(self):
        with pytest.raises(FaultError):
            DegradationPolicy("fail_open")
        with pytest.raises(FaultError):
            stale_ok(-1.0)


def make_coalition(latency: float = 2.0) -> Coalition:
    return Coalition(
        [CoalitionServer(s, [Resource("rsw")]) for s in ("s1", "s2", "s3")],
        latency=constant_latency(latency),
    )


def issue_proofs(n: int, server: str = "s1"):
    registry = ProofRegistry("obj")
    return [
        registry.record(("exec", "rsw", server), float(i)) for i in range(n)
    ]


class TestFaultPlan:
    def test_migration_retry_defaults_to_retry(self):
        retry = RetryPolicy(base_delay=0.1)
        plan = FaultPlan(retry=retry)
        assert plan.migration_retry is retry

    def test_install_is_idempotent(self):
        coalition = make_coalition(latency=2.0)
        plan = FaultPlan(
            link=FaultyLink(extra_delay=0.5), lifecycle=ServerLifecycle()
        )
        plan.install(coalition)
        plan.install(coalition)  # must not wrap the latency model twice
        assert coalition.migration_latency("s1", "s2") == 2.5
        assert all(s.lifecycle is plan.lifecycle for s in coalition)

    def test_heal_reaches_both_components(self):
        plan = FaultPlan(
            link=FaultyLink(drop=1.0), lifecycle=ServerLifecycle()
        )
        plan.lifecycle.schedule_crash("s1", at=0.0, down_for=100.0)
        plan.heal(5.0)
        assert plan.link.drop == 0.0
        assert plan.lifecycle.is_up("s1", 5.0)

    def test_degradation_requires_propagation(self):
        from repro.agent.scheduler import Simulation

        with pytest.raises(SimulationError):
            Simulation(make_coalition(), faults=FaultPlan(degradation=fail_closed()))


class TestFaultyTransport:
    def test_down_destination_refused(self):
        coalition = make_coalition()
        lifecycle = ServerLifecycle()
        lifecycle.schedule_crash("s2", at=0.0, down_for=10.0)
        transport = FaultyTransport(coalition, lifecycle=lifecycle)
        proofs = issue_proofs(2)
        assert transport.deliver("s2", proofs, now=5.0) is False
        assert transport.stats() == {"attempts": 1, "failures": 1, "unavailable": 1}
        assert coalition.server("s2").announced_proof_count() == 0
        # After the outage the same delivery succeeds.
        assert transport.deliver("s2", proofs, now=10.0) is True
        assert coalition.server("s2").announced_proof_count() == 2

    def test_certain_drop_fails_delivery(self):
        coalition = make_coalition()
        transport = FaultyTransport(coalition, link=FaultyLink(drop=1.0))
        assert transport.deliver("s2", issue_proofs(1), now=0.0) is False
        assert coalition.server("s2").announced_proof_count() == 0

    def test_duplicate_delivery_is_invisible(self):
        coalition = make_coalition()
        transport = FaultyTransport(coalition, link=FaultyLink(duplicate=1.0))
        proofs = issue_proofs(3)
        assert transport.deliver("s2", proofs, now=0.0) is True
        # The ledger deduplicates by digest: 3 proofs, not 6.
        assert coalition.server("s2").announced_proof_count() == 3

    def test_no_link_means_no_delay(self):
        transport = FaultyTransport(make_coalition())
        assert transport.delivery_delay("s2", 0.0) == 0.0
        assert transport.deliver("s2", issue_proofs(1), now=0.0) is True


class TestProofBatchRetries:
    def make_batch(self, drop: float, retry: RetryPolicy, link_kwargs=None):
        coalition = make_coalition(latency=2.0)
        link = FaultyLink(drop=drop, **(link_kwargs or {}))
        transport = FaultyTransport(coalition, link=link)
        batch = ProofBatch(
            coalition, max_batch=100, transport=transport, retry=retry
        )
        return coalition, link, batch

    def test_failed_delivery_backs_off_then_parks(self):
        retry = RetryPolicy(base_delay=1.0, multiplier=2.0, max_attempts=2)
        coalition, link, batch = self.make_batch(drop=1.0, retry=retry)
        proof = issue_proofs(1)[0]
        batch.enqueue("s1", proof, now=0.0)
        assert batch.next_due() == 2.0  # the migration-latency window
        # Attempt 1 fails -> retry in base_delay.
        assert batch.flush_due(2.0) == 0
        assert batch.next_due() == 3.0
        # Too early: nothing is attempted mid-backoff.
        assert batch.flush_due(2.5) == 0
        # Attempt 2 fails -> retry in base_delay * multiplier.
        assert batch.flush_due(3.0) == 0
        assert batch.next_due() == 5.0
        # Attempt 3: the retry budget (max_attempts=2) is exhausted ->
        # the batch parks; flush_due no longer touches it.
        assert batch.flush_due(5.0) == 0
        assert batch.parked_destinations() == ("s2", "s3")
        assert batch.next_due() is None
        assert batch.flush_due(100.0) == 0
        stats = batch.stats()
        assert stats["abandoned_batches"] == 2  # one per destination
        assert stats["pending"] == 2
        # Heal + explicit flush re-arms the parked batches and drains.
        link.heal()
        assert batch.flush(now=100.0) == 2
        assert batch.parked_destinations() == ()
        assert batch.pending_count() == 0
        assert coalition.server("s2").announced_proof_count() == 1

    def test_enqueue_does_not_preempt_backoff(self):
        retry = RetryPolicy(base_delay=10.0, max_delay=10.0, max_attempts=5)
        _, _, batch = self.make_batch(drop=1.0, retry=retry)
        proofs = issue_proofs(4)
        batch.enqueue("s1", proofs[0], now=0.0)
        batch.flush_due(2.0)  # fails; backoff until 12.0
        overflow_before = batch.stats()["overflow_flushes"]
        for proof in proofs[1:]:
            batch.enqueue("s1", proof, now=3.0)
        # max_batch is 100, but even a full batch would not preempt the
        # backoff window; the due time stays the retry time.
        assert batch.stats()["overflow_flushes"] == overflow_before
        assert batch.next_due() == 12.0

    def test_in_flight_delay_postpones_once(self):
        retry = RetryPolicy(base_delay=1.0)
        coalition, _, batch = self.make_batch(
            drop=0.0, retry=retry, link_kwargs={"extra_delay": 0.5}
        )
        batch.enqueue("s1", issue_proofs(1)[0], now=0.0)
        # Due at 2.0 (latency); each destination's attempt draws the
        # in-flight delay and postpones delivery to 2.5 (the fixed
        # extra_delay) without redelivering.
        assert batch.flush_due(2.0) == 0
        assert batch.next_due() == 2.5
        assert batch.flush_due(2.5) == 2  # one proof x two destinations
        assert coalition.server("s2").announced_proof_count() == 1
        assert coalition.server("s3").announced_proof_count() == 1

    def test_deadline_parks_before_attempts_run_out(self):
        retry = RetryPolicy(base_delay=1.0, max_attempts=100, deadline=1.5)
        _, _, batch = self.make_batch(drop=1.0, retry=retry)
        batch.enqueue("s1", issue_proofs(1)[0], now=0.0)
        batch.flush_due(2.0)   # first failure at t=2.0; retry due 3.0
        batch.flush_due(3.0)   # within deadline -> retried; due 5.0
        assert batch.parked_destinations() == ()
        batch.flush_due(5.0)   # 3.0 past first failure > deadline -> parked
        assert batch.parked_destinations() == ("s2", "s3")


class TestServerUnavailability:
    def make_server(self, lifecycle):
        server = CoalitionServer("s1", [Resource("rsw")])
        server.lifecycle = lifecycle
        return server

    def test_execute_access_refused_while_down(self):
        lifecycle = ServerLifecycle()
        lifecycle.schedule_crash("s1", at=0.0, down_for=5.0, recovering_for=5.0)
        server = self.make_server(lifecycle)
        registry = ProofRegistry("obj")
        with pytest.raises(ServerUnavailable):
            server.execute_access(registry, "exec", "rsw", 1.0)
        # RECOVERING does not execute either.
        with pytest.raises(ServerUnavailable):
            server.execute_access(registry, "exec", "rsw", 7.0)
        assert server.rejected_unavailable == 2
        outcome = server.execute_access(registry, "exec", "rsw", 10.0)
        assert outcome.proof.access.server == "s1"

    def test_receive_proofs_refused_only_while_down(self):
        lifecycle = ServerLifecycle()
        lifecycle.schedule_crash("s1", at=0.0, down_for=5.0, recovering_for=5.0)
        server = self.make_server(lifecycle)
        proofs = issue_proofs(1, server="s2")
        with pytest.raises(ServerUnavailable):
            server.receive_proofs(proofs, now=1.0)
        # RECOVERING accepts deliveries (propagation catch-up).
        server.receive_proofs(proofs, now=7.0)
        assert server.announced_proof_count() == 1
        # Untimed delivery (legacy callers) bypasses the lifecycle.
        server.receive_proofs(issue_proofs(1, server="s3"))
        assert server.announced_proof_count() == 2


class TestDecisionServiceHookRetry:
    def make_service(self, hook, retry):
        policy = Policy()
        policy.add_user("u")
        policy.add_role("r")
        policy.add_permission(Permission("p", resource="rsw"))
        policy.assign_user("u", "r")
        policy.assign_permission("r", "p")
        engine = ShardedEngine(policy, shards=2)
        session = engine.authenticate("u", 0.0)
        engine.activate_role(session, "r", 0.0)
        service = DecisionService(
            engine, workers=2, post_decision_hook=hook, hook_retry=retry
        )
        return service, session

    def test_flaky_hook_retried_to_success(self):
        failures_left = [2]
        lock = threading.Lock()

        def hook(decision):
            with lock:
                if failures_left[0] > 0:
                    failures_left[0] -= 1
                    raise RuntimeError("delivery edge down")

        retry = RetryPolicy(base_delay=0.001, max_attempts=5)
        service, session = self.make_service(hook, retry)
        with service:
            decision = service.decide(session, ("exec", "rsw", "s1"), 0.0)
            assert decision.granted
            stats = service.service_stats()
        assert stats.errors == 0
        assert stats.hook_retries == 2
        assert stats.as_dict()["hook_retries"] == 2

    def test_exhausted_hook_surfaces_error(self):
        def hook(decision):
            raise RuntimeError("permanently down")

        retry = RetryPolicy(base_delay=0.001, max_attempts=1)
        service, session = self.make_service(hook, retry)
        with service:
            future = service.submit(session, ("exec", "rsw", "s1"), 0.0)
            with pytest.raises(RuntimeError, match="permanently down"):
                future.result(timeout=10.0)
            assert service.drain(timeout=10.0)
            stats = service.service_stats()
        assert stats.errors == 1
        assert stats.hook_retries == 1

    def test_no_retry_policy_fails_fast(self):
        calls = []

        def hook(decision):
            calls.append(1)
            raise RuntimeError("boom")

        service, session = self.make_service(hook, retry=None)
        with service:
            future = service.submit(session, ("exec", "rsw", "s1"), 0.0)
            with pytest.raises(RuntimeError):
                future.result(timeout=10.0)
        assert len(calls) == 1
