"""EXP-DEADLINE — the Section 1 newspaper deadline as a temporal
constraint, under both base-time schemes.

Shape to reproduce: with a validity duration D and edits of unit cost,
exactly ``floor(D)`` edits are granted under the whole-execution scheme
regardless of migrations, while the per-server scheme re-grants after
each migration.

Run:  pytest benchmarks/bench_deadline.py --benchmark-only
"""

import pytest

from repro.agent.naplet import Naplet
from repro.agent.scheduler import Simulation
from repro.agent.security import NapletSecurityManager
from repro.coalition.network import Coalition, constant_latency
from repro.coalition.resource import Resource
from repro.coalition.server import CoalitionServer
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.sral.builder import access
from repro.sral.ast import seq
from repro.temporal.validity import Scheme


def _run(scheme: Scheme, n_edits: int, duration: float):
    policy = Policy()
    policy.add_user("editor")
    policy.add_role("night-editor")
    policy.add_permission(
        Permission("p_edit", op="write", resource="issue", validity_duration=duration)
    )
    policy.assign_user("editor", "night-editor")
    policy.assign_permission("night-editor", "p_edit")
    engine = AccessControlEngine(policy, scheme=scheme)
    coalition = Coalition(
        [
            CoalitionServer("b1", resources=[Resource("issue")]),
            CoalitionServer("b2", resources=[Resource("issue")]),
        ],
        latency=constant_latency(0.0),  # isolate the budget from travel
    )
    # Alternate bureaus every edit: maximum migration churn.
    program = seq(
        *(access("write", "issue", "b1" if i % 2 == 0 else "b2") for i in range(n_edits))
    )
    sim = Simulation(
        coalition,
        security=NapletSecurityManager(engine),
        access_cost=1.0,
        on_denied="skip",
    )
    naplet = Naplet("editor", program, roles=("night-editor",))
    sim.add_naplet(naplet, "b1")
    sim.run()
    return naplet


def bench_whole_execution_scheme(benchmark):
    naplet = benchmark(_run, Scheme.WHOLE_EXECUTION, 10, 3.0)
    # One global 3-hour budget: exactly 3 unit edits fit.
    assert len(naplet.history()) == 3


def bench_per_server_scheme(benchmark):
    naplet = benchmark(_run, Scheme.PER_SERVER, 10, 3.0)
    # Budget resets on every migration: all 10 edits are granted.
    assert len(naplet.history()) == 10


@pytest.mark.parametrize("duration", [1.0, 3.0, 6.0, 9.0])
def bench_edits_vs_deadline(benchmark, duration):
    """Grant count tracks the validity duration linearly (shape check)."""
    naplet = benchmark.pedantic(
        _run, args=(Scheme.WHOLE_EXECUTION, 12, duration), rounds=3, iterations=1
    )
    assert len(naplet.history()) == int(duration)
