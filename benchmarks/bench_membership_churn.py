"""EXP-CHURN — decision throughput and proof convergence under
membership churn.

A coalition is not a fixed club: servers join, leave gracefully, or
are evicted while the decision service keeps serving.  This benchmark
quantifies what dynamic membership costs and verifies what it must
never cost — correctness:

* **Throughput under rolling churn** — the micro-batched sharded
  service runs the same warm-path workload twice: once on a static
  membership and once with one join + one leave per ``churn_period``
  decisions applied concurrently with the in-flight micro-batches
  (epoch bumps, bootstrap handshakes, listener fan-out and all).  The
  reported overhead ratio is the price of keeping membership live.
* **Proof-convergence lag** — a joiner bootstraps its announced-proof
  ledger from a peer (the join-time sync handshake), then catches up
  on post-join traffic through the latency-aware
  :class:`~repro.service.ProofBatch`.  Reported: bootstrap coverage of
  the peer ledger, and the per-proof lag from enqueue to the joiner
  learning it (the head of each coalesced batch pays the full
  migration latency, later entries ride along for less; the ceiling is
  latency + one coalescing window).
* **No-overgrant acceptance gate** — before anything is timed, an
  eviction scenario is driven end-to-end through the coalition-bound
  service: sessions whose gated access is justified only by a hub-read
  observed *before* the hub's eviction must be denied *after* it (the
  rescind path), while identical pre-eviction sessions are granted
  (non-vacuity).  A single post-eviction gated grant fails the run.

Run:  python benchmarks/bench_membership_churn.py [--smoke]
Emits benchmarks/artifacts/BENCH_membership_churn.json.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.coalition.network import Coalition, constant_latency
from repro.coalition.proofs import ExecutionProof
from repro.coalition.resource import Resource
from repro.coalition.server import CoalitionServer
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.service import DecisionService, ProofBatch, ShardedEngine
from repro.srac.parser import parse_constraint
from repro.traces.trace import AccessKey

FOUNDERS = 5
SESSIONS = 64
SHARDS = 8
#: One join + one leave are applied per this many decisions (the
#: rolling-churn cadence of the throughput section).
CHURN_PERIOD = 10_000
#: Micro-batching knobs (same regime as bench_concurrent_service).
QUEUE_DEPTH = 1 << 17
BATCH_MAX = 256
BATCH_WAIT_S = 0.002

#: Convergence-section knobs: virtual seconds per hop, proofs minted
#: one per virtual second.
PROP_LATENCY = 2.0
PROP_BATCH = 8

ARTIFACT = (
    pathlib.Path(__file__).resolve().parent / "artifacts"
    / "BENCH_membership_churn.json"
)


# -- throughput under rolling churn -------------------------------------------

def _policy() -> Policy:
    policy = Policy()
    policy.add_user("u")
    policy.add_role("r")
    policy.add_permission(
        Permission(
            "p",
            op="exec",
            resource="rsw",
            spatial_constraint=parse_constraint("count(0, 1000, [res = rsw])"),
        )
    )
    policy.assign_user("u", "r")
    policy.assign_permission("r", "p")
    return policy


def _founder(name: str) -> CoalitionServer:
    return CoalitionServer(name, resources=[Resource("rsw")])


def _request(i: int) -> AccessKey:
    # Requests only ever target founders, which never leave — churn
    # changes the membership around the traffic, not under it.
    return AccessKey("exec", "rsw", f"f{i % FOUNDERS}")


def run_throughput(
    n: int, workers: int, churn_period: int | None
) -> tuple[float, dict]:
    """One measured run of ``n`` decisions through the coalition-bound
    micro-batched service.  ``churn_period=None`` is the static
    baseline; otherwise one join + one leave land per period, applied
    while the previous chunk's micro-batches are still in flight.
    Returns ``(decisions/sec, run stats)``."""
    coalition = Coalition(
        [_founder(f"f{i}") for i in range(FOUNDERS)],
        latency=constant_latency(0.0),
    )
    engine = ShardedEngine(_policy(), shards=SHARDS)
    sessions = []
    for i in range(SESSIONS):
        session = engine.authenticate("u", 0.0, shard_key=f"agent-{i}")
        engine.activate_role(session, "r", 0.0)
        sessions.append(session)
    clocks = [0.0] * len(sessions)

    def wave(count: int, start: int):
        requests = []
        for i in range(count):
            k = (start + i) % len(sessions)
            clocks[k] += 1.0
            requests.append((sessions[k], _request(start + i), clocks[k]))
        return requests

    joined = 0
    with DecisionService(
        engine,
        workers=workers,
        queue_depth=QUEUE_DEPTH,
        max_batch=BATCH_MAX,
        max_wait_s=BATCH_WAIT_S,
        coalition=coalition,
    ) as service:
        service.submit_many(wave(min(2000, n), 0))
        if not service.drain(timeout=300.0):
            raise AssertionError("warmup failed to drain in time")
        service.reset_stats()
        period = churn_period if churn_period is not None else n
        start = time.perf_counter()
        for offset in range(0, n, period):
            service.submit_many(wave(min(period, n - offset), 4000 + offset))
            if churn_period is not None:
                # Membership moves while this chunk is still in flight:
                # the join bootstraps from a founder, the previous
                # joiner departs gracefully.
                coalition.join(
                    _founder(f"j{joined}"),
                    now=float(offset),
                    bootstrap_from="f0",
                )
                if joined > 0:
                    coalition.leave(f"j{joined - 1}", now=float(offset))
                joined += 1
        if not service.drain(timeout=600.0):
            raise AssertionError("churn service failed to drain in time")
        wall = time.perf_counter() - start
        stats = service.service_stats()
    if stats.errors:
        raise AssertionError(f"service reported {stats.errors} errors")
    expected_epoch = max(0, 2 * joined - 1)
    if coalition.membership_epoch != expected_epoch:
        raise AssertionError(
            f"expected epoch {expected_epoch} after {joined} join/leave "
            f"cycles, got {coalition.membership_epoch}"
        )
    return n / wall, {
        "joins": joined,
        "leaves": max(0, joined - 1),
        "final_epoch": coalition.membership_epoch,
        "membership_events_seen": service.membership_events,
        "service_stats": stats.as_dict(),
    }


def measure_throughput(n: int, churn_period: int, repeats: int) -> dict:
    static_rate, churn_rate = 0.0, 0.0
    churn_info: dict = {}
    for _ in range(repeats):
        static_rate = max(static_rate, run_throughput(n, 4, None)[0])
    for _ in range(repeats):
        rate, info = run_throughput(n, 4, churn_period)
        if rate > churn_rate:
            churn_rate, churn_info = rate, info
    return {
        "n": n,
        "churn_period": churn_period,
        "sessions": SESSIONS,
        "shards": SHARDS,
        "static_rate": static_rate,
        "churn_rate": churn_rate,
        "overhead_ratio": churn_rate / static_rate if static_rate else 0.0,
        **churn_info,
    }


# -- proof-convergence lag -----------------------------------------------------

def measure_convergence(
    n_pre: int, n_post: int, batch_size: int = PROP_BATCH
) -> dict:
    """Bootstrap coverage + post-join proof lag for one joiner.

    Founders mint one proof per virtual second (round-robin sources);
    the batcher coalesces announcements per destination and ships them
    once the migration latency has elapsed.  At ``t_join`` the ledgers
    are settled with an explicit flush, ``j1`` joins with a bootstrap
    handshake from ``s1``, and from then on every minted proof's lag to
    the joiner's ledger is sampled.
    """
    founders = ("s1", "s2", "s3")
    coalition = Coalition(
        [CoalitionServer(name, resources=[Resource("rsw")]) for name in founders],
        latency=constant_latency(PROP_LATENCY),
    )
    batch = ProofBatch(coalition, max_batch=batch_size)
    chains = {name: (0, "genesis") for name in founders}

    def mint(source: str, t: float) -> ExecutionProof:
        seq, prev = chains[source]
        proof = ExecutionProof.issue(
            f"obj-{source}",
            ("exec", "rsw", source),
            t,
            seq,
            prev,
            epoch=coalition.membership_epoch,
        )
        chains[source] = (seq + 1, proof.digest)
        return proof

    t = 0.0
    for i in range(n_pre):
        t += 1.0
        batch.enqueue(founders[i % len(founders)], mint(founders[i % len(founders)], t), now=t)
        batch.flush_due(t)
    batch.flush(now=t)  # settle the founders' ledgers before the join
    t_join = t
    peer_ledger = coalition.server("s1").announced_proof_count()

    coalition.join(
        CoalitionServer("j1", resources=[Resource("rsw")]),
        now=t_join,
        bootstrap_from="s1",
    )
    joiner = coalition.server("j1")
    bootstrap_learned = joiner.announced_proof_count()

    lags: list[float] = []
    in_flight: list[float] = []  # enqueue times of proofs owed to j1, FIFO
    known = bootstrap_learned
    for i in range(n_post):
        t += 1.0
        source = founders[i % len(founders)]
        batch.enqueue(source, mint(source, t), now=t)
        in_flight.append(t)
        batch.flush_due(t)
        now_known = joiner.announced_proof_count()
        for _ in range(now_known - known):
            lags.append(t - in_flight.pop(0))
        known = now_known
    t += PROP_LATENCY + 1.0
    batch.flush(now=t)
    now_known = joiner.announced_proof_count()
    for _ in range(now_known - known):
        lags.append(t - in_flight.pop(0))
    known = now_known

    if in_flight:
        raise AssertionError(
            f"{len(in_flight)} post-join proofs never reached the joiner"
        )
    if bootstrap_learned != peer_ledger:
        raise AssertionError(
            f"bootstrap learned {bootstrap_learned} proofs but the peer "
            f"ledger held {peer_ledger}"
        )
    lags.sort()
    return {
        "n_pre": n_pre,
        "n_post": n_post,
        "batch_size": batch_size,
        "latency": PROP_LATENCY,
        "peer_ledger_at_join": peer_ledger,
        "bootstrap_learned": bootstrap_learned,
        "bootstrap_coverage": (
            bootstrap_learned / peer_ledger if peer_ledger else 0.0
        ),
        "post_join_delivered": len(lags),
        "lag_mean": sum(lags) / len(lags) if lags else 0.0,
        "lag_p95": lags[int(0.95 * (len(lags) - 1))] if lags else 0.0,
        "lag_max": lags[-1] if lags else 0.0,
        "batcher_stats": batch.stats(),
    }


# -- the no-overgrant acceptance gate -----------------------------------------

GATE_HUB = "h1"
GATE_SERVER = "g1"
#: ``exec gated @ g1`` is granted iff the session's observed history
#: holds an *admissible* ``read r1 @ h1`` — the count cap makes the
#: order constraint bite under extension semantics (re-satisfying the
#: order would need a second gated access, which the cap forbids).
GATE_SRC = (
    f"(read r1 @ {GATE_HUB} >> exec gated @ {GATE_SERVER})"
    " & count(0, 1, [res = gated])"
)


def _gate_policy() -> Policy:
    policy = Policy()
    policy.add_user("u")
    policy.add_role("member")
    policy.add_permission(
        Permission(
            "p-gated",
            resource="gated",
            spatial_constraint=parse_constraint(GATE_SRC),
        )
    )
    policy.add_permission(Permission("p-r1", resource="r1"))
    policy.assign_user("u", "member")
    for perm in ("p-gated", "p-r1"):
        policy.assign_permission("member", perm)
    return policy


def verify_no_overgrant(group: int = 8) -> dict:
    """Drive the eviction hazard end-to-end through the coalition-bound
    service and fail the benchmark on any overgrant.

    Group B (non-vacuity): hub read then gated access, both before the
    eviction — every gated access must be *granted*.  Group A: hub read
    observed before the eviction, gated access attempted after — every
    one must be *denied*, because the eviction rescinded the hub read
    that justified it.  Epoch stamps must witness the membership step.
    """
    coalition = Coalition(
        [
            CoalitionServer(
                name, resources=[Resource("r1"), Resource("gated")]
            )
            for name in (GATE_HUB, GATE_SERVER, "w1")
        ]
    )
    engine = ShardedEngine(_gate_policy(), shards=4)
    hub = AccessKey("read", "r1", GATE_HUB)
    gated = AccessKey("exec", "gated", GATE_SERVER)

    def make_sessions(tag: str):
        out = []
        for i in range(group):
            session = engine.authenticate("u", 0.0, shard_key=f"{tag}{i}")
            engine.activate_role(session, "member", 0.0)
            out.append(session)
        return out

    with DecisionService(
        engine, workers=2, max_wait_s=0.0, coalition=coalition
    ) as service:
        group_a, group_b = make_sessions("a"), make_sessions("b")
        t = 0.0

        def decide(session, access, observe=False):
            nonlocal t
            t += 1.0
            return service.submit(
                session, access, t, observe_granted=observe
            ).result(timeout=30.0)

        for session in group_a + group_b:
            decision = decide(session, hub, observe=True)
            assert decision.granted, f"hub read denied: {decision.reason}"

        pre_grants = 0
        for session in group_b:
            decision = decide(session, gated)
            assert decision.granted, (
                f"pre-eviction gated access denied ({decision.reason}): "
                "the gate workload is vacuous"
            )
            assert decision.provenance is None or decision.provenance.epoch == 0
            pre_grants += 1

        eviction_epoch = coalition.evict(GATE_HUB, now=t)

        post_grants = 0
        for session in group_a:
            decision = decide(session, gated)
            if decision.granted:
                post_grants += 1
            assert decision.provenance is None or (
                decision.provenance.epoch == eviction_epoch
            )
        assert post_grants == 0, (
            f"OVERGRANT: {post_grants}/{group} gated accesses were granted "
            "after the hub's eviction rescinded their justification"
        )
    return {
        "group": group,
        "pre_eviction_gated_grants": pre_grants,
        "post_eviction_gated_grants": post_grants,
        "eviction_epoch": eviction_epoch,
    }


# -- report ---------------------------------------------------------------------

def measure(
    n: int, churn_period: int, n_pre: int, n_post: int, repeats: int = 3
) -> dict:
    gate = verify_no_overgrant()
    report: dict = {"no_overgrant_gate": gate}
    report["throughput"] = measure_throughput(n, churn_period, repeats)
    report["convergence"] = measure_convergence(n_pre, n_post)
    return report


def print_report(report: dict) -> None:
    gate = report["no_overgrant_gate"]
    print(
        f"no-overgrant gate: {gate['pre_eviction_gated_grants']} gated "
        f"grants pre-eviction, {gate['post_eviction_gated_grants']} "
        f"post-eviction (epoch {gate['eviction_epoch']}) — PASS"
    )
    tp = report["throughput"]
    print(
        f"\nrolling churn: n={tp['n']}, 1 join + 1 leave per "
        f"{tp['churn_period']} decisions ({tp['joins']} joins, "
        f"{tp['leaves']} leaves, final epoch {tp['final_epoch']})"
    )
    print(f"{'config':<34}{'decisions/s':>13}")
    print(f"{'static membership':<34}{tp['static_rate']:>13.0f}")
    print(
        f"{'rolling churn':<34}{tp['churn_rate']:>13.0f}"
        f"   ({tp['overhead_ratio']:.2f}x of static)"
    )
    conv = report["convergence"]
    print(
        f"\nproof convergence: {conv['n_pre']} pre-join proofs, "
        f"{conv['n_post']} post-join, latency={conv['latency']:g}, "
        f"batch={conv['batch_size']}"
    )
    print(
        f"bootstrap: learned {conv['bootstrap_learned']}/"
        f"{conv['peer_ledger_at_join']} of the peer ledger "
        f"({conv['bootstrap_coverage']:.0%})"
    )
    print(
        f"post-join lag (virtual time): mean={conv['lag_mean']:.2f} "
        f"p95={conv['lag_p95']:.2f} max={conv['lag_max']:.2f} "
        f"(batch heads pay the full latency {conv['latency']:g}; "
        f"coalesced entries ride along)"
    )


def check_acceptance(report: dict, smoke: bool = False) -> None:
    """The gates: zero overgrants (already asserted while driving the
    scenario), full bootstrap coverage of the peer ledger, lag bounded
    by latency + one coalescing window, and churn costing at most a
    bounded slice of static throughput.  The throughput floor is set
    below typical measurements so noisy CI neighbours do not fail the
    build; measured numbers always land in the artifact."""
    gate = report["no_overgrant_gate"]
    assert gate["post_eviction_gated_grants"] == 0
    assert gate["pre_eviction_gated_grants"] == gate["group"]

    conv = report["convergence"]
    assert conv["bootstrap_coverage"] == 1.0, (
        f"bootstrap covered only {conv['bootstrap_coverage']:.0%} of the "
        "peer ledger"
    )
    assert conv["lag_max"] >= conv["latency"], (
        "no proof ever paid the full migration latency — the batcher is "
        "outrunning the network model"
    )
    lag_ceiling = conv["latency"] + conv["batch_size"]
    assert conv["lag_p95"] <= lag_ceiling, (
        f"post-join lag p95 {conv['lag_p95']:.2f} exceeds latency + one "
        f"coalescing window ({lag_ceiling:g})"
    )

    tp = report["throughput"]
    floor = 0.35 if smoke else 0.5
    assert tp["overhead_ratio"] >= floor, (
        f"rolling churn costs {1 - tp['overhead_ratio']:.0%} of static "
        f"throughput (floor: <= {1 - floor:.0%})"
    )
    print("acceptance assertions passed.")


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: tiny workload, assert the acceptance criteria",
    )
    args = parser.parse_args()
    if args.smoke:
        report = measure(
            n=5_000, churn_period=1_000, n_pre=120, n_post=120, repeats=2
        )
    else:
        report = measure(
            n=50_000, churn_period=CHURN_PERIOD, n_pre=400, n_post=400
        )
    print_report(report)
    ARTIFACT.parent.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(report, indent=2))
    print(f"wrote {ARTIFACT}")
    check_acceptance(report, smoke=args.smoke)


if __name__ == "__main__":
    main()
