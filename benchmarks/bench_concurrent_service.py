"""EXP-SERVICE — the sharded concurrent decision service.

A coalition authorization service handles many agents at once, and
each executed access must be *propagated*: the baseline announces
every proof with one synchronous, latency-bound call per access, and
serves all agents through one single-threaded engine.  The sharded
service (``repro.service``) removes both costs:

* **Sharding + lock striping** — sessions are partitioned across
  engine shards by stable hash; concurrent agents on different shards
  decide in parallel (the decision compute itself stays GIL-bound,
  which is expected and reported honestly below).
* **Batched propagation** — proof announcements coalesce, so the
  latency-bound flush is paid once per batch instead of once per
  access, and the worker pool overlaps the flush waits of different
  batches.

The headline workload is the **warm cache-hit path**: every decision
is a candidate-cache hit + one monitor step + a live-set membership
test, with an emulated propagation round trip of ``latency_ms`` per
flush (batch of ``FLUSH_BATCH`` in the service, every single access in
the baseline — exactly the synchronous-call-per-access pattern the
service replaces).  A pure-CPU section (no propagation) is also
reported to show the GIL-bound floor.

Before any number is reported, the same mixed grant/deny workload is
run through a plain single-threaded engine and through the service at
4 workers, and the per-session decision outcomes are asserted
identical (determinism modulo interleaving).

Run:  python benchmarks/bench_concurrent_service.py [--smoke]
Emits benchmarks/artifacts/BENCH_concurrent_service.json.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time

from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.service import DecisionService, ShardedEngine
from repro.srac import reachability
from repro.srac.parser import parse_constraint
from repro.traces.trace import AccessKey

SERVERS = 5
SESSIONS = 64
SHARDS = 16
WORKER_COUNTS = (1, 2, 4, 8)
#: Emulated propagation flushes coalesce this many decisions.
FLUSH_BATCH = 8

CONSTRAINT_SRC = (
    "count(0, 1000000, [res = rsw]) & (exec rsw @ s0 >> exec rsw @ s1)"
)
#: The micro-batching sections use a table-*eligible* variant (the
#: count bound above deliberately exceeds the transition-table state
#: budget, which forces the scalar path — the right stress for the
#: sharding sections, the wrong one for the vector sweep).
TABLE_CONSTRAINT_SRC = (
    "count(0, 1000, [res = rsw]) & (exec rsw @ s0 >> exec rsw @ s1)"
)
#: Micro-batching service knobs (queue deep enough that the submission
#: waves never block on backpressure mid-measurement).
BATCH_QUEUE_DEPTH = 1 << 17
BATCH_MAX = 256
BATCH_WAIT_S = 0.002
SUBMIT_CHUNK = 8192

ARTIFACT = (
    pathlib.Path(__file__).resolve().parent / "artifacts"
    / "BENCH_concurrent_service.json"
)


def _policy(constraint_src: str = CONSTRAINT_SRC) -> Policy:
    policy = Policy()
    policy.add_user("u")
    policy.add_role("r")
    policy.add_permission(
        Permission(
            "p",
            op="exec",
            resource="rsw",
            spatial_constraint=parse_constraint(constraint_src),
        )
    )
    policy.assign_user("u", "r")
    policy.assign_permission("r", "p")
    return policy


def _request(i: int) -> AccessKey:
    return AccessKey("exec", "rsw", f"s{i % SERVERS}")


def _alphabet() -> list[AccessKey]:
    return [_request(i) for i in range(SERVERS)]


def _single_engine(policy: Policy, sessions: int):
    engine = AccessControlEngine(policy)
    out = []
    for _ in range(sessions):
        session = engine.authenticate("u", 0.0)
        engine.activate_role(session, "r", 0.0)
        out.append(session)
    engine.prewarm(_alphabet())
    return engine, out


def _sharded_engine(policy: Policy, sessions: int):
    engine = ShardedEngine(policy, shards=SHARDS)
    out = []
    for i in range(sessions):
        session = engine.authenticate("u", 0.0, shard_key=f"agent-{i}")
        engine.activate_role(session, "r", 0.0)
        out.append(session)
    engine.prewarm(_alphabet())
    return engine, out


class _FlushEmulator:
    """Emulates the propagation round trip: every ``every``-th decision
    pays one ``latency`` sleep (a coalesced batch flush).  Thread-safe;
    the sleep runs outside any shard lock, so flushes of different
    batches overlap across workers — the service's whole point."""

    def __init__(self, latency_s: float, every: int):
        self.latency_s = latency_s
        self.every = every
        self._count = 0
        self._lock = threading.Lock()

    def __call__(self, decision) -> None:
        with self._lock:
            self._count += 1
            fire = self._count % self.every == 0
        if fire and self.latency_s > 0:
            time.sleep(self.latency_s)


def run_baseline(n: int, latency_s: float) -> float:
    """Single-threaded engine, one synchronous propagation call per
    access — the pre-service hot path.  Returns decisions/sec."""
    engine, sessions = _single_engine(_policy(), SESSIONS)
    clocks = [0.0] * len(sessions)
    # Warm every session's monitor cache off the clock.
    for k, session in enumerate(sessions):
        clocks[k] += 1.0
        engine.decide(session, _request(0), clocks[k], history=None)
    start = time.perf_counter()
    for i in range(n):
        k = i % len(sessions)
        clocks[k] += 1.0
        engine.decide(sessions[k], _request(i), clocks[k], history=None)
        if latency_s > 0:
            time.sleep(latency_s)
    return n / (time.perf_counter() - start)


def run_service(
    n: int, workers: int, latency_s: float
) -> tuple[float, dict]:
    """The sharded service at ``workers`` workers with batched
    propagation flushes.  Returns (decisions/sec, service stats)."""
    engine, sessions = _sharded_engine(_policy(), SESSIONS)
    clocks = [0.0] * len(sessions)
    hook = _FlushEmulator(latency_s, FLUSH_BATCH)
    with DecisionService(
        engine, workers=workers, queue_depth=512, post_decision_hook=hook
    ) as service:
        # Warm every session's monitor cache off the clock.
        for k, session in enumerate(sessions):
            clocks[k] += 1.0
            service.submit(session, _request(0), clocks[k], history=None)
        service.drain()
        service.reset_stats()
        start = time.perf_counter()
        for i in range(n):
            k = i % len(sessions)
            clocks[k] += 1.0
            service.submit(sessions[k], _request(i), clocks[k], history=None)
        if not service.drain(timeout=300.0):
            raise AssertionError("service failed to drain in time")
        wall = time.perf_counter() - start
        stats = service.service_stats()
    if stats.errors:
        raise AssertionError(f"service reported {stats.errors} errors")
    return n / wall, stats.as_dict()


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _batched_service(max_batch: int, workers: int):
    engine, sessions = _sharded_engine(_policy(TABLE_CONSTRAINT_SRC), SESSIONS)
    service = DecisionService(
        engine,
        workers=workers,
        queue_depth=BATCH_QUEUE_DEPTH,
        max_batch=max_batch,
        max_wait_s=BATCH_WAIT_S,
        prewarm=_alphabet(),
    )
    return engine, sessions, service


def run_batched(
    n: int, max_batch: int, workers: int, measure_latency: bool = False
) -> tuple[float, dict, dict]:
    """One micro-batching measurement: ``n`` requests submitted in
    ``submit_many`` chunks through the service at ``max_batch``
    (``max_batch=1`` *is* the scalar per-request service — the
    baseline the batched mode is compared against).  Returns
    ``(requests/sec, service stats, latency percentiles)``; the
    latency run is separate from the throughput runs because the
    per-future done-callbacks used to timestamp completions are
    themselves measurable overhead.
    """
    engine, sessions, service = _batched_service(max_batch, workers)
    clocks = [0.0] * len(sessions)

    def wave(count: int, start: int):
        requests = []
        for i in range(count):
            k = (start + i) % len(sessions)
            clocks[k] += 1.0
            requests.append((sessions[k], _request(start + i), clocks[k]))
        return requests

    latencies: list[float] = []
    with service:
        service.submit_many(wave(min(2000, n), 0))
        if not service.drain(timeout=300.0):
            raise AssertionError("warmup failed to drain in time")
        service.reset_stats()
        start = time.perf_counter()
        for offset in range(0, n, SUBMIT_CHUNK):
            chunk = wave(min(SUBMIT_CHUNK, n - offset), 4000 + offset)
            chunk_start = time.perf_counter()
            futures = service.submit_many(chunk)
            if measure_latency:
                for future in futures:
                    future.add_done_callback(
                        lambda f, t0=chunk_start: latencies.append(
                            time.perf_counter() - t0
                        )
                    )
        if not service.drain(timeout=600.0):
            raise AssertionError("batched service failed to drain in time")
        wall = time.perf_counter() - start
        stats = service.service_stats()
    if stats.errors:
        raise AssertionError(f"batched service reported {stats.errors} errors")
    if max_batch > 1 and stats.vector_decisions == 0:
        raise AssertionError("batched mode never used the vector sweep")
    latencies.sort()
    percentiles = {
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "max_ms": (latencies[-1] * 1e3) if latencies else 0.0,
        "samples": len(latencies),
    }
    return n / wall, stats.as_dict(), percentiles


def run_low_load(n: int = 300) -> dict:
    """Sequential request→response round trips through the *batched*
    service: the adaptive controller must collapse the coalescing
    window on a trickle, so p99 stays under the ``max_wait_s`` budget."""
    engine, sessions, service = _batched_service(BATCH_MAX, workers=2)
    latencies: list[float] = []
    with service:
        t = 0.0
        for i in range(n):
            session = sessions[i % len(sessions)]
            t += 1.0
            start = time.perf_counter()
            service.submit(session, _request(i), t).result(timeout=30.0)
            latencies.append(time.perf_counter() - start)
    latencies.sort()
    return {
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "max_ms": latencies[-1] * 1e3,
        "budget_ms": BATCH_WAIT_S * 1e3,
        "samples": n,
    }


def verify_batched_identical(per_session: int = 30) -> None:
    """Before any batched number is timed: the batched service, the
    scalar service and the direct sharded engine must produce
    bit-identical decisions (full provenance) and identical per-shard
    audit order for the same interleaved mixed grant/deny workload."""
    import itertools

    import repro.rbac.engine as rbac_engine
    import repro.rbac.model as rbac_model

    constraint = "count(0, 7, [res = rsw])"

    def fresh():
        # Subject/session counters are process-global; restart them so
        # independently built stacks assign identical ids and whole
        # Decision objects compare equal.
        rbac_model._subject_counter = itertools.count(1)
        rbac_engine._session_counter = itertools.count(1)
        engine, sessions = _sharded_engine(_policy(constraint), 8)
        for k, session in enumerate(sessions):
            if k % 2 == 1:
                for _ in range(8):  # past the bound: spatial denials
                    engine.observe(session, _request(0))
        return engine, sessions

    def requests_for(sessions):
        out = []
        for i in range(per_session):
            for session in sessions:
                out.append((session, _request(i), float(i + 1)))
        return out

    def through_service(max_batch):
        engine, sessions = fresh()
        with DecisionService(
            engine,
            workers=4,
            queue_depth=BATCH_QUEUE_DEPTH,
            max_batch=max_batch,
            max_wait_s=BATCH_WAIT_S,
        ) as service:
            futures = service.submit_many(requests_for(sessions))
            if not service.drain(timeout=300.0):
                raise AssertionError("verification drain timed out")
            stats = service.service_stats()
        decisions = [f.result() for f in futures]
        audit = [list(shard.engine.audit) for shard in engine._shards]
        return decisions, audit, stats

    scalar_decisions, scalar_audit, _ = through_service(max_batch=1)
    batched_decisions, batched_audit, batched_stats = through_service(
        max_batch=BATCH_MAX
    )
    engine, sessions = fresh()
    direct_decisions = [
        engine.decide(session, access, t, history=None)
        for session, access, t in requests_for(sessions)
    ]
    direct_audit = [list(shard.engine.audit) for shard in engine._shards]

    if not (batched_decisions == scalar_decisions == direct_decisions):
        raise AssertionError(
            "batched decisions diverge from the scalar service / direct engine"
        )
    if not (batched_audit == scalar_audit == direct_audit):
        raise AssertionError("per-shard audit order diverges under batching")
    if batched_stats.vector_decisions == 0:
        raise AssertionError("verification workload never hit the vector path")
    if not any(not d.granted for d in batched_decisions):
        raise AssertionError("verification workload produced no denials")
    if not any(d.granted for d in batched_decisions):
        raise AssertionError("verification workload produced no grants")


def measure_batched(n: int, repeats: int = 3) -> dict:
    """The micro-batching section: scalar-per-request service vs the
    adaptive micro-batched service on the table-eligible workload.
    Correctness is verified (bit-identical decisions/audit) before
    anything is timed; rates are best-of-``repeats``."""
    verify_batched_identical()

    scalar_rate, scalar_stats = 0.0, {}
    for _ in range(repeats):
        rate, stats, _ = run_batched(max(n // 4, 2000), 1, workers=4)
        if rate > scalar_rate:
            scalar_rate, scalar_stats = rate, stats

    batched_rate, batched_stats = 0.0, {}
    for workers in (1, 4):
        for _ in range(repeats):
            rate, stats, _ = run_batched(n, BATCH_MAX, workers)
            if rate > batched_rate:
                batched_rate, batched_stats = rate, stats

    _, _, latency = run_batched(
        n, BATCH_MAX, workers=1, measure_latency=True
    )
    low_load = run_low_load()

    speedup = batched_rate / scalar_rate if scalar_rate else 0.0
    return {
        "constraint": TABLE_CONSTRAINT_SRC,
        "n": n,
        "max_batch": BATCH_MAX,
        "max_wait_ms": BATCH_WAIT_S * 1e3,
        "scalar_rate": scalar_rate,
        "batched_rate": batched_rate,
        "speedup": speedup,
        "target_5x_50k_met": bool(speedup >= 5.0 and batched_rate >= 50_000.0),
        "scalar_stats": scalar_stats,
        "batched_stats": batched_stats,
        "batch_size": {
            "mean": batched_stats.get("mean_batch_size", 0.0),
            "max": batched_stats.get("max_batch_size", 0),
            "batches": batched_stats.get("batches", 0),
        },
        "latency_under_load": latency,
        "low_load_latency": low_load,
    }


def verify_identical_outcomes(per_session: int = 40) -> None:
    """A mixed grant/deny workload must produce identical per-session
    outcome sequences through the single-threaded engine and through
    the service at 4 workers (determinism modulo interleaving)."""
    # Tight budget so later requests are denied: outcomes depend on the
    # session's own observed history (observe_granted=True).
    constraint = "count(0, 7, [res = rsw])"
    single_engine, single_sessions = _single_engine(_policy(constraint), 8)
    sharded, sharded_sessions = _sharded_engine(_policy(constraint), 8)

    expected: dict[int, list[bool]] = {k: [] for k in range(len(single_sessions))}
    for k, session in enumerate(single_sessions):
        for i in range(per_session):
            decision = single_engine.decide(
                session, _request(i), float(i + 1), history=None
            )
            if decision.granted:
                single_engine.observe(session, _request(i))
            expected[k].append(decision.granted)

    futures: dict[int, list] = {k: [] for k in range(len(sharded_sessions))}
    with DecisionService(sharded, workers=4, queue_depth=512) as service:
        for i in range(per_session):
            for k, session in enumerate(sharded_sessions):
                futures[k].append(
                    service.submit(
                        session,
                        _request(i),
                        float(i + 1),
                        history=None,
                        observe_granted=True,
                    )
                )
        service.drain()
    actual = {
        k: [f.result().granted for f in row] for k, row in futures.items()
    }
    if actual != expected:
        raise AssertionError(
            "sharded service outcomes diverge from the single-threaded engine"
        )
    if not any(False in row for row in expected.values()):
        raise AssertionError("verification workload produced no denials")


def measure(
    n: int, baseline_n: int, latency_ms: float, batched_n: int, repeats: int = 3
) -> dict:
    verify_identical_outcomes()
    reachability.clear_caches()
    latency_s = latency_ms * 1e-3

    report: dict = {
        "n": n,
        "baseline_n": baseline_n,
        "latency_ms": latency_ms,
        "flush_batch": FLUSH_BATCH,
        "sessions": SESSIONS,
        "shards": SHARDS,
        "servers": SERVERS,
    }

    report["baseline_rate"] = max(
        run_baseline(baseline_n, latency_s) for _ in range(2)
    )

    service_rates: dict[int, float] = {}
    service_stats: dict[int, dict] = {}
    for workers in WORKER_COUNTS:
        best_rate, best_stats = 0.0, {}
        for _ in range(2):
            rate, stats = run_service(n, workers, latency_s)
            if rate > best_rate:
                best_rate, best_stats = rate, stats
        service_rates[workers] = best_rate
        service_stats[workers] = best_stats
    report["service_rates"] = {str(w): r for w, r in service_rates.items()}
    report["service_stats"] = {str(w): s for w, s in service_stats.items()}
    report["scaling_efficiency"] = {
        str(w): service_rates[w] / (service_rates[1] * w) for w in WORKER_COUNTS
    }
    report["speedup_vs_baseline_1_worker"] = (
        service_rates[1] / report["baseline_rate"]
    )
    report["speedup_4_workers_vs_1"] = service_rates[4] / service_rates[1]

    # Pure-CPU floor: no propagation latency at all.  The decision
    # compute is GIL-bound, so this is reported, not asserted on.
    report["cpu_only"] = {
        "baseline_rate": run_baseline(baseline_n, 0.0),
        "service_rates": {
            str(w): run_service(n, w, 0.0)[0] for w in (1, 4)
        },
    }

    report["batched"] = measure_batched(batched_n, repeats=repeats)
    return report


def print_report(report: dict) -> None:
    print(
        f"concurrent-service workload: n={report['n']}, "
        f"sessions={report['sessions']}, shards={report['shards']}, "
        f"propagation latency={report['latency_ms']}ms per flush, "
        f"flush batch={report['flush_batch']}"
    )
    print(f"{'config':<34}{'decisions/s':>13}{'efficiency':>12}")
    print(
        f"{'baseline (1 thread, sync flush)':<34}"
        f"{report['baseline_rate']:>13.0f}{'—':>12}"
    )
    for w in WORKER_COUNTS:
        rate = report["service_rates"][str(w)]
        eff = report["scaling_efficiency"][str(w)]
        print(f"{f'service, {w} worker(s)':<34}{rate:>13.0f}{eff:>11.0%}")
    print(
        f"service@1 vs baseline: "
        f"{report['speedup_vs_baseline_1_worker']:.2f}x; "
        f"service@4 vs service@1: {report['speedup_4_workers_vs_1']:.2f}x"
    )
    cpu = report["cpu_only"]
    print(
        f"pure-CPU floor (GIL-bound): baseline {cpu['baseline_rate']:.0f}/s, "
        f"service@1 {cpu['service_rates']['1']:.0f}/s, "
        f"service@4 {cpu['service_rates']['4']:.0f}/s"
    )

    batched = report["batched"]
    print()
    print(
        f"micro-batching (table-eligible constraint, n={batched['n']}, "
        f"max_batch={batched['max_batch']}, "
        f"max_wait={batched['max_wait_ms']:g}ms):"
    )
    print(
        f"{'scalar service (max_batch=1)':<34}"
        f"{batched['scalar_rate']:>13.0f}{'—':>12}"
    )
    print(
        f"{'batched service':<34}"
        f"{batched['batched_rate']:>13.0f}"
        f"{batched['speedup']:>11.2f}x"
    )
    size = batched["batch_size"]
    print(
        f"batch size: mean={size['mean']:.1f} max={size['max']} "
        f"over {size['batches']} batches; "
        f"vector decisions={batched['batched_stats']['vector_decisions']} "
        f"fallbacks={batched['batched_stats']['vector_fallbacks']}"
    )
    lat = batched["latency_under_load"]
    low = batched["low_load_latency"]
    print(
        f"latency under load: p50={lat['p50_ms']:.2f}ms "
        f"p99={lat['p99_ms']:.2f}ms; "
        f"low load: p50={low['p50_ms']:.3f}ms p99={low['p99_ms']:.3f}ms "
        f"(budget {low['budget_ms']:g}ms)"
    )


def check_acceptance(report: dict, smoke: bool = False) -> None:
    """The acceptance gates: ≥2x at 4 workers, not slower than the
    unsharded baseline at 1 worker, identical outcomes (already
    asserted inside measure() / measure_batched()), and the
    micro-batching floors.  The batched floors are deliberately below
    the typical measurement (≈5x / ≈90k req/s on an idle machine) so a
    noisy CI neighbour does not fail the build; the measured numbers
    are always recorded in the artifact."""
    assert report["speedup_4_workers_vs_1"] >= 2.0, (
        f"expected >= 2x throughput at 4 workers, got "
        f"{report['speedup_4_workers_vs_1']:.2f}x"
    )
    assert report["speedup_vs_baseline_1_worker"] >= 1.0, (
        f"sharded service at 1 worker is slower than the unsharded "
        f"baseline ({report['speedup_vs_baseline_1_worker']:.2f}x)"
    )

    batched = report["batched"]
    rate_floor = 15_000.0 if smoke else 50_000.0
    speedup_floor = 1.5 if smoke else 3.0
    assert batched["batched_rate"] >= rate_floor, (
        f"batched service throughput {batched['batched_rate']:.0f} req/s "
        f"below the {rate_floor:.0f} req/s floor"
    )
    assert batched["speedup"] >= speedup_floor, (
        f"batched/scalar speedup {batched['speedup']:.2f}x below the "
        f"{speedup_floor:g}x floor"
    )
    low = batched["low_load_latency"]
    assert low["p99_ms"] <= low["budget_ms"], (
        f"low-load p99 {low['p99_ms']:.3f}ms exceeds the max_wait_s "
        f"budget ({low['budget_ms']:g}ms): the adaptive controller is "
        f"not collapsing the coalescing window on a trickle"
    )
    print("acceptance assertions passed.")


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: tiny workload, assert the acceptance criteria",
    )
    args = parser.parse_args()
    if args.smoke:
        report = measure(
            n=400, baseline_n=100, latency_ms=2.0, batched_n=8000, repeats=2
        )
    else:
        report = measure(
            n=4000, baseline_n=500, latency_ms=2.0, batched_n=56_000
        )
    print_report(report)
    ARTIFACT.parent.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(report, indent=2))
    print(f"wrote {ARTIFACT}")
    check_acceptance(report, smoke=args.smoke)


if __name__ == "__main__":
    main()
