"""EXP-T32 — Theorem 3.2: ``P |= C`` checking scales as O(m × n).

Two sweeps over the paper's polynomial fragment: program size *m* with
a fixed constraint, and constraint size *n* with a fixed program.  The
asserted configuration counts bound the product exploration; the fitted
exponents are reported by ``benchmarks/run_experiments.py``.

Run:  pytest benchmarks/bench_checker_scaling.py --benchmark-only
"""

import numpy as np
import pytest

from repro.sral.ast import program_size
from repro.srac.ast import constraint_size
from repro.srac.checker import check_program_stats
from repro.workloads.constraints import random_constraint
from repro.workloads.programs import access_alphabet, random_program

ALPHABET = access_alphabet(2, 3, 2)


def _program(leaves, seed=11, p_par=0.0):
    # Sequential fragment by default: the paper's O(m*n) claim concerns
    # sequential/branching/looping programs; `||` makes the trace
    # automaton product-sized by construction (see bench_par_blowup).
    return random_program(
        np.random.default_rng(seed), leaves, ALPHABET, p_par=p_par
    )


def _constraint(leaves, seed=13):
    return random_constraint(
        np.random.default_rng(seed), leaves, ALPHABET, positive_only=True
    )


@pytest.mark.parametrize("m_leaves", [10, 30, 100, 300, 1000, 3000])
def bench_check_scaling_in_m(benchmark, m_leaves):
    """Fixed constraint (n≈13 nodes), growing program size m."""
    program = _program(m_leaves)
    constraint = _constraint(4)
    result = benchmark(check_program_stats, program, constraint)
    assert result.configurations >= 1
    benchmark.extra_info["m"] = program_size(program)
    benchmark.extra_info["n"] = constraint_size(constraint)
    benchmark.extra_info["configurations"] = result.configurations


@pytest.mark.parametrize("n_leaves", [2, 4, 8, 16, 32])
def bench_check_scaling_in_n(benchmark, n_leaves):
    """Fixed program (m≈300 nodes), growing constraint size n."""
    program = _program(100)
    constraint = _constraint(n_leaves)
    result = benchmark(check_program_stats, program, constraint)
    benchmark.extra_info["m"] = program_size(program)
    benchmark.extra_info["n"] = constraint_size(constraint)
    benchmark.extra_info["configurations"] = result.configurations


def bench_check_exists_mode(benchmark):
    """Existential mode often exits early — the grant-time fast path."""
    program = _program(300)
    constraint = _constraint(6)
    benchmark(
        check_program_stats, program, constraint, (), "exists"
    )


def bench_trace_check_definition36(benchmark):
    """Runtime trace checking (Definition 3.6) on a 1000-access history."""
    from repro.srac.trace_check import trace_satisfies
    from repro.workloads.programs import random_access

    rng = np.random.default_rng(3)
    trace = tuple(random_access(rng, ALPHABET) for _ in range(1000))
    constraint = _constraint(8)
    benchmark(trace_satisfies, trace, constraint)


@pytest.mark.parametrize("pars", [0, 2, 4, 6])
def bench_par_blowup(benchmark, pars):
    """The cost of `||`: interleaving k branches multiplies the
    program automaton (outside the O(m*n) fragment; documented in
    DESIGN.md)."""
    from repro.sral.ast import par, seq
    from repro.sral.ast import Access as A

    branch = lambda i: seq(
        A("op0", f"r{i}", "s0"), A("op1", f"r{i}", "s1"), A("op0", f"r{i}", "s0")
    )
    program = par(*(branch(i) for i in range(pars + 1)))
    constraint = _constraint(3)
    result = benchmark(check_program_stats, program, constraint)
    benchmark.extra_info["configurations"] = result.configurations
