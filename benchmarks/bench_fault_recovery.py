"""BENCH-FAULT-RECOVERY — proof-propagation convergence under link loss.

The coordination protocol only needs *eventual* proof delivery: a lossy
link slows the announced-ledger convergence down but must never change
what is decided (without a degradation gate) and must never lose a
proof.  This benchmark quantifies that: the same seeded multi-agent
workload runs at link drop rates {0, 0.1, 0.3}, and for each run we
measure the **convergence lag** — how much virtual time past the
workload's end the retry schedule needs before every coalition server
knows every foreign proof (driven by
:meth:`~repro.agent.scheduler.Simulation.drain_propagation`).

Acceptance (checked in ``check_acceptance``):

* every run converges — after the drain (plus an explicit heal+flush
  for any parked batch) no ledger gap remains;
* per-agent decision outcomes are identical at every drop rate
  (faults cost time, never correctness);
* the faultless runs have zero convergence lag, and the mean lag is
  monotone non-decreasing in the drop rate.

Run:  python benchmarks/bench_fault_recovery.py [--smoke]
Emits benchmarks/artifacts/BENCH_fault_recovery.json.
"""

from __future__ import annotations

import json
import pathlib
import random

from repro.agent.naplet import Naplet
from repro.agent.scheduler import Simulation
from repro.agent.security import NapletSecurityManager
from repro.coalition.network import Coalition, constant_latency
from repro.coalition.resource import Resource
from repro.coalition.server import CoalitionServer
from repro.faults import FaultPlan, FaultyLink, RetryPolicy
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.sral.parser import parse_program
from repro.srac.parser import parse_constraint

SERVERS = ("s1", "s2", "s3")
OPS = ("read", "write", "exec")
RESOURCES = ("r1", "rsw")
DROP_RATES = (0.0, 0.1, 0.3)
RETRY = RetryPolicy(base_delay=0.25, multiplier=2.0, max_delay=4.0, max_attempts=12)

ARTIFACT = (
    pathlib.Path(__file__).resolve().parent / "artifacts"
    / "BENCH_fault_recovery.json"
)


def _policy(owners) -> Policy:
    policy = Policy()
    policy.add_role("member")
    policy.add_permission(
        Permission(
            "p-rsw",
            resource="rsw",
            spatial_constraint=parse_constraint("count(0, 3, [res = rsw])"),
        )
    )
    policy.add_permission(Permission("p-any-r1", resource="r1"))
    for owner in owners:
        policy.add_user(owner)
        policy.assign_user(owner, "member")
    policy.assign_permission("member", "p-rsw")
    policy.assign_permission("member", "p-any-r1")
    return policy


def _workload(seed: int, n_agents: int, n_accesses: int):
    rng = random.Random(seed)
    out = []
    for index in range(n_agents):
        steps = [
            f"{rng.choice(OPS)} {rng.choice(RESOURCES)} @ {rng.choice(SERVERS)}"
            for _ in range(n_accesses)
        ]
        out.append((f"u{index}", " ; ".join(steps), rng.choice(SERVERS)))
    return out


def _run(workload, drop: float, seed: int):
    """One simulated run; returns (report, naplets, convergence_lag,
    parked_after_drain, batch_stats)."""
    coalition = Coalition(
        [
            CoalitionServer(name, resources=[Resource(r) for r in RESOURCES])
            for name in SERVERS
        ],
        latency=constant_latency(2.0),
    )
    engine = AccessControlEngine(_policy([w[0] for w in workload]))
    faults = FaultPlan(link=FaultyLink(drop=drop, seed=seed), retry=RETRY)
    sim = Simulation(
        coalition,
        security=NapletSecurityManager(engine),
        on_denied="skip",
        proof_propagation="batched",
        proof_batch_size=4,
        faults=faults,
    )
    naplets = []
    for owner, text, start in workload:
        naplet = Naplet(owner, parse_program(text), roles=("member",))
        naplets.append(naplet)
        sim.add_naplet(naplet, start)
    report = sim.run()
    drained_at = sim.drain_propagation()
    parked = len(sim.proof_batch.parked_destinations())
    if sim.proof_batch.pending_count():
        # Retry-exhausted batches: heal and drain explicitly (the
        # operator's recovery path); convergence then happens at the
        # drain time.
        faults.heal(drained_at)
        sim.proof_batch.flush(now=drained_at)
    assert sim.proof_batch.pending_count() == 0
    _assert_ledgers_complete(sim, naplets)
    lag = max(0.0, drained_at - report.end_time)
    return report, naplets, lag, parked, sim.proof_batch.stats()


def _assert_ledgers_complete(sim, naplets) -> None:
    for naplet in naplets:
        for proof in naplet.registry.proofs():
            for name in SERVERS:
                if name != proof.access.server:
                    assert sim.coalition.server(name).knows_proof(proof), (
                        f"ledger gap at {name} for proof #{proof.seq}"
                    )


def _outcomes(naplets):
    return {n.owner: tuple(n.history()) for n in naplets}


def measure(n_seeds: int = 20, n_agents: int = 3, n_accesses: int = 8) -> dict:
    rows = []
    baseline_outcomes: dict[int, dict] = {}
    for drop in DROP_RATES:
        lags, end_times, parked_runs = [], [], 0
        failed = retried = 0
        outcomes_equal = True
        for seed in range(n_seeds):
            workload = _workload(seed, n_agents, n_accesses)
            report, naplets, lag, parked, stats = _run(workload, drop, seed)
            lags.append(lag)
            end_times.append(report.end_time)
            parked_runs += bool(parked)
            failed += stats["failed_deliveries"]
            retried += stats["retries_scheduled"]
            if drop == 0.0:
                baseline_outcomes[seed] = _outcomes(naplets)
            else:
                outcomes_equal &= _outcomes(naplets) == baseline_outcomes[seed]
        rows.append(
            {
                "drop": drop,
                "seeds": n_seeds,
                "mean_convergence_lag": sum(lags) / len(lags),
                "max_convergence_lag": max(lags),
                "mean_end_time": sum(end_times) / len(end_times),
                "failed_deliveries": failed,
                "retries_scheduled": retried,
                "runs_with_parked_batches": parked_runs,
                "outcomes_equal_faultless": outcomes_equal,
            }
        )
    return {
        "workload": {
            "agents": n_agents,
            "accesses_per_agent": n_accesses,
            "servers": len(SERVERS),
            "migration_latency": 2.0,
            "proof_batch_size": 4,
        },
        "retry_policy": {
            "base_delay": RETRY.base_delay,
            "multiplier": RETRY.multiplier,
            "max_delay": RETRY.max_delay,
            "max_attempts": RETRY.max_attempts,
        },
        "rates": rows,
    }


def print_report(report: dict) -> None:
    print(f"{'drop':>6}{'mean lag':>10}{'max lag':>9}{'failed':>8}"
          f"{'retries':>9}{'parked runs':>13}")
    for row in report["rates"]:
        print(
            f"{row['drop']:>6.1f}{row['mean_convergence_lag']:>10.2f}"
            f"{row['max_convergence_lag']:>9.2f}{row['failed_deliveries']:>8}"
            f"{row['retries_scheduled']:>9}{row['runs_with_parked_batches']:>13}"
        )


def check_acceptance(report: dict) -> None:
    rows = {row["drop"]: row for row in report["rates"]}
    assert rows[0.0]["mean_convergence_lag"] == 0.0, (
        "faultless propagation must converge with the workload"
    )
    assert rows[0.0]["failed_deliveries"] == 0
    lags = [rows[d]["mean_convergence_lag"] for d in DROP_RATES]
    assert lags == sorted(lags), (
        f"convergence lag must grow with the drop rate, got {lags}"
    )
    for row in report["rates"]:
        assert row["outcomes_equal_faultless"], (
            f"drop={row['drop']}: link loss changed decision outcomes"
        )
    print("acceptance assertions passed.")


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: fewer seeds, same acceptance criteria",
    )
    args = parser.parse_args()
    report = measure(n_seeds=5 if args.smoke else 20)
    print_report(report)
    ARTIFACT.parent.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(report, indent=2))
    print(f"wrote {ARTIFACT}")
    check_acceptance(report)


if __name__ == "__main__":
    main()
