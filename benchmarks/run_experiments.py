"""Regenerate every experiment of the reproduction in one run.

The paper's evaluation is qualitative (one figure, no numeric tables),
so this runner produces (a) the Figure 1 scenario end-to-end and (b) an
empirical validation of each formal claim, printing the tables recorded
in EXPERIMENTS.md.

Every experiment runs with the observability layer (``repro.obs``)
switched on and leaves a per-experiment metrics sidecar
(``artifacts/METRICS_<name>.json``: the registry snapshot plus the
span summary) next to the existing result artifacts.

Run:  python benchmarks/run_experiments.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

# Allow running as `python benchmarks/run_experiments.py` from anywhere:
# sibling bench modules are imported directly.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.apps.integrity import (
    auditor_program,
    figure1_graph,
    run_audit,
    verification_constraint,
)
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.sral.ast import program_size
from repro.srac.ast import constraint_size
from repro.srac.checker import check_program, check_program_stats
from repro.srac.parser import parse_constraint
from repro.temporal.timeline import BooleanTimeline
from repro.traces.regular import regex_size, verify_regular_completeness
from repro.traces.trace import AccessKey
from repro.workloads.constraints import random_constraint
from repro.workloads.digraphs import random_module_graph
from repro.workloads.programs import access_alphabet, random_program, random_regex

from repro import obs

ALPHABET = access_alphabet(2, 3, 2)

ARTIFACTS = pathlib.Path(__file__).resolve().parent / "artifacts"


def run_with_metrics(name: str, fn) -> None:
    """Run one experiment with observability on and write its metrics
    sidecar (``METRICS_<name>.json``) when it finishes — even on
    failure, so a crashed experiment still leaves its counters."""
    obs.reset()
    obs.enable()
    try:
        fn()
    finally:
        obs.disable()
        ARTIFACTS.mkdir(exist_ok=True)
        sidecar = ARTIFACTS / f"METRICS_{name}.json"
        sidecar.write_text(json.dumps(obs.export(), indent=2, sort_keys=True))
        print(f"[obs] wrote {sidecar}")


def timed(fn, *args, repeats=3, **kwargs):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best


def header(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def exp_f1() -> None:
    header("EXP-F1  Figure 1 / Section 6: integrity verification audit")
    graph = figure1_graph()
    clean = run_audit(graph)
    tampered = run_audit(graph, tamper={"m7"})
    rushed = run_audit(graph, deadline=6.0)
    print(f"{'run':<22}{'verified':>9}{'hash-bad':>9}{'denied':>7}"
          f"{'migr':>6}{'T_virtual':>10}")
    for label, report in (
        ("clean", clean),
        ("tamper m7", tampered),
        ("deadline=6", rushed),
    ):
        verified = sum(report.verified.values())
        bad = sum(not ok for ok in report.hash_ok.values())
        print(
            f"{label:<22}{verified:>6}/12{bad:>9}{report.denied_accesses:>7}"
            f"{report.migrations:>6}{report.duration:>10.1f}"
        )
    print("order constraint holds on clean run:", clean.order_constraint_ok)
    print("static P |= C for the auditor program:",
          check_program(auditor_program(graph), verification_constraint(graph)))

    print("\nscaling sweep (random DAGs, 4 servers):")
    print(f"{'modules':>8}{'verified':>10}{'T_virtual':>11}{'wall_ms':>9}")
    for n in (25, 50, 100, 200):
        graph_n = random_module_graph(n, 4, edge_probability=0.1, seed=n)
        report, wall = timed(run_audit, graph_n, repeats=1)
        print(
            f"{n:>8}{sum(report.verified.values()):>7}/{n:<3}"
            f"{report.duration:>10.1f}{wall * 1e3:>9.1f}"
        )

    # Regenerate the figure itself (DOT + terminal rendering).
    from repro.viz import dependency_graph_to_ascii, dependency_graph_to_dot

    artifacts = pathlib.Path(__file__).resolve().parent / "artifacts"
    artifacts.mkdir(exist_ok=True)
    dot_path = artifacts / "figure1.dot"
    dot_path.write_text(dependency_graph_to_dot(graph) + "\n")
    print(f"\nFigure 1 regenerated: {dot_path}")
    print(dependency_graph_to_ascii(graph))


def exp_t31() -> None:
    header("EXP-T31  Theorem 3.1: regular completeness, machine-checked")
    print(f"{'regex size':>11}{'holds':>7}{'wall_ms':>9}")
    for leaves in (5, 10, 20, 40, 80):
        regex = random_regex(np.random.default_rng(leaves), leaves, ALPHABET)
        holds, wall = timed(verify_regular_completeness, regex)
        print(f"{regex_size(regex):>11}{str(holds):>7}{wall * 1e3:>9.2f}")
        assert holds


def exp_t32() -> None:
    header("EXP-T32  Theorem 3.2: P |= C checking, O(m*n) scaling")
    constraint = random_constraint(np.random.default_rng(13), 4, ALPHABET)
    n_fixed = constraint_size(constraint)
    print(f"sweep in m (sequential fragment; constraint fixed, n={n_fixed}):")
    print(f"{'m':>7}{'configs':>9}{'wall_ms':>9}{'configs/m':>10}")
    rows_m = []
    for leaves in (10, 30, 100, 300, 1000, 3000):
        program = random_program(np.random.default_rng(11), leaves, ALPHABET, p_par=0.0)
        m = program_size(program)
        result, wall = timed(check_program_stats, program, constraint)
        rows_m.append((m, result.configurations, wall))
        print(f"{m:>7}{result.configurations:>9}{wall * 1e3:>9.2f}"
              f"{result.configurations / m:>10.2f}")
    slope_m = np.polyfit(
        np.log([r[0] for r in rows_m]), np.log([r[1] for r in rows_m]), 1
    )[0]
    print(f"fitted exponent of configurations vs m: {slope_m:.2f} (1.0 = linear)")

    program = random_program(np.random.default_rng(11), 100, ALPHABET, p_par=0.0)
    m_fixed = program_size(program)
    print(f"\nsweep in n (program fixed, m={m_fixed}):")
    print(f"{'n':>7}{'configs':>9}{'wall_ms':>9}")
    rows_n = []
    for leaves in (2, 4, 8, 16, 32):
        constraint_n = random_constraint(np.random.default_rng(13), leaves, ALPHABET)
        n = constraint_size(constraint_n)
        result, wall = timed(check_program_stats, program, constraint_n)
        rows_n.append((n, result.configurations, wall))
        print(f"{n:>7}{result.configurations:>9}{wall * 1e3:>9.2f}")
    slope_n = np.polyfit(
        np.log([r[0] for r in rows_n]), np.log([r[2] for r in rows_n]), 1
    )[0]
    print(f"fitted exponent of wall time vs n: {slope_n:.2f}")


def exp_t41() -> None:
    header("EXP-T41  Theorem 4.1: permission validity checking")
    rng = np.random.default_rng(0)
    print(f"{'intervals k':>12}{'integral':>10}{'wall_us':>9}{'ref_match':>10}")
    for k in (10, 100, 1000, 10000):
        points = np.sort(rng.uniform(0, 1000, size=2 * k))
        timeline = BooleanTimeline.from_intervals(
            [(points[2 * i], points[2 * i + 1]) for i in range(k)]
        )
        value, wall = timed(timeline.integrate, 0.0, 1000.0, repeats=5)
        # Riemann reference on the coarse case only (expensive).
        if k <= 100:
            ts = np.linspace(0, 1000, 200001)[:-1] + 0.0025
            ref = float(np.mean([timeline.value_at(t) for t in ts[::20]]) * 1000)
            match = abs(value - ref) < 2.0
        else:
            match = "-"
        print(f"{k:>12}{value:>10.2f}{wall * 1e6:>9.1f}{str(match):>10}")


def exp_e35() -> None:
    header("EXP-E35  Example 3.5: #(0,5,RSW) coordinated across servers")
    policy = Policy()
    policy.add_user("u")
    policy.add_role("trial")
    policy.add_permission(
        Permission("p", op="exec", resource="rsw",
                   spatial_constraint=parse_constraint("count(0, 5, [res = rsw])"))
    )
    policy.assign_user("u", "trial")
    policy.assign_permission("trial", "p")
    engine = AccessControlEngine(policy)
    session = engine.authenticate("u", 0.0)
    engine.activate_role(session, "trial", 0.0)
    history: tuple[AccessKey, ...] = ()
    print(f"{'request #':>10}{'server':>8}{'granted':>9}")
    for i in range(7):
        server = "s1" if i < 5 else "s2"  # last two requests at the OTHER server
        decision = engine.decide(session, ("exec", "rsw", server), float(i), history)
        print(f"{i + 1:>10}{server:>8}{str(decision.granted):>9}")
        if decision.granted:
            history += (AccessKey("exec", "rsw", server),)
    print("grants:", len(history), "(expected 5; denials land at s2)")


def exp_deadline() -> None:
    header("EXP-DEADLINE  validity-duration deadline, Scheme A vs B")
    from bench_deadline import _run
    from repro.temporal.validity import Scheme

    print(f"{'duration D':>11}{'Scheme B grants':>17}{'Scheme A grants':>17}  (12 edits attempted)")
    for duration in (1.0, 3.0, 6.0, 9.0):
        b = _run(Scheme.WHOLE_EXECUTION, 12, duration)
        a = _run(Scheme.PER_SERVER, 12, duration)
        print(f"{duration:>11.1f}{len(b.history()):>17}{len(a.history()):>17}")
    print("Scheme B (whole execution): grants == floor(D) — a true deadline.")
    print("Scheme A (per-server): budget resets each migration — a per-site quota.")


def exp_rbac() -> None:
    header("EXP-RBAC  decision-throughput ablation")
    from bench_rbac_engine import (
        HISTORY,
        _decide_many,
        _decide_many_incremental,
        _engine,
    )

    print(f"{'config':<22}{'decisions/s':>13}")
    baseline = None
    for label, spatial, temporal in (
        ("plain", False, False),
        ("spatial", True, False),
        ("temporal", False, True),
        ("full", True, True),
    ):
        engine, session = _engine(spatial, temporal)
        _, wall = timed(_decide_many, engine, session, 100)
        rate = 100 / wall
        if baseline is None:
            baseline = rate
        print(f"{label:<22}{rate:>13.0f}   ({baseline / rate:.2f}x plain cost)")
    engine, session = _engine(spatial=True, temporal=False)
    session.observed = HISTORY
    _, wall = timed(_decide_many_incremental, engine, session, 100)
    rate = 100 / wall
    print(f"{'spatial (incremental)':<22}{rate:>13.0f}   ({baseline / rate:.2f}x plain cost)")


def exp_cache() -> None:
    header("EXP-CACHE  compiled-constraint cache + coreachability layer")
    from bench_decision_cache import HISTORY_LEN, SERVERS, measure

    report = measure(n=1000)
    print(f"repeated-decision workload: n={report['n']}, "
          f"history={HISTORY_LEN}, servers={SERVERS}")
    print(f"{'config':<26}{'decisions/s':>13}")
    print(f"{'baseline (pre-cache)':<26}{report['baseline_rate']:>13.0f}")
    print(f"{'warm (cached)':<26}{report['warm_rate']:>13.0f}")
    print(f"cold first decision: {report['cold_first_ms']:.2f} ms "
          f"(compile + live-set build)")
    print(f"warm speedup over baseline: {report['speedup']:.1f}x")
    print(f"live-set hit rate: {report['live_hit_rate']:.1%} "
          f"({report['fallbacks']} BFS fallbacks)")


def exp_vec() -> None:
    header("EXP-VEC  vectorized compiled decision core")
    from bench_vector_engine import (
        ARTIFACT,
        check_acceptance,
        measure,
        print_report,
    )

    report = measure(n=20_000)
    print_report(report)
    ARTIFACT.parent.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {ARTIFACT}")
    check_acceptance(report)


def exp_service() -> None:
    header("EXP-SERVICE  sharded concurrent decision service")
    from bench_concurrent_service import (
        ARTIFACT,
        check_acceptance,
        measure,
        print_report,
    )

    report = measure(n=1000, baseline_n=200, latency_ms=2.0)
    print_report(report)
    ARTIFACT.parent.mkdir(exist_ok=True)
    import json as _json

    ARTIFACT.write_text(_json.dumps(report, indent=2))
    print(f"wrote {ARTIFACT}")
    check_acceptance(report)


def exp_faults() -> None:
    header("EXP-FAULTS  propagation convergence under link loss")
    from bench_fault_recovery import (
        ARTIFACT,
        check_acceptance,
        measure,
        print_report,
    )

    report = measure(n_seeds=10)
    print_report(report)
    ARTIFACT.parent.mkdir(exist_ok=True)
    import json as _json

    ARTIFACT.write_text(_json.dumps(report, indent=2))
    print(f"wrote {ARTIFACT}")
    check_acceptance(report)


def exp_churn() -> None:
    header("EXP-CHURN  membership churn: throughput + proof convergence")
    from bench_membership_churn import (
        ARTIFACT,
        check_acceptance,
        measure,
        print_report,
    )

    report = measure(n=10_000, churn_period=2_000, n_pre=200, n_post=200, repeats=2)
    print_report(report)
    ARTIFACT.parent.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(report, indent=2))
    print(f"wrote {ARTIFACT}")
    check_acceptance(report, smoke=True)


def exp_naplet() -> None:
    header("EXP-NAPLET  agent emulation: cloned fan-out makespan")
    from repro.agent.naplet import Naplet
    from repro.agent.patterns import ParPattern, SeqPattern, SingletonPattern
    from repro.agent.scheduler import Simulation
    from repro.workloads.digraphs import coalition_topology

    n = 16
    servers = [f"s{i + 1}" for i in range(n)]
    print(f"{'clones k':>9}{'makespan':>10}{'speedup':>9}")
    base = None
    for k in (1, 2, 4, 8):
        share = n // k
        branches = [
            SeqPattern(
                [SingletonPattern("read", "res1", servers[i * share + j]) for j in range(share)]
            )
            for i in range(k)
        ]
        pattern = ParPattern(branches) if k > 1 else branches[0]
        sim = Simulation(coalition_topology(n))
        sim.add_naplet(Naplet("owner", pattern, name="fan"), "s1")
        report = sim.run()
        if base is None:
            base = report.end_time
        print(f"{k:>9}{report.end_time:>10.1f}{base / report.end_time:>9.2f}x")


def exp_baselines() -> None:
    header("EXP-BASELINE  related-work baselines (Section 7), quantified")
    from bench_baselines import duration_error_rate, trbac_error_rate

    print("TRBAC interval checks on skewed local clocks vs the duration scheme")
    print(f"{'skew (h)':>9}{'TRBAC err rate':>16}{'duration err rate':>19}")
    for skew in (0.0, 0.25, 0.5, 1.0, 2.0):
        trbac = trbac_error_rate(skew)
        ours = duration_error_rate(skew)
        print(f"{skew:>9.2f}{trbac:>16.3f}{ours:>19.3f}")

    from repro.rbac.history_baseline import CoordinatedReference, LocalHistoryEngine
    from repro.srac.parser import parse_constraint

    limit = parse_constraint("count(0, 5, [res = rsw])")
    local, coordinated = LocalHistoryEngine(), CoordinatedReference()
    print("\nlocal-history baseline: wrongful grants vs history spread")
    print(f"{'servers':>8}{'wrongful grant rate':>21}")
    for n_servers in (1, 2, 4, 8):
        rng = np.random.default_rng(n_servers)
        wrongful = 0
        trials = 200
        for _ in range(trials):
            length = int(rng.integers(4, 9))
            history = tuple(
                AccessKey("exec", "rsw", f"s{int(rng.integers(n_servers))}")
                for _ in range(length)
            )
            request = AccessKey("exec", "rsw", f"s{int(rng.integers(n_servers))}")
            granted_local = local.decide(limit, history, request)
            granted_truth = coordinated.decide(limit, history, request)
            wrongful += granted_local and not granted_truth
        print(f"{n_servers:>8}{wrongful / trials:>21.3f}")


def exp_obs() -> None:
    header("EXP-OBS  observability overhead on the warm decide path")
    from bench_obs_overhead import (
        ARTIFACT,
        check_acceptance,
        check_provenance,
        measure_gated,
        print_report,
    )

    report = measure_gated()
    report["provenance"] = check_provenance()
    print_report(report)
    ARTIFACT.parent.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(report, indent=2))
    print(f"wrote {ARTIFACT}")
    check_acceptance(report)


def exp_scale() -> None:
    header("EXP-SCALE  columnar session store at coalition scale")
    from bench_scale import (
        ARTIFACT,
        check_acceptance,
        measure,
        print_report,
        smoke_specs,
    )

    # Smoke-sized here (100k resident sessions); the full million-session
    # run is `python benchmarks/bench_scale.py` and takes minutes.
    spec, verify_spec, ref_spec, repeats = smoke_specs()
    report = measure(spec, verify_spec, ref_spec, repeats=repeats)
    print_report(report)
    ARTIFACT.parent.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {ARTIFACT}")
    check_acceptance(report, smoke=True)


EXPERIMENTS = (
    ("f1", exp_f1),
    ("t31", exp_t31),
    ("t32", exp_t32),
    ("t41", exp_t41),
    ("e35", exp_e35),
    ("deadline", exp_deadline),
    ("rbac", exp_rbac),
    ("cache", exp_cache),
    ("vec", exp_vec),
    ("service", exp_service),
    ("scale", exp_scale),
    ("faults", exp_faults),
    ("churn", exp_churn),
    ("naplet", exp_naplet),
    ("baselines", exp_baselines),
    ("obs", exp_obs),
)


def main() -> None:
    for name, fn in EXPERIMENTS:
        run_with_metrics(name, fn)
    print("\nall experiments completed.")


if __name__ == "__main__":
    main()
