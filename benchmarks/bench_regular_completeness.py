"""EXP-T31 — Theorem 3.1 (regular completeness), machine-checked.

For random regular trace models of growing size, synthesise the SRAL
program (the theorem's constructive proof) and decide language equality
between ``traces(P)`` and the regex's model.  The equality must hold on
every instance; the benchmark times synthesis + equivalence checking.

Run:  pytest benchmarks/bench_regular_completeness.py --benchmark-only
"""

import numpy as np
import pytest

from repro.traces.regular import (
    regex_to_program,
    regex_traces,
    verify_regular_completeness,
)
from repro.traces.model import program_traces
from repro.workloads.programs import access_alphabet, random_regex

ALPHABET = access_alphabet(2, 2, 2)


@pytest.mark.parametrize("leaves", [5, 10, 20, 40])
def bench_regular_completeness(benchmark, leaves):
    regex = random_regex(np.random.default_rng(leaves), leaves, ALPHABET)
    assert benchmark(verify_regular_completeness, regex)


def bench_program_synthesis_only(benchmark):
    """Just the regex → program construction (the proof's content)."""
    regex = random_regex(np.random.default_rng(7), 60, ALPHABET)
    benchmark(regex_to_program, regex)


def bench_trace_model_equality(benchmark):
    """Language-equality decision between two presentations of one
    model (minimise + Hopcroft-Karp)."""
    regex = random_regex(np.random.default_rng(21), 25, ALPHABET)
    left = regex_traces(regex)
    right = program_traces(regex_to_program(regex))
    assert benchmark(left.equals, right)
