"""EXP-E35 — Example 3.5: the restricted-software counting constraint
``#(0, 5, σ_RSW(A))`` enforced across servers.

Measures the full agent run of the motivating scenario (5 grants at s1,
coordinated denial at s2) and the per-decision cost of the engine on
growing histories.

Run:  pytest benchmarks/bench_restricted_software.py --benchmark-only
"""

import pytest

from repro.agent.naplet import Naplet, NapletStatus
from repro.agent.scheduler import Simulation
from repro.agent.security import NapletSecurityManager
from repro.coalition.network import Coalition, constant_latency
from repro.coalition.resource import Resource
from repro.coalition.server import CoalitionServer
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.srac.parser import parse_constraint
from repro.sral.parser import parse_program
from repro.traces.trace import AccessKey

LIMIT = parse_constraint("count(0, 5, [res = rsw])")


def _engine():
    policy = Policy()
    policy.add_user("trial-user")
    policy.add_role("trial")
    policy.add_permission(
        Permission("p_rsw", op="exec", resource="rsw", spatial_constraint=LIMIT)
    )
    policy.assign_user("trial-user", "trial")
    policy.assign_permission("trial", "p_rsw")
    return AccessControlEngine(policy)


def _scenario():
    coalition = Coalition(
        [
            CoalitionServer("s1", resources=[Resource("rsw")]),
            CoalitionServer("s2", resources=[Resource("rsw")]),
        ],
        latency=constant_latency(1.0),
    )
    program = parse_program(
        "n := 0 ; while n < 5 do { exec rsw @ s1 ; n := n + 1 } ; exec rsw @ s2"
    )
    sim = Simulation(
        coalition, security=NapletSecurityManager(_engine()), on_denied="abort"
    )
    naplet = Naplet("trial-user", program, roles=("trial",))
    sim.add_naplet(naplet, "s1")
    return sim, naplet


def bench_full_scenario(benchmark):
    """End-to-end: 5 grants at s1, denial at s2 (the paper's shape:
    the denial lands at the *other* server)."""

    def run():
        sim, naplet = _scenario()
        sim.run()
        return naplet

    naplet = benchmark(run)
    assert naplet.status is NapletStatus.DENIED
    assert len(naplet.history()) == 5


@pytest.mark.parametrize("history_len", [0, 10, 100, 1000])
def bench_decision_vs_history_length(benchmark, history_len):
    """Per-decision cost as the carried history grows (the engine
    re-runs monitors over the proved trace)."""
    engine = _engine()
    session = engine.authenticate("trial-user", 0.0)
    engine.activate_role(session, "trial", 0.0)
    filler = tuple(
        AccessKey("read", f"other{i % 7}", "s1") for i in range(history_len)
    )
    decision = benchmark(
        engine.decide, session, ("exec", "rsw", "s2"), 1.0, filler
    )
    assert decision.granted  # no rsw accesses in the filler history


def bench_denied_decision(benchmark):
    """Cost of the (permanent) denial decision itself."""
    engine = _engine()
    session = engine.authenticate("trial-user", 0.0)
    engine.activate_role(session, "trial", 0.0)
    history = (AccessKey("exec", "rsw", "s1"),) * 5
    decision = benchmark(
        engine.decide, session, ("exec", "rsw", "s2"), 1.0, history
    )
    assert not decision.granted
