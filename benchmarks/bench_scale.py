"""EXP-SCALE — the columnar session store at coalition scale.

A coalition fleet holds *far* more live sessions than it has in-flight
requests: hundreds of servers, millions of authenticated mobile
objects, a Zipf-skewed hot set producing most of the traffic.  The
columnar session store (:mod:`repro.rbac.session_store`) is built for
exactly that population — per-shard struct-of-arrays monitor/tracker
columns instead of a Python object per session — and this benchmark
measures what that buys:

* **bit-identity first** — before anything is timed, the same skewed
  stream is decided through the batched service over columnar engines
  and over classic object-backed engines (counters re-seeded so whole
  ``Decision`` objects compare equal): decisions, provenance, per-shard
  audit order and tracker timelines must match exactly, with zero
  vector-sweep fallbacks on either side (any store-only fallback would
  show up as an asymmetry).  The bulk loader
  (:meth:`~repro.rbac.engine.AccessControlEngine.open_sessions`) is
  verified against scalar ``authenticate``+``activate_role`` the same
  way.
* **resident scale** — ``open_sessions`` bulk-loads the full
  population (1M+ sessions in the full run) under ``tracemalloc``;
  the marginal bytes/session (and the store's own column accounting)
  gate the ≤ 200 B/session budget.
* **throughput at scale** — the diurnal Zipf stream is driven through
  the micro-batched :class:`~repro.service.DecisionService`; the same
  small-session workload PR-6 benchmarks (64 hot sessions) is then run
  store-on vs store-off, and the store must stay within 0.9x.

Run:  python benchmarks/bench_scale.py [--smoke]
Emits benchmarks/artifacts/BENCH_scale.json.
"""

from __future__ import annotations

import dataclasses
import gc
import itertools
import json
import pathlib
import time
import tracemalloc

import numpy as np

import repro.rbac.engine as rbac_engine
import repro.rbac.model as rbac_model
from repro.service import DecisionService, ShardedEngine
from repro.traces.trace import AccessKey
from repro.workloads.scale import (
    ScaleSpec,
    ScaleWorkload,
    build_policy,
    build_workload,
)

ARTIFACT = (
    pathlib.Path(__file__).resolve().parent / "artifacts" / "BENCH_scale.json"
)

#: Service knobs shared by every driven phase (the PR-6 batched shape).
SHARDS = 16
WORKERS = 4
MAX_BATCH = 256
MAX_WAIT_S = 0.002
QUEUE_DEPTH = 1 << 17
SUBMIT_CHUNK = 8192

#: Store-overhead budget per resident session (ISSUE acceptance).
BYTES_PER_SESSION_BUDGET = 200.0


def _reset_counters() -> None:
    """Restart the process-global subject/session counters so
    independently built stacks assign identical ids and whole
    ``Decision`` objects compare equal."""
    rbac_model._subject_counter = itertools.count(1)
    rbac_engine._session_counter = itertools.count(1)


def _norm(decision):
    """Erase the only id that legitimately differs across stacks built
    in different session orders (the bulk loader opens shard-by-shard)."""
    return dataclasses.replace(decision, subject_id="")


def _service(engine: ShardedEngine) -> DecisionService:
    return DecisionService(
        engine,
        workers=WORKERS,
        queue_depth=QUEUE_DEPTH,
        max_batch=MAX_BATCH,
        max_wait_s=MAX_WAIT_S,
    )


def _shard_ids(engine: ShardedEngine, workload: ScaleWorkload) -> np.ndarray:
    """``shard_ids[i]`` = shard owning session ``i`` (route by name,
    exactly as ``authenticate``/``open_sessions`` do)."""
    cache: dict[str, int] = {}
    index = engine.shard_index
    return np.fromiter(
        (
            cache[n] if n in cache else cache.setdefault(n, index(n))
            for n in workload.user_names
        ),
        dtype=np.int64,
        count=len(workload.user_names),
    )


def _rows_in_workload_order(
    shard_ids: np.ndarray, rows_by_shard: dict[int, np.ndarray]
) -> np.ndarray:
    """Invert the bulk loader's per-shard grouping: ``row_of[i]`` is
    the store row of workload session ``i`` (the loader preserves
    arrival order within each shard)."""
    row_of = np.empty(len(shard_ids), dtype=np.int64)
    for shard, rows in rows_by_shard.items():
        row_of[shard_ids == shard] = rows
    return row_of


def _drive(
    service: DecisionService,
    sessions: list,
    workload: ScaleWorkload,
) -> tuple[list, float]:
    """Submit the whole stream in chunks; returns (decisions, wall)."""
    times = workload.times.tolist()
    targets = workload.session_index.tolist()
    accesses = workload.accesses
    futures = []
    start = time.perf_counter()
    for offset in range(0, len(times), SUBMIT_CHUNK):
        end = min(offset + SUBMIT_CHUNK, len(times))
        futures.extend(
            service.submit_many(
                [
                    (sessions[targets[k]], accesses[k], times[k])
                    for k in range(offset, end)
                ]
            )
        )
    if not service.drain(timeout=600.0):
        raise AssertionError("scale stream failed to drain in time")
    wall = time.perf_counter() - start
    return [f.result() for f in futures], wall


# -- bit-identity -----------------------------------------------------------


def _build_stack(
    spec: ScaleSpec,
    workload: ScaleWorkload,
    use_store: bool,
    bulk: bool,
):
    """One full service stack over the verification workload; returns
    (engine, sessions-in-workload-order)."""
    _reset_counters()
    engine = ShardedEngine(
        build_policy(spec), shards=8, use_session_store=use_store
    )
    if bulk:
        shard_ids = _shard_ids(engine, workload)
        rows = engine.open_sessions(workload.user_names, 0.0, roles=("agent",))
        row_of = _rows_in_workload_order(shard_ids, rows)
        sessions = [
            engine.session_at(int(shard_ids[i]), int(row_of[i]))
            for i in range(spec.sessions)
        ]
    else:
        sessions = []
        for name in workload.user_names:
            session = engine.authenticate(name, 0.0)
            engine.activate_role(session, "agent", 0.0)
            sessions.append(session)
    # A third of the population starts past the counting bound: their
    # exec requests deny spatially, so the differential stream carries
    # real denials (and a populated observation arena) from request 0.
    hot = AccessKey.of("exec", "rsw", "s0")
    for k, session in enumerate(sessions):
        if k % 3 == 1:
            for _ in range(spec.count_bound + 1):
                engine.observe(session, hot)
    engine.prewarm(workload.alphabet)
    return engine, sessions


def _run_verification_stack(
    spec: ScaleSpec, workload: ScaleWorkload, use_store: bool, bulk: bool
):
    engine, sessions = _build_stack(spec, workload, use_store, bulk)
    with _service(engine) as service:
        decisions, _ = _drive(service, sessions, workload)
        stats = service.service_stats()
    audit = [list(shard.engine.audit) for shard in engine._shards]
    timelines = {}
    for k in range(0, spec.sessions, 17):
        for key, tracker in sessions[k].trackers.items():
            timelines[(k, key)] = (
                tracker.now,
                tracker.valid_timeline(),
                tracker.active_timeline(),
            )
    return decisions, audit, stats, timelines


def verify_bit_identity(spec: ScaleSpec) -> dict:
    """Columnar vs object-backed engines must be indistinguishable on
    the skewed stream — decisions (full provenance), per-shard audit
    order, tracker timelines — and the bulk loader must match scalar
    session establishment.  Returns comparison counts for the report."""
    workload = build_workload(spec)
    store = _run_verification_stack(spec, workload, use_store=True, bulk=False)
    plain = _run_verification_stack(spec, workload, use_store=False, bulk=False)
    bulk = _run_verification_stack(spec, workload, use_store=True, bulk=True)

    if store[0] != plain[0]:
        for a, b in zip(store[0], plain[0]):
            if a != b:
                raise AssertionError(
                    f"columnar decision diverges from object-backed:"
                    f"\n{a}\nvs\n{b}"
                )
        raise AssertionError("columnar decision stream diverges")
    if store[1] != plain[1]:
        raise AssertionError("per-shard audit order diverges under the store")
    if store[3] != plain[3]:
        raise AssertionError("tracker timelines diverge under the store")
    if [_norm(d) for d in bulk[0]] != [_norm(d) for d in store[0]]:
        raise AssertionError("bulk-opened sessions decide differently")

    store_stats, plain_stats = store[2], plain[2]
    if store_stats.vector_fallbacks != plain_stats.vector_fallbacks:
        raise AssertionError(
            f"store-attributable vector fallbacks: "
            f"{store_stats.vector_fallbacks} columnar vs "
            f"{plain_stats.vector_fallbacks} object-backed"
        )
    if store_stats.vector_fallbacks != 0:
        raise AssertionError(
            f"verification stream fell back {store_stats.vector_fallbacks}x"
        )
    if store_stats.vector_decisions == 0:
        raise AssertionError("verification stream never hit the vector sweep")
    granted = sum(d.granted for d in store[0])
    if granted == 0 or granted == len(store[0]):
        raise AssertionError(
            f"degenerate verification stream ({granted} grants "
            f"of {len(store[0])})"
        )
    return {
        "decisions_compared": len(store[0]),
        "granted": granted,
        "denied": len(store[0]) - granted,
        "timelines_compared": len(store[3]),
        "vector_decisions": store_stats.vector_decisions,
        "vector_fallbacks": store_stats.vector_fallbacks,
    }


# -- resident scale ---------------------------------------------------------


def build_population(spec: ScaleSpec, workload: ScaleWorkload):
    """Bulk-load the full session population under tracemalloc.
    Returns (engine, shard_ids, row_of, build report)."""
    _reset_counters()
    engine = ShardedEngine(
        build_policy(spec),
        shards=SHARDS,
        use_session_store=True,
        record_timelines=False,
    )
    shard_ids = _shard_ids(engine, workload)
    counts = np.bincount(shard_ids, minlength=SHARDS)
    for shard in engine._shards:
        shard.engine._store.reserve(int(counts[shard.index]))
    gc.collect()
    tracemalloc.start()
    base, _ = tracemalloc.get_traced_memory()
    start = time.perf_counter()
    rows_by_shard = engine.open_sessions(
        workload.user_names, 0.0, roles=("agent",)
    )
    open_wall = time.perf_counter() - start
    current, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    # The returned row-index arrays are loader *output*, not store
    # state — exclude them from the per-session overhead.
    rows_bytes = sum(rows.nbytes for rows in rows_by_shard.values())
    traced_marginal = (current - base - rows_bytes) / spec.sessions
    store_bytes = sum(
        shard.engine._store.nbytes() for shard in engine._shards
    )
    row_of = _rows_in_workload_order(shard_ids, rows_by_shard)
    report = {
        "sessions": spec.sessions,
        "resident": engine.resident_sessions(),
        "open_wall_s": open_wall,
        "open_rate": spec.sessions / open_wall,
        "tracemalloc_bytes_per_session": traced_marginal,
        "store_bytes_per_session": store_bytes / spec.sessions,
        "bytes_per_session": max(
            traced_marginal, store_bytes / spec.sessions
        ),
    }
    return engine, shard_ids, row_of, report


def drive_population(
    engine: ShardedEngine,
    shard_ids: np.ndarray,
    row_of: np.ndarray,
    workload: ScaleWorkload,
) -> dict:
    """Drive the Zipf/diurnal stream against the resident population
    through the batched service; only touched sessions get handles."""
    touched = np.unique(workload.session_index)
    handles: dict[int, object] = {
        int(i): engine.session_at(int(shard_ids[i]), int(row_of[i]))
        for i in touched
    }
    sessions = _HandleList(handles)
    engine.prewarm(workload.alphabet)
    with _service(engine) as service:
        decisions, wall = _drive(service, sessions, workload)
        stats = service.service_stats()
    if stats.errors:
        raise AssertionError(f"scale drive reported {stats.errors} errors")
    granted = sum(d.granted for d in decisions)
    return {
        "requests": len(decisions),
        "touched_sessions": int(len(touched)),
        "wall_s": wall,
        "throughput": len(decisions) / wall,
        "granted": granted,
        "denied": len(decisions) - granted,
        "mean_latency_ms": stats.mean_latency_s * 1e3,
        "mean_batch_size": stats.mean_batch_size,
        "vector_decisions": stats.vector_decisions,
        "vector_fallbacks": stats.vector_fallbacks,
        "resident_after": engine.resident_sessions(),
    }


class _HandleList:
    """Index-compatible view over the sparse handle dict (the drive
    loop subscripts ``sessions[target]``; only touched targets exist)."""

    __slots__ = ("_handles",)

    def __init__(self, handles: dict[int, object]):
        self._handles = handles

    def __getitem__(self, index: int):
        return self._handles[index]


# -- small-session reference ------------------------------------------------


def small_session_rate(spec: ScaleSpec, use_store: bool, repeats: int) -> float:
    """The PR-6 small-session batched-service shape (a few dozen hot
    sessions, table-eligible constraints) store-on vs store-off —
    whatever the store costs on tiny populations shows up here."""
    workload = build_workload(spec)
    _reset_counters()
    engine = ShardedEngine(
        build_policy(spec), shards=SHARDS, use_session_store=use_store
    )
    sessions = []
    for name in workload.user_names:
        session = engine.authenticate(name, 0.0)
        engine.activate_role(session, "agent", 0.0)
        sessions.append(session)
    engine.prewarm(workload.alphabet)
    best = 0.0
    with _service(engine) as service:
        # Warm pass (monitor init, caches) off the clock, then repeat
        # the stream at later instants (trackers need monotone time).
        warm = dataclasses.replace(workload)
        _drive(service, sessions, warm)
        service.reset_stats()
        horizon = float(workload.times[-1]) + 1.0
        for epoch in range(repeats):
            shifted = dataclasses.replace(
                workload, times=workload.times + (epoch + 1) * horizon
            )
            _, wall = _drive(service, sessions, shifted)
            best = max(best, len(workload.times) / wall)
        stats = service.service_stats()
    if stats.errors:
        raise AssertionError(
            f"small-session reference reported {stats.errors} errors"
        )
    return best


# -- top level --------------------------------------------------------------


def measure(
    spec: ScaleSpec, verify_spec: ScaleSpec, ref_spec: ScaleSpec,
    repeats: int = 3,
) -> dict:
    report: dict = {
        "spec": dataclasses.asdict(spec),
        "verify": verify_bit_identity(verify_spec),
    }
    # Expiry-crossing differential: the stream outlives the finite
    # validity duration (4 simulated days), so temporal denials — and
    # decisions near the expiry instant — are compared too.
    expiry_spec = dataclasses.replace(verify_spec, days=6.0, seed=verify_spec.seed + 1)
    report["verify_expiry"] = verify_bit_identity(expiry_spec)

    workload = build_workload(spec)
    engine, shard_ids, row_of, build = build_population(spec, workload)
    report["build"] = build
    report["drive"] = drive_population(engine, shard_ids, row_of, workload)
    del engine, shard_ids, row_of, workload
    gc.collect()

    store_rate = small_session_rate(ref_spec, use_store=True, repeats=repeats)
    plain_rate = small_session_rate(ref_spec, use_store=False, repeats=repeats)
    report["small_session"] = {
        "requests": ref_spec.requests,
        "sessions": ref_spec.sessions,
        "store_rate": store_rate,
        "object_rate": plain_rate,
        "ratio": store_rate / plain_rate,
    }
    return report


def print_report(report: dict) -> None:
    spec = report["spec"]
    verify = report["verify"]
    print(
        f"verification: {verify['decisions_compared']} decisions "
        f"bit-identical (columnar vs object-backed vs bulk-opened), "
        f"{verify['granted']} grants / {verify['denied']} denials, "
        f"{verify['timelines_compared']} tracker timelines, "
        f"{verify['vector_fallbacks']} fallbacks"
    )
    expiry = report["verify_expiry"]
    print(
        f"expiry-crossing pass: {expiry['decisions_compared']} decisions, "
        f"{expiry['denied']} denials"
    )
    build = report["build"]
    print(
        f"\nresident scale: {build['resident']:,} sessions over "
        f"{spec['servers']} servers, opened at "
        f"{build['open_rate']:,.0f} sessions/s"
    )
    print(
        f"per-session store overhead: "
        f"{build['bytes_per_session']:.1f} B "
        f"(tracemalloc {build['tracemalloc_bytes_per_session']:.1f} B, "
        f"columns {build['store_bytes_per_session']:.1f} B; "
        f"budget {BYTES_PER_SESSION_BUDGET:.0f} B)"
    )
    drive = report["drive"]
    print(
        f"\ndriven stream: {drive['requests']:,} requests over "
        f"{drive['touched_sessions']:,} touched sessions -> "
        f"{drive['throughput']:,.0f} req/s "
        f"(mean batch {drive['mean_batch_size']:.1f}, "
        f"vector {drive['vector_decisions']} / "
        f"fallback {drive['vector_fallbacks']})"
    )
    small = report["small_session"]
    print(
        f"\nsmall-session reference ({small['sessions']} sessions): "
        f"columnar {small['store_rate']:,.0f} req/s vs object-backed "
        f"{small['object_rate']:,.0f} req/s -> {small['ratio']:.2f}x"
    )


def check_acceptance(report: dict, smoke: bool = False) -> None:
    """The ISSUE gates.  Smoke (CI) keeps the memory budget hard but
    relaxes throughput floors for noisy shared runners."""
    for phase in ("verify", "verify_expiry"):
        verify = report[phase]
        assert verify["vector_fallbacks"] == 0, verify
        assert verify["granted"] > 0 and verify["denied"] > 0, verify
    build = report["build"]
    assert build["resident"] == build["sessions"], build
    assert build["bytes_per_session"] <= BYTES_PER_SESSION_BUDGET, (
        f"store overhead {build['bytes_per_session']:.1f} B/session "
        f"exceeds the {BYTES_PER_SESSION_BUDGET:.0f} B budget"
    )
    drive = report["drive"]
    assert drive["vector_fallbacks"] == 0, drive
    assert drive["vector_decisions"] > 0, drive
    throughput_floor = 5_000.0 if smoke else 7_500.0
    assert drive["throughput"] >= throughput_floor, (
        f"scale throughput {drive['throughput']:.0f} req/s below the "
        f"{throughput_floor:.0f} req/s floor"
    )
    ratio_floor = 0.75 if smoke else 0.9
    assert report["small_session"]["ratio"] >= ratio_floor, (
        f"columnar small-session throughput ratio "
        f"{report['small_session']['ratio']:.2f} below {ratio_floor:g}x"
    )
    print("acceptance checks passed.")


def smoke_specs() -> tuple[ScaleSpec, ScaleSpec, ScaleSpec, int]:
    """(population, verification, reference, repeats) for the CI smoke."""
    spec = ScaleSpec(
        sessions=100_000, users=2_000, servers=50, requests=30_000
    )
    verify_spec = ScaleSpec(
        sessions=600, users=30, servers=8, requests=3_000, count_bound=3
    )
    ref_spec = ScaleSpec(
        sessions=64, users=8, servers=5, requests=8_000, zipf_s=0.8
    )
    return spec, verify_spec, ref_spec, 2


def full_specs() -> tuple[ScaleSpec, ScaleSpec, ScaleSpec, int]:
    """(population, verification, reference, repeats) for the full run."""
    spec = ScaleSpec()
    verify_spec = ScaleSpec(
        sessions=1_500, users=60, servers=12, requests=6_000, count_bound=3
    )
    ref_spec = ScaleSpec(
        sessions=64, users=8, servers=5, requests=40_000, zipf_s=0.8
    )
    return spec, verify_spec, ref_spec, 3


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: 100k sessions, conservative throughput floors",
    )
    args = parser.parse_args()
    specs = smoke_specs() if args.smoke else full_specs()
    spec, verify_spec, ref_spec, repeats = specs
    report = measure(spec, verify_spec, ref_spec, repeats=repeats)
    print_report(report)
    ARTIFACT.parent.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {ARTIFACT}")
    check_acceptance(report, smoke=args.smoke)


if __name__ == "__main__":
    main()
