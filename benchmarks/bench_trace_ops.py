"""EXP-TRACE — the trace-model algebra and automata substrate
(Definitions 3.2–3.3).

Costs of the operators the checker is built on: interleaving growth
(the combinatorial price of ``||``), determinisation, Hopcroft
minimisation and equivalence on program-derived automata.

Run:  pytest benchmarks/bench_trace_ops.py --benchmark-only
"""

import numpy as np
import pytest

from repro.automata.ops import determinize, equivalent, minimize
from repro.traces.model import program_traces
from repro.traces.trace import count_interleavings, make_trace
from repro.workloads.programs import access_alphabet, random_program

ALPHABET = access_alphabet(2, 3, 2)


def _distinct_trace(length, offset=0):
    return make_trace(
        *((f"op{i + offset}", f"r{i + offset}", "s1") for i in range(length))
    )


@pytest.mark.parametrize("length", [2, 4, 6, 8])
def bench_interleaving_enumeration(benchmark, length):
    """Explicit t # v enumeration: C(2L, L) growth (kept small)."""
    t = _distinct_trace(length)
    v = _distinct_trace(length, offset=100)
    count = benchmark(count_interleavings, t, v)
    from math import comb

    assert count == comb(2 * length, length)


@pytest.mark.parametrize("leaves", [20, 60, 180])
def bench_program_to_trace_model(benchmark, leaves):
    """Definition 3.2: program → NFA construction (low `||` density —
    nested interleaving is product-sized by nature and measured
    separately in bench_shuffle_product / bench_par_blowup)."""
    program = random_program(
        np.random.default_rng(leaves), leaves, ALPHABET, p_par=0.0
    )
    model = benchmark(program_traces, program)
    assert not model.is_empty()


@pytest.mark.parametrize("leaves", [20, 60, 180])
def bench_determinize_and_minimize(benchmark, leaves):
    """Subset construction + Hopcroft on program automata."""
    program = random_program(
        np.random.default_rng(leaves + 1), leaves, ALPHABET, p_par=0.05
    )
    nfa = program_traces(program).nfa

    def run():
        return minimize(determinize(nfa))

    dfa = benchmark(run)
    assert dfa.n_states >= 1


def bench_shuffle_product(benchmark):
    """The || operator on trace models (shuffle of two automata)."""
    rng = np.random.default_rng(5)
    left = program_traces(random_program(rng, 15, ALPHABET, p_par=0.0))
    right = program_traces(random_program(rng, 15, ALPHABET, p_par=0.0))
    model = benchmark(left.interleave, right)
    assert not model.is_empty()


def bench_model_equality(benchmark):
    """Language equality of two syntactically different presentations."""
    rng = np.random.default_rng(9)
    program = random_program(rng, 40, ALPHABET, p_par=0.05)
    left = program_traces(program)
    right = program_traces(program)  # fresh automaton, same language
    assert benchmark(lambda: equivalent(left.dfa, right.dfa))
