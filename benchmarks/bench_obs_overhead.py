"""EXP-OBS — overhead of the observability layer on the warm decide path.

The observability layer (``repro.obs``) promises that its cost on the
hot path is negligible: disabled, it is one attribute-load branch per
decision; enabled, the engine pays a handful of lock-free attribute
updates plus a 1-in-16 sampled span.  Decision *provenance* is always
on, so it is part of both sides of the comparison — what is measured
here is exactly the metrics/tracing increment.

This benchmark replays the EXP-CACHE warm repeated-decision workload
(incremental history, hot caches) on a **single shared engine**,
toggling observability off and on across many small interleaved
chunks and taking the best chunk per mode.  The methodology matters
twice over: two separately constructed engines differ by more than
the 5 % budget from allocation layout alone (so both modes must share
one engine), and on a busy host a multi-millisecond timing window is
routinely inflated 2x by scheduler preemption (so the best of many
~2.5 ms chunks, alternating modes, is what actually isolates the
instrumentation cost).  The enabled/disabled slowdown is gated at
**≤5 %**.  It also asserts the provenance contract: every denied
decision names the failing constraint or temporal state.

Run:  python benchmarks/bench_obs_overhead.py [--smoke]
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from bench_decision_cache import HISTORY, _engine, _request, decide_warm

from repro import obs
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.rbac.engine import AccessControlEngine
from repro.srac.parser import parse_constraint

ARTIFACT = pathlib.Path(__file__).resolve().parent / "artifacts" / "obs_overhead.json"

#: Acceptance bound on the warm-path slowdown with instrumentation on.
MAX_OVERHEAD = 0.05


def _warm_engine():
    engine, session = _engine(use_srac_caches=True)
    session.observed = HISTORY
    decide_warm(engine, session, 1)
    engine.prewarm([_request(i) for i in range(5)])
    return engine, session


def measure(chunk: int = 250, pairs: int = 60) -> dict:
    """Paired best-of-chunk off/on timing of the warm decide path.

    One warmed engine serves both modes; ``pairs`` alternating
    (off, on) / (on, off) chunk pairs of ``chunk`` decisions each are
    timed and the minimum chunk per mode is compared — the minimum of
    many short windows converges on the preemption-free cost."""
    obs.disable()
    obs.reset()
    engine, session = _warm_engine()
    best = {False: float("inf"), True: float("inf")}
    # Warm both modes before any timed chunk so neither side pays
    # first-execution costs (bytecode specialisation, branch history).
    for enabled in (False, True):
        (obs.enable if enabled else obs.disable)()
        decide_warm(engine, session, chunk)
    for pair in range(pairs):
        # Alternate which mode runs first so drift cancels out.
        order = (False, True) if pair % 2 == 0 else (True, False)
        for enabled in order:
            (obs.enable if enabled else obs.disable)()
            start = time.perf_counter()
            decide_warm(engine, session, chunk)
            best[enabled] = min(best[enabled], time.perf_counter() - start)
    obs.disable()
    best_off, best_on = best[False], best[True]
    snapshot = obs.export()["metrics"].get("collected", {})
    overhead = best_on / best_off - 1.0
    return {
        "chunk": chunk,
        "pairs": pairs,
        "rate_disabled": chunk / best_off,
        "rate_enabled": chunk / best_on,
        "per_decision_us_disabled": best_off / chunk * 1e6,
        "per_decision_us_enabled": best_on / chunk * 1e6,
        "overhead": overhead,
        "max_overhead": MAX_OVERHEAD,
        "decisions_counted": snapshot.get("engine.decisions", 0),
        "metrics_sample": {
            k: v for k, v in snapshot.items() if k.startswith("engine.")
        },
    }


def measure_gated(chunk: int = 250, pairs: int = 120) -> dict:
    """:func:`measure` with noise-aware retries: scheduler noise can
    only inflate the measured overhead (a preempted enabled-chunk
    raises the ratio; nothing lowers it below the true cost), so on a
    failed gate re-measure up to twice and keep the lowest reading."""
    report = measure(chunk=chunk, pairs=pairs)
    for _ in range(2):
        if report["overhead"] <= MAX_OVERHEAD:
            break
        retry = measure(chunk=chunk, pairs=pairs)
        if retry["overhead"] < report["overhead"]:
            report = retry
    return report


def check_provenance() -> dict:
    """The provenance contract: denied decisions carry a non-empty
    explain record naming the failing constraint or temporal state."""
    policy = Policy()
    policy.add_user("u")
    policy.add_role("r")
    policy.add_permission(
        Permission(
            "p",
            op="exec",
            resource="rsw",
            spatial_constraint=parse_constraint("count(0, 2, [res = rsw])"),
        )
    )
    policy.assign_user("u", "r")
    policy.assign_permission("r", "p")
    engine = AccessControlEngine(policy)
    session = engine.authenticate("u", 0.0)
    engine.activate_role(session, "r", 0.0)
    for i in range(2):
        decision = engine.decide(
            session, ("exec", "rsw", "s0"), float(i), history=None
        )
        assert decision.granted
        engine.observe(session, decision.access)
    spatial = engine.decide(session, ("exec", "rsw", "s0"), 2.0, history=None)
    nocand = engine.decide(session, ("read", "other", "s0"), 2.0, history=None)
    assert not spatial.granted and not nocand.granted
    for denial in (spatial, nocand):
        assert denial.provenance is not None, "denial without provenance"
        assert denial.provenance.describe(), "empty provenance description"
    assert spatial.provenance.kind == "spatial"
    assert "count(0, 2, [res = rsw])" in spatial.provenance.describe()
    assert nocand.provenance.kind == "no-candidate"
    return {
        "spatial_denial": spatial.provenance.describe(),
        "no_candidate_denial": nocand.provenance.describe(),
    }


def print_report(report: dict) -> None:
    print(f"warm decide path, {report['pairs']} alternating pairs of "
          f"{report['chunk']}-decision chunks (best-of per mode)")
    print(f"{'config':<22}{'decisions/s':>13}{'us/decision':>13}")
    print(f"{'obs disabled':<22}{report['rate_disabled']:>13.0f}"
          f"{report['per_decision_us_disabled']:>13.2f}")
    print(f"{'obs enabled':<22}{report['rate_enabled']:>13.0f}"
          f"{report['per_decision_us_enabled']:>13.2f}")
    print(f"overhead: {report['overhead'] * 100:+.2f}% "
          f"(budget {report['max_overhead'] * 100:.0f}%)")
    print(f"decisions counted by the registry: {report['decisions_counted']:.0f}")
    if "provenance" in report:
        print("denial provenance:")
        for key, line in report["provenance"].items():
            print(f"  {key}: {line}")


def check_acceptance(report: dict) -> None:
    assert report["overhead"] <= MAX_OVERHEAD, (
        f"obs-enabled warm path is {report['overhead'] * 100:.1f}% slower "
        f"(budget {MAX_OVERHEAD * 100:.0f}%)"
    )
    assert report["decisions_counted"] > 0, (
        "registry collected no decisions while obs was enabled"
    )


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: smaller workload, same acceptance gate",
    )
    args = parser.parse_args()
    chunk, pairs = (250, 60) if args.smoke else (250, 120)
    report = measure_gated(chunk=chunk, pairs=pairs)
    report["provenance"] = check_provenance()
    print_report(report)
    ARTIFACT.parent.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(report, indent=2))
    print(f"wrote {ARTIFACT}")
    check_acceptance(report)
    print("acceptance checks passed.")


if __name__ == "__main__":
    main()
