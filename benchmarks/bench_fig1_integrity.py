"""EXP-F1 — Figure 1 / Section 6: the integrity-verification audit.

Regenerates the paper's only figure-backed experiment: a mobile auditor
verifying dependency-ordered module integrity across coalition servers,
plus size sweeps (modules × servers) far beyond the drawn instance.

Run:  pytest benchmarks/bench_fig1_integrity.py --benchmark-only
"""

import pytest

from repro.apps.integrity import (
    auditor_program,
    figure1_graph,
    run_audit,
    verification_constraint,
)
from repro.srac.checker import check_program
from repro.workloads.digraphs import random_module_graph


def bench_figure1_clean_audit(benchmark):
    """The audit exactly as drawn: 12 modules, 4 servers."""
    graph = figure1_graph()
    report = benchmark(run_audit, graph)
    assert report.all_verified()
    assert report.order_constraint_ok


def bench_figure1_tampered_audit(benchmark):
    graph = figure1_graph()
    report = benchmark(lambda: run_audit(graph, tamper={"m7"}))
    assert not report.all_verified()


def bench_figure1_static_check(benchmark):
    """Theorem 3.2 applied to Figure 1: auditor program |= dependency
    constraint, checked statically before dispatch."""
    graph = figure1_graph()
    program = auditor_program(graph)
    constraint = verification_constraint(graph)
    assert benchmark(check_program, program, constraint)


@pytest.mark.parametrize("n_modules", [25, 50, 100, 200])
def bench_audit_scaling_modules(benchmark, n_modules):
    """Audit cost versus module count (4 servers)."""
    graph = random_module_graph(n_modules, 4, edge_probability=0.1, seed=n_modules)
    report = benchmark.pedantic(
        lambda: run_audit(graph), rounds=3, iterations=1, warmup_rounds=1
    )
    assert report.all_verified()


@pytest.mark.parametrize("n_servers", [2, 4, 8, 16])
def bench_audit_scaling_servers(benchmark, n_servers):
    """Audit cost versus coalition width (60 modules)."""
    graph = random_module_graph(60, n_servers, edge_probability=0.1, seed=n_servers)
    report = benchmark.pedantic(
        lambda: run_audit(graph), rounds=3, iterations=1, warmup_rounds=1
    )
    assert report.all_verified()
