"""EXP-T41 — Theorem 4.1: permission validity checking.

The duration integral ``∫ valid(perm, u) du`` over timelines with a
growing number of activation intervals, the event-driven tracker, and
the combined spatio-temporal validity decision.  The analytic integral
is cross-checked against a Riemann reference in the test suite; here we
measure cost and confirm decidability at scale.

Run:  pytest benchmarks/bench_temporal_validity.py --benchmark-only
"""

import numpy as np
import pytest

from repro.sral.parser import parse_program
from repro.srac.parser import parse_constraint
from repro.temporal.checker import check_validity
from repro.temporal.timeline import BooleanTimeline
from repro.temporal.validity import Scheme, ValidityTracker


def _timeline(k_intervals, seed=0):
    rng = np.random.default_rng(seed)
    points = np.sort(rng.uniform(0, 1000, size=2 * k_intervals))
    intervals = [(points[2 * i], points[2 * i + 1]) for i in range(k_intervals)]
    return BooleanTimeline.from_intervals(intervals)


@pytest.mark.parametrize("k", [10, 100, 1000, 10000])
def bench_duration_integral(benchmark, k):
    """∫ over a timeline with k activation intervals (vectorised)."""
    timeline = _timeline(k)
    value = benchmark(timeline.integrate, 0.0, 1000.0)
    assert 0.0 <= value <= 1000.0


@pytest.mark.parametrize("k", [10, 100, 1000])
def bench_expiry_search(benchmark, k):
    """first_time_accumulated: when does the budget run out?"""
    timeline = _timeline(k)
    total = timeline.integrate(0.0, 1000.0)
    budget = total / 2
    hit = benchmark(timeline.first_time_accumulated, 0.0, budget)
    assert hit is not None


def bench_validity_tracker_event_stream(benchmark):
    """The event-driven tracker over 1000 activate/deactivate/migrate
    events (the engine's hot path)."""

    def run():
        tracker = ValidityTracker(duration=200.0, scheme=Scheme.PER_SERVER)
        t = 0.0
        for i in range(1000):
            t += 1.0
            if i % 3 == 0:
                tracker.activate(t)
            elif i % 3 == 1:
                tracker.migrate(t)
            else:
                tracker.deactivate(t)
        return tracker.state(t)

    benchmark(run)


def bench_combined_validity_decision(benchmark):
    """The full Theorem 4.1 procedure: spatial check + integral."""
    program = parse_program("exec rsw @ s1 ; exec rsw @ s2 ; read log @ s2")
    constraint = parse_constraint("count(0, 5, [res = rsw])")
    valid = _timeline(200, seed=5)
    decision = benchmark(
        check_validity, program, constraint, valid, 0.0, 900.0, 600.0
    )
    assert decision.spatial_ok
