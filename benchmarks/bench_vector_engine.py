"""EXP-VEC — the vectorized compiled decision core.

A coalition server's steady state is a long stream of decisions over a
fixed policy: the same (access, candidate) spatial verdicts, the same
piecewise-constant validity functions, evaluated one interpreted
Python decision at a time.  The vectorized sweep
(:mod:`repro.rbac.vector_engine` over :mod:`repro.srac.compiled`)
lowers that loop onto dense transition tables and breakpoint arrays:

* **naive** — the pre-batch hot path: one :meth:`decide` call per
  request (warm caches, incremental mode);
* **scalar batch** — :meth:`decide_batch` with the vector path
  disabled: the scalar loop with the candidate lookup hoisted per
  distinct access (this PR's scalar regression fix);
* **vector batch** — :meth:`decide_batch` on the compiled tables:
  one gather per (access, candidate), one ``searchsorted`` per
  (candidate, group), memoised ``Decision`` prototypes, per-request
  cost = one clone;
* **multi-session sweep** — :meth:`decide_batch_many` over an
  interleaved stream from many sessions (the sharded drain shape).

Before any number is reported, scalar and vector engines replay
mixed grant/deny/expiry workloads — including decisions exactly at a
validity expiry instant — and every decision *and* its provenance are
asserted bit-identical, along with audit order and the recorded
validity timelines.

Timed sections run with the cyclic GC disabled (retained Decision
objects in the audit log otherwise make every generation collection
scan a growing heap — standard practice, pyperf does the same).

Run:  python benchmarks/bench_vector_engine.py [--smoke]
Emits benchmarks/artifacts/BENCH_vector_engine.json.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import pathlib
import random
import time

from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.srac import reachability
from repro.srac.compiled import table_cache_counters
from repro.srac.parser import parse_constraint
from repro.traces.trace import AccessKey

SERVERS = 5

#: Same shape as EXP-CACHE: a counting bound plus an ordering
#: obligation — 1002 x 3 product states, well inside the table budget.
CONSTRAINT_SRC = (
    "count(0, 1000, [res = rsw]) & (exec rsw @ s0 >> exec rsw @ s1)"
)

#: Validity duration for the throughput workload: effectively infinite,
#: so the timed section measures the grant path (the common case).
DURATION = 1e9

ARTIFACT = (
    pathlib.Path(__file__).resolve().parent / "artifacts"
    / "BENCH_vector_engine.json"
)


def _engine(
    use_vector: bool,
    duration: float = DURATION,
    constraint_src: str = CONSTRAINT_SRC,
):
    policy = Policy()
    policy.add_user("u")
    policy.add_role("r")
    policy.add_permission(
        Permission(
            "p",
            op="exec",
            resource="rsw",
            spatial_constraint=parse_constraint(constraint_src),
            validity_duration=duration,
        )
    )
    policy.add_permission(Permission("q", op="read", resource="r1"))
    policy.assign_user("u", "r")
    policy.assign_permission("r", "p")
    policy.assign_permission("r", "q")
    engine = AccessControlEngine(policy, use_vector_batches=use_vector)
    session = engine.authenticate("u", 0.0)
    engine.activate_role(session, "r", 0.0)
    return engine, session


def _request(i: int) -> AccessKey:
    return AccessKey("exec", "rsw", f"s{i % SERVERS}")


def _norm(decision):
    """Session ids differ between two engines; everything else must not."""
    return dataclasses.replace(decision, subject_id="")


# -- bit-identity -----------------------------------------------------------


def verify_identical(n: int = 300) -> int:
    """Vector decisions, provenance, audit order and tracker timelines
    must match the scalar engine's exactly.  Returns the number of
    decisions compared."""
    rng = random.Random(7)
    accesses = [
        AccessKey(
            rng.choice(["exec", "read", "write"]),
            rng.choice(["rsw", "r1"]),
            rng.choice(["s1", "s2"]),
        )
        for _ in range(n)
    ]
    compared = 0
    for src, duration, dt in (
        ("count(0, 3, [res = rsw])", 1e9, 0.1),
        (CONSTRAINT_SRC, 1e9, 0.0),
        # Short duration: the batch crosses the expiry instant, and one
        # decision lands exactly ON it (t >= expiry must deny).
        (CONSTRAINT_SRC, 4.0, 0.1),
    ):
        vec_engine, vec_session = _engine(True, duration, src)
        sc_engine, sc_session = _engine(False, duration, src)
        got = vec_engine.decide_batch(vec_session, accesses, t=1.0, dt=dt)
        want = sc_engine.decide_batch(sc_session, accesses, t=1.0, dt=dt)
        for a, b in zip(got, want):
            if _norm(a) != _norm(b):
                raise AssertionError(
                    f"vector decision diverges from scalar:\n{a}\nvs\n{b}"
                )
        if [_norm(d) for d in vec_engine.audit] != [
            _norm(d) for d in sc_engine.audit
        ]:
            raise AssertionError("audit logs diverge")
        for key, sc_tracker in sc_session.trackers.items():
            vec_tracker = vec_session.trackers[key]
            assert vec_tracker.now == sc_tracker.now
            assert vec_tracker.valid_timeline() == sc_tracker.valid_timeline()
        stats = vec_engine.cache_stats()
        if stats.vector_fallbacks:
            raise AssertionError(
                f"workload {src!r} unexpectedly fell back "
                f"({stats.vector_fallbacks} decisions)"
            )
        compared += len(got)
    return compared


# -- timed sections ---------------------------------------------------------


#: Timed epochs per configuration; the best (minimum-wall) epoch is
#: reported, which filters scheduler noise on shared machines.
REPEATS = 3

#: Epochs replay the same stream at later instants (validity trackers
#: require monotone time); one epoch spans well under this offset.
EPOCH_OFFSET = 1000.0


def _timed(fn, epoch: int) -> float:
    """Wall time of ``fn(t0)`` with the cyclic GC off (see module
    docstring); ``t0`` keeps repeated epochs time-monotone."""
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        fn(2.0 + epoch * EPOCH_OFFSET)
        return time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()


def _best_rate(fn, n: int) -> float:
    return n / min(_timed(fn, epoch) for epoch in range(REPEATS))


def rate_naive(n: int) -> float:
    engine, session = _engine(use_vector=False)
    engine.decide_batch(session, [_request(0)] * 100, t=1.0)  # warm

    def run(t0):
        clock = t0
        for i in range(n):
            engine.decide(session, _request(i), clock, history=None)
            clock += 0.001

    return _best_rate(run, n)


def rate_batch(n: int, use_vector: bool) -> float:
    engine, session = _engine(use_vector=use_vector)
    accesses = [_request(i) for i in range(n)]
    engine.decide_batch(session, accesses[:100], t=1.0)  # warm
    return _best_rate(
        lambda t0: engine.decide_batch(session, accesses, t=t0, dt=0.001),
        n,
    )


def rate_many(n: int, sessions: int = 8) -> float:
    """Interleaved multi-session stream through ``decide_batch_many``."""
    engine, _ = _engine(use_vector=True)
    session_pool = []
    for _ in range(sessions):
        s = engine.authenticate("u", 0.0)
        engine.activate_role(s, "r", 0.0)
        session_pool.append(s)
    requests = [
        (session_pool[i % sessions], _request(i)) for i in range(n)
    ]
    engine.decide_batch_many(requests[:100], t=1.0)  # warm
    return _best_rate(
        lambda t0: engine.decide_batch_many(requests, t=t0, dt=0.001),
        n,
    )


def cold_compile_ms() -> float:
    """First vectorized batch on cold process caches: table build +
    live-set precomputation + sweep of a tiny batch."""
    reachability.clear_caches()
    engine, session = _engine(use_vector=True)
    start = time.perf_counter()
    engine.decide_batch(session, [_request(0)], t=1.0)
    return (time.perf_counter() - start) * 1e3


def measure(n: int = 50_000) -> dict:
    compared = verify_identical()
    cold_ms = cold_compile_ms()
    naive = rate_naive(n)
    scalar = rate_batch(n, use_vector=False)
    vector = rate_batch(n, use_vector=True)
    many = rate_many(n)
    hits, misses, fallbacks, entries = table_cache_counters()
    return {
        "n": n,
        "verified_identical": compared,
        "cold_first_batch_ms": cold_ms,
        "naive_rate": naive,
        "scalar_batch_rate": scalar,
        "vector_batch_rate": vector,
        "many_rate": many,
        "speedup_vs_decide": vector / naive,
        "speedup_vs_scalar_batch": vector / scalar,
        "scalar_batch_vs_decide": scalar / naive,
        "table_cache": {
            "hits": hits,
            "misses": misses,
            "fallbacks": fallbacks,
            "entries": entries,
        },
    }


def print_report(report: dict) -> None:
    print(
        f"single-session stream: n={report['n']}, "
        f"{report['verified_identical']} decisions verified bit-identical"
    )
    print(f"{'config':<30}{'decisions/s':>13}")
    print(f"{'naive decide() loop':<30}{report['naive_rate']:>13.0f}")
    print(f"{'scalar decide_batch':<30}{report['scalar_batch_rate']:>13.0f}")
    print(f"{'vector decide_batch':<30}{report['vector_batch_rate']:>13.0f}")
    print(f"{'decide_batch_many (8 sess.)':<30}{report['many_rate']:>13.0f}")
    print(
        f"vector speedup: {report['speedup_vs_decide']:.1f}x over decide(), "
        f"{report['speedup_vs_scalar_batch']:.1f}x over the scalar batch "
        f"(itself {report['scalar_batch_vs_decide']:.2f}x over decide())"
    )
    print(
        f"cold first batch: {report['cold_first_batch_ms']:.2f} ms "
        f"(table + live-set build)"
    )
    print("table cache:", report["table_cache"])


def check_acceptance(report: dict, smoke: bool = False) -> None:
    """Hard gates.  Smoke mode (CI) uses conservative floors — shared
    runners are slow and noisy; the full run asserts the ISSUE targets."""
    assert report["table_cache"]["fallbacks"] == 0, report["table_cache"]
    if smoke:
        assert report["vector_batch_rate"] > 25_000, report
        assert report["speedup_vs_decide"] > 3.0, report
    else:
        assert report["vector_batch_rate"] > 100_000, report
        assert report["speedup_vs_decide"] > 10.0, report
    # The hoisted scalar loop must not have regressed below decide().
    assert report["scalar_batch_vs_decide"] > 0.8, report


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: small workload, conservative throughput floors",
    )
    args = parser.parse_args()
    n = 5_000 if args.smoke else 50_000
    report = measure(n)
    print_report(report)
    ARTIFACT.parent.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {ARTIFACT}")
    check_acceptance(report, smoke=args.smoke)
    print("acceptance checks passed.")


if __name__ == "__main__":
    main()
