"""EXP-BASELINE — the related-work baselines, measured.

Two comparisons the paper makes qualitatively (Section 7), made
quantitative:

* **TRBAC (interval-based temporal RBAC)** — role enabling evaluated on
  the serving server's *skewed local clock* errs near window edges;
  the duration-based scheme is skew-immune (only drift matters, at
  parts-per-million).  We measure the wrongful-decision rate as clock
  skew grows.
* **Local-history access control** — per-site histories miss accesses
  performed elsewhere; we measure the wrongful-grant rate as the mobile
  object's activity spreads over more servers.

Run:  pytest benchmarks/bench_baselines.py --benchmark-only
"""

import numpy as np
import pytest

from repro.coalition.clock import ServerClock
from repro.rbac.history_baseline import CoordinatedReference, LocalHistoryEngine
from repro.rbac.trbac import PeriodicInterval, TRBACEngine, TRBACPolicy
from repro.srac.parser import parse_constraint
from repro.temporal.validity import ValidityTracker
from repro.traces.trace import AccessKey

LIMIT = parse_constraint("count(0, 5, [res = rsw])")
WINDOW = PeriodicInterval(24.0, 0.0, 3.0)


def trbac_error_rate(skew: float, n_requests: int = 2000, seed: int = 7) -> float:
    """Fraction of wrongful TRBAC decisions at clock skew ±``skew``."""
    policy = TRBACPolicy()
    policy.add_role("editor", WINDOW)
    policy.grant("editor", op="write", resource="issue")
    engine = TRBACEngine(policy)
    rng = np.random.default_rng(seed)
    times = rng.uniform(0.0, 24.0 * 7, size=n_requests)
    skews = rng.uniform(-skew, skew, size=n_requests)
    wrong = 0
    access = ("write", "issue", "s1")
    for t, s in zip(times, skews):
        truth = engine.decide(["editor"], access, t)  # perfect clock
        seen = engine.decide(["editor"], access, t, ServerClock(skew=s))
        wrong += truth != seen
    return wrong / n_requests


def duration_error_rate(skew: float, n_requests: int = 2000, seed: int = 7) -> float:
    """Same workload under the paper's duration scheme: the budget is
    metered by elapsed time (per window occurrence), which no skew can
    distort — errors come only from drift, which we set to zero here
    exactly as for TRBAC."""
    rng = np.random.default_rng(seed)
    times = rng.uniform(0.0, 24.0 * 7, size=n_requests)
    wrong = 0
    for t in times:
        window_start = (t // 24.0) * 24.0
        tracker = ValidityTracker(duration=WINDOW.window_length())
        tracker.activate(window_start)
        truth = WINDOW.enabled_at(t)
        seen = tracker.is_valid(t)
        wrong += truth != seen
    return wrong / n_requests


@pytest.mark.parametrize("skew", [0.0, 0.25, 0.5, 1.0, 2.0])
def bench_trbac_skew_errors(benchmark, skew):
    rate = benchmark.pedantic(trbac_error_rate, args=(skew,), rounds=2, iterations=1)
    benchmark.extra_info["skew_hours"] = skew
    benchmark.extra_info["error_rate"] = rate
    if skew == 0.0:
        assert rate == 0.0  # TRBAC is exact with a perfect clock
    else:
        # Expected wrongful fraction ≈ skew / period (edge crossings).
        assert rate > 0.0


def bench_duration_scheme_skew_immune(benchmark):
    rate = benchmark.pedantic(
        duration_error_rate, args=(2.0,), rounds=2, iterations=1
    )
    assert rate == 0.0
    benchmark.extra_info["error_rate"] = rate


@pytest.mark.parametrize("n_servers", [1, 2, 4, 8])
def bench_local_history_wrongful_grants(benchmark, n_servers):
    """Local-history baseline vs coordinated reference on histories
    spread over ``n_servers`` servers."""
    local = LocalHistoryEngine()
    coordinated = CoordinatedReference()
    rng = np.random.default_rng(n_servers)

    def run():
        wrongful = 0
        trials = 100
        for trial in range(trials):
            length = int(rng.integers(4, 9))
            history = tuple(
                AccessKey("exec", "rsw", f"s{int(rng.integers(n_servers))}")
                for _ in range(length)
            )
            request = AccessKey("exec", "rsw", f"s{int(rng.integers(n_servers))}")
            granted_local = local.decide(LIMIT, history, request)
            granted_truth = coordinated.decide(LIMIT, history, request)
            wrongful += granted_local and not granted_truth
        return wrongful / trials

    rate = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["wrongful_grant_rate"] = rate
    if n_servers == 1:
        assert rate == 0.0  # single site: local sees everything
    if n_servers >= 4:
        assert rate > 0.0  # coalition mobility breaks the local baseline
