"""EXP-NAPLET — the mobile-agent emulation at scale (Section 5).

Sweeps of the discrete-event scheduler: agents × servers, migration
churn, channel traffic, and the paper's ``ApplAgentProg`` cloned-naplet
fan-out.  Shape to reproduce: simulation cost grows ≈linearly in total
executed accesses; cloning cuts makespan ≈k× for k clones.

Run:  pytest benchmarks/bench_agent_roaming.py --benchmark-only
"""

import pytest

from repro.agent.naplet import Naplet
from repro.agent.patterns import ParPattern, SeqPattern, SingletonPattern
from repro.agent.scheduler import Simulation
from repro.sral.builder import access, recv, send, var
from repro.sral.ast import seq
from repro.workloads.digraphs import coalition_topology


def _roamer(n_accesses: int, n_servers: int, name: str) -> Naplet:
    program = seq(
        *(
            access("read", "res1", f"s{(i % n_servers) + 1}")
            for i in range(n_accesses)
        )
    )
    return Naplet("owner", program, name=name)


@pytest.mark.parametrize("n_agents", [1, 10, 50])
def bench_agents_scaling(benchmark, n_agents):
    """Many concurrent roaming agents over 8 servers."""

    def run():
        sim = Simulation(coalition_topology(8))
        for i in range(n_agents):
            sim.add_naplet(_roamer(20, 8, f"agent{i}"), "s1")
        return sim.run()

    report = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert report.all_finished()


@pytest.mark.parametrize("n_servers", [2, 8, 32])
def bench_migration_churn(benchmark, n_servers):
    """One agent hopping across every server each step."""

    def run():
        sim = Simulation(coalition_topology(n_servers))
        sim.add_naplet(_roamer(3 * n_servers, n_servers, "hopper"), "s1")
        return sim.run()

    report = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert report.all_finished()


@pytest.mark.parametrize("k", [1, 2, 4, 8])
def bench_cloned_fanout(benchmark, k):
    """ApplAgentProg: k clones share 16 servers; makespan shrinks ~k x."""
    n = 16
    servers = [f"s{i + 1}" for i in range(n)]
    share = n // k
    branches = [
        SeqPattern(
            [SingletonPattern("read", "res1", servers[i * share + j]) for j in range(share)]
        )
        for i in range(k)
    ]
    pattern = ParPattern(branches) if k > 1 else branches[0]

    def run():
        sim = Simulation(coalition_topology(n))
        sim.add_naplet(Naplet("owner", pattern, name="fan"), "s1")
        return sim.run()

    report = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["makespan"] = report.end_time


def bench_channel_pingpong(benchmark):
    """1000 messages bounced between two agents through a channel."""
    rounds = 500
    ping = Naplet(
        "owner",
        seq(
            *(x for i in range(rounds) for x in (send("c1", i), recv("c2", "ack")))
        ),
        name="ping",
    )
    pong = Naplet(
        "owner",
        seq(
            *(x for i in range(rounds) for x in (recv("c1", "v"), send("c2", var("v") + 1)))
        ),
        name="pong",
    )

    def run():
        sim = Simulation(coalition_topology(2))
        sim.add_naplet(ping_fresh(), "s1")
        sim.add_naplet(pong_fresh(), "s2")
        return sim.run()

    def ping_fresh():
        return Naplet("owner", ping.program, name="ping")

    def pong_fresh():
        return Naplet("owner", pong.program, name="pong")

    report = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert report.all_finished()
