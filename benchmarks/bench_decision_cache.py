"""EXP-CACHE — the compiled-constraint cache + coreachability layer.

A coalition server replays the same kind of request over and over
against one policy, so per-decision compilation and BFS satisfiability
searches are pure waste: the policy is constant.  This benchmark
measures the repeated-decision workload three ways:

* **baseline** — the pre-change hot path: explicit history replay with
  a fresh constraint compilation and an explicit BFS per decision
  (``use_srac_caches=False``);
* **cold** — the cached engine's very first decision, which pays the
  one-off compile + live-set precomputation;
* **warm** — the cached engine in incremental mode: one monitor step
  plus an O(1) live-set membership per decision.

Decisions are verified bit-identical between baseline and warm before
any number is reported, and the engine's cache hit-rates are printed.

Run:  pytest benchmarks/bench_decision_cache.py --benchmark-only
  or: python benchmarks/bench_decision_cache.py [--quick]
"""

from __future__ import annotations

import time

from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.srac import reachability
from repro.srac.parser import parse_constraint
from repro.traces.trace import AccessKey

#: A counting bound + an ordering obligation.  The bound is generous
#: enough never to deny this workload, yet keeps the monitor product
#: (1002 × 3 states) well inside the reachability budget, so the warm
#: path is a pure live-set membership test.
CONSTRAINT_SRC = (
    "count(0, 1000, [res = rsw]) & (exec rsw @ s0 >> exec rsw @ s1)"
)

SERVERS = 5
HISTORY_LEN = 200
HISTORY = tuple(
    AccessKey("exec", "rsw", f"s{i % SERVERS}") for i in range(HISTORY_LEN)
)


def _engine(use_srac_caches: bool):
    policy = Policy()
    policy.add_user("u")
    policy.add_role("r")
    policy.add_permission(
        Permission(
            "p",
            op="exec",
            resource="rsw",
            spatial_constraint=parse_constraint(CONSTRAINT_SRC),
        )
    )
    policy.assign_user("u", "r")
    policy.assign_permission("r", "p")
    engine = AccessControlEngine(policy, use_srac_caches=use_srac_caches)
    session = engine.authenticate("u", 0.0)
    engine.activate_role(session, "r", 0.0)
    return engine, session


def _request(i: int) -> tuple[str, str, str]:
    return ("exec", "rsw", f"s{i % SERVERS}")


def decide_baseline(engine, session, n: int) -> list[bool]:
    """Pre-change hot path: explicit history replay, fresh compile and
    BFS per decision."""
    clock = getattr(engine, "_bench_clock", 0.0)
    verdicts = []
    for i in range(n):
        clock += 1.0
        verdicts.append(
            engine.decide(session, _request(i), clock, HISTORY).granted
        )
    engine._bench_clock = clock
    return verdicts


def decide_warm(engine, session, n: int) -> list[bool]:
    """Cached incremental mode over the same effective history."""
    clock = getattr(engine, "_bench_clock", 0.0)
    verdicts = []
    for i in range(n):
        clock += 1.0
        verdicts.append(
            engine.decide(session, _request(i), clock, history=None).granted
        )
    engine._bench_clock = clock
    return verdicts


def verify_identical(n: int = 50) -> None:
    """Warm cached decisions must equal the uncached baseline's."""
    baseline_engine, baseline_session = _engine(use_srac_caches=False)
    warm_engine, warm_session = _engine(use_srac_caches=True)
    warm_session.observed = HISTORY
    expected = decide_baseline(baseline_engine, baseline_session, n)
    actual = decide_warm(warm_engine, warm_session, n)
    if expected != actual:
        raise AssertionError(
            f"cached decisions diverge from the uncached path: "
            f"{expected} != {actual}"
        )


def measure(n: int = 2000) -> dict:
    """Cold/warm/baseline timings plus hit-rates, as one report dict."""
    verify_identical()
    reachability.clear_caches()

    engine, session = _engine(use_srac_caches=False)
    start = time.perf_counter()
    decide_baseline(engine, session, n)
    baseline_wall = time.perf_counter() - start

    engine, session = _engine(use_srac_caches=True)
    session.observed = HISTORY
    start = time.perf_counter()
    decide_warm(engine, session, 1)
    cold_wall = time.perf_counter() - start
    # Warm the remaining (constraint, access) entries the way a real
    # server would: from its request alphabet, before traffic arrives.
    engine.prewarm([_request(i) for i in range(SERVERS)])
    start = time.perf_counter()
    decide_warm(engine, session, n)
    warm_wall = time.perf_counter() - start

    stats = engine.cache_stats()
    spatial_checks = stats.live_hits + stats.live_fallbacks
    return {
        "n": n,
        "baseline_rate": n / baseline_wall,
        "cold_first_ms": cold_wall * 1e3,
        "warm_rate": n / warm_wall,
        "speedup": (n / warm_wall) / (n / baseline_wall),
        "live_hit_rate": stats.live_hits / max(1, spatial_checks),
        "fallbacks": stats.live_fallbacks,
        "stats": stats.as_dict(),
    }


def print_report(report: dict) -> None:
    print(f"repeated-decision workload: n={report['n']}, "
          f"history={HISTORY_LEN}, servers={SERVERS}")
    print(f"{'config':<26}{'decisions/s':>13}")
    print(f"{'baseline (pre-cache)':<26}{report['baseline_rate']:>13.0f}")
    print(f"{'warm (cached)':<26}{report['warm_rate']:>13.0f}")
    print(f"cold first decision: {report['cold_first_ms']:.2f} ms "
          f"(compile + live-set build)")
    print(f"warm speedup over baseline: {report['speedup']:.1f}x")
    print(f"live-set hit rate: {report['live_hit_rate']:.1%} "
          f"({report['fallbacks']} BFS fallbacks)")
    print("counters:", report["stats"])


# -- pytest-benchmark entry points ----------------------------------------


def bench_decision_baseline(benchmark):
    engine, session = _engine(use_srac_caches=False)
    benchmark(decide_baseline, engine, session, 100)


def bench_decision_cached_warm(benchmark):
    engine, session = _engine(use_srac_caches=True)
    session.observed = HISTORY
    decide_warm(engine, session, 1)  # warm the caches once
    benchmark(decide_warm, engine, session, 100)


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: small workload, assert the cached path wins",
    )
    args = parser.parse_args()
    n = 300 if args.quick else 2000
    report = measure(n)
    print_report(report)
    if args.quick:
        assert report["speedup"] > 1.5, (
            f"cached path should beat the baseline, got {report['speedup']:.2f}x"
        )
        assert report["fallbacks"] == 0
        print("quick-mode assertions passed.")


if __name__ == "__main__":
    main()
