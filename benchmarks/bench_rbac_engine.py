"""EXP-RBAC — decision throughput of the extended engine, with an
ablation over the paper's two additions.

Four configurations decide the same access stream:

* plain RBAC (no constraints, time-insensitive permissions);
* + spatial constraint checking only;
* + temporal validity tracking only;
* the full coordinated model (both).

Shape to reproduce: constraints cost real work, but stay within small
constant factors of plain RBAC for the paper's fragment; role-hierarchy
depth adds near-linear lookup cost.

Run:  pytest benchmarks/bench_rbac_engine.py --benchmark-only
"""

import math

import pytest

from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.srac.parser import parse_constraint
from repro.traces.trace import AccessKey

LIMIT = parse_constraint("count(0, 1000, [res = rsw])")


def _engine(spatial: bool, temporal: bool, hierarchy_depth: int = 0):
    policy = Policy()
    policy.add_user("u")
    policy.add_role("r0")
    policy.add_permission(
        Permission(
            "p",
            op="exec",
            resource="rsw",
            spatial_constraint=LIMIT if spatial else None,
            validity_duration=1e9 if temporal else math.inf,
        )
    )
    policy.assign_permission("r0", "p")
    top = "r0"
    for depth in range(hierarchy_depth):
        senior = f"r{depth + 1}"
        policy.add_role(senior)
        policy.add_inheritance(senior, top)
        top = senior
    policy.assign_user("u", top)
    engine = AccessControlEngine(policy)
    session = engine.authenticate("u", 0.0)
    engine.activate_role(session, top, 0.0)
    return engine, session


HISTORY = tuple(AccessKey("exec", "rsw", f"s{i % 5}") for i in range(50))


def _decide_many(engine, session, n=100):
    # Benchmark harnesses call this repeatedly on one session; validity
    # trackers require monotone time, so keep a per-engine clock.
    clock = getattr(engine, "_bench_clock", 0.0)
    granted = 0
    for i in range(n):
        clock += 1.0
        decision = engine.decide(
            session, ("exec", "rsw", f"s{i % 5}"), clock, HISTORY
        )
        granted += decision.granted
    engine._bench_clock = clock
    return granted


@pytest.mark.parametrize(
    "label,spatial,temporal",
    [
        ("plain", False, False),
        ("spatial", True, False),
        ("temporal", False, True),
        ("full", True, True),
    ],
)
def bench_decision_ablation(benchmark, label, spatial, temporal):
    engine, session = _engine(spatial, temporal)
    granted = benchmark(_decide_many, engine, session)
    assert granted == 100
    benchmark.extra_info["config"] = label


@pytest.mark.parametrize("depth", [0, 4, 16, 64])
def bench_hierarchy_depth(benchmark, depth):
    """Permission lookup through a role chain of growing depth."""
    engine, session = _engine(spatial=False, temporal=False, hierarchy_depth=depth)
    granted = benchmark(_decide_many, engine, session, 50)
    assert granted == 50


def bench_session_setup(benchmark):
    """authenticate + activate (the per-arrival cost at a server)."""
    policy = Policy()
    policy.add_user("u")
    policy.add_role("r")
    policy.add_permission(Permission("p"))
    policy.assign_user("u", "r")
    policy.assign_permission("r", "p")
    engine = AccessControlEngine(policy)

    def setup():
        session = engine.authenticate("u", 0.0)
        engine.activate_role(session, "r", 0.0)
        engine.close_session(session, 0.0)

    benchmark(setup)


def _decide_many_incremental(engine, session, n=100):
    """Incremental mode: cached session monitors, no history replay."""
    clock = getattr(engine, "_bench_clock", 0.0)
    granted = 0
    for i in range(n):
        clock += 1.0
        decision = engine.decide(
            session, ("exec", "rsw", f"s{i % 5}"), clock, history=None
        )
        if decision.granted:
            engine.observe(session, ("exec", "rsw", f"s{i % 5}"))
        granted += decision.granted
    engine._bench_clock = clock
    return granted


def bench_decision_incremental(benchmark):
    """The session-monitor optimisation: spatial checking without
    replaying the proof chain (compare bench_decision_ablation[spatial])."""
    engine, session = _engine(spatial=True, temporal=False)
    session.observed = HISTORY
    benchmark(_decide_many_incremental, engine, session)
