"""The paper's ``ApplAgentProg`` (Section 5.2): parallel execution by
cloned naplets.

"The following class ApplAgentProg defines a parallel execution pattern
by the use of k cloned naplets, each for an equal share of the servers.
… The naplets report their results to home at the end of their
execution."

We build the same structure with the library's pattern constructs: a
``ParPattern`` of ``k`` ``SeqPattern`` branches, one per clone, each
covering an equal share of ``n`` servers; every clone reports its
result to the home channel, and a collector agent gathers the reports
(the "home" side).

Run:  python examples/parallel_audit.py
"""

from repro import (
    Coalition,
    CoalitionServer,
    Naplet,
    ParPattern,
    Resource,
    SeqPattern,
    Simulation,
    SingletonPattern,
    parse_program,
)
from repro.sral.ast import Send, StrLit, seq
from repro.sral.printer import unparse

N_SERVERS = 8
K_CLONES = 4  # each clone audits n/k servers

servers = [f"s{i + 1}" for i in range(N_SERVERS)]
share = N_SERVERS // K_CLONES

# One SeqPattern per clone over its share of the servers, exactly as
# the paper's loop builds AccessPattn(guard, accesslist[i*k+j], report).
branches = []
for i in range(K_CLONES):
    accesses = [
        SingletonPattern("exec", "verify_tool", servers[i * share + j])
        for j in range(share)
    ]
    branch_program = seq(
        SeqPattern(accesses).to_program(),
        Send("home", StrLit(f"branch{i}-done")),  # report to home
    )
    branches.append(branch_program)

# The ParPattern composes the clones; compose manually since each branch
# already ends with its report.
from repro.sral.ast import par

program = par(*branches)
print("parallel audit program:")
print("  " + unparse(program))

# The home collector receives one report per clone.
collector_src = " ; ".join(f"home ? r{i}" for i in range(K_CLONES))
collector = Naplet("home", parse_program(collector_src), name="home-collector")

coalition = Coalition(
    [CoalitionServer(s, resources=[Resource("verify_tool")]) for s in servers]
)
simulation = Simulation(coalition, access_cost=1.0)
auditor = Naplet("auditor", program, name="auditor")
simulation.add_naplet(auditor, servers[0])
simulation.add_naplet(collector, servers[0])
report = simulation.run()

print("\nstatuses:", report.statuses())
clones = [n for n in report.naplets if "/" in n.naplet_id]
print(f"clones spawned: {len(clones)}")
for clone in clones:
    print(f"  {clone.naplet_id}: visited {[a.server for a in clone.history()]}")
reports = sorted(collector.env[f"r{i}"] for i in range(K_CLONES))
print("reports received at home:", reports)

# Wall-clock benefit of parallelism: each clone audits its share
# concurrently, so the virtual makespan is ~(share accesses + migrations),
# not n accesses.
sequential = Simulation(
    Coalition([CoalitionServer(s, resources=[Resource("verify_tool")]) for s in servers]),
    access_cost=1.0,
)
flat = SeqPattern([SingletonPattern("exec", "verify_tool", s) for s in servers])
solo = Naplet("auditor", flat, name="solo")
sequential.add_naplet(solo, servers[0])
solo_report = sequential.run()
print(
    f"\nvirtual makespan: parallel={report.end_time}  "
    f"sequential={solo_report.end_time}"
)
assert report.end_time < solo_report.end_time
