"""Why coordination matters: the paper's Section 7 critiques, live.

Two baselines from the related work, side by side with the coordinated
model:

1. **TRBAC** (interval-based temporal RBAC): role enabling is checked
   against an absolute periodic window — on whatever clock the serving
   server has. With skewed coalition clocks it errs near window edges;
   the duration scheme cannot, because elapsed time is skew-free.
2. **Local-history access control**: each server only remembers what
   happened locally, so a roaming device escapes its quota by moving.

Run:  python examples/baseline_comparison.py
"""

import numpy as np

from repro.coalition.clock import ServerClock
from repro.rbac.history_baseline import CoordinatedReference, LocalHistoryEngine
from repro.rbac.trbac import PeriodicInterval, TRBACEngine, TRBACPolicy
from repro.srac.parser import parse_constraint
from repro.temporal.validity import ValidityTracker
from repro.traces.trace import AccessKey

# ----------------------------------------------------------------------
print("1. TRBAC vs duration scheme under clock skew")
print("   (daily editing window 00:00-03:00; request at global 02:30)\n")

window = PeriodicInterval(24.0, 0.0, 3.0)
policy = TRBACPolicy()
policy.add_role("editor", window)
policy.grant("editor", op="write", resource="issue")
trbac = TRBACEngine(policy)
request = ("write", "issue", "s1")
global_t = 2.5  # inside the window, objectively

print(f"{'server clock skew':>20} {'TRBAC verdict':>15} {'correct?':>9}")
for skew in (0.0, 0.25, 1.0):
    verdict = trbac.decide(["editor"], request, global_t, ServerClock(skew=skew))
    print(f"{skew:>17} h {str(verdict):>15} {str(verdict is True):>9}")

tracker = ValidityTracker(duration=window.window_length())
tracker.activate(0.0)
print(f"\nduration scheme at the same instant: valid={tracker.is_valid(global_t)}"
      "  (no clock reading involved — skew cannot matter)")

# The same skew causes the mirror error after the deadline:
late = 3.5
slow = trbac.decide(["editor"], request, late, ServerClock(skew=-1.0))
print(f"and at global {late} (past deadline) a slow clock still grants: {slow}")
tracker2 = ValidityTracker(duration=window.window_length())
tracker2.activate(0.0)
print(f"duration scheme: valid={tracker2.is_valid(late)}")

# ----------------------------------------------------------------------
print("\n2. Local-history vs coordinated control")
print("   (RSW quota: at most 5 runs anywhere; device ran it 5x at s1)\n")

limit = parse_constraint("count(0, 5, [res = rsw])")
history = (AccessKey("exec", "rsw", "s1"),) * 5
local = LocalHistoryEngine()
coordinated = CoordinatedReference()

for server in ("s1", "s2"):
    request = AccessKey("exec", "rsw", server)
    l = local.decide(limit, history, request)
    c = coordinated.decide(limit, history, request)
    print(f"   6th request at {server}: local-history grants={l}  coordinated grants={c}")

print(
    "\nThe local mechanism is sound only while the device stays put; the\n"
    "moment it roams, the quota evaporates. The coordinated engine sees\n"
    "the hash-chained history from every site and denies everywhere."
)

# ----------------------------------------------------------------------
print("\n3. Error rates at scale (2000 random requests over a week)\n")


def error_rates(skew: float, n: int = 2000, seed: int = 7) -> tuple[float, float]:
    rng = np.random.default_rng(seed)
    times = rng.uniform(0.0, 24.0 * 7, size=n)
    skews = rng.uniform(-skew, skew, size=n)
    trbac_wrong = duration_wrong = 0
    for t, s in zip(times, skews):
        truth = window.enabled_at(t)
        trbac_wrong += truth != trbac.decide(
            ["editor"], ("write", "issue", "s1"), t, ServerClock(skew=s)
        )
        meter = ValidityTracker(duration=window.window_length())
        meter.activate((t // 24.0) * 24.0)  # window start, metered not read
        duration_wrong += truth != meter.is_valid(t)
    return trbac_wrong / n, duration_wrong / n


print(f"{'skew (h)':>9} {'TRBAC err':>10} {'duration err':>13}")
for skew in (0.0, 0.5, 1.0, 2.0):
    t_err, d_err = error_rates(skew)
    print(f"{skew:>9.2f} {t_err:>10.3f} {d_err:>13.3f}")
