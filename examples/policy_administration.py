"""A security officer's walkthrough: author a policy in the text DSL,
vet agents at admission, classify temporal permissions, and audit the
decision trail.

This example exercises the administration surface of the library:

1. the policy text format (the analog of Naplet's Java policy files);
2. static vetting at admission — type checking the agent's program and
   proving it *can* satisfy the spatial constraints (Theorem 3.2 used
   as an admission filter);
3. permission classification (the paper's future work): all
   licensed-software permissions share one aggregated validity budget;
4. the audit log as the coalition's evidence trail.

Run:  python examples/policy_administration.py
"""

from repro import (
    AccessControlEngine,
    Coalition,
    CoalitionServer,
    Naplet,
    NapletSecurityManager,
    Resource,
    parse_program,
)
from repro.agent.principal import Authority
from repro.rbac.policy import Policy
from repro.temporal.aggregation import (
    AggregationStrategy,
    PermissionClass,
    PermissionClassifier,
)

# ----------------------------------------------------------------------
# 1. The policy, as the security officer writes it.
POLICY_TEXT = """
# Coalition trial-software policy
user contractor
role evaluator

# Each package may run at most 3 times anywhere in the coalition, and
# each permission individually carries a 3-hour validity budget.
permission p_word  exec word  @ * constraint "count(0, 3, [res = word])"  duration 3
permission p_excel exec excel @ * constraint "count(0, 3, [res = excel])" duration 3
permission p_docs  read docs  @ *

assign contractor evaluator
grant evaluator p_word
grant evaluator p_excel
grant evaluator p_docs
"""
policy = Policy.from_text(POLICY_TEXT)
print("policy loaded:", sorted(policy.permissions))

# 2. Classify the office permissions: together they may be valid for at
#    most 3 hours total (MIN of the member budgets), not 3 hours each.
classifier = PermissionClassifier(
    [
        PermissionClass(
            "office-suite",
            frozenset({"p_word", "p_excel"}),
            AggregationStrategy.MIN,  # together at most 3h, not 3h each
        )
    ]
)
engine = AccessControlEngine(policy, classifier=classifier)

authority = Authority()
certificate = authority.register("contractor")
security = NapletSecurityManager(
    engine,
    authority=authority,
    admission_check=True,   # program must be able to satisfy constraints
    typecheck=True,         # and be statically well-typed
    incremental=True,       # O(1)-in-history decisions
)

coalition = Coalition(
    [
        CoalitionServer("hq", resources=[Resource("word"), Resource("docs")]),
        CoalitionServer("branch", resources=[Resource("excel"), Resource("docs")]),
    ]
)

# ----------------------------------------------------------------------
# 3. Admission + runtime enforcement (defense in depth): the ill-typed
#    agent is rejected before running a single instruction; the
#    over-budget agent is *admitted* (some unrolling of its loop
#    complies — admission is an exists-check) but the coordinated
#    runtime check stops it at the 4th access.
from repro.agent.scheduler import Simulation  # noqa: E402
from repro.agent.naplet import NapletStatus  # noqa: E402

ill_typed = Naplet(
    "contractor",
    parse_program("x := 1 + true ; exec word @ hq"),
    certificate=certificate,
    roles=("evaluator",),
    name="ill-typed",
)
over_budget = Naplet(
    "contractor",
    parse_program("n := 0 ; while n < 4 do { exec word @ hq ; n := n + 1 }"),
    certificate=certificate,
    roles=("evaluator",),
    name="over-budget",
)
well_behaved = Naplet(
    "contractor",
    parse_program(
        "read docs @ hq ; exec word @ hq ; exec excel @ branch ; read docs @ branch"
    ),
    certificate=certificate,
    roles=("evaluator",),
    name="well-behaved",
)

simulation = Simulation(coalition, security=security, access_cost=0.5)
for agent in (ill_typed, over_budget, well_behaved):
    simulation.add_naplet(agent, "hq")
report = simulation.run()

print("\nadmission results:")
for agent in (ill_typed, over_budget, well_behaved):
    note = f"  ({agent.error})" if agent.error else ""
    print(f"  {agent.naplet_id:<13} {agent.status.value}{note}")
assert ill_typed.status is NapletStatus.FAILED       # static rejection
assert over_budget.status is NapletStatus.DENIED     # runtime denial
assert len(over_budget.history()) == 3               # exactly the quota
assert well_behaved.status is NapletStatus.FINISHED

# ----------------------------------------------------------------------
# 4. The shared class budget: word at hq consumed the office-suite
#    budget that excel at branch also draws from.
session = security.session_of(well_behaved)
print("\nvalidity trackers of the finished agent's session:")
for key, tracker in sorted(session.trackers.items()):
    print(f"  {key:<20} remaining budget: {tracker.remaining_budget():.2f}h")
assert "class:office-suite" in session.trackers

# 5. The audit trail.
print(f"\naudit log: {len(engine.audit)} decisions, "
      f"grant rate {engine.audit.grant_rate():.0%}")
for decision in engine.audit.grants()[:4]:
    print(f"  t={decision.time:<4} GRANT {decision.access} via {decision.permission}")
