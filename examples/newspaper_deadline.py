"""The newspaper deadline (Section 1): "the editing deadline for an
issue of a daily newspaper is by 3am".

Editors hold an ``edit`` permission over the issue document with a
finite validity duration — the editing window.  While the permission is
*valid*, writes are granted; once the accumulated valid time reaches
``dur(perm)``, the permission drops to *active-but-invalid* and every
further write is denied, wherever the editor's device has roamed to.

The example also contrasts the two base-time schemes of Section 4:

* Scheme B (whole execution, ``t_b = t_1``): one budget for the night —
  migrating to another bureau's server does NOT reopen the window.
* Scheme A (per-server, ``t_b = t_i``): the budget is per visit, so a
  migration restarts it (useful for per-site quotas, wrong for a global
  deadline — the run shows why).

Run:  python examples/newspaper_deadline.py
"""

from repro import (
    AccessControlEngine,
    Coalition,
    CoalitionServer,
    Naplet,
    NapletSecurityManager,
    Permission,
    Policy,
    Resource,
    Scheme,
    Simulation,
)
from repro.sral.parser import parse_program

MIDNIGHT_TO_3AM = 3.0  # hours of editing budget


def build(scheme: Scheme):
    policy = Policy()
    policy.add_user("editor")
    policy.add_role("night-editor")
    policy.add_permission(
        Permission(
            "p_edit",
            op="write",
            resource="issue",
            validity_duration=MIDNIGHT_TO_3AM,
        )
    )
    policy.assign_user("editor", "night-editor")
    policy.assign_permission("night-editor", "p_edit")
    engine = AccessControlEngine(policy, scheme=scheme)
    coalition = Coalition(
        [
            CoalitionServer("bureau_detroit", resources=[Resource("issue")]),
            CoalitionServer("bureau_chicago", resources=[Resource("issue")]),
        ]
    )
    return engine, coalition


# The editor saves the issue once per hour: three edits in Detroit,
# then moves to the Chicago bureau and tries twice more.
PROGRAM = parse_program(
    """
    write issue @ bureau_detroit ;
    write issue @ bureau_detroit ;
    write issue @ bureau_chicago ;
    write issue @ bureau_chicago ;
    write issue @ bureau_detroit
    """
)

for scheme in (Scheme.WHOLE_EXECUTION, Scheme.PER_SERVER):
    engine, coalition = build(scheme)
    simulation = Simulation(
        coalition,
        security=NapletSecurityManager(engine),
        access_cost=1.0,  # each edit session takes one hour
        on_denied="skip",
    )
    naplet = Naplet("editor", PROGRAM, roles=("night-editor",), name=f"editor-{scheme.value}")
    simulation.add_naplet(naplet, "bureau_detroit")
    simulation.run()

    print(f"scheme = {scheme.value}")
    print(f"  edits accepted: {len(naplet.history())} of 5")
    for access in naplet.history():
        print(f"    accepted: {access}")
    for decision in naplet.denials:
        print(f"    DENIED at t={decision.time}: {decision.access} ({decision.reason})")
    print()

print(
    "Under the whole-execution scheme the 3-hour budget meters the whole\n"
    "night — including the hour spent travelling between bureaus — so every\n"
    "edit from 3am on is denied no matter which bureau serves it. Under the\n"
    "per-server scheme the budget restarts on each arrival: a per-site\n"
    "quota, not a deadline. Pick the scheme to match the requirement."
)
