"""Section 6 / Figure 1: integrity verification of distributed software
modules by a mobile auditor.

A software package's modules are spread over four enterprise servers
(Figure 1's dotted boundaries).  The auditor dispatches a mobile code
that roams the coalition hashing each module, in an order that respects
the dependency digraph ("a module is verified as correct if and only if
all of its depended modules and itself are correct") while exploiting
data locality, and must finish "within a pre-specified period of time".

Three runs:
1. a clean audit — everything verifies;
2. a tampered module — it and its transitive dependants fail;
3. a tight deadline — the verification permission's validity duration
   expires mid-audit and the remaining modules stay unverified.

Run:  python examples/integrity_verification.py
"""

from repro.apps.integrity import (
    auditor_program,
    figure1_graph,
    run_audit,
    verification_constraint,
)
from repro.srac.checker import check_program
from repro.sral.printer import format_program

graph = figure1_graph()
print("Figure 1 module dependency digraph")
print("==================================")
for module in graph.modules():
    deps = ", ".join(module.depends_on) if module.depends_on else "-"
    print(f"  {module.name:<4} @ {module.server}   depends on: {deps}")

print("\nauditor itinerary (locality-greedy, dependencies first):")
print("  " + " -> ".join(graph.locality_order()))

constraint = verification_constraint(graph)
program = auditor_program(graph)
print(
    "\nstatic guarantee (Theorem 3.2): auditor program |= dependency "
    "constraint:",
    check_program(program, constraint),
)

print("\n--- run 1: clean audit ------------------------------------------")
clean = run_audit(graph)
print(f"finished={clean.finished}  all verified={clean.all_verified()}")
print(f"migrations={clean.migrations}  virtual duration={clean.duration}")

print("\n--- run 2: module m7 tampered -----------------------------------")
tampered = run_audit(graph, tamper={"m7"})
print("hash mismatch at:", [n for n, ok in tampered.hash_ok.items() if not ok])
print("unverified (m7 + its transitive dependants):", tampered.unverified())
assert set(tampered.unverified()) == set(graph.dependants_closure({"m7"}))

print("\n--- run 3: deadline of 6 time units ------------------------------")
rushed = run_audit(graph, deadline=6.0)
print(
    f"audited {len(rushed.audited)}/12 modules before the validity "
    f"duration expired; denied accesses: {rushed.denied_accesses}"
)
print("unverified:", rushed.unverified())
assert rushed.denied_accesses > 0

print("\n--- the auditor program (SRAL) -----------------------------------")
print(format_program(program))
