"""Quickstart: the whole stack in sixty lines.

1. Write a mobile object's behaviour in SRAL.
2. Inspect its trace model (Definition 3.2).
3. Check a spatial constraint against it (Theorem 3.2).
4. Run the object as a mobile agent over a simulated coalition with the
   coordinated access-control engine enforcing the constraint.

Run:  python examples/quickstart.py
"""

from repro import (
    AccessControlEngine,
    Coalition,
    CoalitionServer,
    Naplet,
    NapletSecurityManager,
    Permission,
    Policy,
    Resource,
    Simulation,
    check_program,
    parse_constraint,
    parse_program,
    program_traces,
)

# 1. A mobile object: read a manifest at s1, then verify two modules,
#    choosing the order at runtime.
program = parse_program(
    """
    read manifest @ s1 ;
    if fast then { exec modA @ s1 ; exec modB @ s2 }
            else { exec modB @ s2 ; exec modA @ s1 }
    """
)

# 2. Its trace model: both orders are possible traces.
model = program_traces(program)
print("traces of the program:")
for trace in sorted(model.all_traces()):
    print("   ", " -> ".join(map(str, trace)))

# 3. A spatial constraint: the manifest must be read before modA is
#    executed — and it provably holds on every trace (P |= C).
constraint = parse_constraint("read manifest @ s1 >> exec modA @ s1")
print("\nP |= (manifest >> modA):", check_program(program, constraint))

# 4. Run it for real over a two-server coalition under RBAC.
policy = Policy()
policy.add_user("alice")
policy.add_role("verifier")
policy.add_permission(Permission("p_all"))  # wildcard permission
policy.assign_user("alice", "verifier")
policy.assign_permission("verifier", "p_all")

coalition = Coalition(
    [
        CoalitionServer("s1", resources=[Resource("manifest"), Resource("modA")]),
        CoalitionServer("s2", resources=[Resource("modB")]),
    ]
)
engine = AccessControlEngine(policy)
simulation = Simulation(coalition, security=NapletSecurityManager(engine))

naplet = Naplet("alice", program, env={"fast": True}, roles=("verifier",))
simulation.add_naplet(naplet, "s1")
report = simulation.run()

print("\nagent status:", naplet.status.value)
print("proved history:", [str(a) for a in naplet.history()])
print("proof chain verifies:", naplet.registry.verify_chain())
print("decisions logged:", len(engine.audit), "| grants:", len(engine.audit.grants()))
