"""The paper's motivating scenario (Section 1 / Example 3.5).

    "If a mobile device accesses a resource r (e.g. a licensed software
    package or its trial version) on site s1 for too many times during
    a certain time period, it is not allowed to access the resource on
    site s2 forever."

The constraint #(0, 5, σ_RSW(A)) counts accesses to the restricted
software package *wherever they happen*: five runs at s1 exhaust the
budget, and the sixth request — made at a different server — is denied.
This is precisely the coordination that per-site history mechanisms
(e.g. classical history-based access control) cannot express.

Run:  python examples/restricted_software.py
"""

from repro import (
    AccessControlEngine,
    Coalition,
    CoalitionServer,
    Naplet,
    NapletSecurityManager,
    NapletStatus,
    Permission,
    Policy,
    Resource,
    Simulation,
    parse_constraint,
    parse_program,
)
from repro.agent.principal import Authority

LIMIT = parse_constraint("count(0, 5, [res = rsw])")

policy = Policy()
policy.add_user("trial-user")
policy.add_role("trial")
policy.add_permission(
    Permission("p_rsw", op="exec", resource="rsw", spatial_constraint=LIMIT)
)
policy.assign_user("trial-user", "trial")
policy.assign_permission("trial", "p_rsw")

engine = AccessControlEngine(policy)
authority = Authority()
certificate = authority.register("trial-user")
security = NapletSecurityManager(engine, authority=authority)

coalition = Coalition(
    [
        CoalitionServer("s1", resources=[Resource("rsw")]),
        CoalitionServer("s2", resources=[Resource("rsw")]),
    ]
)

# The device runs the trial software five times at s1, then relocates
# and tries again at s2.
program = parse_program(
    "n := 0 ; while n < 5 do { exec rsw @ s1 ; n := n + 1 } ; exec rsw @ s2"
)

simulation = Simulation(coalition, security=security, on_denied="abort")
naplet = Naplet("trial-user", program, certificate=certificate, roles=("trial",))
simulation.add_naplet(naplet, "s1")
simulation.run()

print("status after run:", naplet.status.value)
print("successful accesses:", len(naplet.history()))
for i, access in enumerate(naplet.history(), 1):
    print(f"   {i}. {access}")
assert naplet.status is NapletStatus.DENIED
assert len(naplet.history()) == 5

denial = engine.audit.denials()[0]
print("\ndenied request:", denial.access, "| reason:", denial.reason)
assert denial.access.server == "s2", "the denial is at the OTHER server"

print(
    "\nThe 6th access was refused at s2 although all previous accesses "
    "happened at s1:\ncoordinated spatio-temporal control spans the "
    "whole coalition. Re-authenticating\nor migrating does not help — "
    "the constraint is permanently unsatisfiable:"
)
session2 = engine.authenticate("trial-user", t=100.0)
engine.activate_role(session2, "trial", 100.0)
retry = engine.decide(session2, ("exec", "rsw", "s2"), 101.0, history=naplet.history())
print("retry in a fresh session granted?", retry.granted)
assert not retry.granted
