"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one type at the boundary.  Subsystems raise the
more specific subclasses below.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SralSyntaxError",
    "SracSyntaxError",
    "TraceModelError",
    "AutomatonError",
    "ConstraintError",
    "AlphabetError",
    "TemporalError",
    "RbacError",
    "PolicyError",
    "AuthenticationError",
    "AccessDenied",
    "CoalitionError",
    "ChannelError",
    "MigrationError",
    "ServerUnavailable",
    "FaultError",
    "AgentError",
    "SimulationError",
    "WorkloadError",
    "ServiceError",
]


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class SralSyntaxError(ReproError):
    """Lexical or syntactic error in SRAL concrete syntax.

    Carries the 1-based ``line`` and ``column`` of the offending token
    when available.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class SracSyntaxError(SralSyntaxError):
    """Lexical or syntactic error in SRAC constraint concrete syntax."""


class TraceModelError(ReproError):
    """Ill-formed trace-model operation (e.g. enumerating an infinite model)."""


class AutomatonError(ReproError):
    """Ill-formed automaton construction or operation."""


class ConstraintError(ReproError):
    """Semantic error in a spatial constraint (bad bounds, empty selection...)."""


class AlphabetError(ConstraintError):
    """An access was interned against a compiled alphabet that does not
    contain it.  Raised by the table-driven decision core
    (:mod:`repro.srac.compiled`) instead of a bare ``KeyError`` so
    callers can catch one library type; the vectorized engine treats it
    as "fall back to the scalar path for this batch"."""


class TemporalError(ReproError):
    """Error in the continuous-time model (bad interval, negative duration...)."""


class RbacError(ReproError):
    """Error in the RBAC model (unknown role, cyclic hierarchy...)."""


class PolicyError(RbacError):
    """Error loading or composing a policy."""


class AuthenticationError(RbacError):
    """A subject failed authentication at a coalition server."""


class AccessDenied(RbacError):
    """An access request was denied by the decision engine.

    This is raised only by the *enforcing* entry points; the engine's
    ``decide`` API returns a decision object instead of raising.
    """

    def __init__(self, message: str, decision=None):
        self.decision = decision
        super().__init__(message)


class CoalitionError(ReproError):
    """Error in the coalition substrate (unknown server/resource...)."""


class ChannelError(CoalitionError):
    """Misuse of a communication channel."""


class MigrationError(CoalitionError):
    """A mobile object could not migrate to its next server."""


class ServerUnavailable(CoalitionError):
    """The target coalition server is down (or still recovering) and
    cannot serve the operation right now.  Raised only when a
    :class:`~repro.faults.ServerLifecycle` is attached; callers such as
    the fault-aware transport and the simulation scheduler catch it and
    retry on the configured backoff schedule."""


class FaultError(ReproError):
    """Invalid fault-injection configuration (negative probability,
    overlapping outage windows, empty retry schedule...)."""


class AgentError(ReproError):
    """Error in the mobile-agent emulation layer."""


class SimulationError(AgentError):
    """The discrete-event scheduler reached an inconsistent state
    (e.g. deadlock among blocked agents)."""


class WorkloadError(ReproError):
    """Invalid workload-generator parameters."""


class ServiceError(ReproError):
    """Misuse of the concurrent decision service (unknown shard,
    submission after shutdown, bounded-queue overflow with
    ``block=False``, ...)."""
