"""repro — A Coordinated Spatio-Temporal Access Control Model for
Mobile Computing in Coalition Environments.

Faithful, from-scratch reproduction of Fu & Xu (IPPS 2005):

* :mod:`repro.sral` — the Shared Resource Access Language
  (Definition 3.1): AST, parser, printer, builders, analyses;
* :mod:`repro.traces` — trace models (Definitions 3.2-3.3) and the
  regular-completeness Theorem 3.1, on top of :mod:`repro.automata`;
* :mod:`repro.srac` — the spatial constraint language
  (Definition 3.4), trace satisfaction (Definition 3.6) and the
  polynomial program checker (Theorem 3.2);
* :mod:`repro.temporal` — continuous-time permission validity
  (Section 4, Eq. 4.1, Theorem 4.1) with both base-time schemes;
* :mod:`repro.rbac` — the extended RBAC engine enforcing Eq. 3.1;
* :mod:`repro.coalition` / :mod:`repro.agent` — the Naplet-style
  mobile-agent emulation of mobile computing (Section 5);
* :mod:`repro.apps.integrity` — the Section 6 / Figure 1 integrity
  verification application;
* :mod:`repro.workloads` — reproducible synthetic workload generators.

Quickstart::

    from repro import parse_program, parse_constraint, check_program

    program = parse_program("exec rsw @ s1 ; exec rsw @ s2")
    limit = parse_constraint("count(0, 5, [res = rsw])")
    assert check_program(program, limit)            # P |= C (Theorem 3.2)
"""

from repro.agent import (
    Authority,
    Naplet,
    NapletSecurityManager,
    NapletStatus,
    ParPattern,
    PermissiveSecurityManager,
    SeqItinerary,
    SeqPattern,
    Simulation,
    SingletonPattern,
)
from repro.apps.integrity import figure1_graph, run_audit
from repro.coalition import (
    Coalition,
    CoalitionServer,
    ProofRegistry,
    Resource,
    ServerClock,
)
from repro.errors import AccessDenied, ReproError
from repro.rbac import AccessControlEngine, Permission, Policy
from repro.sral import Program, parse_program, unparse
from repro.srac import (
    Constraint,
    check_program,
    check_program_stats,
    parse_constraint,
    trace_satisfies,
)
from repro.temporal import BooleanTimeline, PermissionState, Scheme, ValidityTracker
from repro.traces import AccessKey, TraceModel, program_traces

__version__ = "1.0.0"

__all__ = [
    "Authority",
    "Naplet",
    "NapletSecurityManager",
    "NapletStatus",
    "ParPattern",
    "PermissiveSecurityManager",
    "SeqItinerary",
    "SeqPattern",
    "Simulation",
    "SingletonPattern",
    "figure1_graph",
    "run_audit",
    "Coalition",
    "CoalitionServer",
    "ProofRegistry",
    "Resource",
    "ServerClock",
    "AccessDenied",
    "ReproError",
    "AccessControlEngine",
    "Permission",
    "Policy",
    "Program",
    "parse_program",
    "unparse",
    "Constraint",
    "check_program",
    "check_program_stats",
    "parse_constraint",
    "trace_satisfies",
    "BooleanTimeline",
    "PermissionState",
    "Scheme",
    "ValidityTracker",
    "AccessKey",
    "TraceModel",
    "program_traces",
    "__version__",
]
