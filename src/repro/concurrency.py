"""Small concurrency primitives shared by the coalition substrate and
the decision service (:mod:`repro.service`).

Two deliberate choices:

* **Stable hashing** — shard routing and lock striping must agree
  across processes and runs, so keys are hashed with CRC-32 rather than
  :func:`hash` (randomised per process by ``PYTHONHASHSEED``).
* **Striping, not one global lock** — coalition-wide tables
  (:class:`~repro.coalition.channels.ChannelTable`,
  :class:`~repro.coalition.channels.SignalTable`) are touched by every
  concurrent agent; a :class:`LockStripe` spreads that contention over
  a fixed array of locks indexed by the key, so agents working on
  different channels/signals/servers never serialise on each other.
"""

from __future__ import annotations

import threading
import zlib

__all__ = ["stable_hash", "stripe_index", "LockStripe", "DEFAULT_STRIPES"]

#: Default stripe count — enough to make collisions rare at the
#: concurrency levels a single process can realise, small enough that
#: the lock array is cache-friendly.
DEFAULT_STRIPES = 16


def stable_hash(key: str) -> int:
    """A non-negative hash of ``key`` that is identical across
    processes and Python versions (CRC-32 of the UTF-8 bytes)."""
    return zlib.crc32(key.encode("utf-8"))


def stripe_index(key: str, stripes: int) -> int:
    """Which of ``stripes`` buckets ``key`` routes to."""
    if stripes < 1:
        raise ValueError("stripes must be >= 1")
    return stable_hash(key) % stripes


class LockStripe:
    """A fixed array of locks indexed by the stable hash of a key.

    ``stripe.lock_for(key)`` returns the same lock for the same key
    every time; distinct keys usually get distinct locks, so guarded
    operations on unrelated keys proceed in parallel.
    """

    __slots__ = ("_locks",)

    def __init__(self, stripes: int = DEFAULT_STRIPES):
        if stripes < 1:
            raise ValueError("stripes must be >= 1")
        self._locks = tuple(threading.Lock() for _ in range(stripes))

    def __len__(self) -> int:
        return len(self._locks)

    def lock_for(self, key: str) -> threading.Lock:
        return self._locks[stable_hash(key) % len(self._locks)]
