"""Static type checking for SRAL programs.

SRAL's expression sublanguage is simply typed (``int``, ``bool``,
``str``); the interpreter enforces the rules dynamically
(:mod:`repro.agent.interpreter`), which means an ill-typed branch deep
in a roaming agent's program fails *at some server mid-journey*.  This
module checks the whole program *before dispatch* — the right moment,
alongside the admission-time constraint check of Section 3.3.

The system is a forward data-flow analysis:

* every variable has a type once assigned; re-assignment at a different
  type is an error (the underlying substrate the paper assumes — Java —
  is statically typed);
* ``ch ? x`` gives ``x`` the channel's type; channel types are inferred
  from the sends/receives the program itself performs and must be
  consistent;
* conditions must be ``bool``; arithmetic needs ``int`` (with ``+``
  overloaded for ``str``); comparisons need ``int``; ``==``/``!=``
  need equal types;
* both branches of ``if`` and the two sides of ``||`` are checked under
  the same entry environment, and the environments are *merged* at the
  join (a variable keeps its type only if both paths agree).

:func:`typecheck_program` returns the inferred variable environment or
raises :class:`SralTypeError` listing the offending construct.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.sral.ast import (
    Access,
    Assign,
    BinOp,
    BoolLit,
    Expr,
    If,
    IntLit,
    Par,
    Program,
    Receive,
    Send,
    Seq,
    Signal,
    Skip,
    StrLit,
    UnaryOp,
    Var,
    Wait,
    While,
)
from repro.sral.printer import unparse_expr

__all__ = ["SralTypeError", "typecheck_program", "typecheck_expr", "INT", "BOOL", "STR"]

INT, BOOL, STR = "int", "bool", "str"
_COMPARISONS = {"<", "<=", ">", ">="}
_EQUALITY = {"==", "!="}
_ARITH = {"+", "-", "*", "/", "%"}


class SralTypeError(ReproError):
    """A program failed static type checking."""


def typecheck_expr(expr: Expr, env: dict[str, str]) -> str:
    """Infer the type of ``expr`` under ``env`` (variable → type)."""
    if isinstance(expr, IntLit):
        return INT
    if isinstance(expr, BoolLit):
        return BOOL
    if isinstance(expr, StrLit):
        return STR
    if isinstance(expr, Var):
        try:
            return env[expr.name]
        except KeyError:
            raise SralTypeError(
                f"variable {expr.name!r} may be used before assignment"
            ) from None
    if isinstance(expr, UnaryOp):
        operand = typecheck_expr(expr.operand, env)
        if expr.op == "not":
            _require(BOOL, operand, expr)
            return BOOL
        _require(INT, operand, expr)
        return INT
    if isinstance(expr, BinOp):
        left = typecheck_expr(expr.left, env)
        right = typecheck_expr(expr.right, env)
        op = expr.op
        if op in ("and", "or"):
            _require(BOOL, left, expr)
            _require(BOOL, right, expr)
            return BOOL
        if op in _EQUALITY:
            if left != right:
                raise SralTypeError(
                    f"'{op}' compares {left} with {right} in "
                    f"'{unparse_expr(expr)}'"
                )
            return BOOL
        if op in _COMPARISONS:
            _require(INT, left, expr)
            _require(INT, right, expr)
            return BOOL
        if op in _ARITH:
            if op == "+" and left == STR and right == STR:
                return STR
            _require(INT, left, expr)
            _require(INT, right, expr)
            return INT
        raise SralTypeError(f"unknown operator {op!r}")
    raise TypeError(f"not an SRAL expression: {expr!r}")


def _require(expected: str, actual: str, expr: Expr) -> None:
    if actual != expected:
        raise SralTypeError(
            f"expected {expected}, got {actual} in '{unparse_expr(expr)}'"
        )


def typecheck_program(
    program: Program,
    env: dict[str, str] | None = None,
) -> dict[str, str]:
    """Check ``program``; returns the variable environment at exit.

    ``env`` seeds the initial environment (types of variables the agent
    is dispatched with, e.g. from ``Naplet(env=...)``).
    """
    channels: dict[str, str] = {}
    exit_env = _check(program, dict(env or {}), channels)
    return exit_env


def _bind(env: dict[str, str], var: str, kind: str, where: str) -> None:
    previous = env.get(var)
    if previous is not None and previous != kind:
        raise SralTypeError(
            f"variable {var!r} was {previous}, re-bound as {kind} in {where}"
        )
    env[var] = kind


def _bind_channel(channels: dict[str, str], name: str, kind: str) -> None:
    previous = channels.get(name)
    if previous is not None and previous != kind:
        raise SralTypeError(
            f"channel {name!r} carries {previous}, also used with {kind}"
        )
    channels[name] = kind


def _check(
    node: Program, env: dict[str, str], channels: dict[str, str]
) -> dict[str, str]:
    if isinstance(node, (Skip, Access, Signal, Wait)):
        return env
    if isinstance(node, Assign):
        kind = typecheck_expr(node.expr, env)
        _bind(env, node.var, kind, f"'{node.var} := {unparse_expr(node.expr)}'")
        return env
    if isinstance(node, Send):
        kind = typecheck_expr(node.expr, env)
        _bind_channel(channels, node.channel, kind)
        return env
    if isinstance(node, Receive):
        # The channel's payload type, if known; otherwise the receive
        # determines nothing and the variable becomes unusable until a
        # later consistent assignment — model as the channel type or a
        # fresh unknown resolved on first use.
        kind = channels.get(node.channel)
        if kind is None:
            raise SralTypeError(
                f"receive '{node.channel} ? {node.var}' from a channel whose "
                "payload type is unknown; send on it first or seed the type"
            )
        _bind(env, node.var, kind, f"'{node.channel} ? {node.var}'")
        return env
    if isinstance(node, Seq):
        return _check(node.second, _check(node.first, env, channels), channels)
    if isinstance(node, If):
        cond = typecheck_expr(node.cond, env)
        if cond != BOOL:
            raise SralTypeError(
                f"if-condition '{unparse_expr(node.cond)}' has type {cond}, "
                "expected bool"
            )
        then_env = _check(node.then, dict(env), channels)
        else_env = _check(node.orelse, dict(env), channels)
        return _merge(then_env, else_env)
    if isinstance(node, While):
        cond = typecheck_expr(node.cond, env)
        if cond != BOOL:
            raise SralTypeError(
                f"while-condition '{unparse_expr(node.cond)}' has type {cond}, "
                "expected bool"
            )
        body_env = _check(node.body, dict(env), channels)
        # The loop may run zero times: only agreements survive; but the
        # body must itself be consistent starting from the merged view
        # (checked again to catch first-vs-later iteration mismatches).
        merged = _merge(env, body_env)
        _check(node.body, dict(merged), channels)
        return merged
    if isinstance(node, Par):
        left_env = _check(node.left, dict(env), channels)
        right_env = _check(node.right, dict(env), channels)
        # Clones run on environment copies; the parent's env is
        # unchanged (scheduler semantics), so the join returns the
        # entry environment.
        return env
    raise TypeError(f"not an SRAL program: {node!r}")


def _merge(a: dict[str, str], b: dict[str, str]) -> dict[str, str]:
    return {var: kind for var, kind in a.items() if b.get(var) == kind}
