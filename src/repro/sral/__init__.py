"""SRAL — the Shared Resource Access Language (paper Definition 3.1).

Public surface:

* AST node classes (:class:`Access`, :class:`Seq`, :class:`If`,
  :class:`While`, :class:`Par`, ...) from :mod:`repro.sral.ast`;
* :func:`parse_program` / :func:`parse_expr` for concrete syntax;
* :func:`unparse` / :func:`format_program` to print programs back;
* builder helpers in :mod:`repro.sral.builder`;
* static analyses in :mod:`repro.sral.analysis`.
"""

from repro.sral.ast import (
    Access,
    Assign,
    BinOp,
    BoolLit,
    Expr,
    If,
    IntLit,
    Par,
    Program,
    Receive,
    Send,
    Seq,
    Signal,
    Skip,
    StrLit,
    UnaryOp,
    Var,
    Wait,
    While,
    par,
    program_size,
    seq,
    walk,
)
from repro.sral.normalize import simplify_constants, simplify_traces
from repro.sral.parser import parse_expr, parse_program
from repro.sral.printer import format_program, unparse, unparse_expr

__all__ = [
    "Access",
    "Assign",
    "BinOp",
    "BoolLit",
    "Expr",
    "If",
    "IntLit",
    "Par",
    "Program",
    "Receive",
    "Send",
    "Seq",
    "Signal",
    "Skip",
    "StrLit",
    "UnaryOp",
    "Var",
    "Wait",
    "While",
    "par",
    "program_size",
    "seq",
    "walk",
    "simplify_constants",
    "simplify_traces",
    "parse_expr",
    "parse_program",
    "format_program",
    "unparse",
    "unparse_expr",
]
