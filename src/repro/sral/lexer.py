"""Tokenizer for the SRAL / SRAC concrete syntaxes.

Both languages share one lexical structure, so a single lexer serves
:mod:`repro.sral.parser` and :mod:`repro.srac.parser`.

Lexical classes
---------------

``IDENT``
    ``[A-Za-z_][A-Za-z0-9_.]*`` (not ending in ``.``) — dots are allowed
    so principal names such as ``song.wayne.edu`` tokenize as single
    identifiers.
``INT``
    decimal integer literals.
``STRING``
    double-quoted, with ``\\"`` and ``\\\\`` escapes.
``punctuation``
    ``; || ? ! @ := ( ) { } , # [ ] >> -> <-> & | ~`` and the
    comparison/arithmetic operators.  ``>>`` is SRAC's ordered
    composition (the paper's ``a1 (x) a2``).

Comments run from ``//`` to end of line.  Whitespace separates tokens
and is otherwise insignificant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import SralSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

#: Reserved words of SRAL and SRAC.  ``then``/``else``/``do`` etc. may not
#: be used as identifiers.
KEYWORDS = frozenset(
    {
        "if",
        "then",
        "else",
        "while",
        "do",
        "signal",
        "wait",
        "skip",
        "true",
        "false",
        "and",
        "or",
        "not",
        "T",
        "F",
        "count",
        "in",
    }
)

# Multi-character punctuation, longest first so maximal munch works.
# ">>" is the SRAC ordered-composition operator (the paper's a1 (x) a2);
# "->" / "<->" are SRAC implication and equivalence.
_MULTI = (
    "||",
    ":=",
    "<->",
    "->",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
)
_SINGLE = ";?!@(){}<>,#[]&|~+-*/%="


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``kind`` is ``IDENT``, ``INT``, ``STRING``, ``KEYWORD``, ``PUNCT`` or
    ``EOF``; ``value`` is the lexeme (decoded for strings); ``line`` and
    ``column`` are 1-based source coordinates.
    """

    kind: str
    value: str
    line: int
    column: int

    def is_punct(self, value: str) -> bool:
        return self.kind == "PUNCT" and self.value == value

    def is_keyword(self, value: str) -> bool:
        return self.kind == "KEYWORD" and self.value == value


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    # Dots allowed so principal names like "song.wayne.edu" are single
    # tokens; dashes are NOT allowed (they would swallow "n-1").
    return ch.isalnum() or ch in "_."


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``, returning a token list ending with an ``EOF``
    token.  Raises :class:`~repro.errors.SralSyntaxError` on bad input.
    """
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    line_start = 0
    n = len(source)
    while i < n:
        ch = source[i]
        # -- whitespace & comments -----------------------------------
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        col = i - line_start + 1
        # -- identifiers & keywords -----------------------------------
        if _is_ident_start(ch):
            j = i + 1
            while j < n and _is_ident_char(source[j]):
                j += 1
            # Identifiers may not end with '.', so "x." gives back the dot.
            while j > i + 1 and source[j - 1] == ".":
                j -= 1
            word = source[i:j]
            kind = "KEYWORD" if word in KEYWORDS else "IDENT"
            yield Token(kind, word, line, col)
            i = j
            continue
        # -- integers --------------------------------------------------
        if ch.isdigit():
            j = i + 1
            while j < n and source[j].isdigit():
                j += 1
            yield Token("INT", source[i:j], line, col)
            i = j
            continue
        # -- strings ---------------------------------------------------
        if ch == '"':
            j = i + 1
            out: list[str] = []
            while j < n and source[j] != '"':
                if source[j] == "\\" and j + 1 < n:
                    esc = source[j + 1]
                    if esc not in '"\\':
                        raise SralSyntaxError(
                            f"unknown escape '\\{esc}' in string", line, col
                        )
                    out.append(esc)
                    j += 2
                elif source[j] == "\n":
                    raise SralSyntaxError("unterminated string literal", line, col)
                else:
                    out.append(source[j])
                    j += 1
            if j >= n:
                raise SralSyntaxError("unterminated string literal", line, col)
            yield Token("STRING", "".join(out), line, col)
            i = j + 1
            continue
        # -- punctuation ----------------------------------------------
        for punct in _MULTI:
            if source.startswith(punct, i):
                yield Token("PUNCT", punct, line, col)
                i += len(punct)
                break
        else:
            if ch in _SINGLE:
                yield Token("PUNCT", ch, line, col)
                i += 1
            else:
                raise SralSyntaxError(f"unexpected character {ch!r}", line, col)
    yield Token("EOF", "", line, n - line_start + 1)
