"""Recursive-descent parser for SRAL concrete syntax.

Grammar (EBNF; ``||`` binds loosest, then ``;``, then single statements)::

    program := seq ('||' seq)*
    seq     := stmt (';' stmt)*
    stmt    := 'skip'
             | 'signal' '(' IDENT ')'
             | 'wait' '(' IDENT ')'
             | 'if' expr 'then' stmt 'else' stmt
             | 'while' expr 'do' stmt
             | '{' program '}'
             | '(' program ')'
             | IDENT '?' IDENT                 -- receive
             | IDENT '!' expr                  -- send
             | IDENT ':=' expr                 -- assignment (extension)
             | IDENT IDENT '@' IDENT           -- access: op r @ s

    expr    := or_e
    or_e    := and_e ('or' and_e)*
    and_e   := not_e ('and' not_e)*
    not_e   := 'not' not_e | cmp
    cmp     := add (('<'|'<='|'>'|'>='|'=='|'!=') add)?
    add     := mul (('+'|'-') mul)*
    mul     := unary (('*'|'/'|'%') unary)*
    unary   := '-' unary | atom
    atom    := INT | STRING | 'true' | 'false' | IDENT | '(' expr ')'

Example::

    read manifest @ s1 ;
    while n < 3 do {
        exec verifier @ s1 ;
        n := n + 1
    } ;
    ( write report @ s2 || write report @ s3 )
"""

from __future__ import annotations

from repro.errors import SralSyntaxError
from repro.sral.ast import (
    Access,
    Assign,
    BinOp,
    BoolLit,
    Expr,
    If,
    IntLit,
    Par,
    Program,
    Receive,
    Send,
    Seq,
    Signal,
    Skip,
    StrLit,
    UnaryOp,
    Var,
    Wait,
    While,
)
from repro.sral.lexer import Token, tokenize

__all__ = ["parse_program", "parse_expr", "Parser"]


def parse_program(source: str) -> Program:
    """Parse SRAL source text into a :class:`~repro.sral.ast.Program`.

    Raises :class:`~repro.errors.SralSyntaxError` on malformed input.
    """
    parser = Parser(tokenize(source))
    program = parser.program()
    parser.expect_eof()
    return program


def parse_expr(source: str) -> Expr:
    """Parse a standalone SRAL expression (a condition or payload)."""
    parser = Parser(tokenize(source))
    expr = parser.expr()
    parser.expect_eof()
    return expr


class Parser:
    """LL(2) recursive-descent parser over a token stream.

    The two-token lookahead disambiguates the four statement forms that
    begin with an identifier (access, receive, send, assign).
    """

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def error(self, message: str, token: Token | None = None) -> SralSyntaxError:
        token = token or self.peek()
        shown = token.value or "<end of input>"
        return SralSyntaxError(f"{message}, got {shown!r}", token.line, token.column)

    def expect_punct(self, value: str) -> Token:
        token = self.peek()
        if not token.is_punct(value):
            raise self.error(f"expected {value!r}")
        return self.advance()

    def expect_keyword(self, value: str) -> Token:
        token = self.peek()
        if not token.is_keyword(value):
            raise self.error(f"expected keyword {value!r}")
        return self.advance()

    def expect_ident(self, what: str = "identifier") -> str:
        token = self.peek()
        if token.kind != "IDENT":
            raise self.error(f"expected {what}")
        return self.advance().value

    def expect_eof(self) -> None:
        token = self.peek()
        if token.kind != "EOF":
            raise self.error("expected end of input")

    # -- programs -------------------------------------------------------

    def program(self) -> Program:
        left = self.seq()
        while self.peek().is_punct("||"):
            self.advance()
            right = self.seq()
            left = Par(left, right)
        return left

    def seq(self) -> Program:
        left = self.stmt()
        while self.peek().is_punct(";"):
            self.advance()
            right = self.stmt()
            left = Seq(left, right)
        return left

    def stmt(self) -> Program:
        token = self.peek()
        if token.is_keyword("skip"):
            self.advance()
            return Skip()
        if token.is_keyword("signal"):
            self.advance()
            self.expect_punct("(")
            event = self.expect_ident("signal name")
            self.expect_punct(")")
            return Signal(event)
        if token.is_keyword("wait"):
            self.advance()
            self.expect_punct("(")
            event = self.expect_ident("signal name")
            self.expect_punct(")")
            return Wait(event)
        if token.is_keyword("if"):
            self.advance()
            cond = self.expr()
            self.expect_keyword("then")
            then = self.stmt()
            self.expect_keyword("else")
            orelse = self.stmt()
            return If(cond, then, orelse)
        if token.is_keyword("while"):
            self.advance()
            cond = self.expr()
            self.expect_keyword("do")
            body = self.stmt()
            return While(cond, body)
        if token.is_punct("{"):
            self.advance()
            inner = self.program()
            self.expect_punct("}")
            return inner
        if token.is_punct("("):
            self.advance()
            inner = self.program()
            self.expect_punct(")")
            return inner
        if token.kind == "IDENT":
            return self._ident_stmt()
        raise self.error("expected a statement")

    def _ident_stmt(self) -> Program:
        """Disambiguate access / receive / send / assign by lookahead."""
        first = self.advance().value
        nxt = self.peek()
        if nxt.is_punct("?"):
            self.advance()
            var = self.expect_ident("variable name")
            return Receive(first, var)
        if nxt.is_punct("!"):
            self.advance()
            return Send(first, self.expr())
        if nxt.is_punct(":="):
            self.advance()
            return Assign(first, self.expr())
        if nxt.kind == "IDENT":
            resource = self.advance().value
            self.expect_punct("@")
            server = self.expect_ident("server name")
            return Access(first, resource, server)
        raise self.error("expected '?', '!', ':=' or a resource name", nxt)

    # -- expressions ------------------------------------------------------

    def expr(self) -> Expr:
        return self._or()

    def _or(self) -> Expr:
        left = self._and()
        while self.peek().is_keyword("or"):
            self.advance()
            left = BinOp("or", left, self._and())
        return left

    def _and(self) -> Expr:
        left = self._not()
        while self.peek().is_keyword("and"):
            self.advance()
            left = BinOp("and", left, self._not())
        return left

    def _not(self) -> Expr:
        if self.peek().is_keyword("not"):
            self.advance()
            return UnaryOp("not", self._not())
        return self._cmp()

    def _cmp(self) -> Expr:
        left = self._add()
        token = self.peek()
        if token.kind == "PUNCT" and token.value in ("<", "<=", ">", ">=", "==", "!="):
            self.advance()
            return BinOp(token.value, left, self._add())
        return left

    def _add(self) -> Expr:
        left = self._mul()
        while True:
            token = self.peek()
            if token.kind == "PUNCT" and token.value in ("+", "-"):
                self.advance()
                left = BinOp(token.value, left, self._mul())
            else:
                return left

    def _mul(self) -> Expr:
        left = self._unary()
        while True:
            token = self.peek()
            if token.kind == "PUNCT" and token.value in ("*", "/", "%"):
                self.advance()
                left = BinOp(token.value, left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        if self.peek().is_punct("-"):
            self.advance()
            # Fold "- INT" into a negative literal so that "-1" is
            # IntLit(-1); "-(1)" stays UnaryOp('-', IntLit(1)).
            if self.peek().kind == "INT":
                return IntLit(-int(self.advance().value))
            return UnaryOp("-", self._unary())
        return self._atom()

    def _atom(self) -> Expr:
        token = self.peek()
        if token.kind == "INT":
            self.advance()
            return IntLit(int(token.value))
        if token.kind == "STRING":
            self.advance()
            return StrLit(token.value)
        if token.is_keyword("true"):
            self.advance()
            return BoolLit(True)
        if token.is_keyword("false"):
            self.advance()
            return BoolLit(False)
        if token.kind == "IDENT":
            self.advance()
            return Var(token.value)
        if token.is_punct("("):
            self.advance()
            inner = self.expr()
            self.expect_punct(")")
            return inner
        raise self.error("expected an expression")
