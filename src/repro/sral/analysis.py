"""Static analyses over SRAL programs.

These are the building blocks the constraint checker and the agent
layer use to reason about a program before running it:

* :func:`alphabet` — the set of access triples a program can perform
  (the trace alphabet of ``traces(P)``).
* :func:`servers_visited`, :func:`resources_used` — itinerary and
  footprint projections.
* :func:`channels_used`, :func:`signals_used` — communication surface.
* :func:`free_variables`, :func:`assigned_variables` — data-flow sets.
* :func:`has_loops`, :func:`is_finite` — whether ``traces(P)`` is a
  finite set.
* :func:`max_trace_length` — length bound for loop-free programs.
* :func:`count_nodes` — per-construct census used in benchmarks.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import TraceModelError
from repro.sral.ast import (
    Access,
    Assign,
    Expr,
    If,
    Par,
    Program,
    Receive,
    Send,
    Seq,
    Signal,
    Skip,
    Var,
    Wait,
    While,
    walk,
)

__all__ = [
    "alphabet",
    "servers_visited",
    "resources_used",
    "operations_used",
    "channels_used",
    "signals_used",
    "free_variables",
    "assigned_variables",
    "has_loops",
    "has_parallelism",
    "is_finite",
    "max_trace_length",
    "count_nodes",
]


def alphabet(program: Program) -> frozenset[tuple[str, str, str]]:
    """All access triples ``(op, resource, server)`` occurring in
    ``program``.  Every access appearing in any trace of the program is
    drawn from this set."""
    return frozenset(
        node.key() for node in walk(program) if isinstance(node, Access)
    )


def servers_visited(program: Program) -> frozenset[str]:
    """Servers named by any access of the program — the static
    over-approximation of the mobile object's itinerary."""
    return frozenset(
        node.server for node in walk(program) if isinstance(node, Access)
    )


def resources_used(program: Program) -> frozenset[str]:
    """Shared resources named by any access of the program."""
    return frozenset(
        node.resource for node in walk(program) if isinstance(node, Access)
    )


def operations_used(program: Program) -> frozenset[str]:
    """Operations (read/write/exec/...) named by any access."""
    return frozenset(node.op for node in walk(program) if isinstance(node, Access))


def channels_used(program: Program) -> frozenset[str]:
    """Channels the program sends on or receives from."""
    return frozenset(
        node.channel for node in walk(program) if isinstance(node, (Receive, Send))
    )


def signals_used(program: Program) -> frozenset[str]:
    """Signals the program raises or waits for."""
    return frozenset(
        node.event for node in walk(program) if isinstance(node, (Signal, Wait))
    )


def free_variables(program: Program) -> frozenset[str]:
    """Variables read anywhere in the program (in conditions and
    payload expressions)."""
    return frozenset(
        node.name for node in walk(program) if isinstance(node, Var)
    )


def assigned_variables(program: Program) -> frozenset[str]:
    """Variables written by ``:=`` or bound by channel receives."""
    out: set[str] = set()
    for node in walk(program):
        if isinstance(node, Assign):
            out.add(node.var)
        elif isinstance(node, Receive):
            out.add(node.var)
    return frozenset(out)


def has_loops(program: Program) -> bool:
    """True iff the program contains a ``while`` construct."""
    return any(isinstance(node, While) for node in walk(program))


def has_parallelism(program: Program) -> bool:
    """True iff the program contains a ``||`` composition."""
    return any(isinstance(node, Par) for node in walk(program))


def is_finite(program: Program) -> bool:
    """True iff ``traces(program)`` is a finite set of finite traces.

    By the trace-model rules (Definition 3.2) only ``while`` introduces
    Kleene closure, so a program is trace-finite iff it is loop-free.
    """
    return not has_loops(program)


def max_trace_length(program: Program) -> int:
    """The maximum number of accesses in any trace of a loop-free
    program.  Raises :class:`~repro.errors.TraceModelError` for programs
    containing loops (their traces are unbounded)."""
    return _max_len(program)


def _max_len(program: Program) -> int:
    if isinstance(program, Access):
        return 1
    if isinstance(program, (Skip, Receive, Send, Signal, Wait, Assign)):
        return 0
    if isinstance(program, Seq):
        return _max_len(program.first) + _max_len(program.second)
    if isinstance(program, Par):
        return _max_len(program.left) + _max_len(program.right)
    if isinstance(program, If):
        return max(_max_len(program.then), _max_len(program.orelse))
    if isinstance(program, While):
        raise TraceModelError(
            "max_trace_length is undefined for programs with loops"
        )
    raise TypeError(f"not an SRAL program: {program!r}")


def count_nodes(program: Program) -> Counter:
    """Census of AST node types (class name → count), programs and
    expressions alike."""
    counter: Counter = Counter()
    for node in walk(program):
        counter[type(node).__name__] += 1
    return counter
