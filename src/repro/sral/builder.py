"""Fluent construction helpers for SRAL programs.

These helpers let applications build programs without spelling out AST
constructors, and accept plain Python values where literals are meant::

    from repro.sral.builder import access, while_, assign, var, lit, seq

    prog = seq(
        access("read", "manifest", "s1"),
        assign("n", lit(0)),
        while_(var("n") < lit(3),
               seq(access("exec", "verifier", "s1"),
                   assign("n", var("n") + lit(1)))),
    )

Expression builders support Python operator overloading through the
:class:`E` wrapper returned by :func:`var` and :func:`lit`.
"""

from __future__ import annotations

from typing import Union

from repro.sral.ast import (
    Access,
    Assign,
    BinOp,
    BoolLit,
    Expr,
    If,
    IntLit,
    Par,
    Program,
    Receive,
    Send,
    Signal,
    Skip,
    StrLit,
    UnaryOp,
    Var,
    Wait,
    While,
    par,
    seq,
)

__all__ = [
    "E",
    "var",
    "lit",
    "access",
    "recv",
    "send",
    "signal",
    "wait",
    "assign",
    "if_",
    "while_",
    "repeat",
    "seq",
    "par",
    "skip",
]

Exprish = Union["E", Expr, int, bool, str]


class E:
    """Operator-overloading wrapper around an :class:`Expr`.

    ``var("n") + 1`` builds ``BinOp('+', Var('n'), IntLit(1))``;
    comparisons, arithmetic and ``&``/``|``/``~`` (for and/or/not) are
    supported.
    """

    __slots__ = ("node",)

    def __init__(self, node: Expr):
        self.node = node

    def _bin(self, op: str, other: Exprish, reflected: bool = False) -> "E":
        left, right = self.node, as_expr(other)
        if reflected:
            left, right = right, left
        return E(BinOp(op, left, right))

    def __add__(self, other: Exprish) -> "E":
        return self._bin("+", other)

    def __radd__(self, other: Exprish) -> "E":
        return self._bin("+", other, reflected=True)

    def __sub__(self, other: Exprish) -> "E":
        return self._bin("-", other)

    def __rsub__(self, other: Exprish) -> "E":
        return self._bin("-", other, reflected=True)

    def __mul__(self, other: Exprish) -> "E":
        return self._bin("*", other)

    def __rmul__(self, other: Exprish) -> "E":
        return self._bin("*", other, reflected=True)

    def __truediv__(self, other: Exprish) -> "E":
        return self._bin("/", other)

    def __mod__(self, other: Exprish) -> "E":
        return self._bin("%", other)

    def __lt__(self, other: Exprish) -> "E":
        return self._bin("<", other)

    def __le__(self, other: Exprish) -> "E":
        return self._bin("<=", other)

    def __gt__(self, other: Exprish) -> "E":
        return self._bin(">", other)

    def __ge__(self, other: Exprish) -> "E":
        return self._bin(">=", other)

    def eq(self, other: Exprish) -> "E":
        """Equality comparison (``==`` is kept for Python identity)."""
        return self._bin("==", other)

    def ne(self, other: Exprish) -> "E":
        return self._bin("!=", other)

    def __and__(self, other: Exprish) -> "E":
        return self._bin("and", other)

    def __or__(self, other: Exprish) -> "E":
        return self._bin("or", other)

    def __invert__(self) -> "E":
        return E(UnaryOp("not", self.node))

    def __neg__(self) -> "E":
        return E(UnaryOp("-", self.node))

    def __repr__(self) -> str:  # pragma: no cover
        return f"E({self.node!r})"


def as_expr(value: Exprish) -> Expr:
    """Coerce a Python value, :class:`E` wrapper or :class:`Expr` to an
    :class:`Expr` node."""
    if isinstance(value, E):
        return value.node
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return BoolLit(value)
    if isinstance(value, int):
        return IntLit(value)
    if isinstance(value, str):
        return StrLit(value)
    raise TypeError(f"cannot convert {value!r} to an SRAL expression")


def var(name: str) -> E:
    """A variable reference usable with Python operators."""
    return E(Var(name))


def lit(value: Union[int, bool, str]) -> E:
    """A literal usable with Python operators."""
    return E(as_expr(value))


def access(op: str, resource: str, server: str) -> Access:
    """Primitive access ``op resource @ server``."""
    return Access(op, resource, server)


def recv(channel: str, variable: str) -> Receive:
    """Channel receive ``channel ? variable``."""
    return Receive(channel, variable)


def send(channel: str, payload: Exprish) -> Send:
    """Channel send ``channel ! payload``."""
    return Send(channel, as_expr(payload))


def signal(event: str) -> Signal:
    """Raise signal ``event``."""
    return Signal(event)


def wait(event: str) -> Wait:
    """Block until signal ``event`` has been raised."""
    return Wait(event)


def assign(variable: str, value: Exprish) -> Assign:
    """Assignment ``variable := value``."""
    return Assign(variable, as_expr(value))


def if_(cond: Exprish, then: Program, orelse: Program | None = None) -> If:
    """Conditional; a missing else-branch defaults to ``skip``."""
    return If(as_expr(cond), then, orelse if orelse is not None else Skip())


def while_(cond: Exprish, body: Program) -> While:
    """Loop ``while cond do body``."""
    return While(as_expr(cond), body)


def repeat(counter: str, times: int, body: Program) -> Program:
    """A bounded loop: run ``body`` exactly ``times`` times, using
    ``counter`` as the loop variable.  Expands to the SRAL idiom::

        counter := 0 ; while counter < times do { body ; counter := counter + 1 }
    """
    loop = While(
        BinOp("<", Var(counter), IntLit(times)),
        seq(body, Assign(counter, BinOp("+", Var(counter), IntLit(1)))),
    )
    return seq(Assign(counter, IntLit(0)), loop)


def skip() -> Skip:
    """The empty program."""
    return Skip()
