"""Program normalisation passes.

Two simplifiers with different preservation guarantees:

* :func:`simplify_traces` — rewrites that preserve the **trace model**
  exactly (Definition 3.2 semantics, conditions treated as opaque):
  ``skip`` elimination in ``;``/``||``, branch merging
  ``if c then p else p → p``, and flattening of nested no-ops.
  Safe to apply before constraint checking: ``traces(P') = traces(P)``.
* :func:`simplify_constants` — additionally folds *literal* conditions
  (``if true then a else b → a``, ``while false do p → skip``).  This
  preserves **execution behaviour** but may shrink the trace model
  (the trace semantics considers both branches possible); apply it for
  interpretation, not before a ∀-mode constraint check whose outcome
  should reflect all syntactic branches.

Both run bottom-up with an explicit stack, so arbitrarily deep
programs normalise without recursion limits.
"""

from __future__ import annotations

from repro.sral.ast import (
    Access,
    Assign,
    BoolLit,
    If,
    Par,
    Program,
    Receive,
    Send,
    Seq,
    Signal,
    Skip,
    Wait,
    While,
)

__all__ = ["simplify_traces", "simplify_constants"]

_SKIP = Skip()


def _rebuild(node: Program, children: list[Program], fold_constants: bool) -> Program:
    """Reassemble ``node`` with simplified ``children`` and apply local
    rewrite rules."""
    if isinstance(node, Seq):
        first, second = children
        if isinstance(first, Skip):
            return second
        if isinstance(second, Skip):
            return first
        return Seq(first, second)
    if isinstance(node, Par):
        left, right = children
        if isinstance(left, Skip):
            return right
        if isinstance(right, Skip):
            return left
        return Par(left, right)
    if isinstance(node, If):
        then, orelse = children
        if fold_constants and isinstance(node.cond, BoolLit):
            return then if node.cond.value else orelse
        if then == orelse:
            # traces(if c then p else p) = traces(p) ∪ traces(p).
            return then
        return If(node.cond, then, orelse)
    if isinstance(node, While):
        (body,) = children
        if fold_constants and node.cond == BoolLit(False):
            return _SKIP
        if isinstance(body, Skip):
            # {ε}* = {ε}: trace-model-equal to skip.  Note this erases
            # non-productive busy loops (divergence is not preserved).
            return _SKIP
        return While(node.cond, body)
    raise TypeError(f"unexpected composite: {node!r}")  # pragma: no cover


def _simplify(program: Program, fold_constants: bool) -> Program:
    # Post-order traversal with explicit stacks.
    done: dict[int, Program] = {}
    stack: list[tuple[Program, bool]] = [(program, False)]
    result: Program = program
    while stack:
        node, expanded = stack.pop()
        if isinstance(node, (Skip, Access, Receive, Send, Signal, Wait, Assign)):
            done[id(node)] = node
            result = node
            continue
        children = node.children()
        if not expanded:
            stack.append((node, True))
            for child in reversed(children):
                stack.append((child, False))
            continue
        simplified_children = [done[id(child)] for child in children]
        rebuilt = _rebuild(node, simplified_children, fold_constants)
        done[id(node)] = rebuilt
        result = rebuilt
    return result


def simplify_traces(program: Program) -> Program:
    """Trace-model-preserving normalisation
    (``program_traces(simplify_traces(P)) == program_traces(P)``)."""
    return _simplify(program, fold_constants=False)


def simplify_constants(program: Program) -> Program:
    """Execution-preserving normalisation: everything
    :func:`simplify_traces` does plus literal-condition folding."""
    return _simplify(program, fold_constants=True)