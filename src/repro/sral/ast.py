"""Abstract syntax of SRAL, the Shared Resource Access Language.

SRAL (Definition 3.1 of the paper) describes the behaviour of a mobile
object roaming over a coalition of servers::

    a ::= op r @ s | ch ? x | ch ! e | signal(xi) | wait(xi)
        | a1 ; a2 | if c then a1 else a2 | while c do a | a1 || a2

Two pragmatic extensions, both justified by the paper itself:

* ``skip`` — the empty program, the identity of sequential composition.
  It arises naturally as the zero-iteration body of ``while`` and makes
  the trace algebra a proper monoid.
* ``x := e`` — assignment.  The paper's Naplet example mutates agent
  state inside loops, and Section 3.2 notes that non-regular behaviour
  "can be achieved in an ad hoc fashion based on the underlying
  language"; assignment is that hook.  Assignments are invisible to the
  trace model (they are not shared-resource accesses).

All nodes are immutable (frozen dataclasses) and hashable, so programs
can be used as dictionary keys and structurally compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union


def _validate_identifier(name: str, what: str) -> None:
    if not name or not isinstance(name, str):
        raise ValueError(f"{what} must be a non-empty string, got {name!r}")

__all__ = [
    # expressions
    "Expr",
    "IntLit",
    "BoolLit",
    "StrLit",
    "Var",
    "UnaryOp",
    "BinOp",
    # statements / programs
    "Program",
    "Access",
    "Receive",
    "Send",
    "Signal",
    "Wait",
    "Assign",
    "Skip",
    "Seq",
    "If",
    "While",
    "Par",
    # helpers
    "walk",
    "program_size",
    "seq",
    "par",
    "COMPARISON_OPS",
    "ARITHMETIC_OPS",
    "BOOLEAN_OPS",
]

# ---------------------------------------------------------------------------
# Expressions (conditions c and channel payloads e)
# ---------------------------------------------------------------------------

ARITHMETIC_OPS = ("+", "-", "*", "/", "%")
COMPARISON_OPS = ("<", "<=", ">", ">=", "==", "!=")
BOOLEAN_OPS = ("and", "or")


@dataclass(frozen=True)
class Expr:
    """Base class of SRAL expressions."""

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class IntLit(Expr):
    """Integer literal, e.g. ``42``."""

    value: int


@dataclass(frozen=True)
class BoolLit(Expr):
    """Boolean literal ``true`` or ``false``."""

    value: bool


@dataclass(frozen=True)
class StrLit(Expr):
    """String literal, e.g. ``"yellow-page"``."""

    value: str


@dataclass(frozen=True)
class Var(Expr):
    """Variable reference (ranges over the set *V* of the paper)."""

    name: str


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operation: ``not e`` or ``-e``."""

    op: str  # "not" | "-"
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operation over arithmetic, comparison or boolean operators."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)


# ---------------------------------------------------------------------------
# Programs (statements)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Program:
    """Base class of SRAL programs (the paper's *a*)."""

    def children(self) -> tuple["Program", ...]:
        """Direct sub-programs of this node."""
        return ()

    def exprs(self) -> tuple[Expr, ...]:
        """Expressions referenced directly by this node."""
        return ()

    # The concrete syntax is produced by repro.sral.printer; __str__ is a
    # convenience that defers to it (lazy import avoids a cycle).
    def __str__(self) -> str:  # pragma: no cover - thin delegation
        from repro.sral.printer import unparse

        return unparse(self)


@dataclass(frozen=True)
class Access(Program):
    """Primitive shared-resource access ``op r @ s``.

    This is the only construct that appears in traces: an access tuple
    *(o, op, r, s)* where the mobile object *o* is the program's owner.
    """

    op: str
    resource: str
    server: str

    def __post_init__(self) -> None:
        _validate_identifier(self.op, "operation")
        _validate_identifier(self.resource, "resource")
        _validate_identifier(self.server, "server")

    def key(self) -> tuple[str, str, str]:
        """The ``(op, resource, server)`` triple identifying this access
        in the trace alphabet."""
        return (self.op, self.resource, self.server)


@dataclass(frozen=True)
class Receive(Program):
    """Channel receive ``ch ? x``: take a value from channel ``ch`` and
    bind it to variable ``x``; blocks while the channel is empty."""

    channel: str
    var: str


@dataclass(frozen=True)
class Send(Program):
    """Channel send ``ch ! e``: append the value of ``e`` to channel
    ``ch``, waking any blocked receivers."""

    channel: str
    expr: Expr

    def exprs(self) -> tuple[Expr, ...]:
        return (self.expr,)


@dataclass(frozen=True)
class Signal(Program):
    """Order synchronisation ``signal(xi)``: raise signal ``xi``.

    ``signal(xi)`` must happen before a matching :class:`Wait` on the
    same signal may proceed."""

    event: str


@dataclass(frozen=True)
class Wait(Program):
    """Order synchronisation ``wait(xi)``: block until ``xi`` is raised."""

    event: str


@dataclass(frozen=True)
class Assign(Program):
    """Assignment ``x := e`` (library extension; not a resource access)."""

    var: str
    expr: Expr

    def exprs(self) -> tuple[Expr, ...]:
        return (self.expr,)


@dataclass(frozen=True)
class Skip(Program):
    """The empty program; identity of ``;`` and unit of the trace monoid."""


@dataclass(frozen=True)
class Seq(Program):
    """Sequential composition ``a1 ; a2``."""

    first: Program
    second: Program

    def children(self) -> tuple[Program, ...]:
        return (self.first, self.second)


@dataclass(frozen=True)
class If(Program):
    """Conditional composition ``if c then a1 else a2``."""

    cond: Expr
    then: Program
    orelse: Program

    def children(self) -> tuple[Program, ...]:
        return (self.then, self.orelse)

    def exprs(self) -> tuple[Expr, ...]:
        return (self.cond,)


@dataclass(frozen=True)
class While(Program):
    """Loop ``while c do a``: repeat ``a`` while ``c`` holds."""

    cond: Expr
    body: Program

    def children(self) -> tuple[Program, ...]:
        return (self.body,)

    def exprs(self) -> tuple[Expr, ...]:
        return (self.cond,)


@dataclass(frozen=True)
class Par(Program):
    """Parallel composition ``a1 || a2``; traces interleave."""

    left: Program
    right: Program

    def children(self) -> tuple[Program, ...]:
        return (self.left, self.right)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

Node = Union[Program, Expr]


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and every descendant (programs and expressions),
    in pre-order."""
    stack: list[Node] = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, Program):
            stack.extend(reversed(current.children()))
            stack.extend(reversed(current.exprs()))
        else:
            stack.extend(reversed(current.children()))


def program_size(program: Program) -> int:
    """The size *m* of a program: its number of AST nodes (programs and
    expressions).  This is the *m* of Theorem 3.2."""
    return sum(1 for _ in walk(program))


def seq(*programs: Program) -> Program:
    """Right-associated sequential composition of any number of programs.

    ``seq()`` is :class:`Skip`; ``seq(p)`` is ``p``.
    """
    if not programs:
        return Skip()
    result = programs[-1]
    for p in reversed(programs[:-1]):
        result = Seq(p, result)
    return result


def par(*programs: Program) -> Program:
    """Right-associated parallel composition of any number of programs."""
    if not programs:
        return Skip()
    result = programs[-1]
    for p in reversed(programs[:-1]):
        result = Par(p, result)
    return result


