"""Pretty-printer for SRAL programs and expressions.

:func:`unparse` produces concrete syntax that parses back to a
structurally identical AST (``parse_program(unparse(p)) == p``); this
round-trip is enforced by property tests.  :func:`format_program`
produces an indented multi-line rendering for humans.
"""

from __future__ import annotations

from repro.sral.ast import (
    Access,
    Assign,
    BinOp,
    BoolLit,
    Expr,
    If,
    IntLit,
    Par,
    Program,
    Receive,
    Send,
    Seq,
    Signal,
    Skip,
    StrLit,
    UnaryOp,
    Var,
    Wait,
    While,
)

__all__ = ["unparse", "unparse_expr", "format_program"]

# Expression precedence; larger binds tighter.
_PREC = {
    "or": 1,
    "and": 2,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "==": 4,
    "!=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}
_NOT_PREC = 3
_NEG_PREC = 7
_ATOM_PREC = 8
_COMPARISONS = {"<", "<=", ">", ">=", "==", "!="}


def unparse_expr(expr: Expr) -> str:
    """Render an expression to concrete syntax with minimal parentheses."""
    return _expr(expr, 0)


def _expr(expr: Expr, parent_prec: int) -> str:
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, StrLit):
        escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, UnaryOp):
        prec = _NOT_PREC if expr.op == "not" else _NEG_PREC
        sep = " " if expr.op == "not" else ""
        # "-(1)" keeps an explicit negation node distinct from the
        # negative literal IntLit(-1), which prints as "-1".
        if expr.op == "-" and isinstance(expr.operand, IntLit):
            text = f"-({_expr(expr.operand, 0)})"
        else:
            text = f"{expr.op}{sep}{_expr(expr.operand, prec)}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, BinOp):
        prec = _PREC[expr.op]
        # Comparisons are non-associative: parenthesize comparison
        # operands of comparisons.  Other binary operators associate
        # left, so the right child needs parens at equal precedence.
        left = _expr(expr.left, prec + (1 if expr.op in _COMPARISONS else 0))
        right = _expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"not an SRAL expression: {expr!r}")


# Program "precedence": Par(1) < Seq(2) < single statement(3).
_PAR_PREC = 1
_SEQ_PREC = 2
_STMT_PREC = 3


def unparse(program: Program) -> str:
    """Render a program to single-line concrete syntax."""
    return _prog(program, 0)


def _prog(program: Program, parent_prec: int) -> str:
    if isinstance(program, Skip):
        return "skip"
    if isinstance(program, Access):
        return f"{program.op} {program.resource} @ {program.server}"
    if isinstance(program, Receive):
        return f"{program.channel} ? {program.var}"
    if isinstance(program, Send):
        return f"{program.channel} ! {_expr(program.expr, _ATOM_PREC)}"
    if isinstance(program, Signal):
        return f"signal({program.event})"
    if isinstance(program, Wait):
        return f"wait({program.event})"
    if isinstance(program, Assign):
        return f"{program.var} := {_expr(program.expr, 0)}"
    if isinstance(program, Seq):
        # '; ' associates left in the grammar: the right child of a Seq
        # must not itself be an unparenthesized Seq.
        left = _prog(program.first, _SEQ_PREC)
        right = _prog(program.second, _SEQ_PREC + 1)
        text = f"{left} ; {right}"
        return f"({text})" if _SEQ_PREC < parent_prec else text
    if isinstance(program, Par):
        left = _prog(program.left, _PAR_PREC)
        right = _prog(program.right, _PAR_PREC + 1)
        text = f"{left} || {right}"
        return f"({text})" if _PAR_PREC < parent_prec else text
    if isinstance(program, If):
        cond = _expr(program.cond, 0)
        then = _prog(program.then, _STMT_PREC)
        orelse = _prog(program.orelse, _STMT_PREC)
        return f"if {cond} then {then} else {orelse}"
    if isinstance(program, While):
        cond = _expr(program.cond, 0)
        body = _prog(program.body, _STMT_PREC)
        return f"while {cond} do {body}"
    raise TypeError(f"not an SRAL program: {program!r}")


def format_program(program: Program, indent: str = "    ") -> str:
    """Render a program as indented multi-line source for humans.

    The output still parses back to the same AST.
    """
    lines: list[str] = []
    _format(program, 0, lines, indent, top=True)
    return "\n".join(lines)


def _format(
    program: Program, depth: int, lines: list[str], indent: str, top: bool = False
) -> None:
    pad = indent * depth
    if isinstance(program, Seq):
        # Flatten the left spine so "a ; b ; c" prints one per line.
        parts: list[Program] = []
        node: Program = program
        while isinstance(node, Seq):
            parts.append(node.second)
            node = node.first
        parts.append(node)
        parts.reverse()
        for i, part in enumerate(parts):
            _format_stmt(part, depth, lines, indent)
            if i < len(parts) - 1:
                lines[-1] += " ;"
        return
    _format_stmt(program, depth, lines, indent)


def _format_stmt(program: Program, depth: int, lines: list[str], indent: str) -> None:
    pad = indent * depth
    if isinstance(program, If):
        lines.append(f"{pad}if {_expr(program.cond, 0)} then {{")
        _format(program.then, depth + 1, lines, indent)
        lines.append(f"{pad}}} else {{")
        _format(program.orelse, depth + 1, lines, indent)
        lines.append(f"{pad}}}")
        return
    if isinstance(program, While):
        lines.append(f"{pad}while {_expr(program.cond, 0)} do {{")
        _format(program.body, depth + 1, lines, indent)
        lines.append(f"{pad}}}")
        return
    if isinstance(program, Par):
        lines.append(f"{pad}(")
        _format(program.left, depth + 1, lines, indent)
        lines.append(f"{pad}||")
        _format(program.right, depth + 1, lines, indent)
        lines.append(f"{pad})")
        return
    if isinstance(program, Seq):
        lines.append(f"{pad}{{")
        _format(program, depth + 1, lines, indent)
        lines.append(f"{pad}}}")
        return
    lines.append(f"{pad}{_prog(program, _STMT_PREC)}")
