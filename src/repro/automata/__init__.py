"""Finite automata over access alphabets.

Substrate for the trace-model algebra (Definitions 3.2–3.3), the
regular-completeness theorem (Theorem 3.1) and the constraint checker
(Theorem 3.2).
"""

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA, NFABuilder
from repro.automata.ops import (
    canonical_form,
    contains,
    determinize,
    difference,
    equivalent,
    intersect,
    minimize,
    product,
    union,
)

__all__ = [
    "DFA",
    "NFA",
    "NFABuilder",
    "canonical_form",
    "contains",
    "determinize",
    "difference",
    "equivalent",
    "intersect",
    "minimize",
    "product",
    "union",
]
