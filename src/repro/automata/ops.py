"""Automata algorithms: determinisation, minimisation, products,
equivalence.

These are the engine room of Theorem 3.1 (regular completeness is
*verified* by checking language equivalence between a regex and the
synthesised program's trace NFA) and of the trace-model equality used
throughout the tests.

Algorithms
----------

* :func:`determinize` — subset construction (lazy; only reachable
  subsets are materialised).
* :func:`minimize` — Hopcroft's partition refinement, ``O(kn log n)``.
* :func:`product` — lazy synchronous product for intersection /
  union / difference.
* :func:`equivalent` — Hopcroft–Karp union-find equivalence check,
  near-linear and without full minimisation.
* :func:`canonical_form` — minimise + BFS renumbering; two DFAs are
  language-equal iff their canonical forms are identical (used for
  hashing trace models).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Callable, Hashable

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA

__all__ = [
    "determinize",
    "minimize",
    "product",
    "intersect",
    "union",
    "difference",
    "equivalent",
    "contains",
    "canonical_form",
]

Symbol = Hashable


def determinize(nfa: NFA) -> DFA:
    """Subset construction.  Only subsets reachable from the start
    closure are created, so the common case stays far below ``2^n``."""
    start = nfa.epsilon_closure(nfa.start)
    index: dict[frozenset[int], int] = {start: 0}
    delta: list[dict[Symbol, int]] = [{}]
    accepts: list[int] = []
    if start & nfa.accepts:
        accepts.append(0)
    queue = deque([start])
    while queue:
        states = queue.popleft()
        src = index[states]
        symbols: set[Symbol] = set()
        for state in states:
            symbols.update(nfa.edges[state].keys())
        for symbol in symbols:
            nxt = nfa.step(states, symbol)
            if not nxt:
                continue
            dst = index.get(nxt)
            if dst is None:
                dst = len(delta)
                index[nxt] = dst
                delta.append({})
                if nxt & nfa.accepts:
                    accepts.append(dst)
                queue.append(nxt)
            delta[src][symbol] = dst
    return DFA(delta, 0, accepts)


def minimize(dfa: DFA) -> DFA:
    """Hopcroft's algorithm over the trimmed, completed automaton.

    The returned DFA is trimmed again afterwards so a dead class does
    not linger when the language is co-finite-free.
    """
    trimmed = dfa.trim()
    alphabet = sorted(trimmed.alphabet(), key=repr)
    total = trimmed.completed(alphabet)
    n = total.n_states

    # Inverse transition table: inv[symbol][dst] -> list of srcs
    inv: dict[Symbol, list[list[int]]] = {
        symbol: [[] for _ in range(n)] for symbol in alphabet
    }
    for src in range(n):
        for symbol, dst in total.delta[src].items():
            inv[symbol][dst].append(src)

    accepting = set(total.accepts)
    rejecting = set(range(n)) - accepting
    partition: list[set[int]] = [s for s in (accepting, rejecting) if s]
    class_of = [0] * n
    for idx, block in enumerate(partition):
        for state in block:
            class_of[state] = idx

    # Textbook Hopcroft worklist discipline: pairs (block id, symbol).
    # When block Y splits into Y (kept id, new content) and Y' (new id):
    # for each symbol c, if (Y, c) is pending it now denotes the new Y,
    # so (Y', c) must be added too; otherwise adding the smaller half
    # alone preserves the invariant.
    worklist: deque[tuple[int, Symbol]] = deque()
    in_work: set[tuple[int, Symbol]] = set()

    def push(idx: int, symbol: Symbol) -> None:
        key = (idx, symbol)
        if key not in in_work:
            in_work.add(key)
            worklist.append(key)

    seed = 0 if len(partition) == 1 or len(partition[0]) <= len(partition[1]) else 1
    for symbol in alphabet:
        push(seed, symbol)

    while worklist:
        key = worklist.popleft()
        in_work.discard(key)
        block_idx, symbol = key
        block = partition[block_idx]
        # States with a transition on `symbol` into `block`
        movers: set[int] = set()
        for dst in block:
            movers.update(inv[symbol][dst])
        if not movers:
            continue
        touched: dict[int, set[int]] = defaultdict(set)
        for state in movers:
            touched[class_of[state]].add(state)
        for idx, subset in touched.items():
            if len(subset) == len(partition[idx]):
                continue
            # Split partition[idx] into subset (keeps idx) and the rest.
            rest = partition[idx] - subset
            partition[idx] = subset
            new_idx = len(partition)
            partition.append(rest)
            for state in rest:
                class_of[state] = new_idx
            for sym in alphabet:
                if (idx, sym) in in_work:
                    push(new_idx, sym)
                elif len(subset) <= len(rest):
                    push(idx, sym)
                else:
                    push(new_idx, sym)

    # Rebuild the quotient automaton.
    delta: list[dict[Symbol, int]] = [dict() for _ in partition]
    for block_idx, block in enumerate(partition):
        representative = next(iter(block))
        for symbol, dst in total.delta[representative].items():
            delta[block_idx][symbol] = class_of[dst]
    accepts = {class_of[s] for s in total.accepts}
    quotient = DFA(delta, class_of[total.start], accepts)

    # Drop the dead class if it became unreachable-from-acceptance:
    # keeping the DFA partial makes downstream products smaller.
    return _drop_dead(quotient.trim())


def _drop_dead(dfa: DFA) -> DFA:
    """Remove states from which no accepting state is reachable and the
    transitions into them (making the DFA partial again)."""
    n = dfa.n_states
    # Reverse reachability from accepting states.
    reverse: list[set[int]] = [set() for _ in range(n)]
    for src in range(n):
        for dst in dfa.delta[src].values():
            reverse[dst].add(src)
    alive = set(dfa.accepts)
    queue = deque(alive)
    while queue:
        state = queue.popleft()
        for prev in reverse[state]:
            if prev not in alive:
                alive.add(prev)
                queue.append(prev)
    if dfa.start not in alive:
        # Empty language: single non-accepting state.
        return DFA([{}], 0, [])
    keep = sorted(alive)
    remap = {old: new for new, old in enumerate(keep)}
    delta = [
        {
            symbol: remap[dst]
            for symbol, dst in dfa.delta[old].items()
            if dst in alive
        }
        for old in keep
    ]
    return DFA(delta, remap[dfa.start], [remap[s] for s in dfa.accepts])


def product(
    left: DFA, right: DFA, accept: Callable[[bool, bool], bool]
) -> DFA:
    """Lazy synchronous product of two *completed* views of the inputs.

    ``accept(in_left, in_right)`` decides acceptance of a product
    state; use ``and`` for intersection, ``or`` for union,
    ``lambda a, b: a and not b`` for difference.  Both automata are
    completed over the union alphabet so union/difference are correct.
    """
    alphabet = left.alphabet() | right.alphabet()
    ltotal = left.completed(alphabet)
    rtotal = right.completed(alphabet)
    start = (ltotal.start, rtotal.start)
    index: dict[tuple[int, int], int] = {start: 0}
    delta: list[dict[Symbol, int]] = [{}]
    accepts: list[int] = []
    if accept(ltotal.start in ltotal.accepts, rtotal.start in rtotal.accepts):
        accepts.append(0)
    queue = deque([start])
    while queue:
        pair = queue.popleft()
        src = index[pair]
        lstate, rstate = pair
        for symbol in alphabet:
            npair = (ltotal.delta[lstate][symbol], rtotal.delta[rstate][symbol])
            dst = index.get(npair)
            if dst is None:
                dst = len(delta)
                index[npair] = dst
                delta.append({})
                if accept(npair[0] in ltotal.accepts, npair[1] in rtotal.accepts):
                    accepts.append(dst)
                queue.append(npair)
            delta[src][symbol] = dst
    return DFA(delta, 0, accepts)


def intersect(left: DFA, right: DFA) -> DFA:
    """DFA for ``L(left) ∩ L(right)``."""
    return product(left, right, lambda a, b: a and b)


def union(left: DFA, right: DFA) -> DFA:
    """DFA for ``L(left) ∪ L(right)``."""
    return product(left, right, lambda a, b: a or b)


def difference(left: DFA, right: DFA) -> DFA:
    """DFA for ``L(left) \\ L(right)``."""
    return product(left, right, lambda a, b: a and not b)


def equivalent(left: DFA, right: DFA) -> bool:
    """Hopcroft–Karp language-equivalence check (union-find merging)."""
    alphabet = left.alphabet() | right.alphabet()
    ltotal = left.completed(alphabet)
    rtotal = right.completed(alphabet)

    # Union-find over the disjoint union of state sets; right states are
    # offset by ltotal.n_states.
    parent = list(range(ltotal.n_states + rtotal.n_states))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def unite(x: int, y: int) -> bool:
        rx, ry = find(x), find(y)
        if rx == ry:
            return False
        parent[rx] = ry
        return True

    offset = ltotal.n_states
    queue = deque([(ltotal.start, rtotal.start)])
    unite(ltotal.start, rtotal.start + offset)
    while queue:
        lstate, rstate = queue.popleft()
        if (lstate in ltotal.accepts) != (rstate in rtotal.accepts):
            return False
        for symbol in alphabet:
            lnext = ltotal.delta[lstate][symbol]
            rnext = rtotal.delta[rstate][symbol]
            if unite(lnext, rnext + offset):
                queue.append((lnext, rnext))
    return True


def contains(larger: DFA, smaller: DFA) -> bool:
    """True iff ``L(smaller) ⊆ L(larger)``."""
    return difference(smaller, larger).is_empty()


def canonical_form(
    dfa: DFA,
) -> tuple[int, frozenset[int], tuple[tuple[tuple[Symbol, int], ...], ...]]:
    """A canonical fingerprint of the language: minimise, then renumber
    states in BFS order with symbols sorted by ``repr``.  Two DFAs have
    identical canonical forms iff their languages are equal (for
    languages over comparable symbol reprs)."""
    minimal = minimize(dfa)
    order: dict[int, int] = {minimal.start: 0}
    queue = deque([minimal.start])
    while queue:
        state = queue.popleft()
        for symbol, dst in sorted(minimal.delta[state].items(), key=lambda kv: repr(kv[0])):
            if dst not in order:
                order[dst] = len(order)
                queue.append(dst)
    delta = [
        tuple(
            sorted(
                ((symbol, order[dst]) for symbol, dst in minimal.delta[old].items()),
                key=lambda kv: repr(kv[0]),
            )
        )
        for old in sorted(order, key=order.get)
    ]
    accepts = frozenset(order[s] for s in minimal.accepts)
    return (len(order), accepts, tuple(delta))
