"""Nondeterministic finite automata over arbitrary hashable symbols.

The trace alphabet of this library is the set of access triples
``(op, resource, server)``, but nothing here depends on that: symbols
are any hashable values.  States are dense integers ``0..n-1`` so the
hot loops index lists rather than hash dictionaries of state objects
(see the optimisation guidance in the HPC coding guides: simple data
layout first, measure before anything fancier).

:class:`NFA` is immutable once built; construct via :class:`NFABuilder`.
ε-transitions are supported and eliminated on demand by
:meth:`NFA.epsilon_closure` / subset construction.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from repro.errors import AutomatonError

__all__ = ["NFA", "NFABuilder"]

Symbol = Hashable


class NFABuilder:
    """Mutable builder for :class:`NFA`.

    Typical use::

        b = NFABuilder()
        s0, s1 = b.add_state(), b.add_state()
        b.add_edge(s0, "a", s1)
        b.add_eps(s1, s0)
        nfa = b.build(start=s0, accepts=[s1])
    """

    def __init__(self) -> None:
        self._edges: list[dict[Symbol, set[int]]] = []
        self._eps: list[set[int]] = []

    @property
    def n_states(self) -> int:
        return len(self._edges)

    def add_state(self) -> int:
        """Create a fresh state and return its index."""
        self._edges.append({})
        self._eps.append(set())
        return len(self._edges) - 1

    def add_states(self, count: int) -> list[int]:
        """Create ``count`` fresh states."""
        return [self.add_state() for _ in range(count)]

    def _check(self, state: int) -> None:
        if not 0 <= state < len(self._edges):
            raise AutomatonError(f"unknown state {state}")

    def add_edge(self, src: int, symbol: Symbol, dst: int) -> None:
        """Add a transition ``src --symbol--> dst``."""
        self._check(src)
        self._check(dst)
        self._edges[src].setdefault(symbol, set()).add(dst)

    def add_eps(self, src: int, dst: int) -> None:
        """Add an ε-transition ``src --> dst``."""
        self._check(src)
        self._check(dst)
        self._eps[src].add(dst)

    def embed(self, other: "NFA") -> list[int]:
        """Copy all states and transitions of ``other`` into this
        builder; returns the mapping from other's state index to the
        new index (as a list)."""
        offset = self.n_states
        for _ in range(other.n_states):
            self.add_state()
        for src in range(other.n_states):
            for symbol, dsts in other.edges[src].items():
                for dst in dsts:
                    self.add_edge(offset + src, symbol, offset + dst)
            for dst in other.eps[src]:
                self.add_eps(offset + src, offset + dst)
        return list(range(offset, offset + other.n_states))

    def build(self, start: int, accepts: Iterable[int]) -> "NFA":
        """Freeze the builder into an immutable :class:`NFA`."""
        self._check(start)
        accept_set = frozenset(accepts)
        for state in accept_set:
            self._check(state)
        edges = tuple(
            {symbol: frozenset(dsts) for symbol, dsts in state_edges.items()}
            for state_edges in self._edges
        )
        eps = tuple(frozenset(e) for e in self._eps)
        return NFA(edges, eps, start, accept_set)


class NFA:
    """An immutable NFA with ε-transitions.

    Attributes
    ----------
    edges:
        ``edges[s]`` maps each symbol to the frozenset of successor
        states of ``s``.
    eps:
        ``eps[s]`` is the frozenset of ε-successors of ``s``.
    start, accepts:
        initial state and accepting-state set.
    """

    __slots__ = ("edges", "eps", "start", "accepts", "_closure_cache")

    def __init__(
        self,
        edges: Sequence[Mapping[Symbol, frozenset[int]]],
        eps: Sequence[frozenset[int]],
        start: int,
        accepts: frozenset[int],
    ) -> None:
        self.edges = tuple(dict(e) for e in edges)
        self.eps = tuple(eps)
        self.start = start
        self.accepts = accepts
        self._closure_cache: dict[int, frozenset[int]] = {}

    # -- basic facts ----------------------------------------------------

    @property
    def n_states(self) -> int:
        return len(self.edges)

    def alphabet(self) -> frozenset[Symbol]:
        """All symbols appearing on any transition."""
        out: set[Symbol] = set()
        for state_edges in self.edges:
            out.update(state_edges.keys())
        return frozenset(out)

    # -- ε-closures -------------------------------------------------------

    def epsilon_closure(self, state: int) -> frozenset[int]:
        """States reachable from ``state`` by ε-transitions (reflexive)."""
        cached = self._closure_cache.get(state)
        if cached is not None:
            return cached
        seen = {state}
        queue = deque((state,))
        while queue:
            current = queue.popleft()
            for nxt in self.eps[current]:
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        result = frozenset(seen)
        self._closure_cache[state] = result
        return result

    def closure_of(self, states: Iterable[int]) -> frozenset[int]:
        """ε-closure of a set of states."""
        out: set[int] = set()
        for state in states:
            out |= self.epsilon_closure(state)
        return frozenset(out)

    # -- execution --------------------------------------------------------

    def step(self, states: frozenset[int], symbol: Symbol) -> frozenset[int]:
        """One symbol step from a closed state set (result is closed)."""
        moved: set[int] = set()
        for state in states:
            moved |= self.edges[state].get(symbol, frozenset())
        return self.closure_of(moved)

    def accepts_word(self, word: Iterable[Symbol]) -> bool:
        """Run the NFA on ``word`` and report acceptance."""
        current = self.epsilon_closure(self.start)
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self.accepts)

    # -- language queries --------------------------------------------------

    def is_empty(self) -> bool:
        """True iff the accepted language is empty."""
        return self.shortest_word() is None

    def shortest_word(self) -> tuple[Symbol, ...] | None:
        """A shortest accepted word, or ``None`` if the language is
        empty.  BFS over state-set configurations."""
        start = self.epsilon_closure(self.start)
        if start & self.accepts:
            return ()
        seen = {start}
        queue: deque[tuple[frozenset[int], tuple[Symbol, ...]]] = deque(
            [(start, ())]
        )
        while queue:
            states, word = queue.popleft()
            symbols: set[Symbol] = set()
            for state in states:
                symbols.update(self.edges[state].keys())
            for symbol in sorted(symbols, key=repr):
                nxt = self.step(states, symbol)
                if not nxt or nxt in seen:
                    continue
                extended = word + (symbol,)
                if nxt & self.accepts:
                    return extended
                seen.add(nxt)
                queue.append((nxt, extended))
        return None

    def words_up_to(self, max_length: int) -> Iterator[tuple[Symbol, ...]]:
        """Enumerate all accepted words of length ≤ ``max_length``
        (deduplicated, shortest first).  Intended for small automata in
        tests; the number of words can be exponential in ``max_length``."""
        start = self.epsilon_closure(self.start)
        layer: list[tuple[frozenset[int], tuple[Symbol, ...]]] = [(start, ())]
        emitted: set[tuple[Symbol, ...]] = set()
        for length in range(max_length + 1):
            next_layer: list[tuple[frozenset[int], tuple[Symbol, ...]]] = []
            dedup: dict[tuple[Symbol, ...], frozenset[int]] = {}
            for states, word in layer:
                prev = dedup.get(word)
                dedup[word] = states | prev if prev else states
            for word, states in sorted(dedup.items(), key=lambda kv: repr(kv[0])):
                if states & self.accepts and word not in emitted:
                    emitted.add(word)
                    yield word
                if length == max_length:
                    continue
                symbols: set[Symbol] = set()
                for state in states:
                    symbols.update(self.edges[state].keys())
                for symbol in symbols:
                    nxt = self.step(states, symbol)
                    if nxt:
                        next_layer.append((nxt, word + (symbol,)))
            layer = next_layer
            if not layer:
                return

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"NFA(states={self.n_states}, start={self.start}, "
            f"accepts={sorted(self.accepts)}, |Σ|={len(self.alphabet())})"
        )
