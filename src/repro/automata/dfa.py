"""Deterministic finite automata with partial transition functions.

A missing transition is an implicit dead state (reject).  Operations
that need totality (complement) complete the automaton over an explicit
alphabet first.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from repro.errors import AutomatonError

__all__ = ["DFA"]

Symbol = Hashable


class DFA:
    """An immutable DFA.

    ``delta[s]`` maps symbols to the unique successor of state ``s``;
    absent symbols lead to an implicit dead state.
    """

    __slots__ = ("delta", "start", "accepts")

    def __init__(
        self,
        delta: Sequence[Mapping[Symbol, int]],
        start: int,
        accepts: Iterable[int],
    ) -> None:
        self.delta = tuple(dict(d) for d in delta)
        self.start = start
        self.accepts = frozenset(accepts)
        n = len(self.delta)
        if not 0 <= start < n:
            raise AutomatonError(f"start state {start} out of range")
        for state in self.accepts:
            if not 0 <= state < n:
                raise AutomatonError(f"accept state {state} out of range")
        for src, edges in enumerate(self.delta):
            for symbol, dst in edges.items():
                if not 0 <= dst < n:
                    raise AutomatonError(
                        f"transition {src} --{symbol!r}--> {dst} out of range"
                    )

    # -- basic facts ----------------------------------------------------

    @property
    def n_states(self) -> int:
        return len(self.delta)

    def alphabet(self) -> frozenset[Symbol]:
        out: set[Symbol] = set()
        for edges in self.delta:
            out.update(edges.keys())
        return frozenset(out)

    # -- execution --------------------------------------------------------

    def step(self, state: int | None, symbol: Symbol) -> int | None:
        """One step; ``None`` is the dead state."""
        if state is None:
            return None
        return self.delta[state].get(symbol)

    def accepts_word(self, word: Iterable[Symbol]) -> bool:
        state: int | None = self.start
        for symbol in word:
            state = self.step(state, symbol)
            if state is None:
                return False
        return state in self.accepts

    # -- structure --------------------------------------------------------

    def reachable_states(self) -> frozenset[int]:
        """States reachable from the start state."""
        seen = {self.start}
        queue = deque([self.start])
        while queue:
            state = queue.popleft()
            for dst in self.delta[state].values():
                if dst not in seen:
                    seen.add(dst)
                    queue.append(dst)
        return frozenset(seen)

    def trim(self) -> "DFA":
        """Drop unreachable states (renumbering the rest)."""
        reachable = sorted(self.reachable_states())
        remap = {old: new for new, old in enumerate(reachable)}
        delta = [
            {
                symbol: remap[dst]
                for symbol, dst in self.delta[old].items()
                if dst in remap
            }
            for old in reachable
        ]
        accepts = [remap[s] for s in self.accepts if s in remap]
        return DFA(delta, remap[self.start], accepts)

    def completed(self, alphabet: Iterable[Symbol]) -> "DFA":
        """Make the transition function total over ``alphabet`` by
        adding an explicit dead state (if any transition is missing)."""
        alphabet = frozenset(alphabet) | self.alphabet()
        n = self.n_states
        needs_dead = any(
            symbol not in edges for edges in self.delta for symbol in alphabet
        )
        if not needs_dead:
            return self
        dead = n
        delta: list[dict[Symbol, int]] = [dict(d) for d in self.delta]
        delta.append({})
        for edges in delta:
            for symbol in alphabet:
                edges.setdefault(symbol, dead)
        return DFA(delta, self.start, self.accepts)

    def complement(self, alphabet: Iterable[Symbol]) -> "DFA":
        """The DFA accepting exactly the words over ``alphabet`` that
        this DFA rejects.  The result is total over ``alphabet``."""
        total = self.completed(alphabet)
        accepts = frozenset(range(total.n_states)) - total.accepts
        return DFA(total.delta, total.start, accepts)

    def is_empty(self) -> bool:
        """True iff no reachable state accepts."""
        return not (self.reachable_states() & self.accepts)

    def shortest_word(self) -> tuple[Symbol, ...] | None:
        """A shortest accepted word, or None."""
        if self.start in self.accepts:
            return ()
        parent: dict[int, tuple[int, Symbol]] = {}
        seen = {self.start}
        queue = deque([self.start])
        while queue:
            state = queue.popleft()
            for symbol, dst in sorted(self.delta[state].items(), key=lambda kv: repr(kv[0])):
                if dst in seen:
                    continue
                seen.add(dst)
                parent[dst] = (state, symbol)
                if dst in self.accepts:
                    word: list[Symbol] = []
                    current = dst
                    while current != self.start:
                        prev, sym = parent[current]
                        word.append(sym)
                        current = prev
                    return tuple(reversed(word))
                queue.append(dst)
        return None

    def words_up_to(self, max_length: int) -> Iterator[tuple[Symbol, ...]]:
        """All accepted words of length ≤ ``max_length`` (BFS order)."""
        layer: list[tuple[int, tuple[Symbol, ...]]] = [(self.start, ())]
        for length in range(max_length + 1):
            next_layer: list[tuple[int, tuple[Symbol, ...]]] = []
            for state, word in layer:
                if state in self.accepts:
                    yield word
                if length == max_length:
                    continue
                for symbol, dst in self.delta[state].items():
                    next_layer.append((dst, word + (symbol,)))
            layer = next_layer
            if not layer:
                return

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"DFA(states={self.n_states}, start={self.start}, "
            f"accepts={sorted(self.accepts)}, |Σ|={len(self.alphabet())})"
        )
