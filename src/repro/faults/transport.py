"""The fault-aware delivery hop for proof propagation.

:class:`~repro.service.batching.ProofBatch` talks to its destination
servers through a *transport*.  The default (no faults) transport
always succeeds; :class:`FaultyTransport` interposes the link policy
and the server lifecycle, so a delivery attempt can fail — the batcher
then re-queues the batch on its retry schedule.

The transport is a DES-side object: fault draws consume the link's
seeded rng stream, so calls must happen in a deterministic order
(single-threaded simulation).  Do not share one transport between
concurrently flushing threads if replayability matters.
"""

from __future__ import annotations

from typing import Iterable

from repro.coalition.network import Coalition
from repro.coalition.proofs import ExecutionProof
from repro.errors import ServerUnavailable
from repro.faults.lifecycle import ServerLifecycle
from repro.faults.link import FaultyLink
from repro.obs import REGISTRY

__all__ = ["DirectTransport", "FaultyTransport"]


class DirectTransport:
    """The fault-free hop: hand the batch straight to the ledger."""

    def __init__(self, coalition: Coalition):
        self.coalition = coalition

    def deliver(
        self, destination: str, proofs: list[ExecutionProof], now: float
    ) -> bool:
        self.coalition.server(destination).receive_proofs(proofs, now=now)
        return True

    def delivery_delay(self, destination: str, now: float) -> float:
        return 0.0


class FaultyTransport:
    """Delivery subject to link drops/duplication and server downtime.

    ``deliver`` returns ``False`` on failure (message dropped, or the
    destination cannot receive) — the caller owns the retry schedule.
    ``delivery_delay`` reports the extra in-flight delay (fixed link
    delay plus the reordering draw) the *next* successful delivery to
    ``destination`` should experience; the batcher turns it into a
    postponed due time, which is how batches overtake each other.
    """

    def __init__(
        self,
        coalition: Coalition,
        link: FaultyLink | None = None,
        lifecycle: ServerLifecycle | None = None,
    ):
        self.coalition = coalition
        self.link = link
        self.lifecycle = lifecycle
        self.attempts = 0
        self.failures = 0
        self.unavailable = 0
        self.drops = 0
        self.duplicates = 0
        REGISTRY.register_collector(self._collect_obs)

    def __del__(self):
        try:
            REGISTRY.absorb(self._collect_obs())
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def _collect_obs(self) -> dict[str, float]:
        """Pull-time metrics source (fault draws are single-threaded by
        contract — see the module docstring)."""
        return {
            "transport.attempts": self.attempts,
            "transport.failures": self.failures,
            "transport.unavailable": self.unavailable,
            "transport.drops": self.drops,
            "transport.duplicates": self.duplicates,
        }

    def deliver(
        self, destination: str, proofs: list[ExecutionProof], now: float
    ) -> bool:
        self.attempts += 1
        if self.lifecycle is not None and not self.lifecycle.can_receive(
            destination, now
        ):
            self.unavailable += 1
            self.failures += 1
            return False
        if self.link is not None and self.link.dropped("*", destination):
            self.drops += 1
            self.failures += 1
            return False
        server = self.coalition.server(destination)
        try:
            server.receive_proofs(proofs, now=now)
            if self.link is not None and self.link.duplicated("*", destination):
                # The duplicate lands in the same ledger; digest
                # deduplication must make it invisible.
                self.duplicates += 1
                server.receive_proofs(proofs, now=now)
        except ServerUnavailable:
            self.unavailable += 1
            self.failures += 1
            return False
        return True

    def delivery_delay(self, destination: str, now: float) -> float:
        if self.link is None:
            return 0.0
        return self.link.delivery_delay("*", destination)

    def stats(self) -> dict[str, int]:
        return {
            "attempts": self.attempts,
            "failures": self.failures,
            "unavailable": self.unavailable,
        }
