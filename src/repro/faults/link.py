"""Seeded link-fault policy: drops, delay, duplication, reordering.

A :class:`FaultyLink` models the coalition network misbehaving — every
fault decision is drawn from one ``random.Random(seed)`` stream, so a
chaos run is a pure function of its seed and replays bit-identically.
The policy composes with any
:data:`~repro.coalition.network.LatencyModel` via :meth:`wrap`, which
adds the link's extra delay to the base model's latency (migration and
proof delivery both slow down on a degraded link).
"""

from __future__ import annotations

import random

from repro.errors import FaultError

__all__ = ["FaultyLink"]


def _check_probability(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise FaultError(f"{name} must be a probability in [0, 1], got {value}")
    return float(value)


class FaultyLink:
    """Per-delivery link faults, drawn deterministically from a seed.

    Parameters
    ----------
    drop:
        Probability a delivery attempt is lost in transit.
    extra_delay:
        Fixed additional latency on every traversal (seconds of
        virtual time); :meth:`wrap` adds it to a base latency model.
    duplicate:
        Probability a successful delivery arrives twice (the receiving
        ledger deduplicates by proof digest, so duplication must be
        outcome-invisible — the chaos suite pins that).
    reorder_window:
        Successful deliveries are additionally delayed by a uniform
        draw from ``[0, reorder_window)``, so batches to the same
        destination can overtake each other.
    seed:
        Seed of the private fault stream.
    """

    def __init__(
        self,
        drop: float = 0.0,
        extra_delay: float = 0.0,
        duplicate: float = 0.0,
        reorder_window: float = 0.0,
        seed: int = 0,
    ):
        self.drop = _check_probability("drop", drop)
        self.duplicate = _check_probability("duplicate", duplicate)
        if extra_delay < 0:
            raise FaultError(f"extra_delay must be non-negative, got {extra_delay}")
        if reorder_window < 0:
            raise FaultError(
                f"reorder_window must be non-negative, got {reorder_window}"
            )
        self.extra_delay = float(extra_delay)
        self.reorder_window = float(reorder_window)
        self._rng = random.Random(seed)
        self.drops = 0
        self.duplicates = 0

    # -- fault draws ---------------------------------------------------------

    def dropped(self, src: str, dst: str) -> bool:
        """Does this delivery attempt get lost on ``src -> dst``?"""
        if self.drop and self._rng.random() < self.drop:
            self.drops += 1
            return True
        return False

    def duplicated(self, src: str, dst: str) -> bool:
        """Does this successful delivery arrive twice?"""
        if self.duplicate and self._rng.random() < self.duplicate:
            self.duplicates += 1
            return True
        return False

    def delivery_delay(self, src: str, dst: str) -> float:
        """Extra delay of one successful delivery (fixed part plus the
        reordering draw)."""
        jitter = (
            self._rng.uniform(0.0, self.reorder_window) if self.reorder_window else 0.0
        )
        return self.extra_delay + jitter

    # -- composition ----------------------------------------------------------

    def wrap(self, base):
        """Compose with a base latency model: same signature, plus this
        link's fixed extra delay on every distinct-server traversal."""

        def model(src: str, dst: str) -> float:
            value = base(src, dst)
            if src == dst:
                return value
            return value + self.extra_delay

        return model

    # -- recovery ------------------------------------------------------------

    def heal(self) -> None:
        """The network is healthy again: zero every fault rate (the
        counters and the rng stream are kept, so a healed run stays
        replayable)."""
        self.drop = 0.0
        self.duplicate = 0.0
        self.extra_delay = 0.0
        self.reorder_window = 0.0

    def stats(self) -> dict[str, float | int]:
        return {
            "drop": self.drop,
            "duplicate": self.duplicate,
            "extra_delay": self.extra_delay,
            "reorder_window": self.reorder_window,
            "drops": self.drops,
            "duplicates": self.duplicates,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FaultyLink(drop={self.drop}, extra_delay={self.extra_delay}, "
            f"duplicate={self.duplicate}, reorder_window={self.reorder_window})"
        )
