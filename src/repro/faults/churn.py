"""Membership churn: the topology itself moves.

The link layer models flaky networks and the lifecycle layer crashing
machines; this module models the coalition's *membership* changing
while traffic is live — the scenario class the source paper assumes
away by fixing the topology up front.  A :class:`MembershipSchedule`
is a deterministic list of :class:`ChurnEvent`\\ s the simulation
applies at their scheduled virtual times:

* ``join`` — a factory-built server joins (epoch bump + bootstrap
  sync handshake, see :meth:`repro.coalition.Coalition.join`);
* ``leave`` — a member departs gracefully (its proofs stay valid);
* ``evict`` — a member vanishes abruptly and is evicted (all its
  proofs become inadmissible from the new epoch on, and the lifecycle
  marks it permanently DOWN);
* ``merge`` — a factory-built second coalition is absorbed whole.

Factories (``make_server`` / ``make_coalition``) defer construction to
application time so a schedule can be built before the run without the
joining servers existing yet, and so two runs of the same seeded
schedule construct identical servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import FaultError

__all__ = ["ChurnEvent", "MembershipSchedule"]

_KINDS = ("join", "leave", "evict", "merge")


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled membership change at virtual time ``at``."""

    at: float
    kind: str
    #: leave/evict: the departing member's name.
    server: str | None = None
    #: join: zero-arg factory returning the joining CoalitionServer.
    make_server: Callable[[], object] | None = None
    #: merge: zero-arg factory returning the absorbed Coalition.
    make_coalition: Callable[[], object] | None = None
    #: join: optional name of the member to bootstrap-sync from.
    bootstrap_from: str | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultError(f"churn time must be non-negative, got {self.at}")
        if self.kind not in _KINDS:
            raise FaultError(f"unknown churn kind {self.kind!r}")
        if self.kind in ("leave", "evict") and not self.server:
            raise FaultError(f"{self.kind} event needs a server name")
        if self.kind == "join" and self.make_server is None:
            raise FaultError("join event needs a make_server factory")
        if self.kind == "merge" and self.make_coalition is None:
            raise FaultError("merge event needs a make_coalition factory")


class MembershipSchedule:
    """An ordered, consumable queue of churn events.

    Events are applied in ``(at, insertion order)`` order;
    :meth:`due` pops everything scheduled at or before ``now`` so the
    simulation can apply churn exactly once per event, deterministically.
    """

    def __init__(self, events: list[ChurnEvent] | tuple[ChurnEvent, ...] = ()):
        self._events: list[ChurnEvent] = sorted(
            events, key=lambda e: e.at
        )  # sort is stable: same-time events keep insertion order
        self.applied = 0

    def add(self, event: ChurnEvent) -> None:
        self._events.append(event)
        self._events.sort(key=lambda e: e.at)

    def due(self, now: float) -> list[ChurnEvent]:
        """Pop and return every event with ``at <= now``."""
        i = 0
        while i < len(self._events) and self._events[i].at <= now:
            i += 1
        due, self._events = self._events[:i], self._events[i:]
        self.applied += len(due)
        return due

    def pending(self) -> tuple[ChurnEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)
