"""Degradation modes and the bundled fault plan.

When proof propagation lags (drops, retries in flight, a peer just
rebooted), a deciding server may face a roaming object whose carried
proof chain contains accesses the server has not yet heard about from
the issuing peers.  The :class:`DegradationPolicy` says what to do
about that *corroboration gap*:

* ``fail_closed()`` — deny the access until propagation catches up.
  This is the paper's default semantics: coordination is what makes
  the decision sound, so an uncoordinated decision is refused.
* ``stale_ok(max_age)`` — tolerate uncorroborated proofs younger than
  ``max_age`` (ordinary propagation lag), deny once any gap is older
  (the lag is no longer explainable by a healthy network).

A :class:`FaultPlan` bundles the link policy, the server lifecycle,
the retry schedule and the degradation mode into the single object
:class:`~repro.agent.scheduler.Simulation` accepts as ``faults=``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FaultError
from repro.faults.churn import MembershipSchedule
from repro.faults.lifecycle import ServerLifecycle
from repro.faults.link import FaultyLink
from repro.faults.retry import RetryPolicy

__all__ = ["DegradationPolicy", "fail_closed", "stale_ok", "FaultPlan"]


@dataclass(frozen=True)
class DegradationPolicy:
    """What to do when the deciding server's announced ledger lacks
    proofs the roaming object's carried chain claims."""

    mode: str
    max_age: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("fail_closed", "stale_ok"):
            raise FaultError(f"unknown degradation mode {self.mode!r}")
        if self.mode == "stale_ok" and self.max_age < 0:
            raise FaultError(f"max_age must be non-negative, got {self.max_age}")

    def tolerates(self, age: float) -> bool:
        """Is an uncorroborated proof of this age acceptable?"""
        return self.mode == "stale_ok" and age <= self.max_age


def fail_closed() -> DegradationPolicy:
    """Deny whenever any foreign proof is uncorroborated (default)."""
    return DegradationPolicy("fail_closed")


def stale_ok(max_age: float) -> DegradationPolicy:
    """Tolerate corroboration gaps up to ``max_age`` old."""
    return DegradationPolicy("stale_ok", max_age)


@dataclass
class FaultPlan:
    """Everything the simulation needs to misbehave deterministically.

    ``retry`` paces proof-delivery retries; ``migration_retry`` (same
    policy by default) paces an agent re-attempting to reach a down
    server.  ``degradation`` is optional — without it, propagation lag
    never blocks a decision (the repo's pre-fault behaviour).
    """

    link: FaultyLink | None = None
    lifecycle: ServerLifecycle | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    migration_retry: RetryPolicy | None = None
    degradation: DegradationPolicy | None = None
    #: Scheduled membership churn (joins/leaves/evictions/merges) the
    #: simulation applies at virtual time; see :mod:`repro.faults.churn`.
    churn: MembershipSchedule | None = None
    _installed: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.migration_retry is None:
            self.migration_retry = self.retry

    def transport(self, coalition):
        """A :class:`~repro.faults.transport.FaultyTransport` over this
        plan (import deferred: plan has no coalition dependency)."""
        from repro.faults.transport import FaultyTransport

        return FaultyTransport(coalition, link=self.link, lifecycle=self.lifecycle)

    def install(self, coalition) -> None:
        """Attach the lifecycle to every server of ``coalition`` (so
        direct ``execute_access``/``receive_proofs`` calls honor it)
        and compose the link's extra delay into the coalition's latency
        model.  Idempotent — the simulation calls this on construction,
        but explicit callers are safe too."""
        if self._installed:
            return
        self._installed = True
        if self.lifecycle is not None:
            for server in coalition:
                server.lifecycle = self.lifecycle
        if self.link is not None:
            coalition.latency_model = self.link.wrap(coalition.latency_model)

    def heal(self, now: float) -> None:
        """End the chaos: zero the link's fault rates and truncate all
        outages at ``now``.  After this, retries drain deterministically."""
        if self.link is not None:
            self.link.heal()
        if self.lifecycle is not None:
            self.lifecycle.heal(now)
