"""Deterministic retry schedules for unreliable coalition links.

The paper's coordination protocol assumes every execution proof
eventually reaches every peer server; over a real coalition network
the delivery attempt can fail (link drop, destination down).  The
:class:`RetryPolicy` gives failed deliveries a *jitter-free*
exponential-backoff schedule — the whole fault layer is seeded and
deterministic so chaos runs replay exactly, which rules out the usual
randomised jitter.  Fairness between contending retriers is instead
provided by the discrete-event scheduler's FIFO tie-breaking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff without jitter.

    Attempt *k* (0-based; attempt 0 is the first retry after the
    initial failure) waits ``min(base_delay * multiplier**k,
    max_delay)``.  ``max_attempts`` bounds the number of retries;
    ``deadline`` additionally abandons a delivery once more than that
    much (virtual) time has passed since its first attempt, whichever
    comes first.
    """

    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 8.0
    max_attempts: int = 6
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.base_delay <= 0:
            raise FaultError(f"base_delay must be positive, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise FaultError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < self.base_delay:
            raise FaultError(
                f"max_delay {self.max_delay} must be >= base_delay {self.base_delay}"
            )
        if self.max_attempts < 1:
            raise FaultError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.deadline is not None and self.deadline <= 0:
            raise FaultError(f"deadline must be positive, got {self.deadline}")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise FaultError(f"attempt index must be >= 0, got {attempt}")
        return min(self.base_delay * self.multiplier**attempt, self.max_delay)

    def schedule(self, start: float) -> tuple[float, ...]:
        """Absolute virtual times of every retry after a first attempt
        at ``start`` (deadline-truncated)."""
        times: list[float] = []
        t = start
        for attempt in range(self.max_attempts):
            t += self.delay(attempt)
            if self.deadline is not None and t - start > self.deadline:
                break
            times.append(t)
        return tuple(times)

    def exhausted(self, attempt: int, first_attempt: float, now: float) -> bool:
        """Should a delivery that has already failed ``attempt`` retries
        be abandoned?"""
        if attempt >= self.max_attempts:
            return True
        return self.deadline is not None and now - first_attempt > self.deadline
