"""Server lifecycle: scheduled crashes, recovery windows, healing.

Coalition servers in production crash and come back.  The
:class:`ServerLifecycle` holds, per server, a set of scheduled outage
windows; the server's state at any virtual time is a pure function of
the schedule, so no events need to enter the simulation heap and a
seeded run stays deterministic.

States::

    UP ──crash──▶ DOWN ──▶ RECOVERING ──▶ UP
                  (rejects everything)   (accepts proof deliveries,
                                          but no accesses/migrations)

``RECOVERING`` models the catch-up phase after a restart: the server
is reachable for proof propagation (so retries can refill its
announced ledger) but does not yet execute accesses or admit arriving
agents.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import FaultError

__all__ = ["ServerState", "Outage", "ServerLifecycle"]


class ServerState(enum.Enum):
    UP = "up"
    DOWN = "down"
    RECOVERING = "recovering"


@dataclass(frozen=True)
class Outage:
    """One scheduled crash: down on ``[down_at, recover_at)``,
    recovering on ``[recover_at, up_at)``, up again from ``up_at``."""

    down_at: float
    recover_at: float
    up_at: float

    def __post_init__(self) -> None:
        if not self.down_at <= self.recover_at <= self.up_at:
            raise FaultError(
                f"outage must satisfy down_at <= recover_at <= up_at, got "
                f"({self.down_at}, {self.recover_at}, {self.up_at})"
            )

    def state_at(self, now: float) -> ServerState:
        if self.down_at <= now < self.recover_at:
            return ServerState.DOWN
        if self.recover_at <= now < self.up_at:
            return ServerState.RECOVERING
        return ServerState.UP


class ServerLifecycle:
    """Outage schedules for the coalition's servers.

    Servers with no schedule are permanently up.  Windows of one
    server must not overlap (one machine cannot crash twice at once).
    """

    def __init__(self) -> None:
        self._outages: dict[str, list[Outage]] = {}
        #: server -> time of permanent eviction (abrupt coalition
        #: departure).  Unlike outages, evictions survive :meth:`heal`.
        self._evicted_at: dict[str, float] = {}

    def schedule_crash(
        self,
        server: str,
        at: float,
        down_for: float,
        recovering_for: float = 0.0,
    ) -> Outage:
        """Crash ``server`` at virtual time ``at``; it is DOWN for
        ``down_for``, then RECOVERING for ``recovering_for``, then UP."""
        if at < 0:
            raise FaultError(f"crash time must be non-negative, got {at}")
        if down_for < 0 or recovering_for < 0:
            raise FaultError("outage durations must be non-negative")
        outage = Outage(at, at + down_for, at + down_for + recovering_for)
        for existing in self._outages.get(server, ()):
            if outage.down_at < existing.up_at and existing.down_at < outage.up_at:
                raise FaultError(
                    f"outage windows for {server!r} overlap: "
                    f"[{existing.down_at}, {existing.up_at}) and "
                    f"[{outage.down_at}, {outage.up_at})"
                )
        self._outages.setdefault(server, []).append(outage)
        self._outages[server].sort(key=lambda o: o.down_at)
        return outage

    def evict(self, server: str, at: float) -> None:
        """Permanently remove ``server`` from service at time ``at``:
        the abrupt-departure path of a dynamic coalition.  The server
        is DOWN from ``at`` on, forever — :meth:`heal` restores crashed
        servers but never evicted ones.  Idempotent (the earliest
        eviction time wins)."""
        if at < 0:
            raise FaultError(f"eviction time must be non-negative, got {at}")
        current = self._evicted_at.get(server)
        self._evicted_at[server] = at if current is None else min(current, at)

    def evicted_at(self, server: str) -> float | None:
        return self._evicted_at.get(server)

    # -- queries ---------------------------------------------------------------

    def state(self, server: str, now: float) -> ServerState:
        evicted_at = self._evicted_at.get(server)
        if evicted_at is not None and now >= evicted_at:
            return ServerState.DOWN
        for outage in self._outages.get(server, ()):
            state = outage.state_at(now)
            if state is not ServerState.UP:
                return state
        return ServerState.UP

    def is_up(self, server: str, now: float) -> bool:
        return self.state(server, now) is ServerState.UP

    def can_execute(self, server: str, now: float) -> bool:
        """May the server execute accesses / admit arriving agents?"""
        return self.state(server, now) is ServerState.UP

    def can_receive(self, server: str, now: float) -> bool:
        """May the server accept proof deliveries?  (Also true while
        RECOVERING — propagation catch-up precedes serving.)"""
        return self.state(server, now) is not ServerState.DOWN

    def outages(self, server: str) -> tuple[Outage, ...]:
        return tuple(self._outages.get(server, ()))

    def next_up_time(self, server: str, now: float) -> float:
        """Earliest time >= ``now`` at which the server is UP (for
        retry pacing; ``now`` itself if already up)."""
        evicted_at = self._evicted_at.get(server)
        if evicted_at is not None and now >= evicted_at:
            return math.inf  # evicted servers never come back
        t = now
        for outage in self._outages.get(server, ()):
            if outage.down_at <= t < outage.up_at:
                t = outage.up_at
        if evicted_at is not None and t >= evicted_at:
            return math.inf
        return t

    # -- recovery ---------------------------------------------------------------

    def heal(self, now: float) -> None:
        """Truncate every outage at ``now``: all servers are UP from
        ``now`` on (past outage history is preserved)."""
        for server, outages in self._outages.items():
            healed: list[Outage] = []
            for outage in outages:
                if outage.down_at >= now:
                    continue  # never happened
                healed.append(
                    Outage(
                        outage.down_at,
                        min(outage.recover_at, now),
                        min(outage.up_at, now),
                    )
                )
            self._outages[server] = healed
