"""repro.faults — deterministic fault injection for the coalition.

The coordination protocol assumes proofs of prior accesses always
reach peer servers; this package models everything that breaks that
assumption, *deterministically* (every fault decision is a pure
function of a seed), so chaos runs replay exactly:

* :class:`~repro.faults.link.FaultyLink` — drop / extra delay /
  duplication / reordering on the coalition links, composable with any
  :data:`~repro.coalition.network.LatencyModel`;
* :class:`~repro.faults.lifecycle.ServerLifecycle` — scheduled
  crash → down → recovering → up windows per server;
* :class:`~repro.faults.retry.RetryPolicy` — jitter-free exponential
  backoff with max attempts and a per-delivery deadline;
* :class:`~repro.faults.plan.DegradationPolicy` — ``fail_closed()``
  (deny while the deciding server's ledger lags, the paper's default)
  vs ``stale_ok(max_age)``;
* :class:`~repro.faults.plan.FaultPlan` — the bundle
  :class:`~repro.agent.scheduler.Simulation` accepts as ``faults=``;
* :class:`~repro.faults.transport.FaultyTransport` — the fault-aware
  delivery hop :class:`~repro.service.batching.ProofBatch` retries
  through.

See docs/architecture.md, "Fault tolerance".
"""

from repro.faults.churn import ChurnEvent, MembershipSchedule
from repro.faults.lifecycle import Outage, ServerLifecycle, ServerState
from repro.faults.link import FaultyLink
from repro.faults.plan import DegradationPolicy, FaultPlan, fail_closed, stale_ok
from repro.faults.retry import RetryPolicy
from repro.faults.transport import DirectTransport, FaultyTransport

__all__ = [
    "ChurnEvent",
    "MembershipSchedule",
    "FaultyLink",
    "ServerLifecycle",
    "ServerState",
    "Outage",
    "RetryPolicy",
    "DegradationPolicy",
    "fail_closed",
    "stale_ok",
    "FaultPlan",
    "DirectTransport",
    "FaultyTransport",
]
