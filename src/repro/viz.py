"""Rendering helpers: regenerate the paper's Figure 1 and inspect the
library's objects.

All output is plain text (Graphviz DOT source or ASCII), so nothing
here needs a display or external tool:

* :func:`dependency_graph_to_dot` — Figure 1 as DOT, with the dotted
  server clusters of the original drawing;
* :func:`dependency_graph_to_ascii` — a terminal rendering of the same
  digraph, modules grouped by server;
* :func:`nfa_to_dot` / :func:`dfa_to_dot` — trace automata;
* :func:`timeline_to_ascii` — a boolean state function as a bar;
* :func:`audit_report_to_ascii` — an integrity audit summary.
"""

from __future__ import annotations

from repro.apps.integrity import AuditReport, DependencyGraph
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.temporal.timeline import BooleanTimeline

__all__ = [
    "dependency_graph_to_dot",
    "dependency_graph_to_ascii",
    "nfa_to_dot",
    "dfa_to_dot",
    "timeline_to_ascii",
    "audit_report_to_ascii",
]


def _quote(name: str) -> str:
    return '"' + name.replace('"', '\\"') + '"'


def dependency_graph_to_dot(graph: DependencyGraph, title: str = "Figure 1") -> str:
    """Graphviz DOT for a module dependency digraph, one dotted cluster
    per server — the layout of the paper's Figure 1."""
    lines = [
        "digraph dependency {",
        f"  label={_quote(title)};",
        "  rankdir=BT;",
        "  node [shape=circle];",
    ]
    for index, server in enumerate(graph.servers()):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(server)};")
        lines.append('    style=dotted;')
        for module in graph.modules():
            if module.server == server:
                lines.append(f"    {_quote(module.name)};")
        lines.append("  }")
    for module in graph.modules():
        for dep in module.depends_on:
            # "A directed line from module A to D represents module A
            # depends on D."
            lines.append(f"  {_quote(module.name)} -> {_quote(dep)};")
    lines.append("}")
    return "\n".join(lines)


def dependency_graph_to_ascii(graph: DependencyGraph) -> str:
    """Terminal rendering: modules grouped by server with their edges."""
    lines: list[str] = []
    for server in graph.servers():
        members = [m for m in graph.modules() if m.server == server]
        lines.append(f"[{server}] " + "." * max(1, 48 - len(server)))
        for module in members:
            arrow = (
                " --> " + ", ".join(module.depends_on)
                if module.depends_on
                else "     (no dependencies)"
            )
            lines.append(f"   ({module.name}){arrow}")
    return "\n".join(lines)


def nfa_to_dot(nfa: NFA, title: str = "NFA") -> str:
    """Graphviz DOT for an NFA (ε-edges dashed)."""
    lines = [
        "digraph nfa {",
        f"  label={_quote(title)};",
        "  rankdir=LR;",
        '  node [shape=circle];',
        '  __start [shape=point];',
        f"  __start -> {nfa.start};",
    ]
    for state in nfa.accepts:
        lines.append(f"  {state} [shape=doublecircle];")
    for src in range(nfa.n_states):
        for symbol, dsts in nfa.edges[src].items():
            for dst in sorted(dsts):
                lines.append(f"  {src} -> {dst} [label={_quote(str(symbol))}];")
        for dst in sorted(nfa.eps[src]):
            lines.append(f"  {src} -> {dst} [style=dashed, label=\"ε\"];")
    lines.append("}")
    return "\n".join(lines)


def dfa_to_dot(dfa: DFA, title: str = "DFA") -> str:
    """Graphviz DOT for a DFA."""
    lines = [
        "digraph dfa {",
        f"  label={_quote(title)};",
        "  rankdir=LR;",
        '  node [shape=circle];',
        '  __start [shape=point];',
        f"  __start -> {dfa.start};",
    ]
    for state in sorted(dfa.accepts):
        lines.append(f"  {state} [shape=doublecircle];")
    for src in range(dfa.n_states):
        for symbol, dst in sorted(dfa.delta[src].items(), key=lambda kv: repr(kv[0])):
            lines.append(f"  {src} -> {dst} [label={_quote(str(symbol))}];")
    lines.append("}")
    return "\n".join(lines)


def timeline_to_ascii(
    timeline: BooleanTimeline, b: float, e: float, width: int = 60
) -> str:
    """Render a boolean state function over ``[b, e]`` as a bar:
    ``█`` where the state is 1, ``·`` where it is 0."""
    if e <= b or width < 1:
        return ""
    cells = []
    step = (e - b) / width
    for i in range(width):
        midpoint = b + (i + 0.5) * step
        cells.append("█" if timeline.value_at(midpoint) else "·")
    bar = "".join(cells)
    return f"{b:g} |{bar}| {e:g}"


def audit_report_to_ascii(report: AuditReport) -> str:
    """One-line-per-module audit summary."""
    lines = [
        f"audit: finished={report.finished} order_ok={report.order_constraint_ok} "
        f"denied={report.denied_accesses} migrations={report.migrations} "
        f"T={report.duration:g}"
    ]
    for name in sorted(report.verified):
        verified = "VERIFIED " if report.verified[name] else "UNVERIFIED"
        hash_note = "" if report.hash_ok.get(name) else "  (hash mismatch or unaudited)"
        lines.append(f"  {name:<8} {verified}{hash_note}")
    return "\n".join(lines)
