"""Temporal constraints over continuous time (paper Section 4).

* :mod:`repro.temporal.timeline` — piecewise-constant boolean state
  functions ``Time → {0, 1}`` with vectorised duration integrals;
* :mod:`repro.temporal.duration` — the duration-calculus fragment the
  paper relies on (Theorem 4.1's decidability);
* :mod:`repro.temporal.validity` — the three permission states and the
  two base-time schemes (Eq. 4.1);
* :mod:`repro.temporal.checker` — the combined spatio-temporal
  permission validity check.
"""

from repro.temporal.aggregation import (
    AggregationStrategy,
    PermissionClass,
    PermissionClassifier,
)
from repro.temporal.checker import ValidityDecision, check_validity
from repro.temporal.duration import (
    Chop,
    DCAnd,
    DCFormula,
    DCNot,
    DCOr,
    DurationAtLeast,
    DurationAtMost,
    Everywhere,
    Somewhere,
    evaluate,
)
from repro.temporal.timeline import BooleanTimeline, TimelineRecorder
from repro.temporal.validity import PermissionState, Scheme, ValidityTracker

__all__ = [
    "AggregationStrategy",
    "PermissionClass",
    "PermissionClassifier",
    "ValidityDecision",
    "check_validity",
    "Chop",
    "DCAnd",
    "DCFormula",
    "DCNot",
    "DCOr",
    "DurationAtLeast",
    "DurationAtMost",
    "Everywhere",
    "Somewhere",
    "evaluate",
    "BooleanTimeline",
    "TimelineRecorder",
    "PermissionState",
    "Scheme",
    "ValidityTracker",
]
