"""Continuous-time boolean state functions.

Section 4 of the paper models permission states as boolean-valued
functions over continuous time (``Time → {0, 1}``, Time ≅ ℝ) and
defines durations as integrals of those functions.  The state of a real
system changes at finitely many instants, so the functions are
piecewise constant; we represent them by a sorted breakpoint array — a
numpy vector — plus the initial value, and integrate by vectorised
segment sums (no per-segment Python loop on the hot path).

Conventions: a timeline ``f`` with breakpoints ``t_0 < t_1 < …`` and
initial value ``v`` has ``f(t) = v`` for ``t < t_0`` and flips at every
breakpoint; segments are right-open ``[t_i, t_{i+1})``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import TemporalError

__all__ = ["BooleanTimeline", "TimelineRecorder"]


class BooleanTimeline:
    """An immutable piecewise-constant function ``Time → {0, 1}``.

    Build from explicit switch times (:meth:`from_switch_times`), from
    the intervals where the function is 1 (:meth:`from_intervals`), or
    incrementally with :class:`TimelineRecorder`.
    """

    __slots__ = ("switches", "initial")

    def __init__(self, switches: Sequence[float] | np.ndarray, initial: bool):
        array = np.asarray(switches, dtype=np.float64)
        if array.ndim != 1:
            raise TemporalError("switch times must be a 1-D sequence")
        if array.size and not np.all(np.diff(array) > 0):
            raise TemporalError("switch times must be strictly increasing")
        if array.size and not np.all(np.isfinite(array)):
            raise TemporalError("switch times must be finite")
        self.switches = array
        self.initial = bool(initial)

    # -- constructors ----------------------------------------------------

    @staticmethod
    def constant(value: bool) -> "BooleanTimeline":
        """The constant function 0 or 1."""
        return BooleanTimeline(np.empty(0), value)

    @staticmethod
    def from_switch_times(
        times: Iterable[float], initial: bool = False
    ) -> "BooleanTimeline":
        """A function starting at ``initial`` and flipping at each time."""
        return BooleanTimeline(np.fromiter(times, dtype=np.float64), initial)

    @staticmethod
    def from_intervals(
        intervals: Iterable[tuple[float, float]]
    ) -> "BooleanTimeline":
        """The indicator function of a union of disjoint intervals
        ``[a, b)`` given in increasing order."""
        switches: list[float] = []
        last_end = -np.inf
        for start, end in intervals:
            if end < start:
                raise TemporalError(f"interval [{start}, {end}) has negative length")
            if start < last_end:
                raise TemporalError("intervals must be disjoint and increasing")
            if end == start:
                continue  # empty interval contributes nothing
            if switches and switches[-1] == start:
                switches.pop()  # adjacent intervals merge
            else:
                switches.append(start)
            switches.append(end)
            last_end = end
        return BooleanTimeline(np.asarray(switches), False)

    # -- evaluation -------------------------------------------------------

    def value_at(self, t: float) -> bool:
        """``f(t)``."""
        flips = int(np.searchsorted(self.switches, t, side="right"))
        return bool(self.initial ^ (flips & 1))

    def __call__(self, t: float) -> bool:
        return self.value_at(t)

    def values_at(self, ts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`value_at`: ``f(t)`` for every element of
        ``ts`` as a boolean array.  Same right-open segment convention,
        so ``values_at(np.array([t]))[0] == value_at(t)`` exactly."""
        flips = np.searchsorted(self.switches, np.asarray(ts), side="right")
        values = (flips & 1).astype(bool)
        return ~values if self.initial else values

    def integrate(self, b: float, e: float) -> float:
        """``∫_b^e f(t) dt`` — the accumulated time the state is 1 in
        ``[b, e]`` (the paper's duration of a state over an interval)."""
        if e < b:
            raise TemporalError(f"bad interval [{b}, {e}]: end before begin")
        if e == b:
            return 0.0
        # Clip all breakpoints into [b, e] and add the interval ends, then
        # sum the lengths of segments whose value is 1.
        inner = self.switches[(self.switches > b) & (self.switches < e)]
        points = np.concatenate(([b], inner, [e]))
        lengths = np.diff(points)
        # Segment values alternate starting from f(b).
        parity = np.arange(lengths.size) & 1
        values = (1 - parity) if self.value_at(b) else parity
        return float(lengths @ values)

    def first_time_accumulated(self, b: float, budget: float) -> float | None:
        """The earliest time ``t ≥ b`` at which ``∫_b^t f du`` reaches
        ``budget`` — i.e. when a validity duration is exhausted
        (Eq. 4.1).  ``None`` if the total on-time after ``b`` never
        reaches the budget.  ``budget`` must be positive."""
        if budget <= 0:
            raise TemporalError("budget must be positive")
        inner = self.switches[self.switches > b]
        points = np.concatenate(([b], inner))
        value = self.value_at(b)
        accumulated = 0.0
        for index in range(points.size):
            start = points[index]
            end = points[index + 1] if index + 1 < points.size else np.inf
            if value:
                if accumulated + (end - start) >= budget:
                    return float(start + (budget - accumulated))
                accumulated += end - start
            value = not value
        return None

    # -- algebra ------------------------------------------------------------

    def _merge(self, other: "BooleanTimeline", op) -> "BooleanTimeline":
        times = np.union1d(self.switches, other.switches)
        initial = op(self.initial, other.initial)
        switches: list[float] = []
        previous = initial
        for t in times:
            current = op(self.value_at(t), other.value_at(t))
            if current != previous:
                switches.append(float(t))
                previous = current
        return BooleanTimeline(np.asarray(switches), initial)

    def __and__(self, other: "BooleanTimeline") -> "BooleanTimeline":
        return self._merge(other, lambda a, b: a and b)

    def __or__(self, other: "BooleanTimeline") -> "BooleanTimeline":
        return self._merge(other, lambda a, b: a or b)

    def __invert__(self) -> "BooleanTimeline":
        return BooleanTimeline(self.switches.copy(), not self.initial)

    # -- misc -----------------------------------------------------------------

    def intervals_on(self, b: float, e: float) -> list[tuple[float, float]]:
        """The maximal sub-intervals of ``[b, e]`` where the state is 1."""
        if e < b:
            raise TemporalError(f"bad interval [{b}, {e}]: end before begin")
        inner = self.switches[(self.switches > b) & (self.switches < e)]
        points = np.concatenate(([b], inner, [e]))
        out: list[tuple[float, float]] = []
        value = self.value_at(b)
        for index in range(points.size - 1):
            if value and points[index + 1] > points[index]:
                out.append((float(points[index]), float(points[index + 1])))
            value = not value
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BooleanTimeline):
            return NotImplemented
        return self.initial == other.initial and np.array_equal(
            self.switches, other.switches
        )

    def __hash__(self) -> int:
        return hash((self.initial, self.switches.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"BooleanTimeline(initial={self.initial}, "
            f"switches={self.switches.tolist()})"
        )


class TimelineRecorder:
    """Incrementally records state changes in nondecreasing time order
    and freezes into a :class:`BooleanTimeline`.

    Used by the RBAC engine to record ``active``/``valid`` state
    functions as simulation events occur.
    """

    def __init__(self, initial: bool = False):
        self._initial = bool(initial)
        self._current = bool(initial)
        self._switches: list[float] = []
        self._last_time = -np.inf

    @property
    def current(self) -> bool:
        return self._current

    def set(self, t: float, value: bool) -> None:
        """Record that the state has value ``value`` from time ``t`` on.
        Times must be nondecreasing; setting the same value is a no-op."""
        if t < self._last_time:
            raise TemporalError(
                f"events must be recorded in time order ({t} < {self._last_time})"
            )
        value = bool(value)
        if value == self._current:
            self._last_time = max(self._last_time, t)
            return
        if self._switches and self._switches[-1] == t:
            # Flipping twice at the same instant cancels out.
            self._switches.pop()
        else:
            self._switches.append(float(t))
        self._current = value
        self._last_time = t

    def freeze(self) -> BooleanTimeline:
        """Snapshot the recording as an immutable timeline."""
        return BooleanTimeline(np.asarray(self._switches), self._initial)
