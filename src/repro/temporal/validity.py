"""Permission validity tracking (paper Section 4, Eq. 4.1).

Each permission carries a *validity duration* ``dur(perm)`` — the total
time it may spend in the *valid* state.  A permission is, for a given
mobile object, in one of three states:

* ``INACTIVE`` — not assigned to any active role of the subject;
* ``VALID`` — active and with validity budget remaining;
* ``ACTIVE_INVALID`` — active, but the accumulated valid time has
  reached ``dur(perm)`` (Eq. 4.1's integral condition fails).

Two base-time schemes choose where the integral's lower limit ``t_b``
sits (Section 4):

* :data:`Scheme.PER_SERVER` — ``t_b = t_i``, the arrival time at the
  *current* server: the budget is per-visit and resets on migration;
* :data:`Scheme.WHOLE_EXECUTION` — ``t_b = t_1``, the start of the
  object's life-cycle: one budget across all servers.

:class:`ValidityTracker` is the event-driven realisation: feed it
``activate`` / ``deactivate`` / ``migrate`` events in time order and
query the state at any time; it also exposes the exact expiry instant
and records the ``valid`` state function as a
:class:`~repro.temporal.timeline.BooleanTimeline` for audit and for
cross-checking against the declarative integral (tests do both).

Between two events the tracker's state function is **piecewise
constant with at most one breakpoint** (the expiry instant), so it can
be *compiled* for batched decision sweeps: :meth:`ValidityTracker.profile`
exposes the closed form and :meth:`ValidityTracker.breakpoints` the
sorted-breakpoint-array view that
:mod:`repro.rbac.vector_engine` resolves with ``np.searchsorted``.
Accrual is itself closed-form — ``consumed(t) = consumed₀ + (t −
anchor)`` against a precomputed expiry instant — so the scalar
per-query path and the vectorized batched path evaluate the *same*
floating-point expression and agree bit-for-bit, including exactly at
the expiry boundary.
"""

from __future__ import annotations

import enum
import math

import numpy as np

from repro.errors import TemporalError
from repro.temporal.timeline import BooleanTimeline, TimelineRecorder

__all__ = [
    "PermissionState",
    "Scheme",
    "ValidityTracker",
    "STATE_CODES",
    "CODE_INACTIVE",
    "CODE_ACTIVE_INVALID",
    "CODE_VALID",
]


class PermissionState(enum.Enum):
    """The three permission states of Section 4."""

    INACTIVE = "inactive"
    ACTIVE_INVALID = "active-but-invalid"
    VALID = "valid"


#: Small-integer encodings of :class:`PermissionState` for packed
#: (numpy) sweeps; ``STATE_CODES[code]`` recovers the enum member.
CODE_INACTIVE = 0
CODE_ACTIVE_INVALID = 1
CODE_VALID = 2
STATE_CODES = (
    PermissionState.INACTIVE,
    PermissionState.ACTIVE_INVALID,
    PermissionState.VALID,
)


class Scheme(enum.Enum):
    """Base-time schemes for the validity integral."""

    PER_SERVER = "per-server"  # t_b = arrival at current server
    WHOLE_EXECUTION = "whole-execution"  # t_b = start of execution


class ValidityTracker:
    """Event-driven tracker of one permission's validity for one
    mobile object.

    Parameters
    ----------
    duration:
        ``dur(perm)`` — the validity budget; ``math.inf`` makes the
        permission time-insensitive (the paper allows "even infinity").
    scheme:
        Which base time the budget is metered from.
    start_time:
        ``t_1``, the start of the object's execution (arrival at the
        first server).

    Internally the accrued budget is kept in *closed form*: while the
    permission is active and unexpired, ``consumed(t) = _consumed0 +
    (t - _anchor)`` and the expiry instant ``_expiry = _anchor +
    (duration - _consumed0)`` is precomputed at the last event.  Every
    query — scalar or vectorized — answers ``t >= _expiry``; there is
    no per-query accumulation, so query *order* cannot drift the
    floating-point state.
    """

    __slots__ = (
        "duration",
        "scheme",
        "_now",
        "_active",
        "_anchor",
        "_consumed0",
        "_expiry",
        "_valid_recorder",
        "_active_recorder",
    )

    def __init__(
        self,
        duration: float,
        scheme: Scheme = Scheme.WHOLE_EXECUTION,
        start_time: float = 0.0,
    ):
        if duration <= 0:
            raise TemporalError(f"validity duration must be positive, got {duration}")
        self.duration = float(duration)
        self.scheme = scheme
        self._now = float(start_time)
        self._active = False
        # Closed-form accrual state: consumed(t) = _consumed0 while
        # inactive (or expired); _consumed0 + (t - _anchor) while
        # actively accruing.  _expiry is +inf when no expiry is pending
        # (inactive, time-insensitive, or already expired).
        self._anchor = self._now
        self._consumed0 = 0.0
        self._expiry = math.inf
        self._valid_recorder = TimelineRecorder(initial=False)
        self._active_recorder = TimelineRecorder(initial=False)

    # -- internal clock ----------------------------------------------------

    def _pending_expiry(self) -> float:
        """The expiry instant assuming the permission stays active from
        the current accrual anchor; ``inf`` when it cannot expire."""
        if math.isinf(self.duration) or self._consumed0 >= self.duration:
            return math.inf
        return self._anchor + (self.duration - self._consumed0)

    def _consumed_at(self, t: float) -> float:
        """``∫ valid du`` accrued by time ``t`` (t >= last event)."""
        if not self._active or self._consumed0 >= self.duration:
            return self._consumed0
        if t >= self._expiry:
            return self.duration
        return self._consumed0 + (t - self._anchor)

    def _advance(self, t: float) -> None:
        if t < self._now:
            raise TemporalError(f"event at {t} is before current time {self._now}")
        if self._active and t >= self._expiry:
            # The budget ran out before t: emit the expiry switch at
            # the precomputed instant and consolidate.
            self._valid_recorder.set(self._expiry, False)
            self._consumed0 = self.duration
            self._anchor = self._expiry
            self._expiry = math.inf
        self._now = t

    def _consolidate(self, t: float) -> None:
        """Fold the accrual run into ``_consumed0`` at instant ``t``
        (called on events that stop or restart accrual)."""
        self._consumed0 = self._consumed_at(t)
        self._anchor = t

    # -- events ------------------------------------------------------------

    def activate(self, t: float) -> None:
        """The permission's role was activated for the subject at ``t``."""
        self._advance(t)
        if self._active:
            return
        self._active = True
        self._active_recorder.set(t, True)
        self._anchor = t
        if self._consumed0 < self.duration:
            self._valid_recorder.set(t, True)
        self._expiry = self._pending_expiry()

    def deactivate(self, t: float) -> None:
        """The role was deactivated (session ended) at ``t``."""
        self._advance(t)
        if not self._active:
            return
        self._consolidate(t)
        self._active = False
        self._expiry = math.inf
        self._active_recorder.set(t, False)
        self._valid_recorder.set(t, False)

    def migrate(self, t: float) -> None:
        """The mobile object arrived at a new server at ``t``.

        Under :data:`Scheme.PER_SERVER` the base time becomes ``t`` and
        the consumed budget resets; under
        :data:`Scheme.WHOLE_EXECUTION` migration is irrelevant to the
        budget."""
        self._advance(t)
        if self.scheme is Scheme.PER_SERVER:
            self._consumed0 = 0.0
            self._anchor = t
            if self._active:
                self._valid_recorder.set(t, True)
                self._expiry = self._pending_expiry()

    # -- queries ------------------------------------------------------------

    def state(self, t: float | None = None) -> PermissionState:
        """The permission state at ``t`` (default: the current time).
        Querying advances the internal clock."""
        if t is not None:
            self._advance(t)
        if not self._active:
            return PermissionState.INACTIVE
        if self._consumed0 >= self.duration:
            return PermissionState.ACTIVE_INVALID
        return PermissionState.VALID

    def is_valid(self, t: float | None = None) -> bool:
        """``valid(perm, t)`` as a boolean."""
        return self.state(t) is PermissionState.VALID

    def remaining_budget(self, t: float | None = None) -> float:
        """Validity time left before expiry (``inf`` for time-insensitive
        permissions)."""
        if t is not None:
            self._advance(t)
        if math.isinf(self.duration):
            return math.inf
        return max(0.0, self.duration - self._consumed_at(self._now))

    def expiry_time(self) -> float | None:
        """If the permission is currently valid, the instant its budget
        will be exhausted (assuming it stays active); ``None`` when
        inactive, already expired, or time-insensitive."""
        if not self._active or self._consumed0 >= self.duration:
            return None
        if math.isinf(self.duration):
            return None
        return self._expiry

    # -- compiled views (batched sweeps) -------------------------------------

    def profile(self) -> tuple[bool, float]:
        """The closed-form state function from now on, assuming no
        further events: ``(active, expiry)``.

        For query instants ``u >= now`` the state is ``INACTIVE`` when
        not active, otherwise ``VALID`` for ``u < expiry`` and
        ``ACTIVE_INVALID`` for ``u >= expiry`` — the *same* comparison
        :meth:`state` performs, so a vectorized ``u >= expiry`` over a
        float64 array is bit-identical to querying one instant at a
        time.  Already-expired trackers report ``expiry = -inf``
        (every query lands on ``ACTIVE_INVALID``); time-insensitive
        ones report ``+inf``.  Read-only: does not advance the clock.
        """
        if not self._active:
            return (False, math.inf)
        if self._consumed0 >= self.duration:
            return (True, -math.inf)
        return (True, self._expiry)

    def breakpoints(self) -> tuple[np.ndarray, np.ndarray]:
        """The state function from now on as sorted breakpoint arrays
        ``(times, codes)``: the state at instant ``u`` is
        ``codes[np.searchsorted(times, u, side="right")]`` (codes are
        :data:`CODE_INACTIVE` / :data:`CODE_ACTIVE_INVALID` /
        :data:`CODE_VALID`).  ``side="right"`` makes the lookup
        equivalent to ``u >= expiry``, matching :meth:`state` exactly
        at the boundary instant.  Read-only.
        """
        active, expiry = self.profile()
        if not active:
            return (
                np.empty(0, dtype=np.float64),
                np.array([CODE_INACTIVE], dtype=np.uint8),
            )
        if math.isinf(expiry):
            code = CODE_ACTIVE_INVALID if expiry < 0 else CODE_VALID
            return (
                np.empty(0, dtype=np.float64),
                np.array([code], dtype=np.uint8),
            )
        return (
            np.array([expiry], dtype=np.float64),
            np.array([CODE_VALID, CODE_ACTIVE_INVALID], dtype=np.uint8),
        )

    def state_codes_at(self, ts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`state` for a sorted batch of query instants
        (all ``>= now``): returns a ``uint8`` array of state codes.
        Read-only — callers advance the clock once afterwards with
        ``state(ts[-1])``, which leaves the tracker exactly as a
        per-instant query sequence would have (property-tested)."""
        times, codes = self.breakpoints()
        return codes[np.searchsorted(times, ts, side="right")]

    # -- audit ---------------------------------------------------------------

    def valid_timeline(self) -> BooleanTimeline:
        """The recorded ``valid(perm, ·)`` state function up to the
        current time."""
        return self._valid_recorder.freeze()

    def active_timeline(self) -> BooleanTimeline:
        """The recorded ``active(perm, ·)`` state function."""
        return self._active_recorder.freeze()

    @property
    def now(self) -> float:
        return self._now
