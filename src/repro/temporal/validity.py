"""Permission validity tracking (paper Section 4, Eq. 4.1).

Each permission carries a *validity duration* ``dur(perm)`` — the total
time it may spend in the *valid* state.  A permission is, for a given
mobile object, in one of three states:

* ``INACTIVE`` — not assigned to any active role of the subject;
* ``VALID`` — active and with validity budget remaining;
* ``ACTIVE_INVALID`` — active, but the accumulated valid time has
  reached ``dur(perm)`` (Eq. 4.1's integral condition fails).

Two base-time schemes choose where the integral's lower limit ``t_b``
sits (Section 4):

* :data:`Scheme.PER_SERVER` — ``t_b = t_i``, the arrival time at the
  *current* server: the budget is per-visit and resets on migration;
* :data:`Scheme.WHOLE_EXECUTION` — ``t_b = t_1``, the start of the
  object's life-cycle: one budget across all servers.

:class:`ValidityTracker` is the event-driven realisation: feed it
``activate`` / ``deactivate`` / ``migrate`` events in time order and
query the state at any time; it also exposes the exact expiry instant
and records the ``valid`` state function as a
:class:`~repro.temporal.timeline.BooleanTimeline` for audit and for
cross-checking against the declarative integral (tests do both).
"""

from __future__ import annotations

import enum
import math

from repro.errors import TemporalError
from repro.temporal.timeline import BooleanTimeline, TimelineRecorder

__all__ = ["PermissionState", "Scheme", "ValidityTracker"]


class PermissionState(enum.Enum):
    """The three permission states of Section 4."""

    INACTIVE = "inactive"
    ACTIVE_INVALID = "active-but-invalid"
    VALID = "valid"


class Scheme(enum.Enum):
    """Base-time schemes for the validity integral."""

    PER_SERVER = "per-server"  # t_b = arrival at current server
    WHOLE_EXECUTION = "whole-execution"  # t_b = start of execution


class ValidityTracker:
    """Event-driven tracker of one permission's validity for one
    mobile object.

    Parameters
    ----------
    duration:
        ``dur(perm)`` — the validity budget; ``math.inf`` makes the
        permission time-insensitive (the paper allows "even infinity").
    scheme:
        Which base time the budget is metered from.
    start_time:
        ``t_1``, the start of the object's execution (arrival at the
        first server).
    """

    def __init__(
        self,
        duration: float,
        scheme: Scheme = Scheme.WHOLE_EXECUTION,
        start_time: float = 0.0,
    ):
        if duration <= 0:
            raise TemporalError(f"validity duration must be positive, got {duration}")
        self.duration = float(duration)
        self.scheme = scheme
        self._now = float(start_time)
        self._active = False
        self._consumed = 0.0  # valid time accrued since the base time
        self._valid_recorder = TimelineRecorder(initial=False)
        self._active_recorder = TimelineRecorder(initial=False)

    # -- internal clock ----------------------------------------------------

    def _advance(self, t: float) -> None:
        if t < self._now:
            raise TemporalError(f"event at {t} is before current time {self._now}")
        if self._active and self._consumed < self.duration:
            # Accrue valid time; emit the expiry switch if the budget
            # runs out before t.
            remaining = self.duration - self._consumed
            elapsed = t - self._now
            if elapsed >= remaining:
                self._valid_recorder.set(self._now + remaining, False)
                self._consumed = self.duration
            else:
                self._consumed += elapsed
        self._now = t

    # -- events ------------------------------------------------------------

    def activate(self, t: float) -> None:
        """The permission's role was activated for the subject at ``t``."""
        self._advance(t)
        if self._active:
            return
        self._active = True
        self._active_recorder.set(t, True)
        if self._consumed < self.duration:
            self._valid_recorder.set(t, True)

    def deactivate(self, t: float) -> None:
        """The role was deactivated (session ended) at ``t``."""
        self._advance(t)
        if not self._active:
            return
        self._active = False
        self._active_recorder.set(t, False)
        self._valid_recorder.set(t, False)

    def migrate(self, t: float) -> None:
        """The mobile object arrived at a new server at ``t``.

        Under :data:`Scheme.PER_SERVER` the base time becomes ``t`` and
        the consumed budget resets; under
        :data:`Scheme.WHOLE_EXECUTION` migration is irrelevant to the
        budget."""
        self._advance(t)
        if self.scheme is Scheme.PER_SERVER:
            self._consumed = 0.0
            if self._active:
                self._valid_recorder.set(t, True)

    # -- queries ------------------------------------------------------------

    def state(self, t: float | None = None) -> PermissionState:
        """The permission state at ``t`` (default: the current time).
        Querying advances the internal clock."""
        if t is not None:
            self._advance(t)
        if not self._active:
            return PermissionState.INACTIVE
        if self._consumed >= self.duration:
            return PermissionState.ACTIVE_INVALID
        return PermissionState.VALID

    def is_valid(self, t: float | None = None) -> bool:
        """``valid(perm, t)`` as a boolean."""
        return self.state(t) is PermissionState.VALID

    def remaining_budget(self, t: float | None = None) -> float:
        """Validity time left before expiry (``inf`` for time-insensitive
        permissions)."""
        if t is not None:
            self._advance(t)
        if math.isinf(self.duration):
            return math.inf
        return max(0.0, self.duration - self._consumed)

    def expiry_time(self) -> float | None:
        """If the permission is currently valid, the instant its budget
        will be exhausted (assuming it stays active); ``None`` when
        inactive, already expired, or time-insensitive."""
        if not self._active or self._consumed >= self.duration:
            return None
        if math.isinf(self.duration):
            return None
        return self._now + (self.duration - self._consumed)

    # -- audit ---------------------------------------------------------------

    def valid_timeline(self) -> BooleanTimeline:
        """The recorded ``valid(perm, ·)`` state function up to the
        current time."""
        return self._valid_recorder.freeze()

    def active_timeline(self) -> BooleanTimeline:
        """The recorded ``active(perm, ·)`` state function."""
        return self._active_recorder.freeze()

    @property
    def now(self) -> float:
        return self._now
