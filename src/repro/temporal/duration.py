"""A small duration-calculus layer over boolean timelines.

The paper invokes Duration Calculus [11] for the decidability of
temporal constraint checking (Theorem 4.1).  The fragment it actually
uses is modest: state expressions built from boolean state functions,
the duration operator ``∫ S`` over an observation interval, and
comparisons of durations against constants.  That fragment is what we
implement — evaluation over concrete piecewise-constant timelines is
decidable by construction (finitely many breakpoints), which is the
operational content of the decidability claim.

Formulas
--------

* :class:`DurationAtLeast` / :class:`DurationAtMost` — ``∫S ⋈ c``;
* :class:`Everywhere` — ``⌈S⌉``: the state holds almost everywhere on a
  non-point interval;
* :class:`Somewhere` — the state holds on some sub-interval of positive
  length;
* boolean combinations via :class:`DCAnd` / :class:`DCOr` / :class:`DCNot`;
* :class:`Chop` — the DC chop ``φ1 ; φ2``: the interval splits into two
  consecutive parts satisfying φ1 and φ2.  Chop-points are searched at
  the interval ends and the state breakpoints, which is exhaustive for
  the duration-threshold-free fragment and a documented approximation
  otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TemporalError
from repro.temporal.timeline import BooleanTimeline

__all__ = [
    "DCFormula",
    "DurationAtLeast",
    "DurationAtMost",
    "Everywhere",
    "Somewhere",
    "DCAnd",
    "DCOr",
    "DCNot",
    "Chop",
    "evaluate",
]


@dataclass(frozen=True)
class DCFormula:
    """Base class of duration-calculus formulas."""


@dataclass(frozen=True)
class DurationAtLeast(DCFormula):
    """``∫ state ≥ bound`` on the observation interval."""

    state: BooleanTimeline
    bound: float


@dataclass(frozen=True)
class DurationAtMost(DCFormula):
    """``∫ state ≤ bound`` on the observation interval."""

    state: BooleanTimeline
    bound: float


@dataclass(frozen=True)
class Everywhere(DCFormula):
    """``⌈state⌉``: the interval has positive length and the state is 1
    almost everywhere on it (i.e. ``∫ state = e - b``)."""

    state: BooleanTimeline


@dataclass(frozen=True)
class Somewhere(DCFormula):
    """The state is 1 on some sub-interval of positive length."""

    state: BooleanTimeline


@dataclass(frozen=True)
class DCAnd(DCFormula):
    left: DCFormula
    right: DCFormula


@dataclass(frozen=True)
class DCOr(DCFormula):
    left: DCFormula
    right: DCFormula


@dataclass(frozen=True)
class DCNot(DCFormula):
    inner: DCFormula


@dataclass(frozen=True)
class Chop(DCFormula):
    """``left ; right``: some chop point ``m ∈ [b, e]`` splits the
    interval into ``[b, m]`` ⊨ left and ``[m, e]`` ⊨ right."""

    left: DCFormula
    right: DCFormula


def _states_of(formula: DCFormula) -> list[BooleanTimeline]:
    if isinstance(formula, (DurationAtLeast, DurationAtMost, Everywhere, Somewhere)):
        return [formula.state]
    if isinstance(formula, (DCAnd, DCOr, Chop)):
        return _states_of(formula.left) + _states_of(formula.right)
    if isinstance(formula, DCNot):
        return _states_of(formula.inner)
    raise TypeError(f"not a DC formula: {formula!r}")


#: Relative tolerance of duration comparisons.  Integrals are sums of
#: interval lengths of magnitude ~``scale``, so their rounding error is
#: proportional to ``scale × eps`` — an *absolute* epsilon misclassifies
#: on long horizons (a flat 1e-12 slack is below one ulp of t ≈ 1e6 s).
#: 1e-12 relative ≈ 4500 double ulps per unit scale: far above
#: accumulated (pairwise) summation error at any horizon, far below
#: any meaningful duration difference — and identical to the historic
#: absolute slack on unit-scale intervals.
_REL_TOL = 1e-12


def _tol(*scales: float) -> float:
    """Comparison tolerance scaled to the magnitudes involved (at least
    the tolerance at scale 1, so short horizons keep the old slack)."""
    return _REL_TOL * max(1.0, *map(abs, scales))


def evaluate(formula: DCFormula, b: float, e: float) -> bool:
    """Decide ``[b, e] ⊨ formula``.

    Duration comparisons are **scale-relative**: the slack grows with
    the magnitudes of the bound and the interval ends, so an integral
    that differs from its bound only by floating-point rounding
    compares equal on a seconds-scale horizon and on a ~1e9 s one
    alike.
    """
    if e < b:
        raise TemporalError(f"bad interval [{b}, {e}]: end before begin")
    if isinstance(formula, DurationAtLeast):
        tol = _tol(formula.bound, b, e)
        return formula.state.integrate(b, e) >= formula.bound - tol
    if isinstance(formula, DurationAtMost):
        tol = _tol(formula.bound, b, e)
        return formula.state.integrate(b, e) <= formula.bound + tol
    if isinstance(formula, Everywhere):
        tol = _tol(b, e)
        return e > b and formula.state.integrate(b, e) >= (e - b) - tol
    if isinstance(formula, Somewhere):
        return formula.state.integrate(b, e) > _tol(b, e)
    if isinstance(formula, DCAnd):
        return evaluate(formula.left, b, e) and evaluate(formula.right, b, e)
    if isinstance(formula, DCOr):
        return evaluate(formula.left, b, e) or evaluate(formula.right, b, e)
    if isinstance(formula, DCNot):
        return not evaluate(formula.inner, b, e)
    if isinstance(formula, Chop):
        # Candidate chop points: interval ends plus every breakpoint of
        # every state mentioned, clipped to [b, e].
        candidates = {b, e}
        for state in _states_of(formula):
            inner = state.switches[(state.switches >= b) & (state.switches <= e)]
            candidates.update(float(t) for t in inner)
        return any(
            evaluate(formula.left, b, m) and evaluate(formula.right, m, e)
            for m in sorted(candidates)
        )
    raise TypeError(f"not a DC formula: {formula!r}")
