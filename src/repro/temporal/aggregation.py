"""Permission classification and validity-duration aggregation.

The paper's stated future work: "we will look into some other
implementation issues, such as how to classify the temporal permissions
and aggregate their validity durations."  This module implements that
extension:

* a :class:`PermissionClass` groups related temporal permissions (for
  example, every permission touching licensed software) and gives the
  *class* one validity budget;
* an :class:`AggregationStrategy` derives the class budget from its
  members' individual durations (sum, min, max) unless an explicit
  duration overrides it;
* a :class:`PermissionClassifier` resolves a permission to its class.

The RBAC engine accepts a classifier: permissions in the same class
share one :class:`~repro.temporal.validity.ValidityTracker`, so using
any member consumes the common budget — e.g. "all trial-software
permissions together are valid for at most 2 hours", regardless of
which package the device runs.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import TemporalError

__all__ = ["AggregationStrategy", "PermissionClass", "PermissionClassifier"]


class AggregationStrategy(enum.Enum):
    """How a class budget is derived from member durations."""

    SUM = "sum"  # budgets pool: the class gets the total
    MIN = "min"  # the strictest member bounds the whole class
    MAX = "max"  # the most generous member bounds the whole class


@dataclass(frozen=True)
class PermissionClass:
    """A named group of temporal permissions sharing one budget.

    ``duration`` overrides the aggregated value when set; otherwise the
    class budget is ``strategy`` over the members' own validity
    durations (resolved against the policy at engine-construction
    time).
    """

    name: str
    members: frozenset[str]
    strategy: AggregationStrategy = AggregationStrategy.MIN
    duration: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", frozenset(self.members))
        if not self.name:
            raise TemporalError("permission class name must be non-empty")
        if not self.members:
            raise TemporalError(f"class {self.name!r} has no members")
        if self.duration is not None and self.duration <= 0:
            raise TemporalError(f"class {self.name!r}: duration must be positive")

    def aggregate(self, durations: Mapping[str, float]) -> float:
        """The class budget given each member's own duration."""
        if self.duration is not None:
            return self.duration
        values = [durations[m] for m in self.members if m in durations]
        if not values:
            raise TemporalError(
                f"class {self.name!r}: no member duration available"
            )
        if self.strategy is AggregationStrategy.SUM:
            # Summing with an infinite member stays infinite.
            return math.inf if any(math.isinf(v) for v in values) else sum(values)
        if self.strategy is AggregationStrategy.MIN:
            return min(values)
        return max(values)


class PermissionClassifier:
    """Resolves permissions to their (unique) class."""

    def __init__(self, classes: Iterable[PermissionClass] = ()):
        self._classes: dict[str, PermissionClass] = {}
        self._member_index: dict[str, PermissionClass] = {}
        for cls in classes:
            self.add(cls)

    def add(self, cls: PermissionClass) -> None:
        if cls.name in self._classes:
            raise TemporalError(f"duplicate class {cls.name!r}")
        for member in cls.members:
            if member in self._member_index:
                raise TemporalError(
                    f"permission {member!r} already belongs to class "
                    f"{self._member_index[member].name!r}"
                )
        self._classes[cls.name] = cls
        for member in cls.members:
            self._member_index[member] = cls

    def class_of(self, permission_name: str) -> PermissionClass | None:
        """The class containing ``permission_name``, if any."""
        return self._member_index.get(permission_name)

    def classes(self) -> tuple[PermissionClass, ...]:
        return tuple(self._classes.values())

    def __contains__(self, permission_name: str) -> bool:
        return permission_name in self._member_index
