"""Permission validity checking — Theorem 4.1.

The paper's module "receives the specification of a mobile object's
program P, the time interval [t_b, t], and the index of a permission in
question", calls the spatial checker, compares the validity integral
with the permission's duration, and returns a boolean.  This module is
that procedure, decoupled from the RBAC engine so it can be tested and
benchmarked in isolation (the engine wires it to live trackers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sral.ast import Program
from repro.srac.ast import Constraint
from repro.srac.checker import check_program
from repro.temporal.timeline import BooleanTimeline
from repro.traces.trace import AccessKey

__all__ = ["ValidityDecision", "check_validity"]


@dataclass(frozen=True)
class ValidityDecision:
    """Outcome of a spatio-temporal validity check.

    ``holds`` — overall decision; ``spatial_ok`` / ``temporal_ok`` — the
    two conjuncts of Eq. 4.1; ``accumulated`` — the value of
    ``∫_{t_b}^{t} valid(perm, u) du``.
    """

    holds: bool
    spatial_ok: bool
    temporal_ok: bool
    accumulated: float


def check_validity(
    program: Program,
    constraint: Constraint,
    valid_state: BooleanTimeline,
    t_b: float,
    t: float,
    duration: float,
    history: Sequence[AccessKey] = (),
    mode: str = "exists",
) -> ValidityDecision:
    """Decide whether permission ``perm`` may be considered valid at
    time ``t`` (Theorem 4.1).

    Parameters
    ----------
    program, constraint, history:
        Inputs to the spatial check ``check(P, C)`` of Eq. 3.1 — the
        mobile object's remaining program, the permission's spatial
        constraint and the proved access history.  ``mode="exists"``
        asks "can the program still comply?" (the permissive reading
        used at grant time); ``mode="forall"`` demands every completion
        comply.
    valid_state:
        The recorded ``valid(perm, ·)`` boolean state function.
    t_b, t:
        The integral bounds: base time (per Scheme A/B) and query time.
    duration:
        ``dur(perm)``.

    Returns a :class:`ValidityDecision`; ``holds`` is the conjunction
    required by Eq. 4.1.
    """
    spatial_ok = check_program(program, constraint, history=history, mode=mode)
    accumulated = valid_state.integrate(t_b, t)
    temporal_ok = accumulated <= duration
    return ValidityDecision(
        holds=spatial_ok and temporal_ok,
        spatial_ok=spatial_ok,
        temporal_ok=temporal_ok,
        accumulated=accumulated,
    )
