"""Applications built on the coordinated access-control stack.

Currently: the Section 6 software-module integrity verification
(:mod:`repro.apps.integrity`, the Figure 1 workload).
"""

from repro.apps.integrity import (
    AuditReport,
    DependencyGraph,
    ModuleSpec,
    auditor_program,
    build_coalition,
    figure1_graph,
    run_audit,
    verification_constraint,
)

__all__ = [
    "AuditReport",
    "DependencyGraph",
    "ModuleSpec",
    "auditor_program",
    "build_coalition",
    "figure1_graph",
    "run_audit",
    "verification_constraint",
]
