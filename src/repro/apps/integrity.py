"""Software-module integrity verification in a coalition — the paper's
Section 6 application and Figure 1 workload.

Software modules are distributed over enterprise servers; modules
depend on each other (a digraph, Figure 1), and "a module is verified
as correct if and only if all of its depended modules and itself are
correct".  An auditor dispatches a mobile code that roams the network
computing hashes of the modules, exploiting data locality, under:

* a **spatial** constraint — dependencies must be verified before their
  dependents (one ``⊗`` per dependency edge), and
* a **temporal** constraint — "the verification procedure should be
  completed within a pre-specified period of time" (the verification
  permission's validity duration).

:func:`figure1_graph` reproduces the paper's drawn instance;
:func:`run_audit` builds the coalition, dispatches the auditor naplet
under the extended RBAC engine and returns a full
:class:`AuditReport`.  Tampered modules (hash mismatch) and every
module transitively depending on them are reported unverified.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.agent.naplet import Naplet, NapletStatus
from repro.agent.principal import Authority
from repro.agent.scheduler import Simulation
from repro.agent.security import NapletSecurityManager
from repro.coalition.network import Coalition, constant_latency
from repro.coalition.resource import Resource
from repro.coalition.server import CoalitionServer
from repro.errors import WorkloadError
from repro.rbac.engine import AccessControlEngine
from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.sral.ast import Program
from repro.sral.ast import Access as AccessNode
from repro.sral.ast import seq as seq_program
from repro.srac.ast import Constraint, Ordered, conjunction
from repro.srac.trace_check import trace_satisfies
from repro.temporal.validity import Scheme
from repro.traces.trace import AccessKey

__all__ = [
    "ModuleSpec",
    "DependencyGraph",
    "figure1_graph",
    "AuditReport",
    "auditor_program",
    "verification_constraint",
    "build_coalition",
    "run_audit",
]

VERIFY_OP = "exec"


@dataclass(frozen=True)
class ModuleSpec:
    """One software module: name, hosting server, payload bytes and the
    modules it depends on (Figure 1's arrows point from dependent to
    dependency)."""

    name: str
    server: str
    content: bytes
    depends_on: tuple[str, ...] = ()

    def digest(self) -> str:
        return hashlib.sha256(self.content).hexdigest()


class DependencyGraph:
    """The module dependency digraph, validated to be acyclic.

    ("A module is verified as correct iff all of its depended modules
    and itself are correct" is only well-founded on a DAG.)
    """

    def __init__(self, modules: Iterable[ModuleSpec]):
        self._modules: dict[str, ModuleSpec] = {}
        for module in modules:
            if module.name in self._modules:
                raise WorkloadError(f"duplicate module {module.name!r}")
            self._modules[module.name] = module
        for module in self._modules.values():
            for dep in module.depends_on:
                if dep not in self._modules:
                    raise WorkloadError(
                        f"module {module.name!r} depends on unknown {dep!r}"
                    )
        self._topo = self._topological_order()

    # -- structure ---------------------------------------------------------

    def _topological_order(self) -> tuple[str, ...]:
        # Kahn's algorithm with a sorted ready-heap (deterministic order);
        # a leftover node means a cycle.
        import heapq

        pending = {name: set(m.depends_on) for name, m in self._modules.items()}
        dependents: dict[str, list[str]] = {}
        for name, deps in pending.items():
            for dep in deps:
                dependents.setdefault(dep, []).append(name)
        ready = [name for name, deps in pending.items() if not deps]
        heapq.heapify(ready)
        order: list[str] = []
        while ready:
            current = heapq.heappop(ready)
            order.append(current)
            for dependant in dependents.get(current, ()):
                deps = pending[dependant]
                deps.discard(current)
                if not deps:
                    heapq.heappush(ready, dependant)
        if len(order) != len(self._modules):
            raise WorkloadError("module dependency graph has a cycle")
        return tuple(order)

    def module(self, name: str) -> ModuleSpec:
        try:
            return self._modules[name]
        except KeyError:
            raise WorkloadError(f"unknown module {name!r}") from None

    def modules(self) -> tuple[ModuleSpec, ...]:
        return tuple(self._modules.values())

    def names(self) -> tuple[str, ...]:
        return tuple(self._modules)

    def servers(self) -> tuple[str, ...]:
        return tuple(sorted({m.server for m in self._modules.values()}))

    def topological_order(self) -> tuple[str, ...]:
        """Modules ordered dependencies-first."""
        return self._topo

    def locality_order(self) -> tuple[str, ...]:
        """A dependencies-first order that greedily stays on the current
        server to exploit data locality (fewer migrations), the point of
        using code mobility in Section 6."""
        remaining = {n: set(self._modules[n].depends_on) for n in self._modules}
        order: list[str] = []
        current_server: str | None = None
        while remaining:
            ready = [n for n, deps in remaining.items() if not deps]
            if not ready:  # pragma: no cover - guarded by ctor
                raise WorkloadError("cycle detected")
            local = [n for n in ready if self._modules[n].server == current_server]
            chosen = sorted(local)[0] if local else sorted(ready)[0]
            order.append(chosen)
            current_server = self._modules[chosen].server
            del remaining[chosen]
            for deps in remaining.values():
                deps.discard(chosen)
        return tuple(order)

    def dependants_closure(self, names: Iterable[str]) -> frozenset[str]:
        """Everything that (transitively) depends on any of ``names``."""
        target = set(names)
        changed = True
        while changed:
            changed = False
            for module in self._modules.values():
                if module.name in target:
                    continue
                if target & set(module.depends_on):
                    target.add(module.name)
                    changed = True
        return frozenset(target - set(names)) | frozenset(
            n for n in names if n in self._modules
        )

    def access_of(self, name: str) -> AccessKey:
        module = self.module(name)
        return AccessKey(VERIFY_OP, module.name, module.server)

    def __len__(self) -> int:
        return len(self._modules)


def figure1_graph() -> DependencyGraph:
    """The Figure 1 instance: a module dependency digraph distributed
    over four coalition servers (dotted boundaries in the figure).

    The figure names modules A–D explicitly ("a directed line from
    module A to D represents module A depends on D"); we fill the
    remaining circles with deterministic modules m5–m12 so the digraph
    has the drawn density: 12 modules, 4 servers, cross-server edges.
    """
    def blob(name: str) -> bytes:
        return f"module {name} object code".encode()

    modules = [
        ModuleSpec("mD", "s1", blob("mD")),
        ModuleSpec("mC", "s1", blob("mC"), depends_on=("mD",)),
        ModuleSpec("mB", "s2", blob("mB"), depends_on=("mD",)),
        ModuleSpec("mA", "s2", blob("mA"), depends_on=("mB", "mC", "mD")),
        ModuleSpec("m5", "s1", blob("m5")),
        ModuleSpec("m6", "s2", blob("m6"), depends_on=("m5",)),
        ModuleSpec("m7", "s3", blob("m7"), depends_on=("m6", "mC")),
        ModuleSpec("m8", "s3", blob("m8"), depends_on=("m7",)),
        ModuleSpec("m9", "s3", blob("m9"), depends_on=("m5",)),
        ModuleSpec("m10", "s4", blob("m10"), depends_on=("m8", "m9")),
        ModuleSpec("m11", "s4", blob("m11"), depends_on=("m10",)),
        ModuleSpec("m12", "s4", blob("m12"), depends_on=("mA", "m11")),
    ]
    return DependencyGraph(modules)


def auditor_program(graph: DependencyGraph, order: Sequence[str] | None = None) -> Program:
    """The mobile auditor's SRAL program: hash every module in a
    dependencies-first order (default: the locality-greedy order)."""
    chosen = tuple(order) if order is not None else graph.locality_order()
    accesses = [
        AccessNode(VERIFY_OP, graph.module(n).name, graph.module(n).server)
        for n in chosen
    ]
    return seq_program(*accesses)


def verification_constraint(graph: DependencyGraph) -> Constraint:
    """The SRAC constraint of Section 6: each dependency must be
    verified (strictly) before its dependent — one ``⊗`` per edge."""
    parts: list[Constraint] = []
    for module in graph.modules():
        for dep in module.depends_on:
            parts.append(Ordered(graph.access_of(dep), graph.access_of(module.name)))
    # Balanced tree: graphs with thousands of edges must not build a
    # recursion-hostile left spine.
    return conjunction(parts)


def build_coalition(
    graph: DependencyGraph,
    tamper: frozenset[str] | set[str] = frozenset(),
    latency: float = 1.0,
) -> Coalition:
    """Servers hosting the module blobs; ``tamper`` names modules whose
    stored bytes are corrupted (what the audit must detect)."""
    by_server: dict[str, list[Resource]] = {}
    for module in graph.modules():
        content = module.content
        if module.name in tamper:
            content = content + b"<TROJAN>"
        by_server.setdefault(module.server, []).append(
            Resource(module.name, content=content, kind="module")
        )
    servers = [
        CoalitionServer(name, resources=resources)
        for name, resources in sorted(by_server.items())
    ]
    return Coalition(servers, latency=constant_latency(latency))


@dataclass(frozen=True)
class AuditReport:
    """Outcome of one integrity audit run."""

    verified: Mapping[str, bool]  # module -> hash matched AND deps verified
    hash_ok: Mapping[str, bool]  # module -> its own hash matched
    audited: tuple[str, ...]  # modules actually hashed (in order)
    order_constraint_ok: bool  # dependencies-before-dependents held
    finished: bool  # the auditor completed its program
    denied_accesses: int  # accesses refused (e.g. deadline exhausted)
    duration: float  # virtual time the audit took
    migrations: int  # inter-server hops performed

    def all_verified(self) -> bool:
        return all(self.verified.values())

    def unverified(self) -> tuple[str, ...]:
        return tuple(sorted(n for n, ok in self.verified.items() if not ok))


def run_audit(
    graph: DependencyGraph,
    tamper: frozenset[str] | set[str] = frozenset(),
    deadline: float = math.inf,
    latency: float = 1.0,
    access_cost: float = 1.0,
    order: Sequence[str] | None = None,
    scheme: Scheme = Scheme.WHOLE_EXECUTION,
) -> AuditReport:
    """Run the Section 6 audit end-to-end.

    The auditor naplet roams the coalition hashing modules under a
    verification permission whose validity duration is ``deadline``;
    accesses after the budget expires are denied and the affected
    modules stay unverified (the paper's time-bounded verification).
    """
    coalition = build_coalition(graph, tamper=tamper, latency=latency)

    policy = Policy()
    policy.add_user("auditor")
    policy.add_role("integrity-auditor")
    policy.add_permission(
        Permission(
            "p_verify",
            op=VERIFY_OP,
            spatial_constraint=None,  # ordering enforced by program + checked below
            validity_duration=deadline,
        )
    )
    policy.assign_user("auditor", "integrity-auditor")
    policy.assign_permission("integrity-auditor", "p_verify")
    engine = AccessControlEngine(policy, scheme=scheme)
    authority = Authority()
    certificate = authority.register("auditor")
    manager = NapletSecurityManager(engine, authority=authority)

    program = auditor_program(graph, order=order)
    naplet = Naplet(
        "auditor",
        program,
        certificate=certificate,
        roles=("integrity-auditor",),
        name="integrity-auditor",
    )
    migrations = {"count": 0}
    naplet.hooks.on_departure = lambda n, s, t: migrations.__setitem__(
        "count", migrations["count"] + 1
    )

    sim = Simulation(
        coalition,
        security=manager,
        access_cost=access_cost,
        on_denied="skip",  # deadline expiry skips remaining modules
    )
    sim.add_naplet(naplet, graph.module((order or graph.locality_order())[0]).server)
    report = sim.run()

    # -- evaluate the audit ---------------------------------------------
    expected = {m.name: m.digest() for m in graph.modules()}
    observed: dict[str, str] = {}
    audited: list[str] = []
    for access, value in naplet.observations:
        observed[access.resource] = value
        audited.append(access.resource)
    hash_ok = {
        name: observed.get(name) == expected[name] for name in graph.names()
    }
    # Verified = own hash ok AND all transitive dependencies verified.
    verified: dict[str, bool] = {}
    for name in graph.topological_order():
        module = graph.module(name)
        verified[name] = hash_ok[name] and all(
            verified[dep] for dep in module.depends_on
        )
    constraint_ok = trace_satisfies(
        naplet.history(), verification_constraint(graph), proofs=naplet.registry.proved
    ) if len(audited) == len(graph) else False

    return AuditReport(
        verified=verified,
        hash_ok=hash_ok,
        audited=tuple(audited),
        order_constraint_ok=constraint_ok,
        finished=naplet.status is NapletStatus.FINISHED,
        denied_accesses=len(naplet.denials),
        duration=report.end_time,
        migrations=migrations["count"],
    )
