"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``check``
    Decide ``P ⊨ C`` (Theorem 3.2) for a program file and a constraint.
``traces``
    Enumerate (bounded) traces of a program.
``figure1``
    Print the paper's Figure 1 dependency digraph (optionally as DOT).
``audit``
    Run the Section 6 integrity audit on Figure 1 or a random module
    graph, with optional tampering and deadline.
``simulate``
    Run a program as a mobile agent over an ad-hoc coalition under a
    policy file, printing the proved history and decision log.
``obs``
    Same run with the observability layer enabled: prints every
    decision's provenance (the structured explain record), the metrics
    snapshot and the span summary; ``--json`` dumps the full export.

All inputs are plain text files in the library's concrete syntaxes
(SRAL programs, SRAC constraints, the policy DSL).
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Coordinated spatio-temporal access control (Fu & Xu, IPPS 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="decide P |= C (Theorem 3.2)")
    check.add_argument("program", type=Path, help="SRAL program file")
    check.add_argument("constraint", help="SRAC constraint (inline source)")
    check.add_argument(
        "--mode", choices=("forall", "exists"), default="forall",
        help="every trace must satisfy C (forall) or some trace (exists)",
    )

    traces = sub.add_parser("traces", help="enumerate traces of a program")
    traces.add_argument("program", type=Path, help="SRAL program file")
    traces.add_argument("--max-length", type=int, default=6)
    traces.add_argument("--limit", type=int, default=50, help="max traces printed")

    figure1 = sub.add_parser("figure1", help="print the Figure 1 digraph")
    figure1.add_argument("--dot", type=Path, help="write Graphviz DOT here")

    audit = sub.add_parser("audit", help="run the Section 6 integrity audit")
    audit.add_argument("--modules", type=int, help="random graph instead of Figure 1")
    audit.add_argument("--servers", type=int, default=4)
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument("--tamper", action="append", default=[], metavar="MODULE")
    audit.add_argument("--deadline", type=float, default=math.inf)

    simulate = sub.add_parser("simulate", help="run a program as a mobile agent")
    obs = sub.add_parser(
        "obs", help="run a program with observability on and report"
    )
    for command in (simulate, obs):
        command.add_argument("policy", type=Path, help="policy file (text DSL)")
        command.add_argument("program", type=Path, help="SRAL program file")
        command.add_argument(
            "--owner", required=True, help="user name from the policy"
        )
        command.add_argument(
            "--roles", default="", help="comma-separated roles to activate"
        )
        command.add_argument(
            "--start", help="start server (default: first accessed)"
        )
        command.add_argument(
            "--on-denied", choices=("abort", "skip"), default="abort"
        )
    obs.add_argument(
        "--json", type=Path, help="write the full obs export (JSON) here"
    )
    obs.add_argument(
        "--spans", type=int, default=10, metavar="N",
        help="how many recent spans to print (default 10)",
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "traces":
        return _cmd_traces(args)
    if args.command == "figure1":
        return _cmd_figure1(args)
    if args.command == "audit":
        return _cmd_audit(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "obs":
        return _cmd_obs(args)
    raise AssertionError(args.command)  # pragma: no cover


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.sral.parser import parse_program
    from repro.srac.checker import check_program_stats
    from repro.srac.parser import parse_constraint

    program = parse_program(args.program.read_text())
    constraint = parse_constraint(args.constraint)
    result = check_program_stats(program, constraint, mode=args.mode)
    quantifier = "every trace" if args.mode == "forall" else "some trace"
    print(f"P |= C ({quantifier}): {result.holds}")
    if result.witness is not None:
        kind = "violating" if args.mode == "forall" else "satisfying"
        rendered = ", ".join(str(a) for a in result.witness) or "<empty trace>"
        print(f"{kind} trace: {rendered}")
    print(f"configurations explored: {result.configurations}")
    return 0 if result.holds else 1


def _cmd_traces(args: argparse.Namespace) -> int:
    from repro.sral.parser import parse_program
    from repro.traces.model import program_traces

    model = program_traces(parse_program(args.program.read_text()))
    finite = model.is_finite()
    print(f"trace model is {'finite' if finite else 'infinite'}")
    shown = 0
    for trace in model.enumerate(args.max_length):
        rendered = " -> ".join(str(a) for a in trace) or "<empty trace>"
        print(f"  {rendered}")
        shown += 1
        if shown >= args.limit:
            print(f"  ... (limit {args.limit} reached)")
            break
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    from repro.apps.integrity import figure1_graph
    from repro.viz import dependency_graph_to_ascii, dependency_graph_to_dot

    graph = figure1_graph()
    print(dependency_graph_to_ascii(graph))
    if args.dot is not None:
        args.dot.write_text(dependency_graph_to_dot(graph) + "\n")
        print(f"DOT written to {args.dot}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.apps.integrity import figure1_graph, run_audit
    from repro.viz import audit_report_to_ascii
    from repro.workloads.digraphs import random_module_graph

    if args.modules is not None:
        graph = random_module_graph(args.modules, args.servers, seed=args.seed)
    else:
        graph = figure1_graph()
    report = run_audit(graph, tamper=set(args.tamper), deadline=args.deadline)
    print(audit_report_to_ascii(report))
    return 0 if report.all_verified() else 1


def _run_agent(args: argparse.Namespace):
    """Shared setup of ``simulate`` and ``obs``: run the program as a
    mobile agent over an ad-hoc coalition.  Returns
    ``(naplet, engine, simulation)``."""
    from repro.agent.naplet import Naplet
    from repro.agent.scheduler import Simulation
    from repro.agent.security import NapletSecurityManager
    from repro.coalition.network import Coalition
    from repro.coalition.resource import Resource
    from repro.coalition.server import CoalitionServer
    from repro.rbac.engine import AccessControlEngine
    from repro.rbac.policy import Policy
    from repro.sral.analysis import alphabet as program_alphabet
    from repro.sral.parser import parse_program
    from repro.traces.trace import AccessKey

    policy = Policy.from_text(args.policy.read_text())
    program = parse_program(args.program.read_text())

    # Build an ad-hoc coalition: every server the program names, hosting
    # every resource the program touches there.
    accesses = sorted(AccessKey(*a) for a in program_alphabet(program))
    if not accesses:
        return None, None, None
    servers: dict[str, set[str]] = {}
    for op, resource, server in accesses:
        servers.setdefault(server, set()).add(resource)
    coalition = Coalition(
        CoalitionServer(name, resources=[Resource(r) for r in sorted(resources)])
        for name, resources in sorted(servers.items())
    )

    engine = AccessControlEngine(policy)
    simulation = Simulation(
        coalition,
        security=NapletSecurityManager(engine),
        on_denied=args.on_denied,
    )
    roles = tuple(r for r in args.roles.split(",") if r)
    naplet = Naplet(args.owner, program, roles=roles)
    start = args.start or accesses[0].server
    simulation.add_naplet(naplet, start)
    simulation.run()
    return naplet, engine, simulation


def _cmd_simulate(args: argparse.Namespace) -> int:
    naplet, engine, _ = _run_agent(args)
    if naplet is None:
        print("program performs no shared-resource access")
        return 1

    print(f"status: {naplet.status.value}")
    print(f"proved history ({len(naplet.history())} accesses):")
    for access in naplet.history():
        print(f"  {access}")
    if naplet.error is not None:
        print(f"error: {naplet.error}")
    denials = [d for d in engine.audit.denials()]
    if denials:
        print("denials:")
        for decision in denials:
            print(f"  {decision.access}  ({decision.reason})")
    print(f"proof chain verifies: {naplet.registry.verify_chain()}")
    return 0 if naplet.status.value == "finished" else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro import obs

    obs.reset()
    obs.enable()
    try:
        naplet, engine, _ = _run_agent(args)
    finally:
        obs.disable()
    if naplet is None:
        print("program performs no shared-resource access")
        return 1

    print(f"status: {naplet.status.value}")
    print(f"decisions ({len(engine.audit)}):")
    for decision in engine.audit:
        line = (
            decision.provenance.describe()
            if decision.provenance is not None
            else decision.reason or "granted"
        )
        print(f"  t={decision.time:g}  {decision.access}  {line}")
    for decision in naplet.denials:
        # Degradation denials are issued by the scheduler, not the
        # engine, and therefore never appear in the engine's audit log.
        if decision.provenance is not None and decision.provenance.kind == "degraded":
            print(
                f"  t={decision.time:g}  {decision.access}  "
                f"{decision.provenance.describe()}"
            )

    export = obs.export()
    collected = export["metrics"].get("collected", {})
    if collected:
        print("metrics:")
        for name, value in collected.items():
            print(f"  {name} = {value:g}")
    histograms = export["metrics"].get("histograms", {})
    nonempty = {k: v for k, v in histograms.items() if v["count"]}
    if nonempty:
        print("histograms:")
        for name, row in nonempty.items():
            line = (
                f"  {name}: count={row['count']} "
                f"mean={row['mean']:g} max={row['max']:g}"
            )
            buckets = row.get("buckets")
            if buckets:
                line += "  le[" + " ".join(
                    f"{bound}:{n}" for bound, n in buckets.items() if n
                ) + "]"
            print(line)
    summary = export["spans"]
    if summary:
        print("spans:")
        for name, row in summary.items():
            print(
                f"  {name}: count={row['count']} "
                f"mean={row['mean_s'] * 1e3:.3f}ms "
                f"max={row['max_s'] * 1e3:.3f}ms errors={row['errors']}"
            )
    if args.spans > 0:
        recent = obs.RECORDER.recent(args.spans)
        if recent:
            print(f"recent spans (newest last, {len(recent)}):")
            for span in recent:
                print(
                    f"  {span.name} {span.duration_s * 1e3:.3f}ms "
                    f"{dict(span.attrs)}"
                )
    if args.json is not None:
        export["decisions"] = [
            {
                "access": str(d.access),
                "time": d.time,
                "granted": d.granted,
                "reason": d.reason,
                "provenance": (
                    d.provenance.as_dict() if d.provenance is not None else None
                ),
            }
            for d in engine.audit
        ]
        args.json.write_text(json.dumps(export, indent=2, default=str) + "\n")
        print(f"obs export written to {args.json}")
    return 0 if naplet.status.value == "finished" else 1
