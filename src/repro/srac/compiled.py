"""Table-driven lowering of compiled SRAC constraints.

:class:`~repro.srac.monitors.CompiledConstraint` runs a monitor
product one access at a time through interpreted Python — a dict walk
and a tuple rebuild per step.  For batched decision sweeps
(:mod:`repro.rbac.vector_engine`) we lower the product once per
``(constraint, alphabet)`` to dense numpy arrays:

* every monitor-state vector ``(s_0, …, s_{k-1})`` is **encoded** as a
  single integer by mixed-radix positional encoding (MSB first:
  ``id = ((s_0·n_1 + s_1)·n_2 + s_2)…``, i.e. monitor ``i`` has stride
  ``Π_{j>i} n_j``);
* every access in the alphabet is **interned** to a symbol id;
* stepping becomes one fancy-indexing gather into an
  ``np.int32[n_states, n_symbols]`` transition table;
* acceptance and the coreachable ("live") set become boolean masks
  indexed by state id.

The live mask is derived *from* the cached
:func:`repro.srac.reachability.live_set` frozenset — not recomputed by
an independent algorithm — so the table-driven verdicts agree with the
scalar engine's by construction.  Products over the state budget (or
tables over the cell budget) are not lowered; :func:`compile_table`
returns ``None`` and callers fall back to the scalar path, mirroring
the live-set budget safety valve.

Interning an access outside the compiled alphabet raises the typed
:class:`~repro.errors.AlphabetError` (a :class:`~repro.errors.ReproError`)
rather than a bare ``KeyError``; the vectorized engine catches it and
falls back to the scalar path for that batch.

Tables are immutable after construction and interned process-wide per
``(constraint, alphabet)`` under a lock, exactly like the compile and
live-set caches they build on.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

import numpy as np

from repro.errors import AlphabetError
from repro.srac.ast import Constraint
from repro.srac.monitors import CompiledConstraint, compile_constraint
from repro.srac.reachability import DEFAULT_STATE_BUDGET, live_set
from repro.traces.trace import AccessKey

__all__ = [
    "DEFAULT_CELL_BUDGET",
    "TransitionTable",
    "compile_table",
    "clear_table_cache",
    "table_cache_counters",
]

#: Tables with more than this many transition cells
#: (``n_states × n_symbols``) are not materialised even when the state
#: count fits the live-set budget — a 4M-cell int32 table is 16 MB.
DEFAULT_CELL_BUDGET = 4_000_000


class TransitionTable:
    """A dense-array lowering of one ``(constraint, alphabet)`` product.

    Attributes
    ----------
    constraint, compiled:
        The source constraint and its interned monitor-vector form.
    symbols:
        The alphabet in canonical order; ``symbol_ids`` maps each
        access to its column index.
    n_states:
        ``Π monitor.size()`` — every mixed-radix code in
        ``range(n_states)`` is a valid state id (the full Cartesian
        product, matching :func:`repro.srac.reachability.live_set`,
        because history-induced states need not be alphabet-reachable).
    trans:
        ``int32[n_states, n_symbols]``; ``trans[s, a]`` is the successor
        state id.
    accepting, live:
        Boolean masks over state ids: constraint currently satisfied /
        some word over the alphabet reaches acceptance.
    initial:
        State id of the all-initial monitor vector.
    """

    __slots__ = (
        "constraint",
        "compiled",
        "symbols",
        "symbol_ids",
        "sizes",
        "strides",
        "n_states",
        "trans",
        "accepting",
        "live",
        "initial",
    )

    def __init__(
        self,
        compiled: CompiledConstraint,
        symbols: Sequence[AccessKey],
        live: frozenset[tuple[int, ...]],
    ):
        self.constraint = compiled.constraint
        self.compiled = compiled
        self.symbols = tuple(symbols)
        self.symbol_ids = {sym: i for i, sym in enumerate(self.symbols)}
        monitors = compiled.monitors
        self.sizes = tuple(m.size() for m in monitors)
        # MSB-first strides: monitor i moves in steps of Π_{j>i} sizes[j].
        strides = [1] * len(monitors)
        for i in range(len(monitors) - 2, -1, -1):
            strides[i] = strides[i + 1] * self.sizes[i + 1]
        self.strides = tuple(strides)
        n_states = 1
        for size in self.sizes:
            n_states *= size
        self.n_states = n_states
        n_symbols = len(self.symbols)

        ids = np.arange(n_states, dtype=np.int64)
        digits = [
            (ids // stride) % size
            for stride, size in zip(self.strides, self.sizes)
        ]

        # Per-monitor small tables (size_i × n_symbols), composed into
        # the product table by mixed-radix accumulation.  The Python
        # loops here are over Σ size_i × n_symbols — the small factors,
        # not the product.
        trans = np.zeros((n_states, n_symbols), dtype=np.int64)
        bits: list[np.ndarray] = []
        for monitor, digit, stride, size in zip(
            monitors, digits, self.strides, self.sizes
        ):
            small = np.empty((size, n_symbols), dtype=np.int64)
            for s in range(size):
                for a, sym in enumerate(self.symbols):
                    small[s, a] = monitor.step(s, sym)
            trans += small[digit] * stride
            accept_small = np.fromiter(
                (monitor.accepting(s) for s in range(size)),
                dtype=bool,
                count=size,
            )
            bits.append(accept_small[digit])
        self.trans = trans.astype(np.int32)

        # Acceptance mask: evaluate the boolean skeleton over whole
        # state-id vectors at once.  _skeleton is library-internal to
        # CompiledConstraint; this module is its vectorised twin.
        def ev(node) -> np.ndarray:
            tag = node[0]
            if tag == "const":
                return np.full(n_states, node[1], dtype=bool)
            if tag == "bit":
                return bits[node[1]]
            if tag == "not":
                return ~ev(node[1])
            if tag == "and":
                return ev(node[1]) & ev(node[2])
            if tag == "or":
                return ev(node[1]) | ev(node[2])
            if tag == "iff":
                return ev(node[1]) == ev(node[2])
            raise AssertionError(tag)  # pragma: no cover

        self.accepting = ev(compiled._skeleton)

        # Live mask from the cached coreachability frozenset — shared
        # provenance with the scalar path guarantees identical verdicts.
        live_mask = np.zeros(n_states, dtype=bool)
        if live:
            vectors = np.array(sorted(live), dtype=np.int64)
            live_mask[vectors @ np.asarray(self.strides, dtype=np.int64)] = True
        self.live = live_mask
        self.initial = self.encode(compiled.initial())

    # -- state codecs -------------------------------------------------------

    def encode(self, states: tuple[int, ...]) -> int:
        """Mixed-radix state id of a monitor-state vector."""
        return int(
            sum(s * stride for s, stride in zip(states, self.strides))
        )

    def decode(self, state_id: int) -> tuple[int, ...]:
        """Inverse of :meth:`encode`."""
        return tuple(
            (state_id // stride) % size
            for stride, size in zip(self.strides, self.sizes)
        )

    # -- symbol interning ----------------------------------------------------

    def intern(self, access: AccessKey) -> int:
        """Symbol id of ``access``; :class:`AlphabetError` if the access
        is outside the compiled alphabet."""
        try:
            return self.symbol_ids[access]
        except KeyError:
            raise AlphabetError(
                f"access {access!r} is not in the compiled alphabet of "
                f"{self.constraint!r} ({len(self.symbols)} symbols)"
            ) from None

    def intern_many(self, accesses: Iterable[AccessKey]) -> np.ndarray:
        """Vector of symbol ids; :class:`AlphabetError` on the first
        out-of-alphabet access."""
        ids = self.symbol_ids
        try:
            return np.fromiter(
                (ids[a] for a in accesses), dtype=np.int32
            )
        except KeyError as exc:
            raise AlphabetError(
                f"access {exc.args[0]!r} is not in the compiled alphabet of "
                f"{self.constraint!r} ({len(self.symbols)} symbols)"
            ) from None

    # -- stepping ------------------------------------------------------------

    def step_ids(self, state_ids: np.ndarray, symbol_ids: np.ndarray) -> np.ndarray:
        """Successor state ids for paired vectors of states and symbols
        — one fancy-indexing gather."""
        return self.trans[state_ids, symbol_ids]


# Process-level table cache, same discipline as the compile and
# live-set caches: keyed by (constraint, canonical symbol tuple),
# guarded by a lock, cleared wholesale past the cap, with a None entry
# memoising "over budget" so the budget check runs once per key.
_TABLE_CACHE_MAX = 1024
_cache_lock = threading.Lock()
_table_cache: dict[
    tuple[Constraint, tuple[AccessKey, ...]], TransitionTable | None
] = {}
_table_hits = 0
_table_misses = 0
_table_fallbacks = 0


def compile_table(
    constraint: Constraint,
    alphabet: Sequence[AccessKey | tuple[str, str, str]],
    cache: bool = True,
    state_budget: int = DEFAULT_STATE_BUDGET,
    cell_budget: int = DEFAULT_CELL_BUDGET,
) -> TransitionTable | None:
    """Lower ``constraint`` over ``alphabet`` to a
    :class:`TransitionTable`, or ``None`` when the product exceeds the
    state budget (live set unavailable) or the table the cell budget —
    callers must then use the scalar path.  Interned per
    ``(constraint, alphabet)`` unless ``cache=False``.
    """
    global _table_hits, _table_misses, _table_fallbacks
    symbols = tuple(dict.fromkeys(AccessKey(*a) for a in alphabet))
    key = (constraint, symbols)
    sentinel = object()
    if cache:
        with _cache_lock:
            cached = _table_cache.get(key, sentinel)
            if cached is not sentinel:
                if cached is None:
                    _table_fallbacks += 1
                else:
                    _table_hits += 1
                return cached  # type: ignore[return-value]
            _table_misses += 1
    compiled = compile_constraint(constraint, cache=cache)
    n_states = compiled.state_space()
    table: TransitionTable | None
    if n_states > state_budget or n_states * max(1, len(symbols)) > cell_budget:
        table = None
    else:
        live = live_set(compiled, symbols, state_budget)
        table = None if live is None else TransitionTable(compiled, symbols, live)
    if not cache:
        return table
    with _cache_lock:
        raced = _table_cache.get(key, sentinel)
        if raced is not sentinel:
            return raced  # type: ignore[return-value]
        if len(_table_cache) >= _TABLE_CACHE_MAX:
            _table_cache.clear()
        _table_cache[key] = table
        if table is None:
            _table_fallbacks += 1
    return table


def clear_table_cache() -> None:
    """Drop every interned table and zero the counters."""
    global _table_hits, _table_misses, _table_fallbacks
    with _cache_lock:
        _table_cache.clear()
        _table_hits = 0
        _table_misses = 0
        _table_fallbacks = 0


def table_cache_counters() -> tuple[int, int, int, int]:
    """``(hits, misses, fallbacks, entries)`` of the table cache."""
    with _cache_lock:
        return _table_hits, _table_misses, _table_fallbacks, len(_table_cache)
