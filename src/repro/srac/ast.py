"""Abstract syntax of SRAC, the Shared Resource Access Constraint
language (paper Definition 3.4)::

    C ::= T | F | a | a1 ⊗ a2 | #(m, n, σ(A)) | C1 ∧ C2 | C1 ∨ C2 | ¬C

with the defined connective ``C1 → C2 ::= ¬C1 ∨ C2`` (and ``↔`` for
symmetry).  The concrete syntax writes ``⊗`` as ``>>``, ``∧`` as ``&``,
``∨`` as ``|``, ``¬`` as ``~`` and ``#`` as ``count(m, n, σ)``.

Nodes are frozen dataclasses: hashable, structurally comparable.
:func:`desugar` eliminates ``→``/``↔``; :func:`constraint_size` is the
*n* of Theorem 3.2; :func:`atomic_parts` enumerates the atomic
sub-constraints that become runtime monitors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConstraintError
from repro.srac.selection import Selection
from repro.traces.trace import AccessKey

__all__ = [
    "Constraint",
    "Top",
    "Bottom",
    "Atom",
    "Ordered",
    "Count",
    "And",
    "Or",
    "Not",
    "Implies",
    "Iff",
    "conjunction",
    "disjunction",
    "desugar",
    "constraint_size",
    "atomic_parts",
    "constraint_alphabet",
]


@dataclass(frozen=True)
class Constraint:
    """Base class of SRAC constraints."""

    def children(self) -> tuple["Constraint", ...]:
        return ()

    # Python-operator sugar for composing constraints.
    def __and__(self, other: "Constraint") -> "Constraint":
        return And(self, other)

    def __or__(self, other: "Constraint") -> "Constraint":
        return Or(self, other)

    def __invert__(self) -> "Constraint":
        return Not(self)

    def implies(self, other: "Constraint") -> "Constraint":
        return Implies(self, other)

    def __str__(self) -> str:  # pragma: no cover - thin delegation
        from repro.srac.printer import unparse_constraint

        return unparse_constraint(self)


@dataclass(frozen=True)
class Top(Constraint):
    """``T`` — satisfied by every trace."""


@dataclass(frozen=True)
class Bottom(Constraint):
    """``F`` — satisfied by no trace."""


@dataclass(frozen=True)
class Atom(Constraint):
    """``a`` — the access must be performed (with an execution proof)."""

    access: AccessKey

    def __post_init__(self) -> None:
        if not isinstance(self.access, AccessKey):
            object.__setattr__(self, "access", AccessKey(*self.access))


@dataclass(frozen=True)
class Ordered(Constraint):
    """``a1 ⊗ a2`` — ``a1`` must be performed strictly before ``a2``
    (other accesses may happen in between)."""

    first: AccessKey
    second: AccessKey

    def __post_init__(self) -> None:
        if not isinstance(self.first, AccessKey):
            object.__setattr__(self, "first", AccessKey(*self.first))
        if not isinstance(self.second, AccessKey):
            object.__setattr__(self, "second", AccessKey(*self.second))


@dataclass(frozen=True)
class Count(Constraint):
    """``#(m, n, σ(A))`` — the number of performed accesses selected by
    σ must lie in ``[m, n]``; ``n = None`` means no upper bound.

    Counting is by *occurrence*: accessing the same resource five times
    contributes five, which is what "can not be accessed by more than 5
    times" (Example 3.5) requires.
    """

    lo: int
    hi: int | None
    selection: Selection

    def __post_init__(self) -> None:
        if self.lo < 0:
            raise ConstraintError(f"count lower bound must be >= 0, got {self.lo}")
        if self.hi is not None and self.hi < self.lo:
            raise ConstraintError(
                f"count upper bound {self.hi} below lower bound {self.lo}"
            )


@dataclass(frozen=True)
class And(Constraint):
    """``C1 ∧ C2``."""

    left: Constraint
    right: Constraint

    def children(self) -> tuple[Constraint, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Or(Constraint):
    """``C1 ∨ C2``."""

    left: Constraint
    right: Constraint

    def children(self) -> tuple[Constraint, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Not(Constraint):
    """``¬C``."""

    inner: Constraint

    def children(self) -> tuple[Constraint, ...]:
        return (self.inner,)


@dataclass(frozen=True)
class Implies(Constraint):
    """``C1 → C2``, defined as ``¬C1 ∨ C2`` (Definition 3.4)."""

    left: Constraint
    right: Constraint

    def children(self) -> tuple[Constraint, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Iff(Constraint):
    """``C1 ↔ C2``, defined as ``(C1 → C2) ∧ (C2 → C1)``."""

    left: Constraint
    right: Constraint

    def children(self) -> tuple[Constraint, ...]:
        return (self.left, self.right)


def conjunction(parts) -> Constraint:
    """Balanced n-ary conjunction: ``conjunction([])`` is ``T``.

    Builds a tree of depth ``O(log n)`` rather than a left spine, so
    recursive traversals (checking, printing) stay within Python's
    stack on constraints with thousands of atomic parts.
    """
    return _balanced(list(parts), And, Top())


def disjunction(parts) -> Constraint:
    """Balanced n-ary disjunction: ``disjunction([])`` is ``F``."""
    return _balanced(list(parts), Or, Bottom())


def _balanced(parts: list[Constraint], node, empty: Constraint) -> Constraint:
    if not parts:
        return empty
    if len(parts) == 1:
        return parts[0]
    mid = len(parts) // 2
    return node(_balanced(parts[:mid], node, empty), _balanced(parts[mid:], node, empty))


def desugar(constraint: Constraint) -> Constraint:
    """Eliminate ``Implies``/``Iff`` per their definitions."""
    if isinstance(constraint, Implies):
        return Or(Not(desugar(constraint.left)), desugar(constraint.right))
    if isinstance(constraint, Iff):
        left, right = desugar(constraint.left), desugar(constraint.right)
        return And(Or(Not(left), right), Or(Not(right), left))
    if isinstance(constraint, And):
        return And(desugar(constraint.left), desugar(constraint.right))
    if isinstance(constraint, Or):
        return Or(desugar(constraint.left), desugar(constraint.right))
    if isinstance(constraint, Not):
        return Not(desugar(constraint.inner))
    return constraint


def constraint_size(constraint: Constraint) -> int:
    """The size *n* of a constraint (number of AST nodes) — the *n*
    in Theorem 3.2's ``O(m × n)``."""
    return 1 + sum(constraint_size(c) for c in constraint.children())


def atomic_parts(constraint: Constraint) -> Iterator[Constraint]:
    """Yield the atomic sub-constraints (Atom, Ordered, Count) in
    left-to-right order, duplicates included."""
    if isinstance(constraint, (Atom, Ordered, Count)):
        yield constraint
        return
    for child in constraint.children():
        yield from atomic_parts(child)


def constraint_alphabet(constraint: Constraint) -> frozenset[AccessKey]:
    """Accesses explicitly named by the constraint (atoms and ordered
    pairs; counting selections are predicates and contribute nothing)."""
    out: set[AccessKey] = set()
    for part in atomic_parts(constraint):
        if isinstance(part, Atom):
            out.add(part.access)
        elif isinstance(part, Ordered):
            out.add(part.first)
            out.add(part.second)
    return frozenset(out)
