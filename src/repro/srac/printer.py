"""Pretty-printer for SRAC constraints.

``parse_constraint(unparse_constraint(c)) == c`` holds for every
constraint whose selections are expressible in the concrete syntax
(``SelectAll``, ``SelectField``, conjunctions of distinct fields, and
explicit access sets).  Programmatically built selections using
``SelectOr``/``SelectNot`` have no concrete-syntax form and make the
printer raise :class:`~repro.errors.ConstraintError`.
"""

from __future__ import annotations

from repro.errors import ConstraintError
from repro.srac.ast import (
    And,
    Atom,
    Bottom,
    Constraint,
    Count,
    Iff,
    Implies,
    Not,
    Or,
    Ordered,
    Top,
)
from repro.srac.selection import (
    SelectAccesses,
    SelectAll,
    SelectAnd,
    SelectField,
    Selection,
)
from repro.traces.trace import AccessKey

__all__ = ["unparse_constraint", "unparse_selection"]

_IFF, _IMPLIES, _OR, _AND, _NOT, _PRIMARY = 1, 2, 3, 4, 5, 6

_FIELD_SYNTAX = {"op": "op", "resource": "res", "server": "server"}


def _access(a: AccessKey) -> str:
    return f"{a.op} {a.resource} @ {a.server}"


def unparse_selection(selection: Selection) -> str:
    """Concrete syntax of a selection operator."""
    if isinstance(selection, SelectAll):
        return "[]"
    if isinstance(selection, SelectField):
        return f"[{_field_clause(selection)}]"
    if isinstance(selection, SelectAnd):
        clauses = []
        seen_fields: set[str] = set()
        for part in selection.parts:
            if not isinstance(part, SelectField):
                raise ConstraintError(
                    "only conjunctions of field selections are expressible "
                    f"in SRAC concrete syntax, got {part!r}"
                )
            if part.field_name in seen_fields:
                raise ConstraintError(
                    f"duplicate selection field {part.field_name!r} has no "
                    "concrete-syntax form"
                )
            seen_fields.add(part.field_name)
            clauses.append(_field_clause(part))
        return f"[{', '.join(clauses)}]"
    if isinstance(selection, SelectAccesses):
        items = sorted(selection.accesses)
        return "{" + ", ".join(_access(a) for a in items) + "}"
    raise ConstraintError(
        f"selection {selection!r} is not expressible in SRAC concrete syntax"
    )


def _field_clause(selection: SelectField) -> str:
    name = _FIELD_SYNTAX[selection.field_name]
    values = sorted(selection.values)
    if len(values) == 1:
        return f"{name} = {values[0]}"
    return f"{name} = {{{', '.join(values)}}}"


def unparse_constraint(constraint: Constraint) -> str:
    """Render a constraint with minimal parentheses."""
    return _render(constraint, 0)


def _render(c: Constraint, parent_prec: int) -> str:
    if isinstance(c, Top):
        return "T"
    if isinstance(c, Bottom):
        return "F"
    if isinstance(c, Atom):
        return _access(c.access)
    if isinstance(c, Ordered):
        return f"{_access(c.first)} >> {_access(c.second)}"
    if isinstance(c, Count):
        hi = "*" if c.hi is None else str(c.hi)
        return f"count({c.lo}, {hi}, {unparse_selection(c.selection)})"
    if isinstance(c, Not):
        text = f"~{_render(c.inner, _NOT)}"
        return f"({text})" if _NOT < parent_prec else text
    if isinstance(c, And):
        text = f"{_render(c.left, _AND)} & {_render(c.right, _AND + 1)}"
        return f"({text})" if _AND < parent_prec else text
    if isinstance(c, Or):
        text = f"{_render(c.left, _OR)} | {_render(c.right, _OR + 1)}"
        return f"({text})" if _OR < parent_prec else text
    if isinstance(c, Implies):
        # Right-associative: the left operand needs parens if it is
        # itself an implication.
        text = f"{_render(c.left, _IMPLIES + 1)} -> {_render(c.right, _IMPLIES)}"
        return f"({text})" if _IMPLIES < parent_prec else text
    if isinstance(c, Iff):
        text = f"{_render(c.left, _IFF)} <-> {_render(c.right, _IFF + 1)}"
        return f"({text})" if _IFF < parent_prec else text
    raise TypeError(f"not an SRAC constraint: {c!r}")
