"""Trace satisfaction ``t ⊨ C`` (paper Definition 3.6).

This is the *runtime* side of spatial constraint checking: the trace is
the access history a mobile object has actually performed, and each
access may carry an execution proof (``Pr_x``) issued by the server
that executed it.  A missing or invalid proof makes the corresponding
atom unsatisfied, exactly as in the paper's semantics "``a ∈ t`` and
``Pr_x(a) = true``".

Two implementations are provided:

* :func:`trace_satisfies` — direct structural recursion following
  Definition 3.6 case by case (the specification);
* the monitor-based evaluation in
  :class:`~repro.srac.monitors.CompiledConstraint` (the implementation
  used at scale).

Property tests assert they agree; benchmarks compare their speed.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.srac.ast import (
    And,
    Atom,
    Bottom,
    Constraint,
    Count,
    Iff,
    Implies,
    Not,
    Or,
    Ordered,
    Top,
)
from repro.traces.trace import AccessKey

__all__ = ["trace_satisfies", "ProofPredicate"]

#: Predicate deciding whether an access has a valid execution proof.
#: ``None`` means "assume all proofs valid" (static checking mode).
ProofPredicate = Callable[[AccessKey], bool]


def trace_satisfies(
    trace: Sequence[AccessKey],
    constraint: Constraint,
    proofs: ProofPredicate | None = None,
) -> bool:
    """Decide ``trace ⊨ constraint`` per Definition 3.6.

    Parameters
    ----------
    trace:
        The access history (sequence of ``(op, resource, server)``).
    constraint:
        An SRAC constraint.
    proofs:
        Optional execution-proof predicate ``Pr_x``.  When given, an
        atom ``a`` holds only if ``a`` occurs in the trace *and*
        ``proofs(a)`` is true; ordered constraints require proofs for
        both accesses.  When ``None``, occurrence alone suffices.
    """
    trace = tuple(AccessKey(*a) for a in trace)
    return _sat(trace, constraint, proofs)


def _proved(access: AccessKey, proofs: ProofPredicate | None) -> bool:
    return proofs is None or proofs(access)


def _sat(
    trace: tuple[AccessKey, ...],
    constraint: Constraint,
    proofs: ProofPredicate | None,
) -> bool:
    if isinstance(constraint, Top):
        return True
    if isinstance(constraint, Bottom):
        return False
    if isinstance(constraint, Atom):
        access = constraint.access
        return access in trace and _proved(access, proofs)
    if isinstance(constraint, Ordered):
        # ∃ t1, t2 with t1·t2 = t, a1 ∈ t1 (proved) and t2 ⊨ a2 (proved).
        first, second = constraint.first, constraint.second
        if not (_proved(first, proofs) and _proved(second, proofs)):
            return False
        for split, access in enumerate(trace):
            if access == first:
                return second in trace[split + 1 :]
        return False
    if isinstance(constraint, Count):
        matches = constraint.selection.matches
        count = sum(
            1 for a in trace if matches(a) and _proved(a, proofs)
        )
        if count < constraint.lo:
            return False
        return constraint.hi is None or count <= constraint.hi
    if isinstance(constraint, And):
        return _sat(trace, constraint.left, proofs) and _sat(
            trace, constraint.right, proofs
        )
    if isinstance(constraint, Or):
        return _sat(trace, constraint.left, proofs) or _sat(
            trace, constraint.right, proofs
        )
    if isinstance(constraint, Not):
        return not _sat(trace, constraint.inner, proofs)
    if isinstance(constraint, Implies):
        return (not _sat(trace, constraint.left, proofs)) or _sat(
            trace, constraint.right, proofs
        )
    if isinstance(constraint, Iff):
        return _sat(trace, constraint.left, proofs) == _sat(
            trace, constraint.right, proofs
        )
    raise TypeError(f"not an SRAC constraint: {constraint!r}")
