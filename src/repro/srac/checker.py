"""Program satisfaction ``P ⊨ C`` — Theorem 3.2.

``traces(P)`` can be infinite, so per-trace checking is impossible; the
paper claims an ``O(m × n)`` decision procedure but (citing [14]) gives
no algorithm.  We use a monitor-product construction:

1. ``P`` compiles to its trace NFA (``O(m)`` states, Definition 3.2).
2. ``C`` compiles to a vector of atomic monitors plus a boolean
   skeleton (:mod:`repro.srac.monitors`).
3. A BFS explores the product of the *determinised* program automaton
   (built lazily — only reachable subsets are materialised) with the
   monitor vector.  Each product configuration is
   ``(program-state-set, monitor-state vector)``.
4. At every configuration whose program part is accepting (i.e. the
   access word read so far is a complete trace of ``P``), the skeleton
   is evaluated on the monitors' acceptance bits.

``P ⊨ C`` in the **universal** mode (the paper's reading of
Definition 3.7: *every* trace satisfies C) iff every final
configuration evaluates true; the **existential** mode (*some* trace
can satisfy C — useful for "can this program still comply?") iff some
final configuration evaluates true.

Complexity.  Reachable configurations number at most
``D × Π|monitor_i|`` where ``D`` is the number of reachable determinised
program states.  For the paper's constraint fragment — bounded
boolean width, bounded counting thresholds — this is the claimed
``O(m·n)``; adversarial nesting can exceed it, which the paper glosses
over (see DESIGN.md).  :func:`check_program_stats` reports the explored
configuration count so the benchmarks can measure the practical scaling
(experiment EXP-T32).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Literal, Sequence

from repro.errors import ConstraintError
from repro.sral.ast import Program
from repro.srac.ast import Constraint
from repro.srac.monitors import CompiledConstraint, compile_constraint
from repro.srac.reachability import satisfiable_states
from repro.traces.model import program_traces
from repro.traces.trace import AccessKey

__all__ = [
    "check_program",
    "check_program_stats",
    "satisfiable_extension",
    "satisfiable_extension_states",
    "CheckResult",
]

Mode = Literal["forall", "exists"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of a program-satisfaction check.

    ``holds`` is the decision.  ``witness`` is a trace demonstrating the
    decision when one exists: in ``forall`` mode a *violating* trace
    (``holds`` false), in ``exists`` mode a *satisfying* trace (``holds``
    true); otherwise ``None``.  ``configurations`` counts explored
    product configurations (the empirical cost of Theorem 3.2).
    """

    holds: bool
    witness: tuple[AccessKey, ...] | None
    configurations: int


def check_program(
    program: Program,
    constraint: Constraint,
    history: Sequence[AccessKey] = (),
    mode: Mode = "forall",
    max_configurations: int = 1_000_000,
) -> bool:
    """Decide ``P ⊨ C`` (Definition 3.7 / Theorem 3.2).

    Parameters
    ----------
    program:
        The mobile object's SRAL program.
    constraint:
        The SRAC spatial constraint.
    history:
        Accesses already performed (with valid execution proofs).  The
        monitors start from the state reached after this prefix, so the
        check answers "given what the object already did, does/can the
        rest of the program comply?".  This is how the paper's
        ``check(P, C)`` combines "the traces and execution proofs of a
        mobile object" (Section 3.4).
    mode:
        ``"forall"`` — every complete trace must satisfy C (the paper's
        ⊨); ``"exists"`` — some trace satisfies C.
    max_configurations:
        Safety valve; exceeded only by adversarial constraints (raises
        :class:`~repro.errors.ConstraintError`).
    """
    return check_program_stats(
        program, constraint, history, mode, max_configurations
    ).holds


def check_program_stats(
    program: Program,
    constraint: Constraint,
    history: Sequence[AccessKey] = (),
    mode: Mode = "forall",
    max_configurations: int = 1_000_000,
) -> CheckResult:
    """Like :func:`check_program` but returns the full
    :class:`CheckResult` (decision, witness trace, configuration count).
    """
    if mode not in ("forall", "exists"):
        raise ConstraintError(f"unknown check mode {mode!r}")
    compiled: CompiledConstraint = compile_constraint(constraint)
    monitor_start = compiled.run(tuple(AccessKey(*a) for a in history))

    nfa = program_traces(program).nfa
    start_states = nfa.epsilon_closure(nfa.start)

    # Lazy determinisation with interning: configurations sharing a
    # program-state subset (they differ only in monitor state) reuse its
    # transition row, so each subset's successors are computed once.
    subset_ids: dict[frozenset[int], int] = {start_states: 0}
    subset_rows: list[tuple[tuple[AccessKey, int], ...] | None] = [None]
    subset_accepting: list[bool] = [bool(start_states & nfa.accepts)]
    subset_values: list[frozenset[int]] = [start_states]

    def row_of(subset_id: int) -> tuple[tuple[AccessKey, int], ...]:
        row = subset_rows[subset_id]
        if row is not None:
            return row
        states = subset_values[subset_id]
        symbols: set[AccessKey] = set()
        for state in states:
            symbols.update(nfa.edges[state].keys())
        entries: list[tuple[AccessKey, int]] = []
        for symbol in symbols:
            nxt = nfa.step(states, symbol)
            if not nxt:
                continue
            nxt_id = subset_ids.get(nxt)
            if nxt_id is None:
                nxt_id = len(subset_values)
                subset_ids[nxt] = nxt_id
                subset_values.append(nxt)
                subset_rows.append(None)
                subset_accepting.append(bool(nxt & nfa.accepts))
            entries.append((symbol, nxt_id))
        row = tuple(entries)
        subset_rows[subset_id] = row
        return row

    # Monitor-step and verdict caches: many configurations share monitor
    # states, and most symbols leave most monitors unchanged.
    step_cache: dict[tuple[tuple[int, ...], AccessKey], tuple[int, ...]] = {}
    verdict_cache: dict[tuple[int, ...], bool] = {}

    start = (0, monitor_start)
    seen = {start}
    # Each queue entry carries the access word that reached it so a
    # witness can be reported; words stay short because BFS finds the
    # shortest offending/satisfying completion first.
    queue: deque[tuple[int, tuple[int, ...], tuple[AccessKey, ...]]] = deque(
        [(0, monitor_start, ())]
    )
    explored = 0

    while queue:
        subset_id, monitor_states, word = queue.popleft()
        explored += 1
        if explored > max_configurations:
            raise ConstraintError(
                f"constraint check exceeded {max_configurations} product "
                "configurations; the constraint is outside the polynomial "
                "fragment (see DESIGN.md)"
            )
        if subset_accepting[subset_id]:
            verdict = verdict_cache.get(monitor_states)
            if verdict is None:
                verdict = compiled.evaluate(monitor_states)
                verdict_cache[monitor_states] = verdict
            if mode == "forall" and not verdict:
                return CheckResult(False, word, explored)
            if mode == "exists" and verdict:
                return CheckResult(True, word, explored)
        for symbol, next_subset in row_of(subset_id):
            key = (monitor_states, symbol)
            next_monitors = step_cache.get(key)
            if next_monitors is None:
                next_monitors = compiled.step(monitor_states, symbol)
                step_cache[key] = next_monitors
            config = (next_subset, next_monitors)
            if config not in seen:
                seen.add(config)
                queue.append((next_subset, next_monitors, word + (symbol,)))

    if mode == "forall":
        return CheckResult(True, None, explored)
    return CheckResult(False, None, explored)


def satisfiable_extension_states(
    compiled: CompiledConstraint,
    states: tuple[int, ...],
    alphabet: Sequence[AccessKey | tuple[str, str, str]],
    max_configurations: int = 1_000_000,
    use_cache: bool = True,
) -> bool:
    """Monitor-state-level core of :func:`satisfiable_extension`:
    can any word over ``alphabet`` drive ``states`` to acceptance?

    Exposed separately so callers that maintain *incremental* monitor
    states (e.g. the engine's per-session cache) skip the history
    replay entirely.

    With ``use_cache`` (the default) the answer is a membership lookup
    in the precomputed coreachable set of the monitor product
    (:mod:`repro.srac.reachability`); products beyond the state budget
    — and calls with ``use_cache=False`` — run the explicit BFS below.
    """
    if use_cache:
        verdict = satisfiable_states(compiled, states, alphabet)
        if verdict is not None:
            return verdict
    symbols = tuple(dict.fromkeys(AccessKey(*a) for a in alphabet))
    seen = {states}
    queue: deque[tuple[int, ...]] = deque([states])
    explored = 0
    while queue:
        current = queue.popleft()
        explored += 1
        if explored > max_configurations:
            raise ConstraintError(
                f"satisfiability search exceeded {max_configurations} "
                "monitor configurations"
            )
        if compiled.evaluate(current):
            return True
        for symbol in symbols:
            nxt = compiled.step(current, symbol)
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return False


def satisfiable_extension(
    constraint: Constraint,
    history: Sequence[AccessKey],
    alphabet: Sequence[AccessKey | tuple[str, str, str]],
    max_configurations: int = 1_000_000,
    use_cache: bool = True,
) -> bool:
    """Can the history still be extended — by *any* future accesses
    drawn from ``alphabet`` — into a trace satisfying ``constraint``?

    This is the engine's grant-time test when the mobile object's
    remaining program is unknown: granting an access whose resulting
    history is **un**-extendable would strand the object in permanent
    violation, so such a grant is refused (the paper's "not allowed to
    access the resource on site s2 forever" behaviour falls out of
    exactly this check).

    Equivalent to ``check_program(while c do (a1|…|ak), constraint,
    history, mode="exists")`` for the given alphabet, but implemented
    directly on the monitor product (no program automaton needed).

    Compilation goes through the process-level interned cache, so
    repeated calls for one policy constraint compile it exactly once;
    ``use_cache=False`` bypasses both the compile cache and the
    precomputed live set (fresh compile + explicit BFS).
    """
    compiled = compile_constraint(constraint, cache=use_cache)
    start = compiled.run(tuple(AccessKey(*a) for a in history))
    return satisfiable_extension_states(
        compiled, start, alphabet, max_configurations, use_cache=use_cache
    )
