"""Recursive-descent parser for SRAC concrete syntax.

Grammar (loosest to tightest; ``->`` is right-associative)::

    constraint := implied ('<->' implied)*
    implied    := or_c ('->' implied)?
    or_c       := and_c (('|' | 'or') and_c)*
    and_c      := not_c (('&' | 'and') not_c)*
    not_c      := ('~' | 'not') not_c | primary
    primary    := 'T' | 'F'
                | 'count' '(' INT ',' (INT | '*') ',' selector ')'
                | '(' constraint ')'
                | access ('>>' access)?
    access     := IDENT IDENT '@' IDENT
    selector   := '[' [clause (',' clause)*] ']'
                | '{' access (',' access)* '}'
    clause     := ('op' | 'res' | 'resource' | 'server') '=' values
    values     := IDENT | '{' IDENT (',' IDENT)* '}'

Examples::

    read rsw @ s1 >> write log @ s2
    count(0, 5, [res = rsw])                 -- the paper's #(0,5,σ_RSW(A))
    exec m1 @ s1 -> (exec m2 @ s1 & exec m3 @ s2)
"""

from __future__ import annotations

from repro.errors import SracSyntaxError
from repro.sral.lexer import Token, tokenize
from repro.sral.parser import Parser as _SralParser
from repro.srac.ast import (
    And,
    Atom,
    Bottom,
    Constraint,
    Count,
    Iff,
    Implies,
    Not,
    Or,
    Ordered,
    Top,
)
from repro.srac.selection import (
    SelectAccesses,
    SelectAll,
    SelectAnd,
    SelectField,
    Selection,
)
from repro.traces.trace import AccessKey

__all__ = ["parse_constraint", "parse_selection"]

_CLAUSE_FIELDS = {"op": "op", "res": "resource", "resource": "resource", "server": "server"}


def parse_constraint(source: str) -> Constraint:
    """Parse SRAC source text into a :class:`~repro.srac.ast.Constraint`."""
    parser = _ConstraintParser(tokenize(source))
    constraint = parser.constraint()
    parser.expect_eof()
    return constraint


def parse_selection(source: str) -> Selection:
    """Parse a standalone selector (``[res = rsw]`` or ``{read r @ s}``)."""
    parser = _ConstraintParser(tokenize(source))
    selection = parser.selector()
    parser.expect_eof()
    return selection


class _ConstraintParser(_SralParser):
    """Extends the SRAL token plumbing with the SRAC grammar."""

    def error(self, message: str, token: Token | None = None) -> SracSyntaxError:
        token = token or self.peek()
        shown = token.value or "<end of input>"
        return SracSyntaxError(f"{message}, got {shown!r}", token.line, token.column)

    # -- constraints ------------------------------------------------------

    def constraint(self) -> Constraint:
        left = self._implied()
        while self.peek().is_punct("<->"):
            self.advance()
            left = Iff(left, self._implied())
        return left

    def _implied(self) -> Constraint:
        left = self._or()
        if self.peek().is_punct("->"):
            self.advance()
            return Implies(left, self._implied())
        return left

    def _or(self) -> Constraint:
        left = self._and()
        while self.peek().is_punct("|") or self.peek().is_keyword("or"):
            self.advance()
            left = Or(left, self._and())
        return left

    def _and(self) -> Constraint:
        left = self._not()
        while self.peek().is_punct("&") or self.peek().is_keyword("and"):
            self.advance()
            left = And(left, self._not())
        return left

    def _not(self) -> Constraint:
        if self.peek().is_punct("~") or self.peek().is_keyword("not"):
            self.advance()
            return Not(self._not())
        return self._primary()

    def _primary(self) -> Constraint:
        token = self.peek()
        if token.is_keyword("T"):
            self.advance()
            return Top()
        if token.is_keyword("F"):
            self.advance()
            return Bottom()
        if token.is_keyword("count"):
            return self._count()
        if token.is_punct("("):
            self.advance()
            inner = self.constraint()
            self.expect_punct(")")
            return inner
        if token.kind == "IDENT":
            first = self._access()
            if self.peek().is_punct(">>"):
                self.advance()
                second = self._access()
                return Ordered(first, second)
            return Atom(first)
        raise self.error("expected a constraint")

    def _access(self) -> AccessKey:
        op = self.expect_ident("operation")
        resource = self.expect_ident("resource")
        self.expect_punct("@")
        server = self.expect_ident("server name")
        return AccessKey(op, resource, server)

    def _count(self) -> Count:
        self.expect_keyword("count")
        self.expect_punct("(")
        lo_token = self.peek()
        if lo_token.kind != "INT":
            raise self.error("expected count lower bound")
        lo = int(self.advance().value)
        self.expect_punct(",")
        hi_token = self.peek()
        if hi_token.is_punct("*"):
            self.advance()
            hi: int | None = None
        elif hi_token.kind == "INT":
            hi = int(self.advance().value)
        else:
            raise self.error("expected count upper bound or '*'")
        self.expect_punct(",")
        selection = self.selector()
        self.expect_punct(")")
        return Count(lo, hi, selection)

    # -- selectors ----------------------------------------------------------

    def selector(self) -> Selection:
        token = self.peek()
        if token.is_punct("["):
            return self._field_selector()
        if token.is_punct("{"):
            return self._access_set_selector()
        raise self.error("expected a selector ('[...]' or '{...}')")

    def _field_selector(self) -> Selection:
        self.expect_punct("[")
        if self.peek().is_punct("]"):
            self.advance()
            return SelectAll()
        clauses: list[SelectField] = []
        seen: set[str] = set()
        while True:
            field_token = self.peek()
            if field_token.kind != "IDENT" or field_token.value not in _CLAUSE_FIELDS:
                raise self.error("expected selection field (op / res / server)")
            field = _CLAUSE_FIELDS[self.advance().value]
            if field in seen:
                raise self.error(f"duplicate selection field {field!r}", field_token)
            seen.add(field)
            self.expect_punct("=")
            clauses.append(SelectField(field, self._values()))
            if self.peek().is_punct(","):
                self.advance()
                continue
            break
        self.expect_punct("]")
        if len(clauses) == 1:
            return clauses[0]
        return SelectAnd(tuple(clauses))

    def _values(self) -> frozenset[str]:
        if self.peek().is_punct("{"):
            self.advance()
            values = {self.expect_ident("selection value")}
            while self.peek().is_punct(","):
                self.advance()
                values.add(self.expect_ident("selection value"))
            self.expect_punct("}")
            return frozenset(values)
        return frozenset({self.expect_ident("selection value")})

    def _access_set_selector(self) -> SelectAccesses:
        self.expect_punct("{")
        accesses = {self._access()}
        while self.peek().is_punct(","):
            self.advance()
            accesses.add(self._access())
        self.expect_punct("}")
        return SelectAccesses(frozenset(accesses))
