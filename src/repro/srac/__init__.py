"""SRAC — the Shared Resource Access Constraint language
(paper Definition 3.4) and its decision procedures.

* :mod:`repro.srac.ast` — constraint AST (``T``, ``F``, atoms, ``⊗``,
  counting, boolean connectives);
* :mod:`repro.srac.selection` — σ selection operators over access sets;
* :mod:`repro.srac.parser` / :mod:`repro.srac.printer` — concrete syntax;
* :mod:`repro.srac.trace_check` — ``t ⊨ C`` (Definition 3.6, with
  execution proofs);
* :mod:`repro.srac.checker` — ``P ⊨ C`` (Definition 3.7 /
  Theorem 3.2) via the monitor-product algorithm.
"""

from repro.srac.ast import (
    And,
    Atom,
    Bottom,
    Constraint,
    Count,
    Iff,
    Implies,
    Not,
    Or,
    Ordered,
    Top,
    atomic_parts,
    conjunction,
    constraint_alphabet,
    constraint_size,
    desugar,
    disjunction,
)
from repro.srac.checker import (
    CheckResult,
    check_program,
    check_program_stats,
    satisfiable_extension,
    satisfiable_extension_states,
)
from repro.srac.monitors import (
    AtomMonitor,
    CompiledConstraint,
    CountMonitor,
    Monitor,
    OrderedMonitor,
    clear_compile_cache,
    compile_cache_counters,
    compile_constraint,
)
from repro.srac.reachability import (
    CacheStats,
    cache_stats,
    clear_caches,
    live_set,
    reset_cache_stats,
    satisfiable_states,
)
from repro.srac.parser import parse_constraint, parse_selection
from repro.srac.printer import unparse_constraint, unparse_selection
from repro.srac.simplify import simplify_constraint
from repro.srac.selection import (
    SelectAccesses,
    SelectAll,
    SelectAnd,
    SelectField,
    SelectNot,
    SelectOr,
    Selection,
    select_access,
    select_op,
    select_resource,
    select_server,
)
from repro.srac.trace_check import trace_satisfies

__all__ = [
    "And",
    "Atom",
    "Bottom",
    "Constraint",
    "Count",
    "Iff",
    "Implies",
    "Not",
    "Or",
    "Ordered",
    "Top",
    "atomic_parts",
    "conjunction",
    "disjunction",
    "constraint_alphabet",
    "constraint_size",
    "desugar",
    "CheckResult",
    "check_program",
    "check_program_stats",
    "satisfiable_extension",
    "satisfiable_extension_states",
    "CacheStats",
    "cache_stats",
    "clear_caches",
    "clear_compile_cache",
    "compile_cache_counters",
    "live_set",
    "reset_cache_stats",
    "satisfiable_states",
    "AtomMonitor",
    "CompiledConstraint",
    "CountMonitor",
    "Monitor",
    "OrderedMonitor",
    "compile_constraint",
    "parse_constraint",
    "parse_selection",
    "unparse_constraint",
    "unparse_selection",
    "SelectAccesses",
    "SelectAll",
    "SelectAnd",
    "SelectField",
    "SelectNot",
    "SelectOr",
    "Selection",
    "select_access",
    "select_op",
    "select_resource",
    "select_server",
    "simplify_constraint",
    "trace_satisfies",
]
