"""Constraint simplification: boolean constant folding and trivial
atomic reductions, preserving trace satisfaction exactly
(``trace_satisfies(t, simplify_constraint(C)) == trace_satisfies(t, C)``
for every trace ``t`` — property-tested).

Rules: identity/absorbing elements of ∧/∨, double negation, negated
constants, implication/iff with constant sides, and the trivially true
count ``#(0, ∞, σ) → T``.
"""

from __future__ import annotations

from repro.srac.ast import (
    And,
    Atom,
    Bottom,
    Constraint,
    Count,
    Iff,
    Implies,
    Not,
    Or,
    Ordered,
    Top,
)

__all__ = ["simplify_constraint"]

_T = Top()
_F = Bottom()


def simplify_constraint(constraint: Constraint) -> Constraint:
    """Bottom-up simplification (iterative; safe on deep constraints)."""
    done: dict[int, Constraint] = {}
    stack: list[tuple[Constraint, bool]] = [(constraint, False)]
    result = constraint
    while stack:
        node, expanded = stack.pop()
        children = node.children()
        if not children:
            done[id(node)] = _leaf(node)
            result = done[id(node)]
            continue
        if not expanded:
            stack.append((node, True))
            for child in reversed(children):
                stack.append((child, False))
            continue
        simplified = [done[id(child)] for child in children]
        rebuilt = _rebuild(node, simplified)
        done[id(node)] = rebuilt
        result = rebuilt
    return result


def _leaf(node: Constraint) -> Constraint:
    if isinstance(node, Count) and node.lo == 0 and node.hi is None:
        return _T  # every count lies in [0, ∞)
    return node


def _rebuild(node: Constraint, children: list[Constraint]) -> Constraint:
    if isinstance(node, And):
        left, right = children
        if left == _F or right == _F:
            return _F
        if left == _T:
            return right
        if right == _T:
            return left
        if left == right:
            return left
        return And(left, right)
    if isinstance(node, Or):
        left, right = children
        if left == _T or right == _T:
            return _T
        if left == _F:
            return right
        if right == _F:
            return left
        if left == right:
            return left
        return Or(left, right)
    if isinstance(node, Not):
        (inner,) = children
        if inner == _T:
            return _F
        if inner == _F:
            return _T
        if isinstance(inner, Not):
            return inner.inner
        return Not(inner)
    if isinstance(node, Implies):
        left, right = children
        if left == _F or right == _T:
            return _T
        if left == _T:
            return right
        if right == _F:
            return _rebuild(Not(left), [left])
        if left == right:
            return _T
        return Implies(left, right)
    if isinstance(node, Iff):
        left, right = children
        if left == right:
            return _T
        if left == _T:
            return right
        if right == _T:
            return left
        if left == _F:
            return _rebuild(Not(right), [right])
        if right == _F:
            return _rebuild(Not(left), [left])
        return Iff(left, right)
    raise TypeError(f"unexpected constraint: {node!r}")  # pragma: no cover
