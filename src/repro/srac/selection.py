"""Selection operators σ over access sets (used by SRAC counting
constraints).

The paper's Example 3.5 writes ``#(0, 5, σ_RSW(A))`` — "σ is a selection
operation over set A and returns a subset of accesses that meet certain
conditions".  We realise σ as an immutable, hashable predicate over
:class:`~repro.traces.trace.AccessKey`, composable with and/or/not:

* :class:`SelectAll` — every access;
* :class:`SelectField` — accesses whose ``op``/``resource``/``server``
  is in a given set (e.g. all accesses to the RSW package);
* :class:`SelectAccesses` — an explicit access set;
* :class:`SelectAnd` / :class:`SelectOr` / :class:`SelectNot` —
  combinators.

Every selection supports :meth:`Selection.matches` for single accesses
and :meth:`Selection.restrict` to filter an alphabet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ConstraintError
from repro.traces.trace import AccessKey

__all__ = [
    "Selection",
    "SelectAll",
    "SelectField",
    "SelectAccesses",
    "SelectAnd",
    "SelectOr",
    "SelectNot",
    "select_op",
    "select_resource",
    "select_server",
    "select_access",
]

_FIELDS = ("op", "resource", "server")


@dataclass(frozen=True)
class Selection:
    """Base class of selection operators."""

    def matches(self, access: AccessKey) -> bool:
        raise NotImplementedError

    def restrict(self, alphabet: Iterable[AccessKey]) -> frozenset[AccessKey]:
        """σ(A): the subset of ``alphabet`` selected."""
        return frozenset(a for a in alphabet if self.matches(AccessKey(*a)))

    # Combinator sugar.
    def __and__(self, other: "Selection") -> "Selection":
        return SelectAnd((self, other))

    def __or__(self, other: "Selection") -> "Selection":
        return SelectOr((self, other))

    def __invert__(self) -> "Selection":
        return SelectNot(self)


@dataclass(frozen=True)
class SelectAll(Selection):
    """Selects every access."""

    def matches(self, access: AccessKey) -> bool:
        return True


@dataclass(frozen=True)
class SelectField(Selection):
    """Selects accesses whose ``field`` value is in ``values``.

    ``field`` is one of ``op``, ``resource``, ``server``.
    """

    field_name: str
    values: frozenset[str]

    def __post_init__(self) -> None:
        if self.field_name not in _FIELDS:
            raise ConstraintError(
                f"unknown selection field {self.field_name!r}; expected one of {_FIELDS}"
            )
        object.__setattr__(self, "values", frozenset(self.values))
        if not self.values:
            raise ConstraintError("selection value set must not be empty")

    def matches(self, access: AccessKey) -> bool:
        return getattr(access, self.field_name) in self.values


@dataclass(frozen=True)
class SelectAccesses(Selection):
    """Selects exactly the accesses in an explicit set."""

    accesses: frozenset[AccessKey]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "accesses", frozenset(AccessKey(*a) for a in self.accesses)
        )

    def matches(self, access: AccessKey) -> bool:
        return access in self.accesses


@dataclass(frozen=True)
class SelectAnd(Selection):
    """Conjunction of selections."""

    parts: tuple[Selection, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "parts", tuple(self.parts))
        if not self.parts:
            raise ConstraintError("SelectAnd needs at least one part")

    def matches(self, access: AccessKey) -> bool:
        return all(p.matches(access) for p in self.parts)


@dataclass(frozen=True)
class SelectOr(Selection):
    """Disjunction of selections."""

    parts: tuple[Selection, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "parts", tuple(self.parts))
        if not self.parts:
            raise ConstraintError("SelectOr needs at least one part")

    def matches(self, access: AccessKey) -> bool:
        return any(p.matches(access) for p in self.parts)


@dataclass(frozen=True)
class SelectNot(Selection):
    """Complement of a selection."""

    inner: Selection

    def matches(self, access: AccessKey) -> bool:
        return not self.inner.matches(access)


def select_op(*ops: str) -> SelectField:
    """Accesses performing one of the given operations."""
    return SelectField("op", frozenset(ops))


def select_resource(*resources: str) -> SelectField:
    """Accesses touching one of the given resources (e.g. the paper's
    σ_RSW selecting the restricted-software package)."""
    return SelectField("resource", frozenset(resources))


def select_server(*servers: str) -> SelectField:
    """Accesses at one of the given servers."""
    return SelectField("server", frozenset(servers))


def select_access(*accesses: AccessKey | tuple[str, str, str]) -> SelectAccesses:
    """An explicit access set."""
    return SelectAccesses(frozenset(AccessKey(*a) for a in accesses))
