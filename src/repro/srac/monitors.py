"""Atomic-constraint monitors: tiny deterministic automata that track
one atomic SRAC sub-constraint along a trace.

The program-satisfaction checker (Theorem 3.2) runs a vector of these
monitors in lockstep with the program's trace automaton; trace-level
checking (Definition 3.6) can use them too, though the direct recursive
evaluation in :mod:`repro.srac.trace_check` is used for cross-validation.

Monitor state is always a small ``int``, so a configuration of the
product is a hashable ``tuple[int, ...]``.

===============  ======  ==========================================
atomic form      states  meaning of acceptance
===============  ======  ==========================================
``a``            2       ``a`` occurred
``a1 ⊗ a2``      3       some ``a1`` occurred strictly before ``a2``
``#(m, n, σ)``   ≤n+2    occurrence count within ``[m, n]``
===============  ======  ==========================================
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConstraintError
from repro.srac.ast import (
    And,
    Atom,
    Bottom,
    Constraint,
    Count,
    Iff,
    Implies,
    Not,
    Or,
    Ordered,
    Top,
)
from repro.traces.trace import AccessKey

__all__ = [
    "Monitor",
    "AtomMonitor",
    "OrderedMonitor",
    "CountMonitor",
    "CompiledConstraint",
    "compile_constraint",
    "clear_compile_cache",
    "compile_cache_counters",
]


class Monitor:
    """Deterministic single-purpose automaton over accesses."""

    __slots__ = ()

    def initial(self) -> int:
        """The start state."""
        raise NotImplementedError

    def step(self, state: int, access: AccessKey) -> int:
        """Successor state after observing ``access``."""
        raise NotImplementedError

    def accepting(self, state: int) -> bool:
        """Does ``state`` mean the atomic constraint currently holds?"""
        raise NotImplementedError

    def size(self) -> int:
        """Number of distinct states (complexity accounting)."""
        raise NotImplementedError

    def run(self, trace: Sequence[AccessKey]) -> int:
        """Fold a whole trace from the initial state."""
        state = self.initial()
        for access in trace:
            state = self.step(state, access)
        return state


@dataclass(frozen=True)
class AtomMonitor(Monitor):
    """Tracks an ``Atom``: has the access occurred yet?"""

    access: AccessKey

    def initial(self) -> int:
        return 0

    def step(self, state: int, access: AccessKey) -> int:
        if state == 1 or access == self.access:
            return 1
        return 0

    def accepting(self, state: int) -> bool:
        return state == 1

    def size(self) -> int:
        return 2


@dataclass(frozen=True)
class OrderedMonitor(Monitor):
    """Tracks ``a1 ⊗ a2``: state 0 = nothing, 1 = a1 seen,
    2 = a1 then (later) a2 seen."""

    first: AccessKey
    second: AccessKey

    def initial(self) -> int:
        return 0

    def step(self, state: int, access: AccessKey) -> int:
        if state == 0:
            return 1 if access == self.first else 0
        if state == 1:
            return 2 if access == self.second else 1
        return 2

    def accepting(self, state: int) -> bool:
        return state == 2

    def size(self) -> int:
        return 3


@dataclass(frozen=True)
class CountMonitor(Monitor):
    """Tracks ``#(m, n, σ)``: a saturating occurrence counter.

    With a finite upper bound ``n`` the counter saturates at ``n + 1``
    (any count beyond the bound is equally violating); with ``n = ∞``
    it saturates at ``m`` (any count at or beyond the lower bound is
    equally satisfying).
    """

    lo: int
    hi: int | None
    matcher: Callable[[AccessKey], bool]

    def _cap(self) -> int:
        return self.hi + 1 if self.hi is not None else self.lo

    def initial(self) -> int:
        return 0

    def step(self, state: int, access: AccessKey) -> int:
        if self.matcher(access):
            return min(state + 1, self._cap())
        return state

    def accepting(self, state: int) -> bool:
        if state < self.lo:
            return False
        return self.hi is None or state <= self.hi

    def size(self) -> int:
        return self._cap() + 1


class CompiledConstraint:
    """A constraint compiled to (monitor vector, boolean skeleton).

    The skeleton is the constraint with every atomic part replaced by a
    reference to its monitor's acceptance bit; :meth:`evaluate` decides
    satisfaction for a monitor-state vector.  Structurally identical
    atomic parts share one monitor.
    """

    __slots__ = ("constraint", "monitors", "_skeleton", "_proof_atoms")

    def __init__(self, constraint: Constraint):
        self.constraint = constraint
        self.monitors: list[Monitor] = []
        index: dict[Constraint, int] = {}

        def monitor_for(part: Constraint) -> int:
            existing = index.get(part)
            if existing is not None:
                return existing
            if isinstance(part, Atom):
                monitor: Monitor = AtomMonitor(part.access)
            elif isinstance(part, Ordered):
                monitor = OrderedMonitor(part.first, part.second)
            elif isinstance(part, Count):
                monitor = CountMonitor(part.lo, part.hi, part.selection.matches)
            else:  # pragma: no cover - guarded by caller
                raise ConstraintError(f"not an atomic constraint: {part!r}")
            slot = len(self.monitors)
            self.monitors.append(monitor)
            index[part] = slot
            return slot

        def build(node: Constraint):
            if isinstance(node, Top):
                return ("const", True)
            if isinstance(node, Bottom):
                return ("const", False)
            if isinstance(node, (Atom, Ordered, Count)):
                return ("bit", monitor_for(node))
            if isinstance(node, Not):
                return ("not", build(node.inner))
            if isinstance(node, And):
                return ("and", build(node.left), build(node.right))
            if isinstance(node, Or):
                return ("or", build(node.left), build(node.right))
            if isinstance(node, Implies):
                return ("or", ("not", build(node.left)), build(node.right))
            if isinstance(node, Iff):
                left, right = build(node.left), build(node.right)
                return ("iff", left, right)
            raise TypeError(f"not an SRAC constraint: {node!r}")

        self._skeleton = build(constraint)

    # -- running ----------------------------------------------------------

    def initial(self) -> tuple[int, ...]:
        """Initial monitor-state vector."""
        return tuple(m.initial() for m in self.monitors)

    def step(self, states: tuple[int, ...], access: AccessKey) -> tuple[int, ...]:
        """Advance every monitor by one access."""
        return tuple(m.step(s, access) for m, s in zip(self.monitors, states))

    def run(self, trace: Sequence[AccessKey]) -> tuple[int, ...]:
        """Fold a whole trace."""
        states = self.initial()
        for access in trace:
            states = self.step(states, access)
        return states

    def evaluate(self, states: tuple[int, ...]) -> bool:
        """Decide the constraint for a monitor-state vector."""
        bits = tuple(
            m.accepting(s) for m, s in zip(self.monitors, states)
        )

        def ev(node) -> bool:
            tag = node[0]
            if tag == "const":
                return node[1]
            if tag == "bit":
                return bits[node[1]]
            if tag == "not":
                return not ev(node[1])
            if tag == "and":
                return ev(node[1]) and ev(node[2])
            if tag == "or":
                return ev(node[1]) or ev(node[2])
            if tag == "iff":
                return ev(node[1]) == ev(node[2])
            raise AssertionError(tag)  # pragma: no cover

        return ev(self._skeleton)

    def satisfied_by(self, trace: Sequence[AccessKey]) -> bool:
        """Convenience: run + evaluate."""
        return self.evaluate(self.run(trace))

    def state_space(self) -> int:
        """Product of the monitors' state counts — the worst-case number
        of distinct monitor vectors (complexity accounting for
        Theorem 3.2)."""
        total = 1
        for monitor in self.monitors:
            total *= monitor.size()
        return total


# Process-level interned compile cache.  Constraint ASTs are frozen
# (hashable, structurally compared) and a CompiledConstraint is
# immutable after __init__, so one compiled artifact per distinct
# constraint can be shared by every session, engine and checker call
# in the process.  The cache is cleared wholesale when it exceeds
# _COMPILE_CACHE_MAX (correctness is unaffected — only the interning).
# All lookups, insertions and counter updates happen under _cache_lock
# so the cache can be shared by the engine shards of
# :mod:`repro.service` (compilation itself runs outside the lock; a
# racing duplicate compilation is harmless because the artifact is a
# pure function of the constraint).
_COMPILE_CACHE_MAX = 4096
_cache_lock = threading.Lock()
_compile_cache: dict[Constraint, CompiledConstraint] = {}
_compile_hits = 0
_compile_misses = 0


def compile_constraint(
    constraint: Constraint, cache: bool = True
) -> CompiledConstraint:
    """Compile ``constraint`` into a monitor vector + boolean skeleton.

    With ``cache`` (the default) structurally identical constraints
    return one shared, interned :class:`CompiledConstraint` — compile
    once per policy, not once per session or per call.  Pass
    ``cache=False`` to force a fresh compilation (used by the
    equivalence tests that compare cached against uncached behaviour).
    Thread-safe: concurrent callers may both compile a fresh
    constraint, but exactly one artifact wins the interning race.
    """
    global _compile_hits, _compile_misses
    if not cache:
        return CompiledConstraint(constraint)
    with _cache_lock:
        compiled = _compile_cache.get(constraint)
        if compiled is not None:
            _compile_hits += 1
            return compiled
        _compile_misses += 1
    fresh = CompiledConstraint(constraint)
    with _cache_lock:
        compiled = _compile_cache.get(constraint)
        if compiled is not None:
            return compiled
        if len(_compile_cache) >= _COMPILE_CACHE_MAX:
            _compile_cache.clear()
        _compile_cache[constraint] = fresh
    return fresh


def clear_compile_cache() -> None:
    """Drop every interned compilation and reset the hit/miss counters."""
    global _compile_hits, _compile_misses
    with _cache_lock:
        _compile_cache.clear()
        _compile_hits = 0
        _compile_misses = 0


def compile_cache_counters() -> tuple[int, int, int]:
    """``(hits, misses, entries)`` of the process-level compile cache."""
    with _cache_lock:
        return _compile_hits, _compile_misses, len(_compile_cache)
