"""Coreachability precomputation over the monitor product.

The engine's grant-time test (``satisfiable_extension`` — Eq. 3.1's
``check(P, C)`` with an undisclosed remaining program) asks: *from this
monitor-state vector, can any word over the request alphabet reach an
accepting vector?*  The baseline answers with a fresh BFS per decision.
This module answers it with set membership:

1. **Forward pass** — enumerate the monitor product's state graph.  The
   full Cartesian product ``Π range(monitor_i.size())`` is used rather
   than only the states forward-reachable from the initial vector,
   because queries start from *history-induced* states: an observed
   history may contain accesses outside the request alphabet (e.g. a
   counting selection matches servers the constraint never names), so
   the query state need not be alphabet-reachable from the start.
2. **Backward pass** — a fixpoint over the reversed transition relation
   from the accepting vectors yields the **coreachable ("live") set**:
   exactly the states from which some word over the alphabet reaches
   acceptance.

``satisfiable_states(compiled, states, alphabet)`` is then
``states in live_set`` — O(1) in both history length and product size
on the hot path.  Products larger than ``state_budget`` are not
enumerated; the call returns ``None`` and the caller falls back to the
bounded BFS (``repro.srac.checker.satisfiable_extension_states`` with
``use_cache=False``), preserving the polynomial-fragment safety valve.

Live sets are cached process-wide per ``(constraint, alphabet)``; the
:class:`CacheStats` counters (compile hits/misses, reachability
hits/misses, fallbacks) feed the engine's ``cache_stats()`` report and
``benchmarks/bench_decision_cache.py``.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.srac.ast import Constraint
from repro.srac.monitors import (
    CompiledConstraint,
    clear_compile_cache,
    compile_cache_counters,
)
from repro.traces.trace import AccessKey

__all__ = [
    "DEFAULT_STATE_BUDGET",
    "CacheStats",
    "live_set",
    "satisfiable_states",
    "cache_stats",
    "reset_cache_stats",
    "clear_caches",
]

#: Products with more monitor-state vectors than this are not
#: precomputed; queries fall back to the per-decision BFS.
DEFAULT_STATE_BUDGET = 100_000

_LIVE_CACHE_MAX = 4096

# (constraint, frozenset(alphabet)) -> live frozenset, or None when the
# product exceeded the state budget (cached too, so the budget check
# runs once per key rather than once per decision).  Shared by every
# engine shard in the process (repro.service), so lookups, insertions
# and counter updates are guarded by _cache_lock; the fixpoint itself
# runs outside the lock (it is a pure function of its key, so a racing
# duplicate computation is wasted work, never wrong).
_cache_lock = threading.Lock()
_live_cache: dict[
    tuple[Constraint, frozenset[AccessKey]], frozenset[tuple[int, ...]] | None
] = {}
_reach_hits = 0
_reach_misses = 0
_fallbacks = 0


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of the SRAC caching layers.

    ``compile_*`` counts the interned ``compile_constraint`` cache;
    ``reachability_hits``/``misses`` count live-set queries answered
    from / freshly added to the live cache; ``fallbacks`` counts
    queries whose product exceeded the state budget (answered by BFS);
    ``live_sets`` is the number of cached ``(constraint, alphabet)``
    entries.
    """

    compile_hits: int
    compile_misses: int
    reachability_hits: int
    reachability_misses: int
    fallbacks: int
    live_sets: int

    def as_dict(self) -> dict[str, int]:
        return {
            "compile_hits": self.compile_hits,
            "compile_misses": self.compile_misses,
            "reachability_hits": self.reachability_hits,
            "reachability_misses": self.reachability_misses,
            "fallbacks": self.fallbacks,
            "live_sets": self.live_sets,
        }


def _canonical(alphabet: Iterable[AccessKey | tuple[str, str, str]]) -> tuple[AccessKey, ...]:
    return tuple(dict.fromkeys(AccessKey(*a) for a in alphabet))


def _compute_live(
    compiled: CompiledConstraint, symbols: Sequence[AccessKey]
) -> frozenset[tuple[int, ...]]:
    """One forward + backward fixpoint over the full monitor product."""
    states = list(
        itertools.product(*(range(m.size()) for m in compiled.monitors))
    )
    # Forward: materialise the transition graph, reversed as we go.
    predecessors: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
    accepting: list[tuple[int, ...]] = []
    for state in states:
        if compiled.evaluate(state):
            accepting.append(state)
        for symbol in symbols:
            successor = compiled.step(state, symbol)
            predecessors.setdefault(successor, []).append(state)
    # Backward: coreachability fixpoint from the accepting vectors.
    live: set[tuple[int, ...]] = set(accepting)
    frontier = list(accepting)
    while frontier:
        state = frontier.pop()
        for predecessor in predecessors.get(state, ()):
            if predecessor not in live:
                live.add(predecessor)
                frontier.append(predecessor)
    return frozenset(live)


def live_set(
    compiled: CompiledConstraint,
    alphabet: Sequence[AccessKey | tuple[str, str, str]],
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> frozenset[tuple[int, ...]] | None:
    """The coreachable-to-acceptance set of ``compiled`` over
    ``alphabet``, or ``None`` when the product exceeds ``state_budget``
    (callers must then fall back to the BFS).  Cached per
    ``(constraint, alphabet)``.
    """
    symbols = _canonical(alphabet)
    key = (compiled.constraint, frozenset(symbols))
    sentinel = object()
    with _cache_lock:
        cached = _live_cache.get(key, sentinel)
    if cached is not sentinel:
        return cached  # type: ignore[return-value]
    live = (
        None
        if compiled.state_space() > state_budget
        else _compute_live(compiled, symbols)
    )
    with _cache_lock:
        raced = _live_cache.get(key, sentinel)
        if raced is not sentinel:
            return raced  # type: ignore[return-value]
        if len(_live_cache) >= _LIVE_CACHE_MAX:
            _live_cache.clear()
        _live_cache[key] = live
    return live


def satisfiable_states(
    compiled: CompiledConstraint,
    states: tuple[int, ...],
    alphabet: Sequence[AccessKey | tuple[str, str, str]],
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> bool | None:
    """Membership-lookup form of the extension-satisfiability test:
    ``True``/``False`` when the live set is (or can be) precomputed,
    ``None`` when the product exceeds the budget — identical verdicts
    to the BFS wherever it answers (property-tested).
    """
    global _reach_hits, _reach_misses, _fallbacks
    key = (compiled.constraint, frozenset(_canonical(alphabet)))
    sentinel = object()
    with _cache_lock:
        cached = _live_cache.get(key, sentinel)
        if cached is None:
            _fallbacks += 1
            return None
        if cached is not sentinel:
            _reach_hits += 1
            return states in cached  # type: ignore[operator]
        _reach_misses += 1
    cached = live_set(compiled, alphabet, state_budget)
    if cached is None:
        with _cache_lock:
            _fallbacks += 1
        return None
    return states in cached


def cache_stats() -> CacheStats:
    """Combined snapshot of the compile and reachability caches."""
    hits, misses, _entries = compile_cache_counters()
    with _cache_lock:
        return CacheStats(
            compile_hits=hits,
            compile_misses=misses,
            reachability_hits=_reach_hits,
            reachability_misses=_reach_misses,
            fallbacks=_fallbacks,
            live_sets=len(_live_cache),
        )


def reset_cache_stats() -> None:
    """Zero the reachability counters (cache contents are kept)."""
    global _reach_hits, _reach_misses, _fallbacks
    with _cache_lock:
        _reach_hits = 0
        _reach_misses = 0
        _fallbacks = 0


def clear_caches() -> None:
    """Drop every process-level cache (compile, live sets, transition
    tables) and all counters — the big hammer for tests and policy
    hot-reloads."""
    with _cache_lock:
        _live_cache.clear()
    reset_cache_stats()
    clear_compile_cache()
    # Local import: repro.srac.compiled builds on this module, so the
    # table cache is cleared through it rather than imported at the top.
    from repro.srac.compiled import clear_table_cache

    clear_table_cache()
