"""Observability: metrics, span tracing and decision provenance.

The coalition model makes every grant depend on *distributed* state —
traces proved at other servers (Defs. 3.6-3.7), propagated execution
proofs, and duration integrals (Eq. 4.1).  Outcome logs alone cannot
say **why** a decision happened or where the latency went; this package
adds the three missing views:

* :mod:`repro.obs.metrics` — a process-global, lock-striped registry of
  counters / gauges / histograms with labels, snapshot/reset and a
  plain-dict export (:func:`export`);
* :mod:`repro.obs.tracing` — lightweight context-managed spans recorded
  into a fixed-size ring buffer (:data:`~repro.obs.tracing.RECORDER`);
* :mod:`repro.obs.provenance` — the structured *explain record*
  attached to every :class:`~repro.rbac.audit.Decision`: which SRAC
  clause failed, the temporal validity state per Eq. 4.1, and which
  foreign history the verdict leaned on.

Metrics and tracing are **off by default** and gated by one process
flag (:func:`enable` / :func:`disable`): hot paths check
``OBS.enabled`` — a single attribute load — and skip all bookkeeping
when it is false, so the disabled overhead is one branch.  Decision
*provenance* is always on (it is part of the decision itself, and the
decision-neutrality property test relies on decisions being
bit-identical whether observability is enabled or not).

Enabled-mode overhead on the warm decide path is gated at ≤5 % by
``benchmarks/bench_obs_overhead.py``; the engine therefore uses
lock-free plain-attribute counters (its internals are only ever
touched under the owning shard's lock) published to the registry
through a pull-time *collector*, and samples its per-decision spans
1-in-16 (:data:`~repro.rbac.engine.DECIDE_SPAN_SAMPLE`).
"""

from __future__ import annotations

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.provenance import CandidateProvenance, DecisionProvenance
from repro.obs.tracing import RECORDER, Span, SpanRecorder, span

__all__ = [
    "OBS",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "export",
    "REGISTRY",
    "MetricsRegistry",
    "RECORDER",
    "Span",
    "SpanRecorder",
    "span",
    "CandidateProvenance",
    "DecisionProvenance",
]


class _ObsState:
    """The process-wide observability switch.

    A tiny mutable singleton so hot paths can gate on one attribute
    load (``OBS.enabled``) instead of a function call.  Toggling is a
    plain bool store — safe under the GIL; instrumentation points
    tolerate the flag flipping between their check and their record.
    """

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


#: The singleton gate every instrumentation point checks.
OBS = _ObsState()


def enable() -> None:
    """Turn metrics + span recording on, process-wide."""
    OBS.enabled = True


def disable() -> None:
    """Turn metrics + span recording off (the default)."""
    OBS.enabled = False


def is_enabled() -> bool:
    return OBS.enabled


def reset() -> None:
    """Zero the global registry and empty the span ring buffer (test
    and benchmark hygiene; the enabled flag is left untouched)."""
    REGISTRY.reset()
    RECORDER.clear()


def export() -> dict:
    """One plain-dict snapshot of everything observable right now:
    the metrics registry (including registered collectors) and the
    span recorder's per-name summary."""
    return {
        "enabled": OBS.enabled,
        "metrics": REGISTRY.snapshot(),
        "spans": RECORDER.summary(),
    }
