"""Lightweight span tracing into a ring buffer.

A :class:`Span` is one timed operation — a decision, a queue drain, a
proof-batch delivery, a migration.  Spans land in the process-global
:data:`RECORDER`, a fixed-capacity ring buffer (``collections.deque``
with ``maxlen``): recording never allocates unboundedly and never
blocks — ``deque.append`` is atomic under the GIL, so the hot path
takes **no lock at all**.

Two ways to record:

* the :func:`span` context manager — convenient for cool paths::

      with span("proofbatch.flush", destination=dst):
          deliver(...)

* :meth:`SpanRecorder.record` with an explicit start/duration — for
  hot paths that already hold a ``perf_counter`` pair and want to skip
  the context-manager machinery (the engine samples its decide spans
  this way).

Both are no-ops while observability is disabled
(:func:`repro.obs.enable` / :func:`~repro.obs.disable`).
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping

__all__ = ["Span", "SpanRecorder", "RECORDER", "span"]

#: Default ring-buffer capacity (spans kept, newest win).
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class Span:
    """One recorded operation."""

    name: str
    start: float  # time.perf_counter() domain
    duration_s: float
    attrs: Mapping[str, object] = field(default_factory=dict)
    error: str | None = None

    def as_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "start": self.start,
            "duration_s": self.duration_s,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error is not None:
            out["error"] = self.error
        return out


class SpanRecorder:
    """Fixed-capacity span sink with summary queries."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self._spans: "deque[Span]" = deque(maxlen=capacity)

    @property
    def capacity(self) -> int:
        return self._spans.maxlen or 0

    def record(
        self,
        name: str,
        start: float,
        duration_s: float,
        attrs: Mapping[str, object] | None = None,
        error: str | None = None,
    ) -> None:
        """Append one finished span (lock-free: ``deque.append`` is
        atomic under the GIL)."""
        self._spans.append(
            Span(name, start, duration_s, attrs if attrs is not None else {}, error)
        )

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self, name: str | None = None) -> tuple[Span, ...]:
        """Snapshot of the buffer (oldest first), optionally filtered."""
        snap = tuple(self._spans)
        if name is None:
            return snap
        return tuple(s for s in snap if s.name == name)

    def recent(self, n: int = 20) -> tuple[Span, ...]:
        """The ``n`` newest spans, newest last."""
        snap = tuple(self._spans)
        return snap[-n:]

    def summary(self) -> dict[str, dict]:
        """Per-name aggregate: span count, total/mean/max duration and
        error count — the terminal-friendly view ``repro obs`` prints."""
        out: dict[str, dict] = {}
        for s in tuple(self._spans):
            row = out.get(s.name)
            if row is None:
                row = out[s.name] = {
                    "count": 0,
                    "total_s": 0.0,
                    "max_s": 0.0,
                    "errors": 0,
                }
            row["count"] += 1
            row["total_s"] += s.duration_s
            if s.duration_s > row["max_s"]:
                row["max_s"] = s.duration_s
            if s.error is not None:
                row["errors"] += 1
        for row in out.values():
            row["mean_s"] = row["total_s"] / row["count"]
        return dict(sorted(out.items()))


#: The process-global recorder all built-in instrumentation targets.
RECORDER = SpanRecorder()


@contextmanager
def span(
    name: str,
    recorder: SpanRecorder | None = None,
    **attrs: object,
) -> Iterator[None]:
    """Record the wrapped block as one span (no-op when observability
    is disabled).  Exceptions are recorded on the span (``error`` =
    exception class name) and re-raised."""
    from repro.obs import OBS  # local import avoids a cycle at package init

    if not OBS.enabled:
        yield None
        return
    target = recorder if recorder is not None else RECORDER
    start = time.perf_counter()
    try:
        yield None
    except BaseException as exc:
        target.record(
            name,
            start,
            time.perf_counter() - start,
            attrs,
            error=type(exc).__name__,
        )
        raise
    target.record(name, start, time.perf_counter() - start, attrs)
