"""Decision provenance: the structured *explain record* of Eq. 3.1/4.1.

Every :class:`~repro.rbac.audit.Decision` carries a
:class:`DecisionProvenance` saying **why** the verdict came out the way
it did: which candidate ``(role, permission)`` pairs were examined,
which SRAC clause could no longer be satisfied, the temporal validity
state (Eq. 4.1) of each candidate, what history the spatial check ran
against (incremental session history, an explicit proved trace, or a
disclosed remaining program), and — for coordination-degraded denials —
which foreign execution proofs the deciding server could not
corroborate.

Provenance is **always on**: it is part of the decision, not of the
optional metrics/tracing layer, so decisions stay bit-identical whether
:mod:`repro.obs` is enabled or not (property-tested).  The records are
``NamedTuple``\\ s — construction is one ``tuple.__new__``, cheap enough
for the warm decide path — and value-comparable, so decision equality
keeps working.

Kinds
-----

``granted``
    A candidate passed both checks; ``candidates`` holds that pair.
``no-candidate``
    No active role contributed a permission matching the access.
``spatial``
    Every candidate failed; the last failure was the spatial
    constraint (its source text is in the candidate record).
``temporal``
    Every candidate failed; the last failure was temporal validity
    (the Eq. 4.1 state — ``active-but-invalid`` or ``inactive`` — is in
    the candidate record).
``degraded``
    The engine's verdict was overridden by a
    :class:`~repro.faults.plan.DegradationPolicy` because foreign
    proofs in the carried chain were uncorroborated (their digests are
    in ``uncorroborated``).
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["CandidateProvenance", "DecisionProvenance"]


class CandidateProvenance(NamedTuple):
    """One examined ``(role, permission)`` pair and both its verdicts."""

    role: str
    permission: str
    #: Source text of the permission's SRAC constraint (None when the
    #: permission is spatially unconstrained).
    constraint: str | None
    spatial_ok: bool | None
    temporal_ok: bool | None
    #: The Eq. 4.1 permission state (``valid`` / ``active-but-invalid``
    #: / ``inactive``) at decision time.
    temporal_state: str | None

    def as_dict(self) -> dict:
        return self._asdict()


class DecisionProvenance(NamedTuple):
    """The structured explain record of one decision."""

    #: ``granted`` | ``no-candidate`` | ``spatial`` | ``temporal`` |
    #: ``degraded`` (see module docstring).
    kind: str
    #: Candidates examined, in evaluation order (for grants, the single
    #: winning pair).
    candidates: tuple[CandidateProvenance, ...] = ()
    #: ``incremental`` (session-observed history), ``explicit`` (a
    #: proved trace was passed in), ``program`` (a disclosed remaining
    #: program drove the check), or ``none``.
    history_mode: str = "none"
    #: Length of the history the spatial check ran against.
    history_len: int | None = None
    #: Distinct *other* servers contributing history entries — the
    #: coordination footprint of the decision (denials only; grants
    #: skip the scan to stay off the hot path's critical microseconds).
    foreign_servers: tuple[str, ...] = ()
    #: Digests of foreign proofs the deciding server could not
    #: corroborate (``degraded`` kind only).
    uncorroborated: tuple[str, ...] = ()
    #: Free-form amplification (e.g. the degradation mode).
    detail: str = ""
    #: Coalition membership epoch in force when the decision was taken
    #: (None when the engine is not bound to a coalition) — the key the
    #: cross-epoch no-overgrant oracle replays admissibility against.
    epoch: int | None = None

    @property
    def failing(self) -> CandidateProvenance | None:
        """The candidate whose failure produced a denial (the last one
        examined), or None for grants / no-candidate denials."""
        if self.kind in ("spatial", "temporal") and self.candidates:
            return self.candidates[-1]
        return None

    def describe(self) -> str:
        """One human-readable line naming the failing constraint or
        temporal state — the CLI's and audit log's rendering."""
        if self.kind == "granted":
            c = self.candidates[0]
            return (
                f"granted via role {c.role!r} permission {c.permission!r} "
                f"(state {c.temporal_state})"
            )
        if self.kind == "no-candidate":
            return "denied: no active role provides a matching permission"
        if self.kind == "degraded":
            return (
                f"denied (degraded{': ' + self.detail if self.detail else ''}): "
                f"{len(self.uncorroborated)} uncorroborated foreign proofs"
            )
        c = self.failing
        if c is None:  # pragma: no cover - defensive
            return f"denied ({self.kind})"
        if self.kind == "spatial":
            return (
                f"denied: spatial constraint {c.constraint!r} of "
                f"permission {c.permission!r} cannot be satisfied "
                f"(history: {self.history_mode}, {self.history_len} entries)"
            )
        return (
            f"denied: permission {c.permission!r} is {c.temporal_state} "
            f"(Eq. 4.1 validity)"
        )

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "candidates": [c.as_dict() for c in self.candidates],
            "history_mode": self.history_mode,
            "history_len": self.history_len,
            "foreign_servers": list(self.foreign_servers),
            "uncorroborated": list(self.uncorroborated),
            "detail": self.detail,
            "epoch": self.epoch,
            "summary": self.describe(),
        }
