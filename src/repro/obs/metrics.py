"""The process-global metrics registry.

Three instrument kinds, Prometheus-flavoured but dependency-free:

* :class:`Counter` — monotone ``inc``;
* :class:`Gauge` — ``set`` / ``add`` of a current value;
* :class:`Histogram` — ``observe`` with count/sum/min/max and optional
  fixed bucket bounds (omit the bounds on hot paths — the bucketless
  histogram is a handful of float updates under one lock).

Instruments are keyed by ``(name, labels)`` and created on demand;
**call sites are expected to pre-bind the instrument handle** (one
registry lookup at construction time) so the per-event cost is a
single ``inc``/``observe`` — one striped lock plus a few arithmetic
ops.  The lock array is a :class:`~repro.concurrency.LockStripe`
indexed by instrument name, so unrelated subsystems never serialise on
each other.

Components whose counters are already mutated under an exclusive lock
of their own (the access-control engine runs under its shard lock) can
avoid even that by registering a **collector** — a zero-argument
callable returning ``{metric_name: value}`` that the registry invokes
at :meth:`~MetricsRegistry.snapshot` time.  Collectors are held by
weak reference so short-lived engines (tests, benchmarks) never leak.
"""

from __future__ import annotations

import bisect
import threading
import weakref
from typing import Callable, Iterable, Mapping

from repro.concurrency import LockStripe

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY"]

#: Default histogram bucket upper bounds (seconds-flavoured latencies).
DEFAULT_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0,
)


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotone counter."""

    __slots__ = ("name", "labels", "_lock", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...], lock):
        self.name = name
        self.labels = labels
        self._lock = lock
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        with self._lock:
            self.value += n

    def _reset(self) -> None:
        self.value = 0

    def _export(self) -> int | float:
        return self.value


class Gauge:
    """A point-in-time value."""

    __slots__ = ("name", "labels", "_lock", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...], lock):
        self.name = name
        self.labels = labels
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta

    def _reset(self) -> None:
        self.value = 0.0

    def _export(self) -> float:
        return self.value


class Histogram:
    """Count / sum / min / max plus optional cumulative buckets.

    ``buckets=()`` (the default through
    :meth:`MetricsRegistry.histogram` with ``buckets=None``… passing an
    explicit tuple opts in) skips the bisect entirely — the right
    choice on hot paths where only the moment statistics are wanted.
    """

    __slots__ = (
        "name", "labels", "_lock", "bounds", "bucket_counts",
        "count", "total", "min", "max",
    )

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        lock,
        bounds: tuple[float, ...] = (),
    ):
        self.name = name
        self.labels = labels
        self._lock = lock
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if self.bounds:
                self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1

    def _reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def _export(self) -> dict:
        out: dict = {
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count if self.count else 0.0,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }
        if self.bounds:
            out["buckets"] = {
                ("+inf" if i == len(self.bounds) else repr(self.bounds[i])): n
                for i, n in enumerate(self.bucket_counts)
            }
        return out


class MetricsRegistry:
    """Instrument factory + snapshot surface.

    One process-global instance (:data:`REGISTRY`) serves the whole
    tree; tests that want isolation construct their own.
    """

    def __init__(self, stripes: int = 16):
        self._stripe = LockStripe(stripes)
        # Reentrant: a garbage-collection pass triggered by an
        # allocation *inside* a registry method can run component
        # __del__s that call absorb() on this same thread.
        self._table_lock = threading.RLock()
        self._instruments: dict[tuple[str, str, tuple], object] = {}
        self._collectors: list[weakref.ref] = []
        # Final values of collectors whose owners have died (folded in
        # via absorb()), so snapshots stay monotone across short-lived
        # engines/batchers/simulations.
        self._absorbed: dict[str, float] = {}

    # -- instrument factories ----------------------------------------------

    def _get(self, kind: str, cls, name: str, labels: Mapping[str, str], *args):
        key = (kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._table_lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = cls(
                        name, key[2], self._stripe.lock_for(name), *args
                    )
                    self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] | None = None,
        **labels: str,
    ) -> Histogram:
        bounds = () if buckets is None else tuple(sorted(buckets))
        return self._get("histogram", Histogram, name, labels, bounds)

    # -- collectors ---------------------------------------------------------

    def register_collector(self, fn: Callable[[], Mapping[str, float]]) -> None:
        """Register a pull-time metrics source (weakly referenced, so
        short-lived engines never leak).  Bound methods get a
        ``WeakMethod`` — a plain ``ref`` to a bound method dies
        immediately, since each attribute access creates a fresh method
        object.  ``fn`` must otherwise be a long-lived callable — the
        registry keeps no strong reference, so a local lambda would be
        collected right away."""
        make_ref = (
            weakref.WeakMethod
            if hasattr(fn, "__self__")
            else weakref.ref
        )
        with self._table_lock:
            self._collectors.append(make_ref(fn))

    def unregister_collector(self, fn) -> None:
        with self._table_lock:
            self._collectors = [
                ref for ref in self._collectors
                if ref() is not None and ref() != fn
            ]

    def absorb(self, values: Mapping[str, float]) -> None:
        """Fold a dying collector's final values into the registry
        (called from component ``__del__``s) so the totals it
        contributed survive its garbage collection."""
        with self._table_lock:
            for k, v in values.items():
                self._absorbed[k] = self._absorbed.get(k, 0) + v

    # -- snapshot / reset -----------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict export: ``counters`` / ``gauges`` / ``histograms``
        keyed by ``name{label=value,…}``, plus every collector's pulled
        values under ``collected``."""
        with self._table_lock:
            items = list(self._instruments.items())
            self._collectors = [r for r in self._collectors if r() is not None]
            collectors = [r() for r in self._collectors]
            collected: dict[str, float] = dict(self._absorbed)
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for (kind, name, labels), instrument in sorted(
            items, key=lambda kv: (kv[0][0], kv[0][1], kv[0][2])
        ):
            out[kind + "s"][_render(name, labels)] = instrument._export()
        for fn in collectors:
            if fn is None:
                continue
            try:
                pulled = fn()
            except Exception:  # pragma: no cover - defensive
                continue
            # Sum duplicate keys: every shard of a ShardedEngine exports
            # the same metric names, and the fleet-wide total is wanted.
            for k, v in pulled.items():
                collected[k] = collected.get(k, 0) + v
        if collected:
            out["collected"] = dict(sorted(collected.items()))
        return out

    def reset(self) -> None:
        """Zero every instrument (instances stay bound at call sites)
        and drop absorbed totals; collectors are pull-time views and
        are left registered (their owners' counters are theirs to
        reset)."""
        with self._table_lock:
            items = list(self._instruments.values())
            self._absorbed.clear()
        for instrument in items:
            with instrument._lock:
                instrument._reset()


#: The process-global registry all built-in instrumentation binds to.
REGISTRY = MetricsRegistry()
