"""Batched cross-server execution-proof propagation.

"When an access request to a shared resource is executed by a
coalition server, a execution proof will be issued to the mobile
object" (Section 2) — and authorization at the *next* server depends on
proofs of what the agent did elsewhere.  The naive realisation
announces every proof to every other server with one synchronous call
per access; under heavy traffic that is O(accesses × servers) delivery
calls on the hot path.

:class:`ProofBatch` coalesces announcements per destination server and
flushes them **latency-model-aware**: a batch destined for server *d*
becomes deliverable only once the coalition's migration latency from
its earliest entry's source has elapsed — proofs cannot outrun the
network that carries them — and until then further proofs pile into
the same batch for free.  A full batch (``max_batch``) flushes
immediately; an explicit :meth:`flush` delivers everything outstanding
(tests and simulation shutdown).

Deliveries land in each server's announced-proof ledger
(:meth:`repro.coalition.server.CoalitionServer.receive_proofs`).  The
batcher requires a **frozen** coalition topology so the destination
list can be cached once (``Coalition.freeze``).
"""

from __future__ import annotations

import threading

from repro.coalition.network import Coalition
from repro.coalition.proofs import ExecutionProof
from repro.errors import ServiceError

__all__ = ["ProofBatch"]


class ProofBatch:
    """Coalesced, latency-aware proof announcement for one coalition.

    Parameters
    ----------
    coalition:
        Its membership is frozen here (shard routing and the cached
        destination list require an immutable topology).
    max_batch:
        A destination's pending batch flushes as soon as it reaches
        this many proofs, regardless of latency.
    """

    def __init__(self, coalition: Coalition, max_batch: int = 32):
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        coalition.freeze()
        self.coalition = coalition
        self.max_batch = max_batch
        self._servers = tuple(coalition.server_names())
        self._lock = threading.Lock()
        self._pending: dict[str, list[ExecutionProof]] = {
            name: [] for name in self._servers
        }
        #: Virtual time at which a destination's batch becomes
        #: deliverable (earliest entry's enqueue time + its latency).
        self._due: dict[str, float] = {}
        self.enqueued = 0
        self.delivered = 0
        self.delivery_calls = 0
        self.overflow_flushes = 0

    # -- producing -------------------------------------------------------------

    def enqueue(self, source: str, proof: ExecutionProof, now: float = 0.0) -> int:
        """Announce ``proof`` (executed at ``source`` at virtual time
        ``now``) to every other coalition server.  Returns the number
        of proofs delivered by overflow flushes triggered here."""
        if source not in self.coalition:
            raise ServiceError(f"unknown source server {source!r}")
        overflowing: list[str] = []
        with self._lock:
            for destination in self._servers:
                if destination == source:
                    continue
                batch = self._pending[destination]
                batch.append(proof)
                self.enqueued += 1
                deliverable_at = now + self.coalition.migration_latency(
                    source, destination
                )
                if destination not in self._due:
                    self._due[destination] = deliverable_at
                else:
                    self._due[destination] = min(
                        self._due[destination], deliverable_at
                    )
                if len(batch) >= self.max_batch:
                    overflowing.append(destination)
                    self.overflow_flushes += 1
        delivered = 0
        for destination in overflowing:
            delivered += self.flush(destination)
        return delivered

    # -- flushing -------------------------------------------------------------

    def _take(self, destination: str) -> list[ExecutionProof]:
        with self._lock:
            batch = self._pending[destination]
            if not batch:
                return []
            self._pending[destination] = []
            self._due.pop(destination, None)
            return batch

    def _deliver(self, destination: str, batch: list[ExecutionProof]) -> int:
        self.coalition.server(destination).receive_proofs(batch)
        with self._lock:
            self.delivery_calls += 1
            self.delivered += len(batch)
        return len(batch)

    def flush(self, destination: str | None = None) -> int:
        """Deliver everything pending (for ``destination``, or for all
        destinations) regardless of due times.  Returns the number of
        proofs delivered.  This is the explicit synchronisation point
        for tests and shutdown."""
        targets = (destination,) if destination is not None else self._servers
        delivered = 0
        for target in targets:
            batch = self._take(target)
            if batch:
                delivered += self._deliver(target, batch)
        return delivered

    def flush_due(self, now: float) -> int:
        """Deliver every batch whose latency window has elapsed at
        virtual time ``now``; later batches keep coalescing."""
        with self._lock:
            ready = [d for d, due in self._due.items() if due <= now]
        delivered = 0
        for destination in ready:
            batch = self._take(destination)
            if batch:
                delivered += self._deliver(destination, batch)
        return delivered

    # -- introspection -----------------------------------------------------------

    def pending_count(self, destination: str | None = None) -> int:
        with self._lock:
            if destination is not None:
                return len(self._pending[destination])
            return sum(len(b) for b in self._pending.values())

    def stats(self) -> dict[str, int | float]:
        """Counters for reports: enqueued/delivered proof entries, how
        many delivery calls carried them (the batching win is
        ``delivered / delivery_calls``) and overflow flushes."""
        with self._lock:
            pending = sum(len(b) for b in self._pending.values())
            return {
                "enqueued": self.enqueued,
                "delivered": self.delivered,
                "pending": pending,
                "delivery_calls": self.delivery_calls,
                "overflow_flushes": self.overflow_flushes,
                "mean_batch_size": (
                    self.delivered / self.delivery_calls
                    if self.delivery_calls
                    else 0.0
                ),
            }
