"""Batched cross-server execution-proof propagation.

"When an access request to a shared resource is executed by a
coalition server, a execution proof will be issued to the mobile
object" (Section 2) — and authorization at the *next* server depends on
proofs of what the agent did elsewhere.  The naive realisation
announces every proof to every other server with one synchronous call
per access; under heavy traffic that is O(accesses × servers) delivery
calls on the hot path.

:class:`ProofBatch` coalesces announcements per destination server and
flushes them **latency-model-aware**: a batch destined for server *d*
becomes deliverable only once the coalition's migration latency from
its earliest entry's source has elapsed — proofs cannot outrun the
network that carries them — and until then further proofs pile into
the same batch for free.  A full batch (``max_batch``) flushes
immediately; an explicit :meth:`flush` delivers everything outstanding
(tests and simulation shutdown).

Deliveries travel through a **transport**.  The default
(:class:`~repro.faults.transport.DirectTransport`) always succeeds and
lands the batch in the destination's announced-proof ledger
(:meth:`repro.coalition.server.CoalitionServer.receive_proofs`).  A
:class:`~repro.faults.transport.FaultyTransport` can drop deliveries
or find the destination down; the batcher then re-queues the batch and
retries it on the :class:`~repro.faults.retry.RetryPolicy`'s
deterministic backoff schedule.  A batch whose retries are exhausted
(or whose per-delivery deadline has passed) is **parked**: it stays
pending but is no longer retried by :meth:`flush_due` — only an
explicit :meth:`flush` (the post-heal drain) gives it a fresh round of
attempts, so a dead destination cannot consume retry bandwidth
forever, yet no proof is ever silently discarded.

The batcher tracks **dynamic membership**: it subscribes to the
coalition's membership events instead of freezing the topology.  A
join adds a destination slot (the joiner's proof state is bootstrapped
by the coalition's sync handshake, so only post-join proofs flow
through the batcher), a graceful leave gets one final hand-off
delivery attempt before its remaining batch is dropped, and an
eviction drops the evictee's batch unattempted *and* purges every
pending proof the evictee issued — stale proofs must not reach the
survivors' ledgers.
"""

from __future__ import annotations

import threading
import time

from repro.coalition.network import Coalition, MembershipEvent
from repro.coalition.proofs import ExecutionProof
from repro.errors import ServiceError
from repro.faults.retry import RetryPolicy
from repro.obs import OBS, RECORDER, REGISTRY

__all__ = ["ProofBatch"]


class ProofBatch:
    """Coalesced, latency-aware proof announcement for one coalition.

    Parameters
    ----------
    coalition:
        The batcher subscribes to its membership events, so the cached
        destination list follows joins/leaves/evictions/merges; the
        coalition may stay mutable (``Coalition.freeze`` remains
        available for static deployments but is no longer required).
    max_batch:
        A destination's pending batch flushes as soon as it reaches
        this many proofs, regardless of latency (unless the
        destination is mid-backoff — overflow never preempts the retry
        schedule).
    transport:
        The delivery hop; default is the always-successful
        :class:`~repro.faults.transport.DirectTransport`.
    retry:
        Backoff schedule for failed deliveries; defaults to
        ``RetryPolicy()`` when a custom transport is supplied.
    """

    def __init__(
        self,
        coalition: Coalition,
        max_batch: int = 32,
        transport=None,
        retry: RetryPolicy | None = None,
    ):
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        self.coalition = coalition
        self.max_batch = max_batch
        if transport is None:
            from repro.faults.transport import DirectTransport

            transport = DirectTransport(coalition)
        self.transport = transport
        self.retry = retry if retry is not None else RetryPolicy()
        self._servers = tuple(coalition.server_names())
        self._lock = threading.Lock()
        self._pending: dict[str, list[ExecutionProof]] = {
            name: [] for name in self._servers
        }
        #: Virtual time at which a destination's batch becomes
        #: deliverable (earliest entry's enqueue time + its latency;
        #: pushed back by in-flight delay and retry backoff).
        self._due: dict[str, float] = {}
        #: Failed attempts for the destination's current head batch.
        self._attempts: dict[str, int] = {}
        #: Virtual time of the current head batch's first failure.
        self._first_failure: dict[str, float] = {}
        #: Destinations whose next attempt already drew its in-flight
        #: delay (so the reordering draw happens once per delivery).
        self._delayed: set[str] = set()
        #: Destinations whose retries are exhausted; only an explicit
        #: flush re-arms them.
        self._parked: set[str] = set()
        #: Latest virtual time this batcher has observed (the default
        #: ``now`` of an un-timed ``flush()``).
        self._clock = 0.0
        self.enqueued = 0
        self.delivered = 0
        self.delivery_calls = 0
        self.overflow_flushes = 0
        self.failed_deliveries = 0
        self.retries_scheduled = 0
        self.abandoned_batches = 0
        self.membership_events = 0
        self.destinations_added = 0
        self.handoff_delivered = 0
        self.handoff_dropped = 0
        self.dropped_stale = 0
        self.purged_stale = 0
        coalition.subscribe(self._on_membership)
        REGISTRY.register_collector(self._collect_obs)

    def __del__(self):
        try:
            REGISTRY.absorb(self._collect_obs())
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def _collect_obs(self) -> dict[str, float]:
        """Pull-time metrics source (the counters above are mutated
        under ``self._lock``; the registry sums across batchers)."""
        return {
            "proofbatch.enqueued": self.enqueued,
            "proofbatch.delivered": self.delivered,
            "proofbatch.delivery_calls": self.delivery_calls,
            "proofbatch.overflow_flushes": self.overflow_flushes,
            "proofbatch.failed_deliveries": self.failed_deliveries,
            "proofbatch.retries_scheduled": self.retries_scheduled,
            "proofbatch.abandoned_batches": self.abandoned_batches,
            "proofbatch.parked": len(self._parked),
            "proofbatch.pending": sum(len(b) for b in self._pending.values()),
            "proofbatch.membership_events": self.membership_events,
            "proofbatch.handoff_delivered": self.handoff_delivered,
            "proofbatch.handoff_dropped": self.handoff_dropped,
            "proofbatch.dropped_stale": self.dropped_stale,
            "proofbatch.purged_stale": self.purged_stale,
        }

    # -- membership ------------------------------------------------------------

    def _on_membership(self, event: MembershipEvent) -> None:
        """React to a coalition membership change (called synchronously
        by the coalition while its membership lock is held; we only take
        our own lock here, never the coalition's, so the lock order
        stays acyclic)."""
        self.membership_events += 1
        if event.kind in ("join", "merge"):
            with self._lock:
                for name in event.servers:
                    if name in self._pending:
                        continue
                    self._pending[name] = []
                    self._servers = tuple(
                        sorted((*self._servers, name))
                    )
                    self.destinations_added += 1
        elif event.kind == "leave":
            # Graceful departure: one final hand-off attempt delivers
            # what we owe the leaver (it drained its own work; we drain
            # ours), then the slot disappears.  Whatever the attempt
            # could not place is dropped — the leaver is gone.
            for name in event.servers:
                self.handoff_delivered += self.flush(name, now=event.at)
                with self._lock:
                    remainder = self._pending.pop(name, [])
                    self.handoff_dropped += len(remainder)
                    self._drop_destination_state(name)
        elif event.kind == "evict":
            with self._lock:
                for name in event.servers:
                    # No delivery attempt: the evictee is gone and owed
                    # nothing.  Its batch is dropped...
                    dropped = self._pending.pop(name, [])
                    self.dropped_stale += len(dropped)
                    self._drop_destination_state(name)
                    # ...and every pending proof it *issued* is purged:
                    # from this epoch on those proofs are inadmissible
                    # and must not reach the survivors' ledgers.
                    for destination, batch in self._pending.items():
                        kept = [
                            p for p in batch if p.access.server != name
                        ]
                        if len(kept) != len(batch):
                            self.purged_stale += len(batch) - len(kept)
                            self._pending[destination] = kept
                            if not kept and not self._attempts.get(destination):
                                self._due.pop(destination, None)

    def _drop_destination_state(self, name: str) -> None:
        """Remove every per-destination bookkeeping entry for ``name``
        (caller holds ``self._lock``)."""
        self._servers = tuple(s for s in self._servers if s != name)
        self._due.pop(name, None)
        self._attempts.pop(name, None)
        self._first_failure.pop(name, None)
        self._delayed.discard(name)
        self._parked.discard(name)

    # -- producing -------------------------------------------------------------

    def enqueue(self, source: str, proof: ExecutionProof, now: float = 0.0) -> int:
        """Announce ``proof`` (executed at ``source`` at virtual time
        ``now``) to every other coalition server.  Returns the number
        of proofs delivered by overflow flushes triggered here."""
        if source not in self.coalition:
            raise ServiceError(f"unknown source server {source!r}")
        overflowing: list[str] = []
        with self._lock:
            self._clock = max(self._clock, now)
            for destination in self._servers:
                if destination == source:
                    continue
                batch = self._pending[destination]
                batch.append(proof)
                self.enqueued += 1
                deliverable_at = now + self.coalition.migration_latency(
                    source, destination
                )
                if destination not in self._due:
                    if destination not in self._parked:
                        self._due[destination] = deliverable_at
                elif self._attempts.get(destination, 0) == 0:
                    # Coalescing may pull the batch earlier — but never
                    # mid-backoff: a failed destination's next attempt
                    # stays on the retry schedule.
                    self._due[destination] = min(
                        self._due[destination], deliverable_at
                    )
                if (
                    len(batch) >= self.max_batch
                    and self._attempts.get(destination, 0) == 0
                    and destination not in self._parked
                ):
                    overflowing.append(destination)
                    self.overflow_flushes += 1
        delivered = 0
        for destination in overflowing:
            delivered += self._attempt(destination, now)
        return delivered

    # -- delivery --------------------------------------------------------------

    def _attempt(self, destination: str, now: float) -> int:
        """One delivery attempt for ``destination``'s pending batch at
        virtual time ``now``; returns the number of proofs delivered
        (0 on failure or postponement)."""
        with self._lock:
            batch = self._pending.get(destination)
            if not batch:
                # Empty — or the destination left/was evicted between
                # the caller's snapshot and this attempt.
                self._due.pop(destination, None)
                return 0
            if destination not in self._delayed:
                delay = self.transport.delivery_delay(destination, now)
                if delay > 0:
                    # In flight: the batch is committed to the wire but
                    # arrives later — postpone, and don't redraw.
                    self._delayed.add(destination)
                    self._due[destination] = now + delay
                    return 0
            self._pending[destination] = []
        if OBS.enabled:
            wall_start = time.perf_counter()
            ok = self.transport.deliver(destination, batch, now)
            RECORDER.record(
                "proofbatch.deliver",
                wall_start,
                time.perf_counter() - wall_start,
                {"destination": destination, "size": len(batch), "ok": ok},
            )
        else:
            ok = self.transport.deliver(destination, batch, now)
        with self._lock:
            self._delayed.discard(destination)
            if ok:
                self.delivery_calls += 1
                self.delivered += len(batch)
                self._attempts.pop(destination, None)
                self._first_failure.pop(destination, None)
                self._parked.discard(destination)
                # New proofs may have been enqueued while delivering:
                # their due entry (set by enqueue) stays; ours is spent.
                if not self._pending.get(destination):
                    self._due.pop(destination, None)
                return len(batch)
            # Failure: the batch goes back to the head of the queue and
            # the retry schedule decides when (whether) to try again.
            self.failed_deliveries += 1
            if destination not in self._pending:
                # The destination left the coalition while the delivery
                # was in flight; nothing to requeue.
                self.abandoned_batches += 1
                return 0
            self._pending[destination][:0] = batch
            attempt = self._attempts.get(destination, 0)
            first = self._first_failure.setdefault(destination, now)
            if self.retry.exhausted(attempt, first, now):
                self._parked.add(destination)
                self.abandoned_batches += 1
                self._due.pop(destination, None)
                if OBS.enabled:
                    RECORDER.record(
                        "proofbatch.park",
                        time.perf_counter(),
                        0.0,
                        {
                            "destination": destination,
                            "size": len(batch),
                            "attempts": attempt,
                        },
                    )
            else:
                self._attempts[destination] = attempt + 1
                self.retries_scheduled += 1
                self._due[destination] = now + self.retry.delay(attempt)
                if OBS.enabled:
                    RECORDER.record(
                        "proofbatch.retry",
                        time.perf_counter(),
                        0.0,
                        {
                            "destination": destination,
                            "attempt": attempt + 1,
                            "due": self._due[destination],
                        },
                    )
            return 0

    # -- flushing -------------------------------------------------------------

    def flush(self, destination: str | None = None, now: float | None = None) -> int:
        """Attempt delivery of everything pending (for ``destination``,
        or for all destinations) regardless of due times, re-arming
        parked destinations with a fresh retry budget.  Returns the
        number of proofs delivered.  This is the explicit
        synchronisation point for tests, shutdown, and the post-heal
        drain; with the default transport it always delivers
        everything."""
        targets = (destination,) if destination is not None else self._servers
        with self._lock:
            if now is None:
                now = self._clock
            else:
                self._clock = max(self._clock, now)
            for target in targets:
                self._attempts.pop(target, None)
                self._first_failure.pop(target, None)
                self._parked.discard(target)
                self._delayed.discard(target)
        delivered = 0
        for target in targets:
            delivered += self._attempt(target, now)
        return delivered

    def flush_due(self, now: float) -> int:
        """Attempt every batch whose latency window (or retry backoff)
        has elapsed at virtual time ``now``; later batches keep
        coalescing, parked batches stay parked."""
        with self._lock:
            self._clock = max(self._clock, now)
            ready = [d for d, due in self._due.items() if due <= now]
        delivered = 0
        for destination in ready:
            delivered += self._attempt(destination, now)
        return delivered

    def next_due(self) -> float | None:
        """Earliest due time of any pending batch (None when nothing is
        scheduled) — lets a driver advance virtual time straight to the
        next retry instead of polling."""
        with self._lock:
            return min(self._due.values()) if self._due else None

    # -- introspection -----------------------------------------------------------

    def pending_count(self, destination: str | None = None) -> int:
        with self._lock:
            if destination is not None:
                return len(self._pending[destination])
            return sum(len(b) for b in self._pending.values())

    def parked_destinations(self) -> tuple[str, ...]:
        """Destinations whose retries are exhausted (awaiting an
        explicit flush)."""
        with self._lock:
            return tuple(sorted(self._parked))

    def stats(self) -> dict[str, int | float]:
        """Counters for reports: enqueued/delivered proof entries, how
        many delivery calls carried them (the batching win is
        ``delivered / delivery_calls``), overflow flushes, and the
        fault-path counters (failed attempts, scheduled retries,
        batches parked after retry exhaustion)."""
        with self._lock:
            pending = sum(len(b) for b in self._pending.values())
            return {
                "enqueued": self.enqueued,
                "delivered": self.delivered,
                "pending": pending,
                "delivery_calls": self.delivery_calls,
                "overflow_flushes": self.overflow_flushes,
                "failed_deliveries": self.failed_deliveries,
                "retries_scheduled": self.retries_scheduled,
                "abandoned_batches": self.abandoned_batches,
                "parked": len(self._parked),
                "membership_events": self.membership_events,
                "destinations_added": self.destinations_added,
                "handoff_delivered": self.handoff_delivered,
                "handoff_dropped": self.handoff_dropped,
                "dropped_stale": self.dropped_stale,
                "purged_stale": self.purged_stale,
                "mean_batch_size": (
                    self.delivered / self.delivery_calls
                    if self.delivery_calls
                    else 0.0
                ),
            }
