"""The concurrent decision service front door.

:class:`DecisionService` turns a :class:`~repro.service.sharding.ShardedEngine`
into a throughput-oriented authorization service:

* a ``ThreadPoolExecutor`` worker pool serves requests;
* each shard has a **bounded FIFO queue** — submission applies
  backpressure when a shard falls behind (or rejects immediately with
  ``block=False``), so a hot shard cannot grow unbounded memory;
* at most one worker drains a shard at a time (a per-shard drain flag),
  draining the queue in **adaptive micro-batches**: everything pending
  up to ``max_batch``, optionally after a short coalescing wait bounded
  by ``max_wait_s``.  Contiguous vector-eligible stretches of a drained
  batch are dispatched through the vectorized
  :func:`~repro.rbac.vector_engine.sweep_interleaved` under the shard
  lock; everything else (explicit histories, disclosed programs,
  ``observe_granted`` feedback, sessions the sweep cannot handle) is
  decided by the scalar per-request loop in exactly its arrival slot,
  so decisions, provenance and per-shard audit order are bit-identical
  to a scalar-per-request service;
* throughput, latency and batching counters are exposed as a
  :meth:`~DecisionService.service_stats` snapshot, resettable for
  warm steady-state benchmarking.

The **adaptive controller** keeps low-load latency flat: each shard
tracks an EWMA of its drained batch sizes, and the coalescing wait
window grows from 0 toward ``max_wait_s`` only while drains actually
come up deep.  A shard serving a trickle drains immediately (p50 is
one queue hop plus one decision); a shard under pressure waits a
bounded moment so the vector sweep amortises the per-decision cost.

An optional ``post_decision_hook`` runs *outside* the shard lock after
each decision — the integration point for downstream effects such as
handing granted proofs to a :class:`~repro.service.batching.ProofBatch`
or emulating the network round trip that delivers the grant (the
concurrent-service benchmark uses it for its latency model).
"""

from __future__ import annotations

import collections
import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from concurrent.futures import _base as _future_base
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.errors import ServiceError
from repro.faults.retry import RetryPolicy
from repro.obs import OBS, RECORDER, REGISTRY
from repro.rbac.audit import Decision
from repro.rbac.engine import Session
from repro.rbac.vector_engine import sweep_interleaved
from repro.service.sharding import ShardedEngine
from repro.sral.ast import Program
from repro.traces.trace import AccessKey, Trace

__all__ = ["DecisionService", "ServiceStats"]

#: Record one ``service.request`` span per this many completed requests
#: (histogram observations are unsampled; spans carry the per-phase
#: breakdown and only need to be representative).
REQUEST_SPAN_SAMPLE = 16

#: A contiguous vector-eligible stretch shorter than this is decided by
#: the scalar loop — ``prepare_sweep`` has per-session fixed costs that
#: only pay off once a run actually amortises them.
MIN_VECTOR_RUN = 2

#: Decay of the per-shard drained-batch-size EWMA steering the
#: coalescing window (≈ the last dozen drains dominate).
BATCH_EWMA_DECAY = 0.8

#: Bucket bounds for the ``service.batch_size`` / ``queue_occupancy``
#: histograms (requests per drain, not seconds).
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


# Future state constants (plain strings, stable since Python 3.2).
_PENDING = _future_base.PENDING
_RUNNING = _future_base.RUNNING
_CANCELLED = _future_base.CANCELLED
_CANCELLED_AND_NOTIFIED = _future_base.CANCELLED_AND_NOTIFIED
_FINISHED = _future_base.FINISHED


class _ShardFuture(Future):
    """A :class:`Future` sharing one condition with its shard siblings.

    ``Future.__init__`` allocates a fresh ``Condition`` (and its RLock)
    per instance — at micro-batching rates that allocation is the
    single largest submission cost.  All futures of one shard share the
    shard's condition instead: state transitions still serialise on it,
    and since a shard's decisions resolve on that shard's single active
    drainer, the shared lock sees no cross-shard contention.

    ``result``/``exception`` are re-implemented as wait *loops*: the
    inherited single-``wait`` versions assume a private condition where
    one wakeup means completion, which a sibling's broadcast would
    violate (a spurious ``TimeoutError`` with no timeout set).
    """

    def __init__(self, condition: threading.Condition):
        self._condition = condition
        self._state = _PENDING
        self._result = None
        self._exception = None
        self._waiters = []
        self._done_callbacks = []

    def _wait_done(self, timeout: float | None) -> str:
        """Wait (condition held by caller) until done or timeout;
        returns the final state, raising on cancellation/timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            state = self._state
            if state == _FINISHED:
                return state
            if state in (_CANCELLED, _CANCELLED_AND_NOTIFIED):
                raise CancelledError()
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                raise TimeoutError()
            self._condition.wait(remaining)

    def result(self, timeout: float | None = None):
        with self._condition:
            self._wait_done(timeout)
            if self._exception is not None:
                raise self._exception
            return self._result

    def exception(self, timeout: float | None = None):
        with self._condition:
            self._wait_done(timeout)
            return self._exception


class _ShardQueue:
    """Bounded FIFO request queue for one shard.

    ``queue.Queue`` pays one lock acquisition per item on both sides;
    the micro-batched service moves whole slices instead —
    :meth:`put_many` appends a pre-sliced submission batch and
    :meth:`pop_upto` hands the drain loop everything pending, each
    under a single lock acquisition.
    """

    __slots__ = ("maxsize", "_items", "_not_full")

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self._items: collections.deque = collections.deque()
        self._not_full = threading.Condition(threading.Lock())

    def qsize(self) -> int:
        return len(self._items)

    def empty(self) -> bool:
        return not self._items

    def put_many(
        self,
        items: Sequence,
        block: bool = True,
        timeout: float | None = None,
    ) -> int:
        """Append ``items`` in order; returns how many were accepted.
        ``block=True`` waits for queue room (backpressure), up to
        ``timeout``; ``block=False`` accepts what fits and returns."""
        done = 0
        n = len(items)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_full:
            while done < n:
                room = self.maxsize - len(self._items)
                if room <= 0:
                    if not block:
                        break
                    remaining = (
                        None if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        break
                    self._not_full.wait(remaining)
                    continue
                take = min(room, n - done)
                self._items.extend(items[done:done + take])
                done += take
        return done

    def pop_upto(self, n: int) -> list:
        """Pop up to ``n`` items (arrival order) and release waiting
        producers.  Only the shard's single active drainer calls this,
        which is what preserves FIFO processing order."""
        with self._not_full:
            items = self._items
            out = []
            while items and len(out) < n:
                out.append(items.popleft())
            if out:
                self._not_full.notify_all()
            return out


@dataclass(frozen=True)
class ServiceStats:
    """Snapshot of the service counters (one benchmark report row)."""

    submitted: int
    completed: int
    granted: int
    denied: int
    errors: int
    rejected: int
    total_latency_s: float
    max_latency_s: float
    queue_depths: tuple[int, ...]
    shard_decisions: tuple[int, ...]
    workers: int
    shards: int
    hook_retries: int = 0
    #: Requests whose future was cancelled before a worker picked them
    #: up (they are popped, never decided, and count toward drain()).
    cancelled: int = 0
    #: Drained micro-batches and the requests they carried — their
    #: ratio is the realised batching factor.
    batches: int = 0
    batched_requests: int = 0
    max_batch_size: int = 0
    #: Engine-side sweep accounting summed across shards: decisions
    #: served by the vectorized path vs. scalar fallbacks.
    vector_decisions: int = 0
    vector_fallbacks: int = 0
    #: Sessions closed by the opt-in idle-expiry sweep (see the
    #: ``idle_expiry`` constructor parameter).
    expired_sessions: int = 0

    @property
    def mean_latency_s(self) -> float:
        return self.total_latency_s / self.completed if self.completed else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "granted": self.granted,
            "denied": self.denied,
            "errors": self.errors,
            "rejected": self.rejected,
            "mean_latency_ms": self.mean_latency_s * 1e3,
            "max_latency_ms": self.max_latency_s * 1e3,
            "queue_depths": list(self.queue_depths),
            "shard_decisions": list(self.shard_decisions),
            "workers": self.workers,
            "shards": self.shards,
            "hook_retries": self.hook_retries,
            "cancelled": self.cancelled,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "vector_decisions": self.vector_decisions,
            "vector_fallbacks": self.vector_fallbacks,
            "expired_sessions": self.expired_sessions,
        }


class DecisionService:
    """Worker pool + micro-batched per-shard queues over a sharded
    engine.

    Parameters
    ----------
    engine:
        The sharded engine (or a plain policy is *not* accepted — build
        the :class:`ShardedEngine` explicitly so its shard count and
        engine configuration are visible at the call site).
    workers:
        Thread-pool size.  Each shard is drained by at most one worker
        at a time, so useful values are ≤ the shard count for CPU-bound
        decision mixes (the GIL serialises pure-Python compute anyway)
        and larger when the post-decision hook blocks on I/O or
        emulated network latency.
    queue_depth:
        Bound of each shard's request queue (backpressure threshold).
    post_decision_hook:
        ``Callable[[Decision], None]`` run outside the shard lock after
        every decision, before the future resolves.
    hook_retry:
        Optional :class:`~repro.faults.retry.RetryPolicy` for the
        post-decision hook.  The hook is the delivery edge of the
        service (it typically feeds a
        :class:`~repro.service.batching.ProofBatch` or an emulated
        network); with a policy attached, a raising hook is re-invoked
        on the deterministic backoff schedule (real ``time.sleep`` —
        size the delays for the deployment) before the error is
        surfaced on the future.
    max_batch:
        Largest number of requests one drain pops from a shard queue.
        ``1`` disables micro-batching entirely — the scalar
        one-request-per-wakeup service, kept as the differential
        baseline of ``tests/test_service_batching.py``.
    max_wait_s:
        Upper bound of the adaptive coalescing window (the latency
        budget batching may spend at full pressure).  The realised wait
        is adaptive — near zero while drains come up shallow — so p50
        at low load does not regress; ``0`` disables coalescing waits
        altogether (drains still batch whatever is already queued).
    prewarm:
        ``True`` (or a request alphabet iterable) compiles every policy
        constraint, its live sets *and its SRAC transition tables* at
        construction via :meth:`ShardedEngine.prewarm`, eliminating the
        cold-start spike on the first batch.  Pass the expected request
        alphabet for full coverage — with ``True`` alone, only the
        constraints' own universes are warmed.
    coalition:
        Optional :class:`~repro.coalition.Coalition` to track: every
        shard engine stamps decisions with its membership epoch, and
        the service subscribes to membership events — an eviction
        rescinds the evicted server's accesses from every shard's
        incremental histories (:meth:`ShardedEngine.rescind_server`),
        so in-flight sessions can no longer be granted on the strength
        of an evicted server's proofs.  Shard routing is a stable
        owner hash independent of coalition size, so membership
        changes never rebalance sessions (routes stay pinned).
    idle_expiry:
        Opt-in idle-session reclamation: when set (logical seconds), a
        daemon thread periodically calls
        :meth:`ShardedEngine.expire_sessions` with this ``idle_for``,
        closing every session whose ``last_seen`` has fallen that far
        behind the shard's newest activity.  The sweep runs on the
        engines' *logical* clock (the ``t`` of decided requests), so a
        quiet service never expires anything — idleness is relative to
        traffic actually flowing.  Expired sessions count toward
        :attr:`ServiceStats.expired_sessions`.  ``None`` (default)
        disables the sweep entirely.
    idle_sweep_interval_s:
        Wall-clock period of the idle-expiry daemon (only meaningful
        with ``idle_expiry`` set).
    """

    def __init__(
        self,
        engine: ShardedEngine,
        workers: int = 4,
        queue_depth: int = 1024,
        post_decision_hook: Callable[[Decision], None] | None = None,
        hook_retry: RetryPolicy | None = None,
        max_batch: int = 128,
        max_wait_s: float = 0.002,
        prewarm: bool | Iterable[AccessKey | tuple[str, str, str]] = False,
        coalition=None,
        idle_expiry: float | None = None,
        idle_sweep_interval_s: float = 0.05,
    ):
        if workers < 1:
            raise ServiceError(f"worker count must be >= 1, got {workers}")
        if queue_depth < 1:
            raise ServiceError(f"queue depth must be >= 1, got {queue_depth}")
        if max_batch < 1:
            raise ServiceError(f"max batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ServiceError(f"max wait must be >= 0, got {max_wait_s}")
        if idle_expiry is not None and idle_expiry <= 0:
            raise ServiceError(
                f"idle expiry must be > 0, got {idle_expiry}"
            )
        if idle_sweep_interval_s <= 0:
            raise ServiceError(
                f"idle sweep interval must be > 0, got {idle_sweep_interval_s}"
            )
        self.engine = engine
        self.workers = workers
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self._hook = post_decision_hook
        self._hook_retry = hook_retry
        self._queues: list[_ShardQueue] = [
            _ShardQueue(maxsize=queue_depth)
            for _ in range(engine.shard_count)
        ]
        # One shared future condition per shard (see _ShardFuture).
        self._future_conditions = [
            threading.Condition() for _ in range(engine.shard_count)
        ]
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="decision-worker"
        )
        self._closed = False
        self._stats_lock = threading.Lock()
        self._idle = threading.Condition(self._stats_lock)
        self._submitted = 0
        self._completed = 0
        self._granted = 0
        self._denied = 0
        self._errors = 0
        self._rejected = 0
        self._total_latency = 0.0
        self._max_latency = 0.0
        self._hook_retries = 0
        self._cancelled = 0
        self._batches = 0
        self._batched_requests = 0
        self._max_batch_seen = 0
        self._expired_sessions = 0
        # Drain scheduling: at most one drainer per shard at a time.
        # The flag is only read/written under its shard's drain lock,
        # which closes the submit-vs-drainer-exit race (an item is
        # enqueued before the kick, so either the exiting drainer's
        # emptiness check sees it or the kick sees the cleared flag).
        self._drain_locks = [
            threading.Lock() for _ in range(engine.shard_count)
        ]
        self._drain_active = [False] * engine.shard_count
        # Adaptive controller state — touched only by the shard's
        # single active drainer.
        self._batch_goal = max(2, max_batch // 4)
        self._windows = [0.0] * engine.shard_count
        self._batch_ewma = [0.0] * engine.shard_count
        # Pre-bound per-shard instruments (one registry lookup here, a
        # single striped-lock observe per event) — recorded only while
        # repro.obs is enabled.
        self._obs_queue_wait = [
            REGISTRY.histogram("service.queue_wait_s", shard=str(i))
            for i in range(engine.shard_count)
        ]
        self._obs_decide = [
            REGISTRY.histogram("service.decide_s", shard=str(i))
            for i in range(engine.shard_count)
        ]
        self._obs_hook = [
            REGISTRY.histogram("service.hook_s", shard=str(i))
            for i in range(engine.shard_count)
        ]
        self._obs_batch_size = [
            REGISTRY.histogram(
                "service.batch_size", buckets=BATCH_BUCKETS, shard=str(i)
            )
            for i in range(engine.shard_count)
        ]
        self._obs_occupancy = [
            REGISTRY.histogram(
                "service.queue_occupancy", buckets=BATCH_BUCKETS, shard=str(i)
            )
            for i in range(engine.shard_count)
        ]
        self._obs_cancelled = REGISTRY.counter("service.cancelled")
        self._obs_rejected = REGISTRY.counter("service.rejected")
        self._obs_membership = REGISTRY.counter("service.membership_events")
        self.coalition = coalition
        self.membership_events = 0
        if coalition is not None:
            engine.bind_membership(coalition)
            coalition.subscribe(self._on_membership)
        if prewarm:
            engine.prewarm(() if prewarm is True else prewarm)
        self.idle_expiry = idle_expiry
        self._idle_stop = threading.Event()
        self._idle_thread: threading.Thread | None = None
        if idle_expiry is not None:
            self._idle_thread = threading.Thread(
                target=self._idle_sweep_loop,
                args=(idle_expiry, idle_sweep_interval_s),
                name="idle-expiry",
                daemon=True,
            )
            self._idle_thread.start()

    def _idle_sweep_loop(
        self, idle_for: float, interval_s: float
    ) -> None:
        """Daemon body of the opt-in idle-expiry sweep: every
        ``interval_s`` of wall time, close sessions idle for more than
        ``idle_for`` logical seconds on every shard (under the shard
        locks, so the sweep never races a drain's decisions)."""
        while not self._idle_stop.wait(interval_s):
            expired = self.engine.expire_sessions(idle_for=idle_for)
            if expired:
                with self._stats_lock:
                    self._expired_sessions += expired

    def _on_membership(self, event) -> None:
        """Coalition membership listener: count the change and, on an
        eviction, repair every shard's incremental histories so no
        session keeps deciding on the evictee's proofs.  Runs
        synchronously under the coalition's membership lock; shard
        locks nest inside it (the drain path never takes the
        coalition's lock, so the order stays acyclic)."""
        self.membership_events += 1
        self._obs_membership.inc()
        if event.kind == "evict":
            for name in event.servers:
                self.engine.rescind_server(name)

    @property
    def membership_epoch(self) -> int | None:
        """The bound coalition's current membership epoch (None when
        the service is not coalition-bound)."""
        return (
            self.coalition.membership_epoch
            if self.coalition is not None
            else None
        )

    # -- submission -------------------------------------------------------------

    def submit(
        self,
        session: Session,
        access: AccessKey | tuple[str, str, str],
        t: float,
        history: Trace | None = None,
        program: Program | None = None,
        observe_granted: bool = False,
        block: bool = True,
        timeout: float | None = None,
    ) -> "Future[Decision]":
        """Enqueue one request; returns a future for its
        :class:`~repro.rbac.audit.Decision`.

        ``history=None`` (the default) selects the engine's
        **incremental mode**: the spatial check runs against the
        session's own observed history via cached monitor states.  Pass
        an explicit trace — ``()`` for "no proved history" — to check
        against exactly that trace instead.  The default is ``None`` on
        :meth:`submit`, :meth:`decide` and :meth:`submit_many` alike,
        so single and batched submission of the same request decide
        identically.

        ``block=True`` (default) applies backpressure when the owning
        shard's queue is full; ``block=False`` raises
        :class:`~repro.errors.ServiceError` instead.  With
        ``observe_granted`` a granted access is fed back through
        :meth:`~repro.rbac.engine.AccessControlEngine.observe` in the
        same critical section (the executing-client pattern).
        """
        if self._closed:
            raise ServiceError("service is shut down")
        index = self.engine.shard_of(session)
        future: Future[Decision] = _ShardFuture(self._future_conditions[index])
        item = (
            future,
            session,
            access if type(access) is AccessKey else AccessKey(*access),
            t,
            history,
            program,
            observe_granted,
            time.perf_counter(),
        )
        # Count the submission *before* the queue put: a worker can
        # complete the request between the put and any later increment,
        # which would let observers see completed > submitted.  On
        # rejection the reservation is rolled back.
        with self._stats_lock:
            self._submitted += 1
        if not self._queues[index].put_many(
            (item,), block=block, timeout=timeout
        ):
            with self._stats_lock:
                self._submitted -= 1
                self._rejected += 1
            if OBS.enabled:
                self._obs_rejected.inc()
            raise ServiceError(
                f"shard {index} queue is full "
                f"({self._queues[index].maxsize} pending)"
            )
        self._kick(index)
        return future

    def decide(
        self,
        session: Session,
        access: AccessKey | tuple[str, str, str],
        t: float,
        history: Trace | None = None,
        program: Program | None = None,
    ) -> Decision:
        """Synchronous convenience: submit and wait (incremental-mode
        history by default, like :meth:`submit`)."""
        return self.submit(session, access, t, history, program).result()

    def submit_many(
        self,
        requests: Iterable[
            tuple[Session, AccessKey | tuple[str, str, str], float]
        ],
        observe_granted: bool = False,
        block: bool = True,
        timeout: float | None = None,
    ) -> "list[Future[Decision]]":
        """Submit a batch of ``(session, access, t)`` requests, each in
        incremental-history mode — the same default as :meth:`submit`,
        so batch and single submission decide identically.

        The batch is pre-sliced per shard and appended to each shard
        queue in one lock acquisition, then every touched shard gets a
        single drain kick — heavy traffic pays per-batch overheads, not
        per-request ones.  ``block=True`` (default) applies
        backpressure per shard; with ``block=False`` (or an elapsed
        ``timeout``) requests that find no queue room are rejected by
        resolving **their own futures** with
        :class:`~repro.errors.ServiceError` — accepted requests in the
        same call proceed normally, and rejections count toward the
        ``rejected`` stat exactly as for :meth:`submit`.
        """
        if self._closed:
            raise ServiceError("service is shut down")
        now = time.perf_counter()
        futures: list[Future[Decision]] = []
        shard_of = self.engine.shard_of
        conditions = self._future_conditions
        per_shard: dict[int, list] = {}
        for session, access, t in requests:
            index = shard_of(session)
            future: Future[Decision] = _ShardFuture(conditions[index])
            futures.append(future)
            items = per_shard.get(index)
            if items is None:
                items = per_shard[index] = []
            items.append(
                (
                    future,
                    session,
                    access if type(access) is AccessKey else AccessKey(*access),
                    t,
                    None,
                    None,
                    observe_granted,
                    now,
                )
            )
        with self._stats_lock:
            self._submitted += len(futures)
        rejected = 0
        for index, items in per_shard.items():
            accepted = self._queues[index].put_many(
                items, block=block, timeout=timeout
            )
            if accepted:
                self._kick(index)
            if accepted < len(items):
                rejected += len(items) - accepted
                error = ServiceError(
                    f"shard {index} queue is full "
                    f"({self._queues[index].maxsize} pending)"
                )
                for item in items[accepted:]:
                    item[0].set_exception(error)
        if rejected:
            with self._stats_lock:
                self._submitted -= rejected
                self._rejected += rejected
            if OBS.enabled:
                self._obs_rejected.inc(rejected)
        return futures

    # -- worker side ------------------------------------------------------------

    def _kick(self, index: int) -> None:
        """Schedule a drainer for a shard unless one is already active
        (or already scheduled)."""
        with self._drain_locks[index]:
            if self._drain_active[index]:
                return
            self._drain_active[index] = True
        try:
            self._executor.submit(self._drain_shard, index)
        except RuntimeError:
            with self._drain_locks[index]:
                self._drain_active[index] = False
            raise

    def _drain_shard(self, index: int) -> None:
        """The per-shard drain task: coalesce, pop a micro-batch,
        process it, then either hand the shard back to the pool (more
        work pending — requeue so one hot shard cannot starve the
        others when ``workers < shards``) or clear the drain flag."""
        q = self._queues[index]
        while True:
            window = self._windows[index]
            if window > 0.0 and 0 < q.qsize() < self._batch_goal:
                # Coalesce outside every lock: let a shallow queue fill
                # for up to the adaptive window before sweeping.
                time.sleep(window)
            items = q.pop_upto(self.max_batch)
            if items:
                self._process_batch(index, items)
            with self._drain_locks[index]:
                if q.empty():
                    self._drain_active[index] = False
                    return
            if not self._closed:
                try:
                    self._executor.submit(self._drain_shard, index)
                    return
                except RuntimeError:
                    # Executor shutting down mid-drain: finish inline so
                    # no accepted request is stranded.
                    pass

    def _process_batch(self, index: int, items: list) -> None:
        obs_on = OBS.enabled
        occupancy = len(items) + self._queues[index].qsize()
        shard = self.engine._shards[index]
        # Honour cancellation before anything can enter a sweep: only a
        # future that transitions to RUNNING here gets decided.
        # cancel() returns False from now on, so the future resolution
        # below cannot race a concurrent cancel.  The whole scan runs
        # under one acquisition of the shard's shared future condition
        # (equivalent to per-item ``set_running_or_notify_cancel`` —
        # ``cancel()`` already notified waiters and ran callbacks, so
        # the cancelled branch only records the terminal state).
        live = []
        cancelled = 0
        condition = self._future_conditions[index]
        with condition:
            for item in items:
                future = item[0]
                if future._state == _PENDING:
                    future._state = _RUNNING
                    live.append(item)
                else:  # CANCELLED (the only other pre-decision state)
                    future._state = _CANCELLED_AND_NOTIFIED
                    for waiter in future._waiters:
                        waiter.add_cancelled(future)
                    cancelled += 1
        popped_at = time.perf_counter()
        results: list[tuple] = []
        if live:
            with shard.lock:
                self._decide_batch_locked(shard, live, results)
        decided_at = time.perf_counter()

        # Outside the shard lock: downstream effects, per-item
        # accounting and prompt future resolution (each future resolves
        # right after its own hook, not after the whole batch's).
        granted = denied = errors = 0
        total_latency = 0.0
        max_latency = 0.0
        hook = self._hook
        if hook is not None:
            for item, decision, error in results:
                if error is None:
                    error = self._run_hook(decision)
                latency = time.perf_counter() - item[7]
                total_latency += latency
                if latency > max_latency:
                    max_latency = latency
                if error is not None:
                    errors += 1
                    item[0].set_exception(error)
                else:
                    if decision.granted:
                        granted += 1
                    else:
                        denied += 1
                    item[0].set_result(decision)
        elif results:
            # Hookless fast path: resolve the whole batch under one
            # acquisition of the shared condition with one broadcast
            # (``decided_at`` *is* each item's completion time), then
            # run any registered done-callbacks outside it — the same
            # transitions ``set_result``/``set_exception`` make, minus
            # a lock cycle and a wakeup per item.
            callbacks = None
            with condition:
                for item, decision, error in results:
                    latency = decided_at - item[7]
                    total_latency += latency
                    if latency > max_latency:
                        max_latency = latency
                    future = item[0]
                    if error is not None:
                        errors += 1
                        future._exception = error
                    else:
                        if decision.granted:
                            granted += 1
                        else:
                            denied += 1
                        future._result = decision
                    future._state = _FINISHED
                    for waiter in future._waiters:
                        if error is not None:
                            waiter.add_exception(future)
                        else:
                            waiter.add_result(future)
                    if future._done_callbacks:
                        if callbacks is None:
                            callbacks = []
                        callbacks.append(future)
                condition.notify_all()
            if callbacks is not None:
                for future in callbacks:
                    future._invoke_callbacks()
        done_at = time.perf_counter()

        batch_n = len(items)
        with self._stats_lock:
            self._completed += len(results)
            completed = self._completed
            self._granted += granted
            self._denied += denied
            self._errors += errors
            self._total_latency += total_latency
            if max_latency > self._max_latency:
                self._max_latency = max_latency
            self._cancelled += cancelled
            self._batches += 1
            self._batched_requests += batch_n
            if batch_n > self._max_batch_seen:
                self._max_batch_seen = batch_n
            self._idle.notify_all()

        # Adaptive window: deep drains grow the coalescing wait toward
        # max_wait_s; shallow ones collapse it so an idle or trickling
        # shard pays (near) zero added latency.
        ewma = (
            BATCH_EWMA_DECAY * self._batch_ewma[index]
            + (1.0 - BATCH_EWMA_DECAY) * batch_n
        )
        self._batch_ewma[index] = ewma
        if self.max_wait_s > 0.0 and self.max_batch > 1:
            if ewma <= 1.5:
                self._windows[index] = 0.0
            else:
                self._windows[index] = self.max_wait_s * min(
                    1.0, ewma / self._batch_goal
                )

        if obs_on:
            if cancelled:
                self._obs_cancelled.inc(cancelled)
            self._obs_batch_size[index].observe(batch_n)
            self._obs_occupancy[index].observe(occupancy)
            decide_s = decided_at - popped_at
            hook_s = done_at - decided_at
            self._obs_decide[index].observe(decide_s)
            if hook is not None:
                self._obs_hook[index].observe(hook_s)
            queue_wait_obs = self._obs_queue_wait[index]
            for item, _decision, _error in results:
                queue_wait_obs.observe(popped_at - item[7])
            if results and completed % REQUEST_SPAN_SAMPLE < len(results):
                enqueued_at = results[0][0][7]
                RECORDER.record(
                    "service.request",
                    enqueued_at,
                    done_at - enqueued_at,
                    {
                        "shard": index,
                        "batch": batch_n,
                        "occupancy": occupancy,
                        "queue_wait_s": popped_at - enqueued_at,
                        "decide_s": decide_s,
                        "hook_s": hook_s,
                        "sampled": REQUEST_SPAN_SAMPLE,
                    },
                    error=(
                        type(results[-1][2]).__name__
                        if results[-1][2] is not None
                        else None
                    ),
                )

    def _decide_batch_locked(
        self, shard, live: list, results: list
    ) -> None:
        """Decide a drained batch under the shard lock, appending
        ``(item, decision, error)`` triples to ``results`` in arrival
        order.

        Contiguous vector-eligible stretches (incremental history, no
        program, no ``observe_granted``) are swept through
        :func:`~repro.rbac.vector_engine.sweep_interleaved`; any other
        request is decided scalar **in its arrival slot**, so
        ``observe_granted`` feedback is replayed in stream order and
        the per-shard audit log is identical to the scalar service's.
        Every scalar decision is exception-isolated: a poisoned request
        fails only its own future.
        """
        run: list = []
        for item in live:
            if item[4] is None and item[5] is None and not item[6]:
                run.append(item)
                continue
            if run:
                self._flush_run(shard, run, results)
                run = []
            _future, session, access, t, history, program, observe, _enq = item
            try:
                decision = self.engine._decide_on(
                    shard, session, access, t, history, program
                )
                if observe and decision.granted:
                    shard.engine.observe(session, access)
                results.append((item, decision, None))
            except BaseException as exc:
                results.append((item, None, exc))
        if run:
            self._flush_run(shard, run, results)

    def _flush_run(self, shard, run: list, results: list) -> None:
        """Dispatch one vector-eligible run: the batched sweep when it
        is long enough and every session group prepares, the scalar
        per-request loop (with per-item exception isolation) otherwise."""
        if len(run) >= MIN_VECTOR_RUN:
            decisions = None
            try:
                decisions = sweep_interleaved(
                    shard.engine,
                    [(item[1], item[2], item[3]) for item in run],
                )
            except BaseException:
                # A poisoned request must fail only its own future:
                # replay the run item-by-item below so the failure is
                # isolated to the request that caused it.
                shard.engine._vector_fallbacks += len(run)
            if decisions is not None:
                shard.decisions += len(run)
                granted = 0
                for item, decision in zip(run, decisions):
                    if decision.granted:
                        granted += 1
                    results.append((item, decision, None))
                shard.granted += granted
                return
        for item in run:
            try:
                decision = self.engine._decide_on(
                    shard, item[1], item[2], item[3], None, None
                )
                results.append((item, decision, None))
            except BaseException as exc:
                results.append((item, None, exc))

    def _run_hook(self, decision: Decision) -> BaseException | None:
        """Invoke the post-decision hook, retrying per ``hook_retry``.
        Returns the final exception, or None on success."""
        attempt = 0
        first_failure: float | None = None
        while True:
            try:
                self._hook(decision)
                return None
            except BaseException as exc:
                now = time.monotonic()
                if first_failure is None:
                    first_failure = now
                if self._hook_retry is None or self._hook_retry.exhausted(
                    attempt, first_failure, now
                ):
                    return exc
                time.sleep(self._hook_retry.delay(attempt))
                attempt += 1
                with self._stats_lock:
                    self._hook_retries += 1

    # -- synchronisation ----------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted request has completed (the
        service-level ``flush()``).  Returns ``False`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._completed + self._cancelled < self._submitted:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    # -- stats ------------------------------------------------------------------

    def service_stats(self) -> ServiceStats:
        shard_rows = self.engine.shard_stats()
        with self._stats_lock:
            return ServiceStats(
                submitted=self._submitted,
                completed=self._completed,
                granted=self._granted,
                denied=self._denied,
                errors=self._errors,
                rejected=self._rejected,
                total_latency_s=self._total_latency,
                max_latency_s=self._max_latency,
                queue_depths=tuple(q.qsize() for q in self._queues),
                shard_decisions=tuple(row["decisions"] for row in shard_rows),
                workers=self.workers,
                shards=self.engine.shard_count,
                hook_retries=self._hook_retries,
                cancelled=self._cancelled,
                batches=self._batches,
                batched_requests=self._batched_requests,
                max_batch_size=self._max_batch_seen,
                vector_decisions=sum(
                    row["vector_decisions"] for row in shard_rows
                ),
                vector_fallbacks=sum(
                    row["vector_fallbacks"] for row in shard_rows
                ),
                expired_sessions=self._expired_sessions,
            )

    def reset_stats(self) -> None:
        """Zero the service counters and the engine-side counters so a
        benchmark can measure warm steady-state without restarting."""
        with self._stats_lock:
            self._submitted -= self._completed + self._cancelled
            self._completed = 0
            self._granted = 0
            self._denied = 0
            self._errors = 0
            self._rejected = 0
            self._total_latency = 0.0
            self._max_latency = 0.0
            self._hook_retries = 0
            self._cancelled = 0
            self._batches = 0
            self._batched_requests = 0
            self._max_batch_seen = 0
            self._expired_sessions = 0
        self.engine.reset_stats()

    # -- lifecycle ----------------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._idle_stop.set()
        if self._idle_thread is not None and wait:
            self._idle_thread.join()
            self._idle_thread = None
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "DecisionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)
